package demsort

import (
	"fmt"
	"time"

	"demsort/internal/baseline"
	"demsort/internal/core"
	"demsort/internal/elem"
	"demsort/internal/prefetch"
	"demsort/internal/psort"
	"demsort/internal/report"
	"demsort/internal/sortbench"
	"demsort/internal/vtime"
	"demsort/internal/workload"
)

// Figure re-exports the report figure type.
type Figure = report.Figure

// Table re-exports the report table type.
type Table = report.Table

// FigureScale holds the scaled-down machine parameters used to
// regenerate the paper's figures. The paper's testbed sorted 100 GiB
// per PE against 16 GiB of node memory with 8 MiB blocks; the scale
// preserves the governing ratios — runs per input R = N/M, blocks per
// run m/B, seek-to-transfer ratio of a block access — while shrinking
// absolute sizes by ~2.7·10⁵ so a laptop regenerates every figure in
// minutes. Reported times are modelled seconds at the scaled size.
type FigureScale struct {
	// MemElems is m, the per-PE memory budget in elements.
	MemElems int64
	// BlockBytes is B (stands in for the paper's 8 MiB).
	BlockBytes int
	// SmallBlockBytes stands in for the paper's 2 MiB (4:1 ratio).
	SmallBlockBytes int
	// PerPE is the input per PE in elements (the paper's 100 GiB/PE).
	PerPE int
	// PSweep lists the machine sizes of the scaling figures.
	PSweep []int
	// Fig3P is the machine size of the per-PE breakdown figure.
	Fig3P int
	// Seed drives all workload generation and randomization.
	Seed uint64
}

// DefaultScale returns the standard scaled parameters: R = 12 runs,
// 32 blocks per run, P up to 64.
func DefaultScale() FigureScale {
	return FigureScale{
		MemElems:        8192,
		BlockBytes:      1024,
		SmallBlockBytes: 256,
		PerPE:           24576,
		PSweep:          []int{1, 2, 4, 8, 16, 32, 64},
		Fig3P:           32,
		Seed:            2009,
	}
}

// scaledModel calibrates the cost model to the scaled block size: the
// paper's 8 MiB blocks pay ~8 ms seek against ~30 ms transfer, so the
// scaled per-block seek keeps that 0.27 ratio. Without this, tiny
// blocks would be entirely seek-bound and every figure's shape would
// collapse.
func scaledModel(blockBytes int) vtime.CostModel {
	m := vtime.Default()
	transfer := float64(blockBytes) / (m.DiskBandwidth * float64(m.DisksPerNode))
	m.DiskSeek = 0.27 * transfer
	// Fixed per-message latency must shrink with the data scale too,
	// or it would dominate the (scaled-down) transfer times in a way
	// it does not at paper scale.
	m.NetLatency *= float64(blockBytes) / float64(8<<20)
	return m
}

func (s FigureScale) options(p, blockBytes int, randomize bool) Options {
	opts := NewOptions(p, s.MemElems, blockBytes)
	opts.Model = scaledModel(blockBytes)
	opts.Randomize = randomize
	opts.Seed = s.Seed
	// The in-memory sample is N/K elements on every PE and N grows
	// with P (weak scaling), so K must grow alongside — the same
	// pressure the paper's footnote 12 notes for its block count.
	// (At our scale m/B is 16x smaller than the paper's, so it binds
	// much earlier.)
	opts.SampleK = int64(blockBytes / 16)
	if k := int64(32 * p); k > opts.SampleK {
		opts.SampleK = k
	}
	return opts
}

// runCanonical sorts one scaled workload and returns the result.
func (s FigureScale) runCanonical(p, blockBytes int, kind workload.Kind, randomize bool) (*Result[KV16], error) {
	input := workload.Generate(kind, p, s.PerPE, s.Seed)
	return Sort[KV16](KV16Codec{}, s.options(p, blockBytes, randomize), input)
}

// Fig2 reproduces Figure 2: per-phase running times for random input,
// weak scaling over the P sweep.
func Fig2(s FigureScale) (*Figure, error) {
	f := &Figure{Title: "Fig 2: running times, random input (per phase)", XLabel: "P", YLabel: "modelled time [s]"}
	for _, p := range s.PSweep {
		res, err := s.runCanonical(p, s.BlockBytes, workload.Uniform, true)
		if err != nil {
			return nil, fmt.Errorf("fig2 P=%d: %w", p, err)
		}
		for _, ph := range res.PhaseNames {
			f.Add(ph, float64(p), res.MaxWall(ph))
		}
		f.Add("total", float64(p), res.TotalWall())
	}
	return f, nil
}

// Fig3 reproduces Figure 3: per-PE wall-clock and I/O time of every
// phase on one machine size (disk-speed spread shows as variance).
func Fig3(s FigureScale) (*Figure, error) {
	f := &Figure{Title: fmt.Sprintf("Fig 3: per-PE phase times, %d nodes, random input", s.Fig3P),
		XLabel: "PE", YLabel: "modelled time [s]"}
	res, err := s.runCanonical(s.Fig3P, s.BlockBytes, workload.Uniform, true)
	if err != nil {
		return nil, err
	}
	for rank, stats := range res.PerPE {
		for _, ph := range res.PhaseNames {
			st := stats[ph]
			f.Add(ph+", wall clock", float64(rank), st.Wall)
			f.Add(ph+", IO", float64(rank), st.IOTime)
		}
	}
	return f, nil
}

// Fig4 reproduces Figure 4: worst-case input *with* randomization.
func Fig4(s FigureScale) (*Figure, error) {
	f := &Figure{Title: "Fig 4: running times, worst-case input with randomization", XLabel: "P", YLabel: "modelled time [s]"}
	for _, p := range s.PSweep {
		res, err := s.runCanonical(p, s.BlockBytes, workload.WorstCaseLocal, true)
		if err != nil {
			return nil, fmt.Errorf("fig4 P=%d: %w", p, err)
		}
		for _, ph := range res.PhaseNames {
			f.Add(ph, float64(p), res.MaxWall(ph))
		}
		f.Add("total", float64(p), res.TotalWall())
	}
	return f, nil
}

// Fig5 reproduces Figure 5: all-to-all I/O volume divided by N for the
// four input/parameter combinations, on a log axis.
func Fig5(s FigureScale) (*Figure, error) {
	f := &Figure{Title: "Fig 5: I/O volume of the all-to-all phase / N", XLabel: "P",
		YLabel: "exchange I/O / N", LogY: true}
	type curve struct {
		name      string
		kind      workload.Kind
		randomize bool
		block     int
	}
	curves := []curve{
		{"worst-case input, non-randomized", workload.WorstCaseLocal, false, s.BlockBytes},
		{fmt.Sprintf("worst-case input, randomized, B=%dB", s.BlockBytes), workload.WorstCaseLocal, true, s.BlockBytes},
		{fmt.Sprintf("worst-case input, randomized, B=%dB", s.SmallBlockBytes), workload.WorstCaseLocal, true, s.SmallBlockBytes},
		{"random input", workload.Uniform, true, s.BlockBytes},
	}
	for _, cv := range curves {
		for _, p := range s.PSweep {
			res, err := s.runCanonical(p, cv.block, cv.kind, cv.randomize)
			if err != nil {
				return nil, fmt.Errorf("fig5 %s P=%d: %w", cv.name, p, err)
			}
			read, written := res.PhaseBytes(core.PhaseExchange)
			ratio := float64(read+written) / float64(res.N*int64(res.ElemSize))
			if ratio <= 0 {
				ratio = 1e-4 // log-axis floor for zero-I/O points
			}
			f.Add(cv.name, float64(p), ratio)
		}
	}
	return f, nil
}

// Fig6 reproduces Figure 6: worst-case input *without* randomization —
// the all-to-all penalty of up to ~50%.
func Fig6(s FigureScale) (*Figure, error) {
	f := &Figure{Title: "Fig 6: running times, worst-case input without randomization", XLabel: "P", YLabel: "modelled time [s]"}
	for _, p := range s.PSweep {
		res, err := s.runCanonical(p, s.BlockBytes, workload.WorstCaseLocal, false)
		if err != nil {
			return nil, fmt.Errorf("fig6 P=%d: %w", p, err)
		}
		for _, ph := range res.PhaseNames {
			f.Add(ph, float64(p), res.MaxWall(ph))
		}
		f.Add("total", float64(p), res.TotalWall())
	}
	return f, nil
}

// SortBenchTable reproduces the Section VI SortBenchmark comparison at
// scale: 100-byte records, the three systems head to head on one
// machine, reporting modelled sorted GB/min and the relative factors
// (the paper reports absolute records against other teams' machines;
// the reproduction compares algorithms on identical hardware).
func SortBenchTable(s FigureScale) (*Table, error) {
	const p = 8
	memElems := int64(32768)
	blockBytes := 100 * 32
	perPE := int64(65536)
	model := scaledModel(blockBytes)

	input := make([][]Rec100, p)
	for pe := 0; pe < p; pe++ {
		input[pe] = sortbench.Generate(s.Seed, int64(pe)*perPE, perPE)
	}
	nBytes := float64(int64(p) * perPE * 100)
	gbMin := func(wall float64) string {
		return fmt.Sprintf("%.1f", nBytes/1e9/(wall/60))
	}

	tbl := &Table{
		Title:   "SortBenchmark-style comparison (scaled GraySort regime, identical machine)",
		Headers: []string{"system", "passes (I/O)", "comm/N", "modelled time [s]", "modelled GB/min", "exact partition"},
	}

	copts := NewOptions(p, memElems, blockBytes)
	copts.Model = model
	copts.Seed = s.Seed
	copts.SampleK = 512
	cres, err := Sort[Rec100](Rec100Codec{}, copts, input)
	if err != nil {
		return nil, fmt.Errorf("sortbench canonical: %w", err)
	}
	var cio, cnet int64
	for _, ph := range cres.PhaseNames {
		r, w := cres.PhaseBytes(ph)
		cio += r + w
		cnet += cres.NetBytes(ph)
	}
	tbl.AddRow("CanonicalMergeSort (this paper)",
		fmt.Sprintf("%.2f", float64(cio)/nBytes/2),
		fmt.Sprintf("%.2f", float64(cnet)/nBytes),
		fmt.Sprintf("%.3f", cres.TotalWall()), gbMin(cres.TotalWall()), "yes")

	sopts := NewStripedOptions(p, memElems, blockBytes)
	sopts.Model = model
	sopts.Seed = s.Seed
	sres, err := SortStriped[Rec100](Rec100Codec{}, sopts, input)
	if err != nil {
		return nil, fmt.Errorf("sortbench striped: %w", err)
	}
	var sio, snet int64
	for _, ph := range sres.PhaseNames {
		r, w := sres.PhaseBytes(ph)
		sio += r + w
		snet += sres.NetBytes(ph)
	}
	tbl.AddRow("Globally striped mergesort (Sec. III)",
		fmt.Sprintf("%.2f", float64(sio)/nBytes/2),
		fmt.Sprintf("%.2f", float64(snet)/nBytes),
		fmt.Sprintf("%.3f", sres.TotalWall()), gbMin(sres.TotalWall()), "striped")

	bopts := baseline.DefaultConfig(p, memElems, blockBytes)
	bopts.Model = model
	bopts.Seed = s.Seed
	bres, err := baseline.SampleSort[Rec100](Rec100Codec{}, bopts, input)
	if err != nil {
		return nil, fmt.Errorf("sortbench baseline: %w", err)
	}
	tbl.AddRow("Sample sort (NOW-Sort style)",
		"2.00",
		"~1",
		fmt.Sprintf("%.3f", bres.TotalWall()), gbMin(bres.TotalWall()),
		fmt.Sprintf("no (imbalance %.2f)", bres.Imbalance()))

	// MinuteSort regime: input below one run, the N < M fast path
	// ("for the results mentioned so far, N < M ... only 2 I/Os per
	// block of elements are needed").
	mPerPE := int64(3072)
	minput := make([][]Rec100, p)
	for pe := 0; pe < p; pe++ {
		minput[pe] = sortbench.Generate(s.Seed+1, int64(pe)*mPerPE, mPerPE)
	}
	mres, err := Sort[Rec100](Rec100Codec{}, copts, minput)
	if err != nil {
		return nil, fmt.Errorf("sortbench minutesort: %w", err)
	}
	mBytes := float64(int64(p) * mPerPE * 100)
	var mio int64
	for _, ph := range mres.PhaseNames {
		r, w := mres.PhaseBytes(ph)
		mio += r + w
	}
	tbl.AddRow("CanonicalMergeSort, N < M (MinuteSort regime)",
		fmt.Sprintf("%.2f", float64(mio)/mBytes/2),
		"~1",
		fmt.Sprintf("%.3f", mres.TotalWall()),
		fmt.Sprintf("%.1f", mBytes/1e9/(mres.TotalWall()/60)), "yes")
	return tbl, nil
}

// CapacityTable evaluates the §IV-D capacity discussion with the
// paper's real machine parameters: how much data each algorithm can
// sort in two passes.
func CapacityTable() *Table {
	tbl := &Table{
		Title:   "Two-pass capacity (paper machine: m = 16 GiB/node, B = 8 MiB, 16-byte elements)",
		Headers: []string{"P", "canonical (per PE)", "canonical (total)", "striped (total = M^2/B bound)"},
	}
	const elemSize = 16
	m := int64(16) << 30 / elemSize // elements per node
	b := int64(8) << 20 / elemSize
	for _, p := range []int{1, 16, 195, 1024} {
		cfg := NewOptions(p, m, 8<<20)
		perPE := cfg.MaxElemsPerPE(elemSize)
		striped := (int64(p) * m / 2) * (int64(p) * m / (4 * b)) // runSize · maxRuns
		tbl.AddRow(
			fmt.Sprintf("%d", p),
			fmtBytes(perPE*elemSize),
			fmtBytes(perPE*elemSize*int64(p)),
			fmtBytes(striped*elemSize),
		)
	}
	return tbl
}

func fmtBytes(b int64) string {
	const unit = 1024
	suffixes := []string{"B", "KiB", "MiB", "GiB", "TiB", "PiB", "EiB"}
	f := float64(b)
	i := 0
	for f >= unit && i < len(suffixes)-1 {
		f /= unit
		i++
	}
	return fmt.Sprintf("%.1f %s", f, suffixes[i])
}

// AblationBlockSize sweeps the block size on worst-case randomized
// input: Appendix C predicts the redistribution overhead grows like
// √B ("the reorganization overhead grows with the square-root of B").
func AblationBlockSize(s FigureScale) (*Figure, error) {
	f := &Figure{Title: "Ablation: exchange I/O vs block size (worst case, randomized)",
		XLabel: "B [bytes]", YLabel: "exchange I/O / N", LogY: true}
	const p = 16
	for _, bb := range []int{256, 512, 1024, 2048} {
		res, err := s.runCanonical(p, bb, workload.WorstCaseLocal, true)
		if err != nil {
			return nil, err
		}
		read, written := res.PhaseBytes(core.PhaseExchange)
		f.Add("exchange I/O / N", float64(bb), float64(read+written)/float64(res.N*int64(res.ElemSize)))
	}
	return f, nil
}

// AblationOverlap measures §IV-E overlapping: run-formation wall time
// with and without asynchronous I/O.
func AblationOverlap(s FigureScale) (*Figure, error) {
	f := &Figure{Title: "Ablation: I/O overlap on/off", XLabel: "P", YLabel: "modelled total time [s]"}
	for _, p := range []int{4, 16} {
		for _, overlap := range []bool{true, false} {
			opts := s.options(p, s.BlockBytes, true)
			opts.Overlap = overlap
			input := workload.Generate(workload.Uniform, p, s.PerPE, s.Seed)
			res, err := Sort[KV16](KV16Codec{}, opts, input)
			if err != nil {
				return nil, err
			}
			name := "overlap on"
			if !overlap {
				name = "overlap off"
			}
			f.Add(name, float64(p), res.TotalWall())
		}
	}
	return f, nil
}

// OverlapRatios reports the per-phase overlap ratio (1 − blocked/wall)
// of the pipelined sort at two machine sizes, with the overlap-off run
// alongside as the floor. It exists primarily for BENCH.json: archiving
// the ratios per PR lets benchdiff flag a regression where a phase
// silently falls back to lock-step operation even when its wall time
// still looks plausible.
func OverlapRatios(s FigureScale) (*Figure, error) {
	f := &Figure{Title: "Overlap ratio per phase (1 - blocked/wall)", XLabel: "P", YLabel: "overlap ratio"}
	for _, p := range []int{4, 16} {
		for _, overlap := range []bool{true, false} {
			opts := s.options(p, s.BlockBytes, true)
			opts.Overlap = overlap
			input := workload.Generate(workload.Uniform, p, s.PerPE, s.Seed)
			res, err := Sort[KV16](KV16Codec{}, opts, input)
			if err != nil {
				return nil, fmt.Errorf("overlap ratios P=%d overlap=%v: %w", p, overlap, err)
			}
			suffix := ", overlap on"
			if !overlap {
				suffix = ", overlap off"
			}
			for _, ph := range res.PhaseNames {
				f.Add(ph+suffix, float64(p), res.OverlapRatio(ph))
			}
		}
	}
	return f, nil
}

// AblationSampleK sweeps the sampling distance K: selection time stays
// negligible across a wide K range (§IV-A's optimisations).
func AblationSampleK(s FigureScale) (*Figure, error) {
	f := &Figure{Title: "Ablation: multiway selection time vs sample distance K",
		XLabel: "K [elements]", YLabel: "selection wall [s]", LogY: true}
	const p = 16
	for _, k := range []int64{512, 1024, 2048, 4096} {
		opts := s.options(p, s.BlockBytes, true)
		opts.SampleK = k
		input := workload.Generate(workload.Uniform, p, s.PerPE, s.Seed)
		res, err := Sort[KV16](KV16Codec{}, opts, input)
		if err != nil {
			return nil, err
		}
		f.Add("selection", float64(k), res.MaxWall(core.PhaseSelection))
		f.Add("run formation (reference)", float64(k), res.MaxWall(core.PhaseRunForm))
	}
	return f, nil
}

// StripedPhases regenerates the per-phase timings of the globally
// striped mergesort (the Section III counterpart of Figure 2) on a
// reduced P sweep. It exists primarily for BENCH.json: archiving the
// striped phase walls per PR lets benchdiff flag striped regressions
// alongside the canonical ones.
func StripedPhases(s FigureScale) (*Figure, error) {
	f := &Figure{Title: "Striped mergesort (Sec. III): running times per phase", XLabel: "P", YLabel: "modelled time [s]"}
	// Smaller input than the canonical scaling figures: the striped
	// algorithm additionally holds the full prediction table in every
	// PE's memory (footnote 12), like AblationStripedVsCanonical.
	perPE := 16384
	for _, p := range []int{1, 4, 16} {
		opts := NewStripedOptions(p, s.MemElems, s.BlockBytes)
		opts.Model = scaledModel(s.BlockBytes)
		opts.Seed = s.Seed
		input := workload.Generate(workload.Uniform, p, perPE, s.Seed)
		res, err := SortStriped[KV16](KV16Codec{}, opts, input)
		if err != nil {
			return nil, fmt.Errorf("striped phases P=%d: %w", p, err)
		}
		for _, ph := range res.PhaseNames {
			f.Add(ph, float64(p), res.MaxWall(ph))
		}
		f.Add("total", float64(p), res.TotalWall())
	}
	return f, nil
}

// AblationStripedVsCanonical compares the two algorithms of the paper
// head to head (Sections III vs IV): I/O volume, communication volume
// and modelled time on the same machine and inputs.
func AblationStripedVsCanonical(s FigureScale) (*Table, error) {
	const p = 16
	// Smaller input than the scaling figures: the striped algorithm
	// additionally keeps the full prediction table (N/B entries) in
	// every PE's memory (the paper's footnote 12 pressure), and the
	// comparison runs both systems on the identical machine.
	perPE := 16384
	tbl := &Table{
		Title:   "Canonical (Sec. IV) vs globally striped (Sec. III), P=16",
		Headers: []string{"input", "system", "I/O / N", "comm / N", "modelled time [s]"},
	}
	for _, kind := range []workload.Kind{workload.Uniform, workload.WorstCaseLocal} {
		input := workload.Generate(kind, p, perPE, s.Seed)
		nBytes := float64(int64(p) * int64(perPE) * 16)

		cres, err := Sort[KV16](KV16Codec{}, s.options(p, s.BlockBytes, true), input)
		if err != nil {
			return nil, err
		}
		var cio, cnet int64
		for _, ph := range cres.PhaseNames {
			r, w := cres.PhaseBytes(ph)
			cio += r + w
			cnet += cres.NetBytes(ph)
		}
		tbl.AddRow(string(kind), "canonical",
			fmt.Sprintf("%.2f", float64(cio)/nBytes),
			fmt.Sprintf("%.2f", float64(cnet)/nBytes),
			fmt.Sprintf("%.4f", cres.TotalWall()))

		sopts := NewStripedOptions(p, s.MemElems, s.BlockBytes)
		sopts.Model = scaledModel(s.BlockBytes)
		sopts.Seed = s.Seed
		sres, err := SortStriped[KV16](KV16Codec{}, sopts, input)
		if err != nil {
			return nil, err
		}
		var sio, snet int64
		for _, ph := range sres.PhaseNames {
			r, w := sres.PhaseBytes(ph)
			sio += r + w
			snet += sres.NetBytes(ph)
		}
		tbl.AddRow(string(kind), "striped",
			fmt.Sprintf("%.2f", float64(sio)/nBytes),
			fmt.Sprintf("%.2f", float64(snet)/nBytes),
			fmt.Sprintf("%.4f", sres.TotalWall()))
	}
	return tbl, nil
}

// AblationPrefetch compares the Appendix A prefetching schedules:
// greedy prediction order vs the optimal duality algorithm, on bursty
// block placements with varying buffer pools.
func AblationPrefetch() (*Figure, error) {
	f := &Figure{Title: "Ablation (App. A): prefetch schedule length, bursty placement, D=8 disks",
		XLabel: "prefetch buffers", YLabel: "parallel I/O steps"}
	const d = 8
	const n = 4096
	disks := make([]int, n)
	// Bursty adversarial placement.
	seedState := uint64(0x2009)
	next := func(mod int) int {
		seedState = seedState*6364136223846793005 + 1442695040888963407
		return int((seedState >> 33) % uint64(mod))
	}
	for i := 0; i < n; {
		disk := next(d)
		l := 1 + next(12)
		for j := 0; j < l && i < n; j++ {
			disks[i] = disk
			i++
		}
	}
	lb := 0
	perDisk := make([]int, d)
	for _, q := range disks {
		perDisk[q]++
		if perDisk[q] > lb {
			lb = perDisk[q]
		}
	}
	for _, w := range []int{d, 2 * d, 4 * d, 8 * d} {
		naive := prefetch.Naive(disks, d, w)
		dual := prefetch.Duality(disks, d, w)
		f.Add("naive (prediction order)", float64(w), float64(naive.NumSteps()))
		f.Add("optimal (duality)", float64(w), float64(dual.NumSteps()))
		f.Add("lower bound (max per-disk)", float64(w), float64(lb))
	}
	return f, nil
}

// RunFormScaling measures the in-node parallel radix sorts that run
// formation dispatches to, on the host: both engines (shared-histogram
// LSD scatter, in-place American-flag MSD) over worker counts 1–8 on
// 1M elements of each keyed codec, reporting wall seconds and speedup
// over the same engine at one worker. Unlike the other figures these
// are real host measurements, not modelled times — BENCH.json archives
// the curve per PR so benchdiff catches a parallel-sort regression
// even when the modelled phase times (which charge a fixed SortCPU)
// stay flat. On a 1-core host the curves honestly show the
// coordination overhead instead of speedup; read them against
// num_cpu in the same document.
func RunFormScaling(s FigureScale) (*Figure, error) {
	f := &Figure{Title: "Run-formation in-node sort: host-measured scaling, 1M elements",
		XLabel: "workers", YLabel: "host time [s]"}
	const n = 1 << 20
	const reps = 3
	workers := []int{1, 2, 4, 8}
	paths := []psort.Path{psort.PathLSD, psort.PathMSD}

	measure := func(prep, sort func()) float64 {
		best := 0.0
		for r := 0; r < reps; r++ {
			prep()
			start := time.Now() //lint:allow wallclock host benchmark figure: measures the real parallel sort, not simulated phases
			sort()
			el := time.Since(start).Seconds() //lint:allow wallclock host benchmark figure: measures the real parallel sort, not simulated phases
			if best == 0 || el < best {
				best = el
			}
		}
		return best
	}
	record := func(series string, w int, t, t1 float64) {
		f.Add(series, float64(w), t)
		f.Add(series+", speedup", float64(w), t1/t)
	}
	kv := workload.Generate(workload.Uniform, 1, n, s.Seed)[0]
	kvDst := make([]KV16, n)
	rec := sortbench.Generate(s.Seed, 0, n)
	recDst := make([]Rec100, n)
	for _, path := range paths {
		var t1 float64
		for _, w := range workers {
			t := measure(func() { copy(kvDst, kv) },
				func() { psort.SortPath[KV16](KV16Codec{}, kvDst, w, path) })
			if w == 1 {
				t1 = t
			}
			record(fmt.Sprintf("KV16 1M, %s", path), w, t, t1)
		}
	}
	for _, path := range paths {
		var t1 float64
		for _, w := range workers {
			t := measure(func() { copy(recDst, rec) },
				func() { psort.SortPath[Rec100](Rec100Codec{}, recDst, w, path) })
			if w == 1 {
				t1 = t
			}
			record(fmt.Sprintf("Rec100 1M, %s", path), w, t, t1)
		}
	}
	return f, nil
}

// baselineSkewFigure (supporting §II): sample sort collapses on skew,
// canonical does not.
func BaselineSkewTable(s FigureScale) (*Table, error) {
	const p = 8
	tbl := &Table{
		Title:   "Exact splitting vs sampled splitters under skew (P=8)",
		Headers: []string{"input", "system", "max part / ideal", "modelled time [s]"},
	}
	for _, kind := range []workload.Kind{workload.Uniform, workload.HotKey} {
		input := workload.Generate(kind, p, s.PerPE, s.Seed)
		cres, err := Sort[KV16](KV16Codec{}, s.options(p, s.BlockBytes, true), input)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(string(kind), "canonical", "1.00 (exact)", fmt.Sprintf("%.4f", cres.TotalWall()))

		bopts := baseline.DefaultConfig(p, s.MemElems, s.BlockBytes)
		bopts.Model = scaledModel(s.BlockBytes)
		bopts.Seed = s.Seed
		bres, err := baseline.SampleSort[KV16](KV16Codec{}, bopts, input)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(string(kind), "sample sort",
			fmt.Sprintf("%.2f", bres.Imbalance()),
			fmt.Sprintf("%.4f", bres.TotalWall()))
	}
	return tbl, nil
}

var _ = elem.U64Codec{} // elem is referenced through type aliases above
