// Benchmarks regenerating every figure and table of the paper's
// evaluation (run `go test -bench=. -benchmem`, or `cmd/benchfig` for
// TSV/ASCII artefacts), plus end-to-end sorting throughput benches.
package demsort_test

import (
	"fmt"
	"testing"

	demsort "demsort"
	"demsort/internal/baseline"
	"demsort/internal/psort"
	"demsort/internal/sortbench"
	"demsort/internal/workload"
)

var benchSink any

// BenchmarkFig2 regenerates Figure 2 (per-phase times, random input,
// weak scaling P = 1..64).
func BenchmarkFig2(b *testing.B) {
	s := demsort.DefaultScale()
	for i := 0; i < b.N; i++ {
		f, err := demsort.Fig2(s)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = f
	}
}

// BenchmarkFig3 regenerates Figure 3 (per-PE wall vs I/O time, 32 nodes).
func BenchmarkFig3(b *testing.B) {
	s := demsort.DefaultScale()
	for i := 0; i < b.N; i++ {
		f, err := demsort.Fig3(s)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = f
	}
}

// BenchmarkFig4 regenerates Figure 4 (worst case with randomization).
func BenchmarkFig4(b *testing.B) {
	s := demsort.DefaultScale()
	for i := 0; i < b.N; i++ {
		f, err := demsort.Fig4(s)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = f
	}
}

// BenchmarkFig5 regenerates Figure 5 (all-to-all I/O volume ratios).
func BenchmarkFig5(b *testing.B) {
	s := demsort.DefaultScale()
	for i := 0; i < b.N; i++ {
		f, err := demsort.Fig5(s)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = f
	}
}

// BenchmarkFig6 regenerates Figure 6 (worst case without randomization).
func BenchmarkFig6(b *testing.B) {
	s := demsort.DefaultScale()
	for i := 0; i < b.N; i++ {
		f, err := demsort.Fig6(s)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = f
	}
}

// BenchmarkSortBenchTable regenerates the §VI SortBenchmark comparison.
func BenchmarkSortBenchTable(b *testing.B) {
	s := demsort.DefaultScale()
	for i := 0; i < b.N; i++ {
		t, err := demsort.SortBenchTable(s)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = t
	}
}

// BenchmarkCapacityTable evaluates the §IV-D capacity bounds.
func BenchmarkCapacityTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = demsort.CapacityTable()
	}
}

// BenchmarkAblationBlockSize sweeps B (Appendix C's √B law).
func BenchmarkAblationBlockSize(b *testing.B) {
	s := demsort.DefaultScale()
	for i := 0; i < b.N; i++ {
		f, err := demsort.AblationBlockSize(s)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = f
	}
}

// BenchmarkAblationOverlap toggles §IV-E I/O overlapping.
func BenchmarkAblationOverlap(b *testing.B) {
	s := demsort.DefaultScale()
	for i := 0; i < b.N; i++ {
		f, err := demsort.AblationOverlap(s)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = f
	}
}

// BenchmarkAblationSampleK sweeps the sampling distance K (§IV-A).
func BenchmarkAblationSampleK(b *testing.B) {
	s := demsort.DefaultScale()
	for i := 0; i < b.N; i++ {
		f, err := demsort.AblationSampleK(s)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = f
	}
}

// BenchmarkAblationStripedVsCanonical compares Sections III and IV.
func BenchmarkAblationStripedVsCanonical(b *testing.B) {
	s := demsort.DefaultScale()
	for i := 0; i < b.N; i++ {
		t, err := demsort.AblationStripedVsCanonical(s)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = t
	}
}

// BenchmarkAblationPrefetch compares Appendix A's prefetch schedules.
func BenchmarkAblationPrefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := demsort.AblationPrefetch()
		if err != nil {
			b.Fatal(err)
		}
		benchSink = f
	}
}

// BenchmarkBaselineSkewTable regenerates the §II skew comparison.
func BenchmarkBaselineSkewTable(b *testing.B) {
	s := demsort.DefaultScale()
	for i := 0; i < b.N; i++ {
		t, err := demsort.BaselineSkewTable(s)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = t
	}
}

// BenchmarkSortCanonical measures end-to-end host throughput of the
// simulated sort for several machine sizes.
func BenchmarkSortCanonical(b *testing.B) {
	for _, p := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("P%d", p), func(b *testing.B) {
			input := workload.Generate(workload.Uniform, p, 24576, 7)
			opts := demsort.NewOptions(p, 8192, 1024)
			b.SetBytes(int64(p) * 24576 * 16)
			b.ReportAllocs() // allocation regression gate for the zero-copy data plane
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := demsort.Sort[demsort.KV16](demsort.KV16Codec{}, opts, input)
				if err != nil {
					b.Fatal(err)
				}
				benchSink = res
			}
		})
	}
}

// BenchmarkSortStriped measures the Section III algorithm end to end.
// The input per PE is smaller than the canonical bench's because the
// striped algorithm additionally holds the full prediction table
// (N/B entries) in every PE's memory budget.
func BenchmarkSortStriped(b *testing.B) {
	for _, p := range []int{4, 16} {
		b.Run(fmt.Sprintf("P%d", p), func(b *testing.B) {
			input := workload.Generate(workload.Uniform, p, 16384, 7)
			opts := demsort.NewStripedOptions(p, 8192, 1024)
			b.SetBytes(int64(p) * 16384 * 16)
			b.ReportAllocs() // allocation regression gate for the zero-copy data plane
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := demsort.SortStriped[demsort.KV16](demsort.KV16Codec{}, opts, input)
				if err != nil {
					b.Fatal(err)
				}
				benchSink = res
			}
		})
	}
}

// BenchmarkRunFormationScaling measures the in-node parallel radix
// sorts run formation dispatches to: both engines (shared-histogram
// LSD scatter, in-place American-flag MSD) at worker counts 1–8 on 1M
// elements of each keyed codec. SetBytes reports sort throughput; the
// copy restoring the unsorted input is excluded via timer stops.
func BenchmarkRunFormationScaling(b *testing.B) {
	const n = 1 << 20
	kv := workload.Generate(workload.Uniform, 1, n, 7)[0]
	rec := sortbench.Generate(7, 0, n)
	kvDst := make([]demsort.KV16, n)
	recDst := make([]demsort.Rec100, n)
	for _, path := range []psort.Path{psort.PathLSD, psort.PathMSD} {
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("KV16/%s/w%d", path, w), func(b *testing.B) {
				b.SetBytes(n * 16)
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					copy(kvDst, kv)
					b.StartTimer()
					psort.SortPath[demsort.KV16](demsort.KV16Codec{}, kvDst, w, path)
				}
				benchSink = kvDst
			})
			b.Run(fmt.Sprintf("Rec100/%s/w%d", path, w), func(b *testing.B) {
				b.SetBytes(n * 100)
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					copy(recDst, rec)
					b.StartTimer()
					psort.SortPath[demsort.Rec100](demsort.Rec100Codec{}, recDst, w, path)
				}
				benchSink = recDst
			})
		}
	}
}

// BenchmarkSampleSortBaseline measures the NOW-Sort-style baseline.
func BenchmarkSampleSortBaseline(b *testing.B) {
	input := workload.Generate(workload.Uniform, 8, 24576, 7)
	cfg := baseline.DefaultConfig(8, 8192, 1024)
	b.SetBytes(8 * 24576 * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := baseline.SampleSort[demsort.KV16](demsort.KV16Codec{}, cfg, input)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = res
	}
}
