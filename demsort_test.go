package demsort_test

import (
	"strings"
	"testing"

	demsort "demsort"
	"demsort/internal/workload"
)

// smallScale keeps the public-API figure tests fast.
func smallScale() demsort.FigureScale {
	s := demsort.DefaultScale()
	s.PSweep = []int{1, 2, 4}
	s.Fig3P = 4
	return s
}

func TestPublicSortRoundTrip(t *testing.T) {
	opts := demsort.NewOptions(4, 1<<13, 1024)
	opts.KeepOutput = true
	input := workload.Generate(workload.Uniform, 4, 6000, 1)
	res, err := demsort.Sort[demsort.KV16](demsort.KV16Codec{}, opts, input)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(demsort.KV16Codec{}, input); err != nil {
		t.Fatal(err)
	}
	if res.TotalWall() <= 0 {
		t.Fatal("no modelled time")
	}
}

func TestPublicSortStripedRoundTrip(t *testing.T) {
	opts := demsort.NewStripedOptions(4, 1<<13, 1024)
	opts.KeepOutput = true
	input := workload.Generate(workload.Uniform, 4, 6000, 2)
	res, err := demsort.SortStriped[demsort.KV16](demsort.KV16Codec{}, opts, input)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 4*6000 {
		t.Fatalf("N=%d", res.N)
	}
}

func TestPhasesListed(t *testing.T) {
	ph := demsort.Phases()
	if len(ph) != 4 || ph[0] != demsort.PhaseRunForm || ph[3] != demsort.PhaseMerge {
		t.Fatalf("phases: %v", ph)
	}
}

func TestFiguresProduceData(t *testing.T) {
	s := smallScale()
	type figFn struct {
		name string
		fn   func() (*demsort.Figure, error)
	}
	figs := []figFn{
		{"fig2", func() (*demsort.Figure, error) { return demsort.Fig2(s) }},
		{"fig3", func() (*demsort.Figure, error) { return demsort.Fig3(s) }},
		{"fig4", func() (*demsort.Figure, error) { return demsort.Fig4(s) }},
		{"fig5", func() (*demsort.Figure, error) { return demsort.Fig5(s) }},
		{"fig6", func() (*demsort.Figure, error) { return demsort.Fig6(s) }},
	}
	for _, fig := range figs {
		f, err := fig.fn()
		if err != nil {
			t.Fatalf("%s: %v", fig.name, err)
		}
		if len(f.Series) == 0 {
			t.Fatalf("%s: no series", fig.name)
		}
		var sb strings.Builder
		if err := f.WriteTSV(&sb); err != nil {
			t.Fatalf("%s: %v", fig.name, err)
		}
		if !strings.Contains(sb.String(), "\t") {
			t.Fatalf("%s: empty TSV", fig.name)
		}
	}
}

func TestFig5ShapeMatchesPaper(t *testing.T) {
	// The qualitative claims of Figure 5 at P=4: non-randomized worst
	// case exchanges (nearly) everything; randomization cuts it by a
	// large factor; smaller blocks cut it further; random input is
	// cheapest.
	s := smallScale()
	f, err := demsort.Fig5(s)
	if err != nil {
		t.Fatal(err)
	}
	at := func(series string) float64 {
		for _, sr := range f.Series {
			if strings.Contains(sr.Name, series) {
				for i, x := range sr.X {
					if x == 4 {
						return sr.Y[i]
					}
				}
			}
		}
		t.Fatalf("series %q not found", series)
		return 0
	}
	worst := at("non-randomized")
	randBig := at("randomized, B=1024")
	randSmall := at("randomized, B=256")
	random := at("random input")
	if !(worst > randBig && randBig > randSmall && randSmall >= random*0.5) {
		t.Errorf("fig5 ordering violated: worst=%.3f randB=%.3f randSmallB=%.3f random=%.3f",
			worst, randBig, randSmall, random)
	}
	if worst < 1 {
		t.Errorf("non-randomized worst case ratio %.3f, expected ~2", worst)
	}
}

func TestFig6ShowsWorstCasePenalty(t *testing.T) {
	// Figure 6 vs Figure 2: the non-randomized worst case costs extra
	// all-to-all time ("a penalty of up to 50% in running time").
	s := smallScale()
	f2, err := demsort.Fig2(s)
	if err != nil {
		t.Fatal(err)
	}
	f6, err := demsort.Fig6(s)
	if err != nil {
		t.Fatal(err)
	}
	total := func(f *demsort.Figure, p float64) float64 {
		for _, sr := range f.Series {
			if sr.Name == "total" {
				for i, x := range sr.X {
					if x == p {
						return sr.Y[i]
					}
				}
			}
		}
		t.Fatal("total series missing")
		return 0
	}
	if !(total(f6, 4) > 1.1*total(f2, 4)) {
		t.Errorf("worst case without randomization not slower: %.5f vs %.5f", total(f6, 4), total(f2, 4))
	}
}

func TestSortBenchAndCapacityTables(t *testing.T) {
	tbl, err := demsort.SortBenchTable(smallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 4 {
		t.Fatalf("sortbench rows: %d", len(tbl.Rows))
	}
	cap := demsort.CapacityTable()
	if len(cap.Rows) == 0 {
		t.Fatal("capacity table empty")
	}
	var sb strings.Builder
	cap.Write(&sb)
	if !strings.Contains(sb.String(), "GiB") && !strings.Contains(sb.String(), "TiB") {
		t.Fatalf("capacity table lacks sizes: %s", sb.String())
	}
}

func TestBaselineSkewTable(t *testing.T) {
	tbl, err := demsort.BaselineSkewTable(smallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
}

func TestAblations(t *testing.T) {
	s := smallScale()
	if _, err := demsort.AblationBlockSize(s); err != nil {
		t.Fatal(err)
	}
	if _, err := demsort.AblationOverlap(s); err != nil {
		t.Fatal(err)
	}
	if _, err := demsort.AblationSampleK(s); err != nil {
		t.Fatal(err)
	}
	if _, err := demsort.AblationStripedVsCanonical(s); err != nil {
		t.Fatal(err)
	}
	if _, err := demsort.AblationPrefetch(); err != nil {
		t.Fatal(err)
	}
}
