// Quickstart: sort 16-byte elements on a 4-node simulated cluster with
// CANONICALMERGESORT and print the per-phase breakdown.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	demsort "demsort"
)

func main() {
	const (
		p     = 4     // cluster nodes (PEs)
		perPE = 20000 // elements initially on each node's disks
	)

	// Each PE starts with its own slice of unsorted data, as if it had
	// been written to that node's local disks.
	rng := rand.New(rand.NewPCG(42, 7))
	input := make([][]demsort.KV16, p)
	for pe := range input {
		input[pe] = make([]demsort.KV16, perPE)
		for i := range input[pe] {
			input[pe][i] = demsort.KV16{Key: rng.Uint64(), Val: uint64(pe*perPE + i)}
		}
	}

	// 8192-element memory budget per PE and 1 KiB blocks: the input is
	// ~10x the run size, so this is a genuinely external sort.
	opts := demsort.NewOptions(p, 8192, 1024)
	opts.Model = demsort.ScaledModel(1024)
	opts.SampleK = 128 // keep the in-memory sample within the budget
	opts.KeepOutput = true

	res, err := demsort.Sort[demsort.KV16](demsort.KV16Codec{}, opts, input)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sorted %d elements in %d runs on %d PEs\n", res.N, res.Runs, res.P)
	for _, phase := range res.PhaseNames {
		fmt.Printf("  %-20s %8.4f modelled seconds\n", phase, res.MaxWall(phase))
	}

	// The output partition is canonical: PE i holds the elements of
	// global ranks (i·N/P, (i+1)·N/P], each part sorted on its disks.
	for pe, part := range res.Output {
		fmt.Printf("PE %d: %5d elements, first key %016x, last key %016x\n",
			pe, len(part), part[0].Key, part[len(part)-1].Key)
	}
	if err := res.Validate(demsort.KV16Codec{}, input); err != nil {
		log.Fatal(err)
	}
	fmt.Println("validation: OK")
}
