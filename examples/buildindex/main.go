// buildindex: the database motivation from the paper's introduction —
// "sorting ... can be used to build index data structures". Key-value
// records spread over the cluster's disks are sorted with
// CANONICALMERGESORT; because the output partition is exact and
// canonical, a two-level sparse index (top level: each PE's key range;
// bottom level: one fence key per block) can be built without any
// further data movement, and point lookups touch exactly one PE and
// one block.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"sort"

	demsort "demsort"
)

// fence is a bottom-level index entry: the smallest key of one block.
type fence struct {
	key   uint64
	block int
}

// peIndex is one PE's local index over its sorted partition.
type peIndex struct {
	firstKey uint64
	lastKey  uint64
	fences   []fence
	blocks   [][]demsort.KV16
}

func main() {
	const (
		p          = 4
		perPE      = 25000
		blockElems = 64
	)

	// The "table": random key-value pairs scattered over the nodes.
	rng := rand.New(rand.NewPCG(7, 7))
	input := make([][]demsort.KV16, p)
	for pe := range input {
		input[pe] = make([]demsort.KV16, perPE)
		for i := range input[pe] {
			input[pe][i] = demsort.KV16{Key: rng.Uint64N(1 << 48), Val: rng.Uint64()}
		}
	}

	opts := demsort.NewOptions(p, 8192, blockElems*16)
	opts.Model = demsort.ScaledModel(blockElems * 16)
	opts.SampleK = 128
	opts.KeepOutput = true
	res, err := demsort.Sort[demsort.KV16](demsort.KV16Codec{}, opts, input)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Validate(demsort.KV16Codec{}, input); err != nil {
		log.Fatal(err)
	}

	// Build the two-level sparse index directly from the canonical
	// partition: no repartitioning needed because the sort already
	// placed global ranks (i·N/P, (i+1)·N/P] on PE i.
	var idx []peIndex
	for _, part := range res.Output {
		pi := peIndex{firstKey: part[0].Key, lastKey: part[len(part)-1].Key}
		for off := 0; off < len(part); off += blockElems {
			hi := off + blockElems
			if hi > len(part) {
				hi = len(part)
			}
			pi.fences = append(pi.fences, fence{key: part[off].Key, block: len(pi.blocks)})
			pi.blocks = append(pi.blocks, part[off:hi])
		}
		idx = append(idx, pi)
	}
	fmt.Printf("index built: %d PEs, %d fence keys total\n", len(idx), func() int {
		n := 0
		for _, pi := range idx {
			n += len(pi.fences)
		}
		return n
	}())

	// Point lookups: top level picks the PE, fences pick the block,
	// binary search inside the block finds the record.
	lookup := func(key uint64) (demsort.KV16, bool) {
		pe := sort.Search(len(idx), func(i int) bool { return idx[i].lastKey >= key })
		if pe == len(idx) {
			return demsort.KV16{}, false
		}
		pi := idx[pe]
		b := sort.Search(len(pi.fences), func(i int) bool { return pi.fences[i].key > key })
		if b == 0 {
			return demsort.KV16{}, false
		}
		blk := pi.blocks[pi.fences[b-1].block]
		j := sort.Search(len(blk), func(i int) bool { return blk[i].Key >= key })
		if j < len(blk) && blk[j].Key == key {
			return blk[j], true
		}
		return demsort.KV16{}, false
	}

	// Query existing keys and some misses.
	hits, misses := 0, 0
	for i := 0; i < 1000; i++ {
		pe := int(rng.Uint64N(p))
		probe := input[pe][rng.Uint64N(perPE)]
		got, ok := lookup(probe.Key)
		if !ok {
			log.Fatalf("existing key %x not found", probe.Key)
		}
		if got.Key != probe.Key {
			log.Fatalf("lookup returned wrong record")
		}
		hits++
	}
	for i := 0; i < 1000; i++ {
		// Odd keys above 1<<48 were never generated.
		if _, ok := lookup(1<<60 | rng.Uint64N(1<<20)); !ok {
			misses++
		}
	}
	fmt.Printf("lookups: %d hits, %d clean misses\n", hits, misses)
	fmt.Println("OK: exact canonical partitioning made the index buildable without repartitioning")
}
