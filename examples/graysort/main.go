// GraySort example: the SortBenchmark workload of Section VI at
// laptop scale — 100-byte records with 10-byte keys, generated and
// validated with the gensort/valsort equivalents, sorted with
// CANONICALMERGESORT, reporting the sorted-GB-per-minute metric the
// benchmark uses. ("An in-place implementation sorts about 564 GB/min
// with 195 8-core nodes and 780 disks, leading the Indy GraySort
// category in 2009.")
package main

import (
	"fmt"
	"log"

	demsort "demsort"
	"demsort/internal/sortbench"
)

func main() {
	const (
		p     = 8
		perPE = 40000 // records per node
		seed  = 2009
	)

	// Generate the input shards (deterministic, tiled, like gensort -b)
	// and digest them for validation.
	input := make([][]demsort.Rec100, p)
	var inputSummaries []sortbench.Summary
	for pe := 0; pe < p; pe++ {
		input[pe] = sortbench.Generate(seed, int64(pe)*perPE, perPE)
		inputSummaries = append(inputSummaries, sortbench.Validate(input[pe]))
	}
	inputChecksum := sortbench.Merge(inputSummaries).Checksum

	// 100-byte records: a 3.2 KiB block holds 32 records; each node
	// gets a 32768-record memory budget.
	opts := demsort.NewOptions(p, 32768, 100*32)
	opts.Model = demsort.ScaledModel(100 * 32)
	opts.SampleK = 512
	opts.KeepOutput = true
	res, err := demsort.Sort[demsort.Rec100](demsort.Rec100Codec{}, opts, input)
	if err != nil {
		log.Fatal(err)
	}

	// valsort-style validation of the distributed output: each
	// partition individually plus the cross-partition boundaries.
	var outSummaries []sortbench.Summary
	for _, part := range res.Output {
		outSummaries = append(outSummaries, sortbench.Validate(part))
	}
	sum := sortbench.Merge(outSummaries)
	switch {
	case sum.Unsorted > 0:
		log.Fatalf("output not sorted: %d inversions", sum.Unsorted)
	case sum.Records != res.N:
		log.Fatalf("record count mismatch: %d vs %d", sum.Records, res.N)
	case sum.Checksum != inputChecksum:
		log.Fatal("checksum mismatch: output is not a permutation of the input")
	}

	bytes := float64(res.N) * 100
	fmt.Printf("GraySort-style run: %d records (%.1f MB) on %d PEs, R=%d runs\n",
		res.N, bytes/1e6, res.P, res.Runs)
	for _, phase := range res.PhaseNames {
		fmt.Printf("  %-20s %8.4f modelled seconds\n", phase, res.MaxWall(phase))
	}
	fmt.Printf("modelled rate: %.2f GB/min at this scaled machine size\n", bytes/1e9/(res.TotalWall()/60))
	fmt.Println("(the paper's record: 564 GB/min on 195 nodes with 780 disks)")
	fmt.Println("valsort: SORTED, checksum OK")
}
