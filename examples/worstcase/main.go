// worstcase: the randomization ablation of Figures 4-6 as a runnable
// demo. The same adversarial input (locally sorted data, so every
// non-randomized run covers a narrow key band) is sorted twice — with
// and without the random block shuffling of §IV — and the all-to-all
// I/O volume and modelled times are compared.
package main

import (
	"fmt"
	"log"

	demsort "demsort"
	"demsort/internal/workload"
)

func main() {
	const (
		p     = 8
		perPE = 24576
	)
	input := workload.Generate(workload.WorstCaseLocal, p, perPE, 99)
	nBytes := float64(p*perPE) * 16

	run := func(randomize bool) *demsort.Result[demsort.KV16] {
		opts := demsort.NewOptions(p, 8192, 1024)
		opts.Model = demsort.ScaledModel(1024)
		opts.SampleK = 256
		opts.Randomize = randomize
		opts.KeepOutput = true
		res, err := demsort.Sort[demsort.KV16](demsort.KV16Codec{}, opts, input)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Validate(demsort.KV16Codec{}, input); err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Println("worst-case input: locally sorted data on every PE")
	for _, randomize := range []bool{false, true} {
		res := run(randomize)
		read, written := res.PhaseBytes(demsort.PhaseExchange)
		label := "without randomization"
		if randomize {
			label = "with randomization   "
		}
		fmt.Printf("%s: all-to-all I/O = %.2fxN, total %.4fs modelled\n",
			label, float64(read+written)/nBytes, res.TotalWall())
	}
	fmt.Println()
	fmt.Println("randomizing which blocks form each run makes every run a random")
	fmt.Println("sample of the local input, so the exact splitters land close to")
	fmt.Println("the data's current location and almost nothing needs to move —")
	fmt.Println("the effect behind Figures 4 vs 6 and the curves of Figure 5.")
}
