// Package demsort is a Go reproduction of "Scalable Distributed-Memory
// External Sorting" (Rahn, Sanders, Singler; ICDE 2010) — the DEMSort
// system that led the 2009 Indy GraySort.
//
// The package sorts data that lives on the (simulated) local disks of a
// distributed-memory cluster. Two algorithms are provided:
//
//   - Sort — CANONICALMERGESORT (Section IV, the paper's primary
//     contribution): two I/O passes, data communicated ≈ once, output
//     in the canonical partition (PE i holds global ranks i·N/P …
//     (i+1)·N/P on its local disks);
//   - SortStriped — the globally striped mergesort (Section III):
//     exactly two I/O passes up to the theoretical M²/B input bound,
//     at the price of ~4 data communications and a striped output.
//
// The communication layer is a pluggable transport plane
// (internal/cluster): by default the machine is simulated in-process —
// correctness is real (elements genuinely move between per-PE address
// spaces and through block stores) while running times are modelled by
// a virtual-time cost model calibrated to the paper's testbed, so the
// evaluation figures can be regenerated at laptop scale. Setting
// Options.Machine to a cluster/tcp backend runs the same phase code on
// real processes with wall-clock timings (see cmd/demsort
// -transport=tcp). See README.md for the architecture sketch and
// bench_test.go for the figure and table harness.
//
// Quick start:
//
//	codec := demsort.KV16Codec{}
//	opts := demsort.NewOptions(4 /*PEs*/, 1<<13 /*mem elems/PE*/, 1024 /*block bytes*/)
//	opts.KeepOutput = true
//	res, err := demsort.Sort(codec, opts, input) // input: one slice per PE
package demsort

import (
	"demsort/internal/core"
	"demsort/internal/elem"
	"demsort/internal/stripesort"
	"demsort/internal/vtime"
)

// Codec describes a fixed-size sortable element type; see elem.Codec.
type Codec[T any] = elem.Codec[T]

// Element types of the paper's evaluation.
type (
	// U64 is an 8-byte self-keyed element.
	U64 = elem.U64
	// KV16 is the 16-byte element with a 64-bit key used in the
	// cluster scaling experiments (Figures 2-6).
	KV16 = elem.KV16
	// Rec100 is the 100-byte SortBenchmark record with a 10-byte key.
	Rec100 = elem.Rec100
)

// Codecs for the element types.
type (
	// U64Codec implements Codec[U64].
	U64Codec = elem.U64Codec
	// KV16Codec implements Codec[KV16].
	KV16Codec = elem.KV16Codec
	// Rec100Codec implements Codec[Rec100].
	Rec100Codec = elem.Rec100Codec
)

// Options configures a sort; it is core.Config re-exported.
type Options = core.Config

// StripedOptions configures the Section III algorithm.
type StripedOptions = stripesort.Config

// CheckpointOptions configures the durable checkpoint/restart plane
// (Options.Checkpoint); it is core.CheckpointConfig re-exported.
type CheckpointOptions = core.CheckpointConfig

// Result carries per-phase measurements and (optionally) the output.
type Result[T any] = core.Result[T]

// StripedResult is the Section III algorithm's result.
type StripedResult[T any] = stripesort.Result[T]

// CostModel re-exports the virtual-time machine model.
type CostModel = vtime.CostModel

// Phase names of CANONICALMERGESORT, in order.
const (
	PhaseRunForm   = core.PhaseRunForm
	PhaseSelection = core.PhaseSelection
	PhaseExchange  = core.PhaseExchange
	PhaseMerge     = core.PhaseMerge
)

// NewOptions returns ready-to-use options for p PEs, a per-PE memory
// budget of memElems elements and blockBytes-sized disk blocks.
func NewOptions(p int, memElems int64, blockBytes int) Options {
	return core.DefaultConfig(p, memElems, blockBytes)
}

// NewStripedOptions is NewOptions for SortStriped.
func NewStripedOptions(p int, memElems int64, blockBytes int) StripedOptions {
	return stripesort.DefaultConfig(p, memElems, blockBytes)
}

// DefaultModel returns the cost model calibrated to the paper's
// 200-node testbed (4×67 MiB/s disks, InfiniBand with congestion,
// 8 cores per node).
func DefaultModel() CostModel { return vtime.Default() }

// ScaledModel returns the cost model re-calibrated for scaled-down
// block sizes: per-block seek keeps the paper's 0.27 seek-to-transfer
// ratio and per-message latency shrinks with the data scale, so
// modelled times keep the paper's proportions at laptop-sized inputs.
func ScaledModel(blockBytes int) CostModel { return scaledModel(blockBytes) }

// Sort runs CANONICALMERGESORT: input[i] is PE i's on-disk data;
// afterwards PE i holds the elements of global ranks (i·N/P, (i+1)·N/P]
// sorted on its local disks. See core.Sort.
func Sort[T any](c Codec[T], opts Options, input [][]T) (*Result[T], error) {
	return core.Sort(c, opts, input)
}

// SortStriped runs the globally striped mergesort of Section III.
func SortStriped[T any](c Codec[T], opts StripedOptions, input [][]T) (*StripedResult[T], error) {
	return stripesort.Sort(c, opts, input)
}

// Phases lists the accounted phases of Sort in algorithm order.
func Phases() []string { return core.Phases() }
