// Command benchdiff compares two BENCH.json artefacts (written by
// benchfig -json) and flags phase-time regressions: any series point
// whose modelled time grew by more than -threshold percent against the
// baseline, plus large swings in the host wall-clock spent
// regenerating each artefact (reported, not flagged — host timing is
// noisy in CI).
//
// It prints a human-readable report and exits 0 by default so CI can
// wire it in as a non-blocking report; -strict exits 1 when
// regressions were flagged (for local gating).
//
// -lint-clean=false (wired from CI's lint-job result) declares the
// tree lint-dirty: benchdiff then refuses to compare and tells the
// caller to skip the BENCH.json upload, so a tree that violates the
// demsortvet contracts never contributes a point to the perf
// trajectory.
//
// Usage:
//
//	benchdiff [-threshold 5] [-strict] [-lint-clean=true] old/BENCH.json new/BENCH.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

// The subset of benchfig's -json document benchdiff consumes.
type series struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

type figure struct {
	Name       string   `json:"name"`
	ElapsedSec float64  `json:"elapsed_sec"`
	Series     []series `json:"series"`
}

type table struct {
	Name       string  `json:"name"`
	ElapsedSec float64 `json:"elapsed_sec"`
}

type doc struct {
	Figures []figure `json:"figures"`
	Tables  []table  `json:"tables"`
}

// regression is one flagged series point.
type regression struct {
	figure, series string
	x, oldY, newY  float64
}

// lintDirtyNotice is printed (and the comparison skipped) when the
// caller reports a failed lint gate; CI greps for it to suppress the
// BENCH.json artifact upload.
const lintDirtyNotice = "benchdiff: WARNING: lint gate failed; skipping comparison and BENCH.json upload for a lint-dirty tree"

// lintGateSkips implements the -lint-clean gate: on a lint-dirty tree
// it emits the notice and reports that the comparison must be skipped.
func lintGateSkips(lintClean bool, w io.Writer) bool {
	if lintClean {
		return false
	}
	fmt.Fprintln(w, lintDirtyNotice)
	return true
}

func main() {
	threshold := flag.Float64("threshold", 5, "regression threshold in percent")
	strict := flag.Bool("strict", false, "exit non-zero when regressions are flagged")
	lintClean := flag.Bool("lint-clean", true, "whether the lint gate passed; false skips the comparison and warns")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 5] [-strict] [-lint-clean=true] <old BENCH.json> <new BENCH.json>")
		os.Exit(2)
	}
	if lintGateSkips(*lintClean, os.Stdout) {
		return
	}
	oldDoc, err := load(flag.Arg(0))
	fail(err)
	newDoc, err := load(flag.Arg(1))
	fail(err)

	regs, improved, compared := diff(oldDoc, newDoc, *threshold)
	fmt.Printf("benchdiff: %s -> %s (threshold %.1f%%)\n", flag.Arg(0), flag.Arg(1), *threshold)
	fmt.Printf("compared %d series points; %d regressed, %d improved by more than the threshold\n",
		compared, len(regs), improved)
	for _, r := range regs {
		fmt.Printf("  REGRESSION %s/%s @ x=%g: %.4fs -> %.4fs (%+.1f%%)\n",
			r.figure, r.series, r.x, r.oldY, r.newY, pct(r.oldY, r.newY))
	}
	reportElapsed(oldDoc, newDoc)
	if len(regs) == 0 {
		fmt.Println("no phase-time regressions flagged")
	}
	if *strict && len(regs) > 0 {
		os.Exit(1)
	}
}

// diff flags series points regressing beyond thresholdPct; points are
// matched by (figure name, series name, x value), so re-ordered or
// added series never produce spurious flags.
func diff(oldDoc, newDoc *doc, thresholdPct float64) (regs []regression, improved, compared int) {
	type key struct {
		fig, ser string
		x        float64
	}
	base := map[key]float64{}
	for _, f := range oldDoc.Figures {
		for _, s := range f.Series {
			for i, x := range s.X {
				if i < len(s.Y) {
					base[key{f.Name, s.Name, x}] = s.Y[i]
				}
			}
		}
	}
	for _, f := range newDoc.Figures {
		for _, s := range f.Series {
			for i, x := range s.X {
				if i >= len(s.Y) {
					continue
				}
				oldY, ok := base[key{f.Name, s.Name, x}]
				if !ok || oldY <= 0 {
					continue
				}
				compared++
				change := pct(oldY, s.Y[i])
				switch {
				case change > thresholdPct:
					regs = append(regs, regression{figure: f.Name, series: s.Name, x: x, oldY: oldY, newY: s.Y[i]})
				case change < -thresholdPct:
					improved++
				}
			}
		}
	}
	return regs, improved, compared
}

// reportElapsed prints host wall-clock shifts per artefact
// (informational — CI hosts are too noisy to gate on).
func reportElapsed(oldDoc, newDoc *doc) {
	oldElapsed := map[string]float64{}
	for _, f := range oldDoc.Figures {
		oldElapsed["figure "+f.Name] = f.ElapsedSec
	}
	for _, t := range oldDoc.Tables {
		oldElapsed["table "+t.Name] = t.ElapsedSec
	}
	report := func(name string, sec float64) {
		if prev, ok := oldElapsed[name]; ok && prev > 0 {
			fmt.Printf("  host %-24s %.2fs -> %.2fs (%+.1f%%)\n", name, prev, sec, pct(prev, sec))
		}
	}
	for _, f := range newDoc.Figures {
		report("figure "+f.Name, f.ElapsedSec)
	}
	for _, t := range newDoc.Tables {
		report("table "+t.Name, t.ElapsedSec)
	}
}

func pct(oldY, newY float64) float64 { return (newY - oldY) / oldY * 100 }

func load(path string) (*doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d doc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("benchdiff: %s: %w", path, err)
	}
	return &d, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
