package main

import (
	"strings"
	"testing"
)

func TestLintGateSkipsDirtyTree(t *testing.T) {
	var out strings.Builder
	if !lintGateSkips(false, &out) {
		t.Fatal("lint-dirty tree must skip the comparison")
	}
	if !strings.Contains(out.String(), "skipping comparison and BENCH.json upload") {
		t.Fatalf("missing skip warning, got %q", out.String())
	}
	out.Reset()
	if lintGateSkips(true, &out) {
		t.Fatal("lint-clean tree must not skip")
	}
	if out.String() != "" {
		t.Fatalf("clean gate must be silent, got %q", out.String())
	}
}

func mkDoc(y1, y2 float64, elapsed float64) *doc {
	return &doc{
		Figures: []figure{{
			Name:       "fig2",
			ElapsedSec: elapsed,
			Series: []series{
				{Name: "run formation", X: []float64{2, 4}, Y: []float64{y1, y2}},
				{Name: "final merge", X: []float64{2, 4}, Y: []float64{1.0, 1.0}},
			},
		}},
	}
}

func TestDiffFlagsRegressionsOverThreshold(t *testing.T) {
	oldDoc := mkDoc(1.00, 2.00, 10)
	newDoc := mkDoc(1.04, 2.30, 11) // +4% (under), +15% (over)
	regs, improved, compared := diff(oldDoc, newDoc, 5)
	if compared != 4 {
		t.Fatalf("compared %d points, want 4", compared)
	}
	if len(regs) != 1 {
		t.Fatalf("flagged %d regressions, want 1: %+v", len(regs), regs)
	}
	r := regs[0]
	if r.figure != "fig2" || r.series != "run formation" || r.x != 4 {
		t.Fatalf("wrong point flagged: %+v", r)
	}
	if improved != 0 {
		t.Fatalf("improved = %d, want 0", improved)
	}
}

func TestDiffCountsImprovements(t *testing.T) {
	oldDoc := mkDoc(1.00, 2.00, 10)
	newDoc := mkDoc(0.80, 1.99, 9) // -20% (improved), -0.5% (noise)
	regs, improved, _ := diff(oldDoc, newDoc, 5)
	if len(regs) != 0 || improved != 1 {
		t.Fatalf("got %d regressions / %d improvements, want 0/1", len(regs), improved)
	}
}

func TestDiffIgnoresUnmatchedSeries(t *testing.T) {
	oldDoc := mkDoc(1, 1, 10)
	newDoc := &doc{Figures: []figure{{
		Name:   "fig2",
		Series: []series{{Name: "brand new series", X: []float64{2}, Y: []float64{99}}},
	}}}
	regs, _, compared := diff(oldDoc, newDoc, 5)
	if len(regs) != 0 || compared != 0 {
		t.Fatalf("unmatched series must not be compared: %d regs, %d compared", len(regs), compared)
	}
}
