// The cmd/go vet-tool protocol, reimplemented on the stdlib (the
// canonical implementation lives in golang.org/x/tools/go/analysis/
// unitchecker, which this module deliberately does not depend on):
// cmd/go invokes the tool once per package with the path to a JSON
// config naming the unit's files and the export data of every
// dependency; the tool type-checks the unit, runs its analyzers,
// prints findings to stderr and exits 2. Packages analyzed only for
// facts (VetxOnly) are acknowledged by writing the (empty) facts file
// — this suite exchanges no facts.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"demsort/internal/analysis"
)

// vetConfig mirrors the fields of cmd/go's vet config this tool needs
// (the file carries more; unknown fields are ignored).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheckerMode(cfgPath string) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf("reading config: %v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing config %s: %v", cfgPath, err)
	}
	// Always acknowledge the facts protocol first: dependency units are
	// invoked with VetxOnly and need only the facts file.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("demsortvet-nofacts\n"), 0o666); err != nil {
			fatalf("writing facts: %v", err)
		}
	}
	if cfg.VetxOnly {
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return
			}
			fatalf("%v", err)
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		Sizes:     types.SizesFor(compilerOf(cfg), runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatalf("typechecking %s: %v", cfg.ImportPath, err)
	}
	diags, err := analysis.Run(&analysis.Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}, suite)
	if err != nil {
		fatalf("%v", err)
	}
	// vet also feeds the suite the _test.go halves of each package;
	// the invariants are production data-plane contracts, so test
	// files type-check as part of the unit but are not reported on.
	bad := false
	for _, d := range diags {
		if strings.HasSuffix(d.Pos.Filename, "_test.go") {
			continue
		}
		fmt.Fprintln(os.Stderr, d)
		bad = true
	}
	if bad {
		os.Exit(2)
	}
}

func compilerOf(cfg vetConfig) string {
	if cfg.Compiler != "" {
		return cfg.Compiler
	}
	return "gc"
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "demsortvet: "+format+"\n", args...)
	os.Exit(1)
}
