// Command demsortvet is the repo's invariant suite: five custom
// analyzers that mechanically enforce the contracts the tier-1
// byte-identical property rests on (see the analyzer packages under
// internal/analysis for the contracts and the PRs that motivated
// them).
//
// Two modes:
//
//	go run ./cmd/demsortvet ./...         # standalone multichecker
//	go vet -vettool=$(pwd)/bin/demsortvet ./...   # vet tool protocol
//
// The standalone mode loads packages itself (go list -export) and is
// the local entry point (`make lint`); the vet-tool mode speaks the
// cmd/go unit-checker protocol so CI runs the suite with vet's
// caching and test-package coverage. Deliberate exceptions are
// annotated in the source with `//lint:allow <analyzer> <reason>`.
package main

import (
	"fmt"
	"os"
	"strings"

	"demsort/internal/analysis"
	"demsort/internal/analysis/abortcheck"
	"demsort/internal/analysis/bufpoolcheck"
	"demsort/internal/analysis/gojoin"
	"demsort/internal/analysis/load"
	"demsort/internal/analysis/phasestats"
	"demsort/internal/analysis/wallclock"
)

// suite is the full demsortvet analyzer set.
var suite = []*analysis.Analyzer{
	bufpoolcheck.Analyzer,
	wallclock.Analyzer,
	phasestats.Analyzer,
	abortcheck.Analyzer,
	gojoin.Analyzer,
}

func main() {
	args := os.Args[1:]
	// cmd/go's vettool protocol: version probe, flag discovery, then
	// one invocation per package with a JSON config file.
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			fmt.Println("demsortvet version 1")
			return
		}
		if a == "-flags" || a == "--flags" {
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		unitcheckerMode(args[0])
		return
	}
	standalone(args)
}

func standalone(patterns []string) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	for _, p := range patterns {
		if strings.HasPrefix(p, "-") {
			fmt.Fprintf(os.Stderr, "demsortvet: unknown flag %s\nusage: demsortvet [packages]\n", p)
			for _, a := range suite {
				fmt.Fprintf(os.Stderr, "\n%s: %s\n", a.Name, a.Doc)
			}
			os.Exit(2)
		}
	}
	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "demsortvet:", err)
		os.Exit(1)
	}
	bad := false
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "demsortvet: %s: type error: %v\n", p.ImportPath, terr)
			bad = true
		}
		diags, err := analysis.Run(&analysis.Unit{Fset: p.Fset, Files: p.Files, Pkg: p.Types, Info: p.Info}, suite)
		if err != nil {
			fmt.Fprintln(os.Stderr, "demsortvet:", err)
			os.Exit(1)
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}
