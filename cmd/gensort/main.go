// Command gensort writes SortBenchmark-style 100-byte records to a
// file, like the benchmark's gensort tool ("This setting considers
// 100-byte elements with a 10-byte key").
//
// Usage:
//
//	gensort [-seed 1] [-start 0] [-skew 0] <count> <file>
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"demsort/internal/sortbench"
)

func main() {
	seed := flag.Uint64("seed", 1, "generator seed")
	start := flag.Int64("start", 0, "first record index (for tiled generation)")
	skew := flag.Int("skew", 0, "records out of 10 sharing a hot key prefix (0-10)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: gensort [-seed S] [-start I] [-skew K] <count> <file>")
		os.Exit(2)
	}
	count, err := strconv.ParseInt(flag.Arg(0), 10, 64)
	if err != nil || count < 0 {
		fmt.Fprintln(os.Stderr, "gensort: bad count")
		os.Exit(2)
	}
	f, err := os.Create(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var recs = func(lo, n int64) [][100]byte {
		if *skew > 0 {
			rs := sortbench.Skewed(*seed, lo, n, *skew)
			out := make([][100]byte, len(rs))
			for i := range rs {
				out[i] = rs[i]
			}
			return out
		}
		rs := sortbench.Generate(*seed, lo, n)
		out := make([][100]byte, len(rs))
		for i := range rs {
			out[i] = rs[i]
		}
		return out
	}
	const chunk = 16384
	for off := int64(0); off < count; off += chunk {
		n := chunk
		if off+int64(n) > count {
			n = int(count - off)
		}
		for _, r := range recs(*start+off, int64(n)) {
			if _, err := w.Write(r[:]); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d records (%d bytes) to %s\n", count, count*100, flag.Arg(1))
}
