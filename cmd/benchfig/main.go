// Command benchfig regenerates every figure and table of the paper's
// evaluation on the simulated cluster, writing TSV/TXT artefacts under
// -out and printing ASCII previews. With -json it additionally emits
// one machine-readable document carrying every figure's series data
// (the modelled per-phase timings) plus the host wall-clock seconds
// spent regenerating each artefact — the per-PR perf trajectory CI
// archives as BENCH.json.
//
// Usage:
//
//	benchfig [-out out] [-fig all|2|3|4|5|6|striped|overlap|runform|sortbench|capacity|ablations|skew] [-json BENCH.json]
//
// -fig also accepts a comma-separated selection (e.g. -fig 2,striped)
// so one run archives several figures' timings in a single BENCH.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	demsort "demsort"
)

// jsonSeries is one curve of a figure: the modelled values (for the
// phase-time figures, seconds per phase at each machine size).
type jsonSeries struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

// jsonFigure is one regenerated figure plus the host time it took.
type jsonFigure struct {
	Name       string       `json:"name"`
	Title      string       `json:"title"`
	XLabel     string       `json:"xlabel"`
	YLabel     string       `json:"ylabel"`
	ElapsedSec float64      `json:"elapsed_sec"`
	Series     []jsonSeries `json:"series"`
}

// jsonTable is one regenerated table plus the host time it took.
type jsonTable struct {
	Name       string     `json:"name"`
	Title      string     `json:"title"`
	ElapsedSec float64    `json:"elapsed_sec"`
	Headers    []string   `json:"headers"`
	Rows       [][]string `json:"rows"`
}

// benchDoc is the -json document.
type benchDoc struct {
	GoOS      string       `json:"goos"`
	GoArch    string       `json:"goarch"`
	NumCPU    int          `json:"num_cpu"`
	Timestamp string       `json:"timestamp"`
	Figures   []jsonFigure `json:"figures"`
	Tables    []jsonTable  `json:"tables"`
}

func main() {
	outDir := flag.String("out", "out", "directory for TSV/TXT artefacts")
	fig := flag.String("fig", "all", "which figure/table to regenerate")
	jsonPath := flag.String("json", "", "write machine-readable phase timings to this file")
	flag.Parse()

	s := demsort.DefaultScale()
	ok := true
	doc := benchDoc{
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	// -fig accepts a comma-separated selection, so CI can archive
	// several figures' timings in one BENCH.json (e.g. -fig 2,striped).
	selected := map[string]bool{}
	for _, name := range strings.Split(*fig, ",") {
		selected[strings.TrimSpace(name)] = true
	}
	run := func(name string, f func() error) {
		if !selected["all"] && !selected[name] {
			return
		}
		fmt.Printf("--- %s ---\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			ok = false
		}
	}

	saveFig := func(name string, fn func(demsort.FigureScale) (*demsort.Figure, error)) func() error {
		return func() error {
			start := time.Now()
			f, err := fn(s)
			if err != nil {
				return err
			}
			elapsed := time.Since(start).Seconds()
			f.ASCII(os.Stdout, 50)
			path, err := f.SaveTSV(*outDir, name)
			if err != nil {
				return err
			}
			fmt.Println("wrote", path)
			jf := jsonFigure{
				Name:       name,
				Title:      f.Title,
				XLabel:     f.XLabel,
				YLabel:     f.YLabel,
				ElapsedSec: elapsed,
			}
			for _, sr := range f.Series {
				jf.Series = append(jf.Series, jsonSeries{Name: sr.Name, X: sr.X, Y: sr.Y})
			}
			doc.Figures = append(doc.Figures, jf)
			return nil
		}
	}
	saveTable := func(name string, fn func() (*demsort.Table, error)) func() error {
		return func() error {
			start := time.Now()
			t, err := fn()
			if err != nil {
				return err
			}
			elapsed := time.Since(start).Seconds()
			t.Write(os.Stdout)
			path, err := t.SaveText(*outDir, name)
			if err != nil {
				return err
			}
			fmt.Println("wrote", path)
			doc.Tables = append(doc.Tables, jsonTable{
				Name:       name,
				Title:      t.Title,
				ElapsedSec: elapsed,
				Headers:    t.Headers,
				Rows:       t.Rows,
			})
			return nil
		}
	}

	run("2", saveFig("fig2", demsort.Fig2))
	run("3", saveFig("fig3", demsort.Fig3))
	run("4", saveFig("fig4", demsort.Fig4))
	run("5", saveFig("fig5", demsort.Fig5))
	run("6", saveFig("fig6", demsort.Fig6))
	run("striped", saveFig("striped_phases", demsort.StripedPhases))
	run("overlap", saveFig("overlap_ratio", demsort.OverlapRatios))
	run("runform", saveFig("runform_scaling", demsort.RunFormScaling))
	run("sortbench", saveTable("sortbench", func() (*demsort.Table, error) { return demsort.SortBenchTable(s) }))
	run("capacity", saveTable("capacity", func() (*demsort.Table, error) { return demsort.CapacityTable(), nil }))
	run("skew", saveTable("skew", func() (*demsort.Table, error) { return demsort.BaselineSkewTable(s) }))
	run("ablations", func() error {
		type abl struct {
			name string
			fn   func() error
		}
		abls := []abl{
			{"ablation_blocksize", saveFig("ablation_blocksize", demsort.AblationBlockSize)},
			{"ablation_overlap", saveFig("ablation_overlap", demsort.AblationOverlap)},
			{"ablation_samplek", saveFig("ablation_samplek", demsort.AblationSampleK)},
			{"ablation_striped", saveTable("ablation_striped", func() (*demsort.Table, error) { return demsort.AblationStripedVsCanonical(s) })},
			{"ablation_prefetch", saveFig("ablation_prefetch", func(demsort.FigureScale) (*demsort.Figure, error) { return demsort.AblationPrefetch() })},
		}
		for _, a := range abls {
			fmt.Printf("--- %s ---\n", a.name)
			if err := a.fn(); err != nil {
				return err
			}
		}
		return nil
	})

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(&doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *jsonPath)
	}

	if !ok {
		os.Exit(1)
	}
}
