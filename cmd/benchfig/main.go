// Command benchfig regenerates every figure and table of the paper's
// evaluation on the simulated cluster, writing TSV/TXT artefacts under
// -out and printing ASCII previews.
//
// Usage:
//
//	benchfig [-out out] [-fig all|2|3|4|5|6|sortbench|capacity|ablations|skew]
package main

import (
	"flag"
	"fmt"
	"os"

	demsort "demsort"
)

func main() {
	outDir := flag.String("out", "out", "directory for TSV/TXT artefacts")
	fig := flag.String("fig", "all", "which figure/table to regenerate")
	flag.Parse()

	s := demsort.DefaultScale()
	ok := true
	run := func(name string, f func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		fmt.Printf("--- %s ---\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			ok = false
		}
	}

	saveFig := func(name string, fn func(demsort.FigureScale) (*demsort.Figure, error)) func() error {
		return func() error {
			f, err := fn(s)
			if err != nil {
				return err
			}
			f.ASCII(os.Stdout, 50)
			path, err := f.SaveTSV(*outDir, name)
			if err != nil {
				return err
			}
			fmt.Println("wrote", path)
			return nil
		}
	}
	saveTable := func(name string, fn func() (*demsort.Table, error)) func() error {
		return func() error {
			t, err := fn()
			if err != nil {
				return err
			}
			t.Write(os.Stdout)
			path, err := t.SaveText(*outDir, name)
			if err != nil {
				return err
			}
			fmt.Println("wrote", path)
			return nil
		}
	}

	run("2", saveFig("fig2", demsort.Fig2))
	run("3", saveFig("fig3", demsort.Fig3))
	run("4", saveFig("fig4", demsort.Fig4))
	run("5", saveFig("fig5", demsort.Fig5))
	run("6", saveFig("fig6", demsort.Fig6))
	run("sortbench", saveTable("sortbench", func() (*demsort.Table, error) { return demsort.SortBenchTable(s) }))
	run("capacity", saveTable("capacity", func() (*demsort.Table, error) { return demsort.CapacityTable(), nil }))
	run("skew", saveTable("skew", func() (*demsort.Table, error) { return demsort.BaselineSkewTable(s) }))
	run("ablations", func() error {
		type abl struct {
			name string
			fn   func() error
		}
		abls := []abl{
			{"ablation_blocksize", saveFig("ablation_blocksize", demsort.AblationBlockSize)},
			{"ablation_overlap", saveFig("ablation_overlap", demsort.AblationOverlap)},
			{"ablation_samplek", saveFig("ablation_samplek", demsort.AblationSampleK)},
			{"ablation_striped", saveTable("ablation_striped", func() (*demsort.Table, error) { return demsort.AblationStripedVsCanonical(s) })},
			{"ablation_prefetch", saveFig("ablation_prefetch", func(demsort.FigureScale) (*demsort.Figure, error) { return demsort.AblationPrefetch() })},
		}
		for _, a := range abls {
			fmt.Printf("--- %s ---\n", a.name)
			if err := a.fn(); err != nil {
				return err
			}
		}
		return nil
	})

	if !ok {
		os.Exit(1)
	}
}
