// Command valsort validates a file of 100-byte records, like the
// SortBenchmark's valsort: order violations, record count, duplicate
// keys and an order-independent checksum (for comparing against the
// input file's digest).
//
// Usage:
//
//	valsort <file> [<file>...]
//
// Multiple files are treated as consecutive partitions of one sorted
// sequence; cross-boundary order is checked too.
package main

import (
	"fmt"
	"os"

	"demsort/internal/elem"
	"demsort/internal/sortbench"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: valsort <file> [<file>...]")
		os.Exit(2)
	}
	var parts []sortbench.Summary
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if len(data)%100 != 0 {
			fmt.Fprintf(os.Stderr, "valsort: %s is not a whole number of 100-byte records\n", path)
			os.Exit(1)
		}
		recs := make([]elem.Rec100, len(data)/100)
		for i := range recs {
			copy(recs[i][:], data[i*100:])
		}
		parts = append(parts, sortbench.Validate(recs))
	}
	s := sortbench.Merge(parts)
	fmt.Printf("records:    %d\n", s.Records)
	fmt.Printf("unsorted:   %d\n", s.Unsorted)
	fmt.Printf("duplicates: %d (adjacent equal keys)\n", s.Duplicate)
	fmt.Printf("checksum:   %016x\n", s.Checksum)
	if s.Unsorted > 0 {
		fmt.Println("NOT SORTED")
		os.Exit(1)
	}
	fmt.Println("SORTED")
}
