package main

// Multi-process acceptance test: demsort -transport=tcp must sort a
// gensort dataset across 4 real local worker processes and produce
// output byte-identical to the sim backend's on the same seed.
//
// The test binary doubles as the demsort binary: TestMain re-enters
// main() when DEMSORT_ARGS is set, which is exactly the hook the
// launcher uses to spawn its workers (os.Executable() + DEMSORT_ARGS),
// so launcher, workers and the wire protocol all run for real.

import (
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestMain(m *testing.M) {
	if args := os.Getenv("DEMSORT_ARGS"); args != "" {
		os.Args = append(os.Args[:1], strings.Fields(args)...)
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func TestTCPLauncherMatchesSim(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	simDir := filepath.Join(tmp, "sim")
	tcpDir := filepath.Join(tmp, "tcp")

	runDemsort := func(args string) string {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), "DEMSORT_ARGS="+args)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("demsort %s: %v\n%s", args, err, out)
		}
		return string(out)
	}

	// Simulated reference run, then the real 4-process tcp run.
	simOut := runDemsort("-records -p 4 -n 2000 -seed 99 -outdir " + simDir)
	tcpOut := runDemsort("-transport=tcp -p 4 -n 2000 -seed 99 -outdir " + tcpDir)
	for _, out := range []string{simOut, tcpOut} {
		if !strings.Contains(out, "validation: OK") {
			t.Fatalf("run did not validate:\n%s", out)
		}
	}
	if !strings.Contains(tcpOut, "rank 3:") {
		t.Fatalf("launcher did not run 4 workers:\n%s", tcpOut)
	}

	for rank := 0; rank < 4; rank++ {
		name := "part-00" + string(rune('0'+rank))
		simPart, err := os.ReadFile(filepath.Join(simDir, name))
		if err != nil {
			t.Fatal(err)
		}
		tcpPart, err := os.ReadFile(filepath.Join(tcpDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(simPart) != string(tcpPart) {
			t.Fatalf("%s differs between sim and tcp backends", name)
		}
		if len(simPart) != 2000*100 {
			t.Fatalf("%s holds %d bytes, want %d", name, len(simPart), 2000*100)
		}
	}
}

// TestStripedTCPLauncherMatchesSim is the acceptance scenario of the
// streaming I/O plane: `demsort -striped -transport=tcp -store=file`
// across 4 real worker processes must valsort clean and produce part
// files byte-identical to the striped sim backend on the same seed —
// the scenario the old in-process output reassembly hard-rejected.
func TestStripedTCPLauncherMatchesSim(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	simDir := filepath.Join(tmp, "sim")
	tcpDir := filepath.Join(tmp, "tcp")

	runDemsort := func(args string) string {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), "DEMSORT_ARGS="+args)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("demsort %s: %v\n%s", args, err, out)
		}
		return string(out)
	}

	simOut := runDemsort("-striped -records -p 4 -n 2000 -seed 77 -outdir " + simDir)
	tcpOut := runDemsort("-striped -transport=tcp -store=file -p 4 -n 2000 -seed 77 -outdir " + tcpDir)
	for _, out := range []string{simOut, tcpOut} {
		if !strings.Contains(out, "validation: OK") {
			t.Fatalf("striped run did not validate:\n%s", out)
		}
	}
	if !strings.Contains(tcpOut, "rank 3:") {
		t.Fatalf("launcher did not run 4 striped workers:\n%s", tcpOut)
	}
	var total int64
	for rank := 0; rank < 4; rank++ {
		name := fmt.Sprintf("part-%03d", rank)
		simPart, err := os.ReadFile(filepath.Join(simDir, name))
		if err != nil {
			t.Fatal(err)
		}
		tcpPart, err := os.ReadFile(filepath.Join(tcpDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(simPart) != string(tcpPart) {
			t.Fatalf("%s differs between striped sim and striped tcp", name)
		}
		total += int64(len(tcpPart))
		// The tmp staging file must have been renamed away.
		if _, err := os.Stat(filepath.Join(tcpDir, name+".tmp")); err == nil {
			t.Fatalf("%s.tmp still present after a clean run", name)
		}
	}
	if total != 4*2000*100 {
		t.Fatalf("striped parts hold %d bytes total, want %d", total, 4*2000*100)
	}
}

// TestWorkerFailureLeavesNoTruncatedPart kills one worker mid-fleet
// (deterministically, via the fault injector: rank 1 dies on its first
// all-to-all exchange) and asserts outdir holds no part-%03d
// afterwards: parts stage as .tmp and publish by rename on success
// only, so an aborted or reaped worker can never leave a truncated
// partition behind.
func TestWorkerFailureLeavesNoTruncatedPart(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	outdir := filepath.Join(t.TempDir(), "out")
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"DEMSORT_ARGS=-transport=tcp -p 4 -n 5000 -seed 13 -fault rank=1,action=die,op=AllToAllv,phase=all-to-all -outdir "+outdir,
	)
	out, runErr := cmd.CombinedOutput()
	if runErr == nil {
		t.Fatalf("launcher exited 0 despite a crashed worker:\n%s", out)
	}
	entries, err := os.ReadDir(outdir)
	if err != nil {
		return // outdir never created: trivially no partial parts
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") || e.IsDir() {
			continue // staging files and workdirs are expected debris
		}
		if strings.HasPrefix(e.Name(), "part-") {
			t.Fatalf("aborted fleet published %s — parts must only appear via rename-on-success", e.Name())
		}
	}
}

// TestHostfileLauncherMatchesSim drives the multi-host code path on a
// localhost hostfile with file-backed workers: parse + placement + the
// fork spawner + -store=file + sink-streamed part files, output
// byte-identical to the sim backend.
func TestHostfileLauncherMatchesSim(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	hf := filepath.Join(tmp, "hosts")
	// Two hostfile lines for the same machine: placement must merge
	// them into ranks 0..3.
	if err := os.WriteFile(hf, []byte("localhost slots=2 # first pair\n127.0.0.1 slots=2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	simDir := filepath.Join(tmp, "sim")
	tcpDir := filepath.Join(tmp, "tcp")

	runDemsort := func(args string) string {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), "DEMSORT_ARGS="+args)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("demsort %s: %v\n%s", args, err, out)
		}
		return string(out)
	}

	simOut := runDemsort("-records -p 4 -n 1500 -seed 31 -outdir " + simDir)
	tcpOut := runDemsort("-transport=tcp -hostfile " + hf + " -n 1500 -seed 31 -store=file -outdir " + tcpDir)
	for _, out := range []string{simOut, tcpOut} {
		if !strings.Contains(out, "validation: OK") {
			t.Fatalf("run did not validate:\n%s", out)
		}
	}
	if !strings.Contains(tcpOut, "launching 4 workers") {
		t.Fatalf("hostfile slots did not set the machine size:\n%s", tcpOut)
	}
	for rank := 0; rank < 4; rank++ {
		name := fmt.Sprintf("part-%03d", rank)
		simPart, err := os.ReadFile(filepath.Join(simDir, name))
		if err != nil {
			t.Fatal(err)
		}
		tcpPart, err := os.ReadFile(filepath.Join(tcpDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(simPart) != string(tcpPart) {
			t.Fatalf("%s differs between sim and hostfile-launched tcp", name)
		}
	}
	// A clean run leaves no spill blocks behind (FileStore.Close
	// removes them).
	if files, err := os.ReadDir(filepath.Join(tcpDir, "work")); err == nil && len(files) > 0 {
		t.Fatalf("spill dir still holds %d files after a clean run", len(files))
	}
}

// TestWorkerCrashAbortsFleet kills one tcp worker mid-run
// (deterministic injector: rank 2 dies at its first collective) and
// asserts the fleet dies with it, promptly: surviving ranks abort on
// the lost peer instead of hanging, and the launcher exits non-zero
// well within the peers' 30s connect/abort margins.
func TestWorkerCrashAbortsFleet(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	outdir := filepath.Join(t.TempDir(), "out")
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"DEMSORT_ARGS=-transport=tcp -p 4 -n 20000 -seed 13 -fault rank=2,action=die -outdir "+outdir,
	)
	start := time.Now()
	done := make(chan error, 1)
	var out []byte
	go func() {
		var runErr error
		out, runErr = cmd.CombinedOutput()
		done <- runErr
	}()
	select {
	case runErr := <-done:
		if runErr == nil {
			t.Fatalf("launcher exited 0 despite a crashed worker:\n%s", out)
		}
	case <-time.After(20 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("launcher still running 20s after a worker crash")
	}
	elapsed := time.Since(start)
	if elapsed > 15*time.Second {
		t.Fatalf("fleet took %v to die; want prompt reaping", elapsed)
	}
	text := string(out)
	if !strings.Contains(text, "worker 2") {
		t.Fatalf("launcher did not report the crashed worker:\n%s", text)
	}
	if !strings.Contains(text, "aborted: rank 2") {
		t.Fatalf("surviving ranks did not return the typed abort naming the dead rank:\n%s", text)
	}
}

// TestFleetAbortPropagation is the failure plane's acceptance
// scenario: a fleet of 4 real tcp processes, one rank killed mid
// all-to-all by the deterministic injector. Every surviving rank must
// unwind via internal abort propagation — returning the typed
// ErrAborted naming the dead rank — within the launcher's grace
// window, WITHOUT the launcher killing a single survivor.
func TestFleetAbortPropagation(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	outdir := filepath.Join(t.TempDir(), "out")
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"DEMSORT_ARGS=-transport=tcp -p 4 -n 20000 -seed 13 -fault rank=2,action=die,op=AllToAllv,phase=all-to-all -outdir "+outdir,
	)
	start := time.Now()
	done := make(chan error, 1)
	var out []byte
	go func() {
		var runErr error
		out, runErr = cmd.CombinedOutput()
		done <- runErr
	}()
	select {
	case runErr := <-done:
		if runErr == nil {
			t.Fatalf("launcher exited 0 despite a crashed worker:\n%s", out)
		}
	case <-time.After(20 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("launcher still running 20s after a worker crash")
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("fleet took %v to unwind; want bounded internal abort", elapsed)
	}
	text := string(out)
	// Every survivor returns *cluster.ErrAborted attributing the dead
	// rank (printed by the worker, prefixed by the launcher).
	for _, rank := range []int{0, 1, 3} {
		prefix := fmt.Sprintf("[w%d] ", rank)
		found := false
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, prefix) && strings.Contains(line, "aborted: rank 2") {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("rank %d did not unwind with the typed abort naming rank 2:\n%s", rank, text)
		}
	}
	// The survivors unwound from the inside: the launcher never had to
	// reap anyone.
	if strings.Contains(text, "reaping the remaining workers") {
		t.Fatalf("launcher had to reap survivors — abort propagation did not unwind them in time:\n%s", text)
	}
}

// TestWorkerListenRaceExitsFast pins the ReservePorts TOCTOU handling:
// a worker whose reserved port was grabbed by someone else must fail
// immediately with the dedicated exit code (the launcher's retry
// signal) instead of leaving the fleet dialing a dead address.
func TestWorkerListenRaceExitsFast(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0") // the "other process" holding the port
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"DEMSORT_ARGS=-transport=tcp -rank 0 -peers "+ln.Addr().String()+",127.0.0.1:1 -n 100")
	start := time.Now()
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("worker bound an occupied port?\n%s", out)
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 3 {
		t.Fatalf("want exit code 3 (listen race), got %v\n%s", err, out)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("listen failure took %v; must fail fast", elapsed)
	}
	if !strings.Contains(string(out), "listen") {
		t.Fatalf("error not actionable:\n%s", out)
	}
}
