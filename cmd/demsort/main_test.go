package main

// Multi-process acceptance test: demsort -transport=tcp must sort a
// gensort dataset across 4 real local worker processes and produce
// output byte-identical to the sim backend's on the same seed.
//
// The test binary doubles as the demsort binary: TestMain re-enters
// main() when DEMSORT_ARGS is set, which is exactly the hook the
// launcher uses to spawn its workers (os.Executable() + DEMSORT_ARGS),
// so launcher, workers and the wire protocol all run for real.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestMain(m *testing.M) {
	if args := os.Getenv("DEMSORT_ARGS"); args != "" {
		os.Args = append(os.Args[:1], strings.Fields(args)...)
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func TestTCPLauncherMatchesSim(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	simDir := filepath.Join(tmp, "sim")
	tcpDir := filepath.Join(tmp, "tcp")

	runDemsort := func(args string) string {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), "DEMSORT_ARGS="+args)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("demsort %s: %v\n%s", args, err, out)
		}
		return string(out)
	}

	// Simulated reference run, then the real 4-process tcp run.
	simOut := runDemsort("-records -p 4 -n 2000 -seed 99 -outdir " + simDir)
	tcpOut := runDemsort("-transport=tcp -p 4 -n 2000 -seed 99 -outdir " + tcpDir)
	for _, out := range []string{simOut, tcpOut} {
		if !strings.Contains(out, "validation: OK") {
			t.Fatalf("run did not validate:\n%s", out)
		}
	}
	if !strings.Contains(tcpOut, "rank 3:") {
		t.Fatalf("launcher did not run 4 workers:\n%s", tcpOut)
	}

	for rank := 0; rank < 4; rank++ {
		name := "part-00" + string(rune('0'+rank))
		simPart, err := os.ReadFile(filepath.Join(simDir, name))
		if err != nil {
			t.Fatal(err)
		}
		tcpPart, err := os.ReadFile(filepath.Join(tcpDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(simPart) != string(tcpPart) {
			t.Fatalf("%s differs between sim and tcp backends", name)
		}
		if len(simPart) != 2000*100 {
			t.Fatalf("%s holds %d bytes, want %d", name, len(simPart), 2000*100)
		}
	}
}
