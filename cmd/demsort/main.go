// Command demsort sorts a workload with CANONICALMERGESORT (or the
// globally striped variant) and prints the per-phase breakdown,
// validation verdict and throughput — a one-shot view of the system.
//
// Two transports are available:
//
//   - -transport=sim (default): the whole machine is simulated in this
//     process and per-phase times come from the calibrated
//     virtual-time cost model (the paper's figures);
//   - -transport=tcp: one OS process per PE over real sockets, and
//     per-phase times are wall-clock. Without -rank, demsort acts as a
//     launcher: it spawns the fleet (forking -p local workers, or
//     placing ranks across machines from a -hostfile, remote ones over
//     ssh), supervises it — first failure reaps the fleet, a lost
//     reserved port retries on fresh ones — and valsort-validates the
//     combined output of an all-local run. With -rank/-peers, it is
//     one worker of a (possibly multi-host) machine.
//
// The tcp transport (and sim with -records) sorts SortBenchmark-style
// 100-byte records: generated in-process gensort-equivalently from
// -seed, or read from a gensort file via -infile. Sorted partitions
// are written to -outdir as raw records (valsort-compatible),
// streamed block-at-a-time from each worker's store. With -store=file
// the blocks themselves live on disk under -workdir, so the data
// never has to fit in RAM.
//
// Usage:
//
//	demsort [-p 8] [-n 24576] [-mem 8192] [-block 1024]
//	        [-workload uniform|worstcase|reversed|narrow|allequal|hotkey|sorted]
//	        [-randomize=true] [-striped] [-seed 1]
//	        [-transport sim|tcp] [-records] [-infile data] [-outdir out]
//	        [-store ram|file] [-workdir dir]
//	        [-hostfile hosts.txt] [-baseport 7070] [-ssh ssh] [-remote-exe path]
//	        [-rank R -peers host:port,host:port,...]
//
// Examples:
//
//	demsort                                      # simulated, KV16 figures workload
//	demsort -records -outdir out                 # simulated, gensort records
//	demsort -transport=tcp -p 4 -outdir out      # 4 real worker processes on localhost
//	demsort -transport=tcp -hostfile hosts.txt -store=file -outdir out   # a real cluster
//	demsort -transport=tcp -rank 1 -peers hostA:7001,hostB:7002  # one PE of a 2-host machine
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	demsort "demsort"
	"demsort/internal/blockio"
	"demsort/internal/cluster/tcp"
	"demsort/internal/elem"
	"demsort/internal/sortbench"
	"demsort/internal/workload"
)

func main() {
	p := flag.Int("p", 8, "number of PEs (cluster nodes / worker processes)")
	n := flag.Int("n", 24576, "elements (records) per PE")
	mem := flag.Int64("mem", 8192, "internal memory budget per PE (elements)")
	block := flag.Int("block", 1024, "block size in bytes")
	kind := flag.String("workload", "uniform", "input distribution (sim KV16 mode)")
	randomize := flag.Bool("randomize", true, "shuffle input blocks before run formation")
	striped := flag.Bool("striped", false, "use the globally striped algorithm (Section III)")
	seed := flag.Uint64("seed", 1, "random seed")
	transport := flag.String("transport", "sim", "cluster backend: sim (virtual time) or tcp (real processes)")
	records := flag.Bool("records", false, "sort SortBenchmark 100-byte records instead of KV16")
	infile := flag.String("infile", "", "gensort input file (implies -records; rank r takes records [r·n, (r+1)·n))")
	outdir := flag.String("outdir", "", "write sorted partitions here as part-%03d (raw records)")
	store := flag.String("store", "ram", "block store backing each PE: ram, or file (disk-resident blocks; data need not fit in RAM)")
	workdir := flag.String("workdir", "", "spill directory for -store=file (default: <outdir>/work, or a temp dir in worker mode)")
	hostfile := flag.String("hostfile", "", "launch the fleet from a hostfile ('host[:port] [slots=k]' per line; total slots override -p)")
	baseport := flag.Int("baseport", 7070, "first listen port for hostfile hosts without an explicit port")
	sshCmd := flag.String("ssh", "ssh", "command used to spawn workers on remote hostfile hosts")
	remoteExe := flag.String("remote-exe", "", "demsort binary path on remote hosts (default: this binary's path)")
	rank := flag.Int("rank", -1, "this process's PE rank (tcp worker mode; -1 = launch workers)")
	peers := flag.String("peers", "", "comma-separated host:port listen addresses, one per rank (tcp)")
	flag.Parse()

	if *striped && (*records || *infile != "" || *transport == "tcp") {
		fail(fmt.Errorf("demsort: -striped currently supports only the simulated KV16 workload (its output collection is in-process)"))
	}
	if *store != "ram" && *store != "file" {
		fail(fmt.Errorf("demsort: unknown store %q (want ram or file)", *store))
	}
	lp := launchParams{
		nPer:      int64(*n),
		mem:       *mem,
		block:     *block,
		seed:      *seed,
		randomize: *randomize,
		infile:    *infile,
		outdir:    *outdir,
		store:     *store,
		workdir:   *workdir,
	}
	switch *transport {
	case "sim":
		if *records || *infile != "" {
			runRecordsSim(*p, lp)
			return
		}
		runKV16Sim(*p, *n, *mem, *block, *kind, *randomize, *striped, *seed)
	case "tcp":
		if *rank < 0 {
			runLauncher(*p, lp, *hostfile, *baseport, *sshCmd, *remoteExe)
			return
		}
		if *peers == "" {
			fail(fmt.Errorf("demsort: tcp worker mode needs -peers"))
		}
		runTCPWorker(*rank, strings.Split(*peers, ","), lp)
	default:
		fail(fmt.Errorf("demsort: unknown transport %q (want sim or tcp)", *transport))
	}
}

// newStoreFactory maps the -store/-workdir flags to a per-rank block
// store constructor (nil = the default RAM store).
func newStoreFactory(lp launchParams) func(rank int) (blockio.Store, error) {
	if lp.store != "file" {
		return nil
	}
	dir := lp.workdir
	if dir == "" {
		if lp.outdir != "" {
			dir = filepath.Join(lp.outdir, "work")
		} else {
			dir = filepath.Join(os.TempDir(), fmt.Sprintf("demsort-work-%d", os.Getpid()))
		}
	}
	return blockio.FileStoreFactory(dir, lp.block)
}

// ---------------------------------------------------------------------
// Record workloads (gensort-equivalent).
// ---------------------------------------------------------------------

// loadRecords returns PE rank's n records: the [rank·n, (rank+1)·n)
// tile of the gensort file when given, else generated in-process with
// the same generator the gensort command uses.
func loadRecords(infile string, seed uint64, rank int, n int64) []elem.Rec100 {
	if infile == "" {
		return sortbench.Generate(seed, int64(rank)*n, n)
	}
	f, err := os.Open(infile)
	fail(err)
	defer f.Close()
	buf := make([]byte, n*100)
	if _, err := f.ReadAt(buf, int64(rank)*n*100); err != nil {
		fail(fmt.Errorf("demsort: reading %d records at offset %d from %s: %w", n, int64(rank)*n*100, infile, err))
	}
	recs := make([]elem.Rec100, n)
	for i := range recs {
		copy(recs[i][:], buf[i*100:])
	}
	return recs
}

// inputSummary digests the whole input tile by tile (only Records and
// Checksum matter for the permutation check — the input is unsorted by
// nature, so no cross-tile order folding is needed or wanted).
func inputSummary(infile string, seed uint64, p int, nPer int64) sortbench.Summary {
	var s sortbench.Summary
	for rank := 0; rank < p; rank++ {
		tile := sortbench.Validate(loadRecords(infile, seed, rank, nPer))
		s.Records += tile.Records
		s.Checksum += tile.Checksum
	}
	return s
}

func writePart(outdir string, rank int, recs []elem.Rec100) string {
	path := filepath.Join(outdir, fmt.Sprintf("part-%03d", rank))
	buf := make([]byte, 0, len(recs)*100)
	for i := range recs {
		buf = append(buf, recs[i][:]...)
	}
	fail(os.WriteFile(path, buf, 0o644))
	return path
}

func recordOptions(p int, mem int64, block int, seed uint64, randomize bool) demsort.Options {
	opts := demsort.NewOptions(p, mem, block)
	opts.Model = demsort.ScaledModel(block)
	opts.Randomize = randomize
	opts.Seed = seed
	opts.KeepOutput = true
	return opts
}

// runRecordsSim sorts gensort records on the simulated machine —
// the reference run the tcp backend's output must match bit for bit.
func runRecordsSim(p int, lp launchParams) {
	nPer, seed, outdir, infile := lp.nPer, lp.seed, lp.outdir, lp.infile
	input := make([][]elem.Rec100, p)
	for rank := 0; rank < p; rank++ {
		input[rank] = loadRecords(infile, seed, rank, nPer)
	}
	opts := recordOptions(p, lp.mem, lp.block, seed, lp.randomize)
	opts.NewStore = newStoreFactory(lp)
	res, err := demsort.Sort[elem.Rec100](demsort.Rec100Codec{}, opts, input)
	fail(err)
	nBytes := res.N * 100
	fmt.Printf("CanonicalMergeSort[records]: P=%d N=%d (R=%d runs, k=%d sub-operations)\n",
		res.P, res.N, res.Runs, res.SubOps)
	for _, ph := range res.PhaseNames {
		read, written := res.PhaseBytes(ph)
		fmt.Printf("  %-20s %10.4fs   io %s\n", ph, res.MaxWall(ph), fmtIO(read, written, nBytes))
	}
	var sums []sortbench.Summary
	for rank := 0; rank < p; rank++ {
		sums = append(sums, sortbench.Validate(res.Output[rank]))
		if outdir != "" {
			fail(os.MkdirAll(outdir, 0o755))
			writePart(outdir, rank, res.Output[rank])
		}
	}
	verdictRecords(sortbench.Merge(sums), inputSummary(infile, seed, p, nPer))
	fmt.Printf("modelled total: %.4fs (%.2f MB/s equivalent)\n",
		res.TotalWall(), float64(nBytes)/1e6/res.TotalWall())
}

// ---------------------------------------------------------------------
// tcp worker: one PE of a real-process machine.
// ---------------------------------------------------------------------

func runTCPWorker(rank int, peers []string, lp launchParams) {
	p := len(peers)
	m, err := tcp.New(tcp.Config{
		Rank:       rank,
		Peers:      peers,
		BlockBytes: lp.block,
		MemElems:   lp.mem,
		NewStore:   newStoreFactory(lp),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		if errors.Is(err, tcp.ErrBind) {
			// The reserved port was grabbed before we bound it; tell
			// the launcher so it retries the fleet on fresh ports
			// instead of the peers dialing a dead address for 30s.
			os.Exit(exitListenRace)
		}
		os.Exit(1)
	}
	defer m.Close()

	// Fault injection for the crash tests: the designated rank dies
	// abruptly once the machine is connected — no goodbye frame, no
	// Close — exactly like a segfaulted or OOM-killed worker.
	if os.Getenv("DEMSORT_CRASH_RANK") == strconv.Itoa(rank) {
		ms := 100
		if v, err := strconv.Atoi(os.Getenv("DEMSORT_CRASH_AFTER_MS")); err == nil {
			ms = v
		}
		time.Sleep(time.Duration(ms) * time.Millisecond)
		os.Exit(11)
	}

	opts := recordOptions(p, lp.mem, lp.block, lp.seed, lp.randomize)
	opts.Machine = m
	opts.KeepOutput = false
	input := make([][]elem.Rec100, p)
	input[rank] = loadRecords(lp.infile, lp.seed, rank, lp.nPer)

	// Stream the sorted partition straight from the block store to the
	// part file: the output never has to fit in this process's RAM,
	// which is the point of -store=file.
	var partW *bufio.Writer
	var partF *os.File
	if lp.outdir != "" {
		fail(os.MkdirAll(lp.outdir, 0o755))
		partF, err = os.Create(filepath.Join(lp.outdir, fmt.Sprintf("part-%03d", rank)))
		fail(err)
		partW = bufio.NewWriterSize(partF, 1<<20)
		opts.Sink = func(_ int, b []byte) error {
			_, err := partW.Write(b)
			return err
		}
	}

	start := time.Now()
	res, err := demsort.Sort[elem.Rec100](demsort.Rec100Codec{}, opts, input)
	fail(err)
	if partW != nil {
		fail(partW.Flush())
		fail(partF.Close())
	}

	var phases []string
	for _, ph := range res.PhaseNames {
		phases = append(phases, fmt.Sprintf("%s %.3fs", ph, res.PerPE[rank][ph].Wall))
	}
	fmt.Printf("rank %d: %d records in %.3fs (%s)\n",
		rank, res.OutputLens[rank], time.Since(start).Seconds(), strings.Join(phases, " | "))
}

// ---------------------------------------------------------------------
// KV16 simulated mode (the original figures workload).
// ---------------------------------------------------------------------

func runKV16Sim(p, n int, mem int64, block int, kind string, randomize, striped bool, seed uint64) {
	input := workload.Generate(workload.Kind(kind), p, n, seed)
	var ref []demsort.KV16
	for _, part := range input {
		ref = append(ref, part...)
	}
	nBytes := int64(len(ref)) * 16

	if striped {
		opts := demsort.NewStripedOptions(p, mem, block)
		opts.Model = demsort.ScaledModel(block)
		opts.Randomize = randomize
		opts.Seed = seed
		opts.KeepOutput = true
		res, err := demsort.SortStriped[demsort.KV16](demsort.KV16Codec{}, opts, input)
		fail(err)
		fmt.Printf("globally striped mergesort: P=%d N=%d (%d runs, %d merge batches)\n",
			res.P, res.N, res.Runs, res.Batches)
		for _, ph := range res.PhaseNames {
			read, written := res.PhaseBytes(ph)
			fmt.Printf("  %-20s %10.4fs   io %s\n", ph, res.MaxWall(ph), fmtIO(read, written, nBytes))
		}
		okSorted := true
		for i := 1; i < len(res.Output); i++ {
			if res.Output[i].Key < res.Output[i-1].Key {
				okSorted = false
			}
		}
		verdict(okSorted && workload.Checksum(ref) == workload.Checksum(res.Output))
		fmt.Printf("modelled total: %.4fs (%.2f MB/s equivalent)\n",
			res.TotalWall(), float64(nBytes)/1e6/res.TotalWall())
		return
	}

	opts := demsort.NewOptions(p, mem, block)
	opts.Model = demsort.ScaledModel(block)
	opts.Randomize = randomize
	opts.Seed = seed
	opts.KeepOutput = true
	res, err := demsort.Sort[demsort.KV16](demsort.KV16Codec{}, opts, input)
	fail(err)
	fmt.Printf("CanonicalMergeSort: P=%d N=%d (R=%d runs, k=%d sub-operations)\n",
		res.P, res.N, res.Runs, res.SubOps)
	for _, ph := range res.PhaseNames {
		read, written := res.PhaseBytes(ph)
		fmt.Printf("  %-20s %10.4fs   io %s\n", ph, res.MaxWall(ph), fmtIO(read, written, nBytes))
	}
	verdict(res.Validate(demsort.KV16Codec{}, input) == nil)
	fmt.Printf("modelled total: %.4fs (%.2f MB/s equivalent)\n",
		res.TotalWall(), float64(nBytes)/1e6/res.TotalWall())
}

func fmtIO(read, written, nBytes int64) string {
	return fmt.Sprintf("read %.2fxN write %.2fxN",
		float64(read)/float64(nBytes), float64(written)/float64(nBytes))
}

func verdict(ok bool) {
	if ok {
		fmt.Println("validation: OK (sorted, exact partition, permutation of input)")
		return
	}
	fmt.Println("validation: FAILED")
	os.Exit(1)
}

func verdictRecords(got, want sortbench.Summary) {
	fmt.Printf("valsort: records=%d unsorted=%d duplicates=%d checksum=%016x\n",
		got.Records, got.Unsorted, got.Duplicate, got.Checksum)
	verdict(got.Unsorted == 0 && got.Records == want.Records && got.Checksum == want.Checksum)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
