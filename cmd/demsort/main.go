// Command demsort sorts a workload with CANONICALMERGESORT (or the
// globally striped variant) and prints the per-phase breakdown,
// validation verdict and throughput — a one-shot view of the system.
//
// Two transports are available:
//
//   - -transport=sim (default): the whole machine is simulated in this
//     process and per-phase times come from the calibrated
//     virtual-time cost model (the paper's figures);
//   - -transport=tcp: one OS process per PE over real sockets, and
//     per-phase times are wall-clock. Without -rank, demsort acts as a
//     launcher: it spawns the fleet (forking -p local workers, or
//     placing ranks across machines from a -hostfile, remote ones over
//     ssh), supervises it — first failure reaps the fleet, a lost
//     reserved port retries on fresh ones — and valsort-validates the
//     combined output of an all-local run. With -rank/-peers, it is
//     one worker of a (possibly multi-host) machine.
//
// The tcp transport (and sim with -records) sorts SortBenchmark-style
// 100-byte records: streamed in-process gensort-equivalently from
// -seed, or from a gensort file via -infile — either way the input
// tile goes block-at-a-time straight onto the rank's block store
// (core.Config.Source), never through an in-RAM slice. Sorted
// partitions are written to -outdir as raw records
// (valsort-compatible), streamed block-at-a-time from each worker's
// store (Config.Sink) into part-%03d.tmp and renamed on success, so
// outdir never holds a truncated part. With -store=file the blocks
// themselves live on disk under -workdir, so the data never has to
// fit in RAM: end-to-end memory is O(m) per worker. -striped runs the
// globally striped algorithm (Section III) on every one of these
// scenarios, including multi-process tcp fleets: its part files are
// the canonical block-range shares of the striped output, so they
// concatenate to the sorted sequence just like the canonical sorter's.
//
// Usage:
//
//	demsort [-p 8] [-n 24576] [-mem 8192] [-block 1024]
//	        [-workload uniform|worstcase|reversed|narrow|allequal|hotkey|sorted]
//	        [-randomize=true] [-striped] [-seed 1]
//	        [-transport sim|tcp] [-records] [-infile data] [-outdir out]
//	        [-store ram|file] [-workdir dir]
//	        [-hostfile hosts.txt] [-baseport 7070] [-ssh ssh] [-remote-exe path]
//	        [-rank R -peers host:port,host:port,...]
//
// Examples:
//
//	demsort                                      # simulated, KV16 figures workload
//	demsort -records -outdir out                 # simulated, gensort records
//	demsort -transport=tcp -p 4 -outdir out      # 4 real worker processes on localhost
//	demsort -transport=tcp -hostfile hosts.txt -store=file -outdir out   # a real cluster
//	demsort -transport=tcp -rank 1 -peers hostA:7001,hostB:7002  # one PE of a 2-host machine
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	demsort "demsort"
	"demsort/internal/blockio"
	"demsort/internal/cluster"
	"demsort/internal/cluster/faulty"
	"demsort/internal/cluster/tcp"
	"demsort/internal/elem"
	"demsort/internal/sortbench"
	"demsort/internal/vtime"
	"demsort/internal/workload"
)

func main() {
	p := flag.Int("p", 8, "number of PEs (cluster nodes / worker processes)")
	n := flag.Int("n", 24576, "elements (records) per PE")
	mem := flag.Int64("mem", 8192, "internal memory budget per PE (elements)")
	block := flag.Int("block", 1024, "block size in bytes")
	kind := flag.String("workload", "uniform", "input distribution (sim KV16 mode)")
	randomize := flag.Bool("randomize", true, "shuffle input blocks before run formation")
	overlap := flag.Bool("overlap", true, "overlap I/O and communication with compute (pipelined all-to-all, async load/collect)")
	striped := flag.Bool("striped", false, "use the globally striped algorithm (Section III)")
	seed := flag.Uint64("seed", 1, "random seed")
	transport := flag.String("transport", "sim", "cluster backend: sim (virtual time) or tcp (real processes)")
	records := flag.Bool("records", false, "sort SortBenchmark 100-byte records instead of KV16")
	infile := flag.String("infile", "", "gensort input file (implies -records; rank r takes records [r·n, (r+1)·n))")
	outdir := flag.String("outdir", "", "write sorted partitions here as part-%03d (raw records)")
	store := flag.String("store", "ram", "block store backing each PE: ram, or file (disk-resident blocks; data need not fit in RAM)")
	workdir := flag.String("workdir", "", "spill directory for -store=file (default: <outdir>/work, or a temp dir in worker mode)")
	hostfile := flag.String("hostfile", "", "launch the fleet from a hostfile ('host[:port] [slots=k]' per line; total slots override -p)")
	baseport := flag.Int("baseport", 7070, "first listen port for hostfile hosts without an explicit port")
	sshCmd := flag.String("ssh", "ssh", "command used to spawn workers on remote hostfile hosts")
	remoteExe := flag.String("remote-exe", "", "demsort binary path on remote hosts (default: this binary's path)")
	rank := flag.Int("rank", -1, "this process's PE rank (tcp worker mode; -1 = launch workers)")
	peers := flag.String("peers", "", "comma-separated host:port listen addresses, one per rank (tcp)")
	faultSpec := flag.String("fault", "", "deterministic fault injection, e.g. rank=2,action=die,op=AllToAllv,phase=all-to-all (see internal/cluster/faulty)")
	restart := flag.Int("restart", 0, "launcher: restart the fleet up to N times after a worker failure (resuming from the last committed phase when -store=file)")
	resume := flag.Bool("resume", false, "resume a job from the committed manifests in -workdir instead of re-reading input")
	durable := flag.Bool("durable", false, "commit phase checkpoints (durable spill files + per-rank manifests in -workdir)")
	jobid := flag.String("jobid", "demsort", "job identity carried in manifests and the tcp handshake")
	epoch := flag.Int("epoch", 0, "fleet incarnation number (set by the launcher on restarts)")
	flag.Parse()

	if *store != "ram" && *store != "file" {
		fail(fmt.Errorf("demsort: unknown store %q (want ram or file)", *store))
	}
	lp := launchParams{
		nPer:      int64(*n),
		mem:       *mem,
		block:     *block,
		seed:      *seed,
		randomize: *randomize,
		overlap:   *overlap,
		striped:   *striped,
		infile:    *infile,
		outdir:    *outdir,
		store:     *store,
		workdir:   *workdir,
		fault:     *faultSpec,
		restart:   *restart,
		resume:    *resume,
		durable:   *durable || *resume,
		jobid:     *jobid,
		epoch:     *epoch,
	}
	if _, err := faulty.ParseSpec(lp.fault); err != nil {
		fail(err)
	}
	if lp.durable && lp.store != "file" {
		fail(fmt.Errorf("demsort: -durable/-resume need -store=file (checkpoints describe on-disk blocks)"))
	}
	if lp.durable && lp.striped {
		fail(fmt.Errorf("demsort: -durable/-resume are not supported with -striped (the striped sorter has no checkpoint plane)"))
	}
	switch *transport {
	case "sim":
		if *records || *infile != "" {
			runRecordsSim(*p, lp)
			return
		}
		runKV16Sim(*p, *n, *mem, *block, *kind, *randomize, *overlap, *striped, *seed)
	case "tcp":
		if *rank < 0 {
			runLauncher(*p, lp, *hostfile, *baseport, *sshCmd, *remoteExe)
			return
		}
		if *peers == "" {
			fail(fmt.Errorf("demsort: tcp worker mode needs -peers"))
		}
		runTCPWorker(*rank, strings.Split(*peers, ","), lp)
	default:
		fail(fmt.Errorf("demsort: unknown transport %q (want sim or tcp)", *transport))
	}
}

// resolveWorkdir pins the spill directory of a file-backed run: the
// -workdir flag, else <outdir>/work, else a per-process temp dir.
func (lp *launchParams) resolveWorkdir() string {
	if lp.workdir == "" {
		if lp.outdir != "" {
			lp.workdir = filepath.Join(lp.outdir, "work")
		} else {
			lp.workdir = filepath.Join(os.TempDir(), fmt.Sprintf("demsort-work-%d", os.Getpid()))
		}
	}
	return lp.workdir
}

// newStoreFactory maps the -store/-workdir flags to a per-rank block
// store constructor (nil = the default RAM store). Durable runs get
// stores whose spill files survive Close-on-abort, the substrate the
// checkpoint manifests describe.
func newStoreFactory(lp launchParams) func(rank int) (blockio.Store, error) {
	if lp.store != "file" {
		return nil
	}
	dir := lp.resolveWorkdir()
	if lp.durable {
		return blockio.DurableFileStoreFactory(dir, lp.block)
	}
	return blockio.FileStoreFactory(dir, lp.block)
}

// checkpoint renders the durable-run flags as a core checkpoint config
// (zero value when the run is not durable).
func (lp launchParams) checkpoint() demsort.CheckpointOptions {
	if !lp.durable {
		return demsort.CheckpointOptions{}
	}
	return demsort.CheckpointOptions{
		Dir:    lp.resolveWorkdir(),
		JobID:  lp.jobid,
		Epoch:  lp.epoch,
		Resume: lp.resume,
	}
}

// ---------------------------------------------------------------------
// Record workloads (gensort-equivalent).
// ---------------------------------------------------------------------

// source returns the per-rank streaming input (core.Config.Source):
// a section of the gensort file when given, else an in-process
// generator producing the same tile the gensort command would — either
// way the tile is never materialized in RAM. The gensort file stays
// open for the life of the process (its SectionReaders are consumed
// inside the load phase).
func (lp launchParams) source() func(rank int) (io.Reader, int64, error) {
	if lp.infile == "" {
		return func(rank int) (io.Reader, int64, error) {
			return sortbench.NewReader(lp.seed, int64(rank)*lp.nPer, lp.nPer), lp.nPer, nil
		}
	}
	var f *os.File
	return func(rank int) (io.Reader, int64, error) {
		if f == nil {
			var err error
			if f, err = os.Open(lp.infile); err != nil {
				return nil, 0, err
			}
		}
		return io.NewSectionReader(f, int64(rank)*lp.nPer*100, lp.nPer*100), lp.nPer, nil
	}
}

// inputSummary digests the whole input tile by tile, streaming (only
// Records and Checksum matter for the permutation check — the input is
// unsorted by nature, so no cross-tile order folding is needed or
// wanted).
func inputSummary(lp launchParams, p int) sortbench.Summary {
	src := lp.source()
	var s sortbench.Summary
	for rank := 0; rank < p; rank++ {
		r, _, err := src(rank)
		fail(err)
		tile, err := sortbench.SummarizeReader(r)
		fail(err)
		s.Records += tile.Records
		s.Checksum += tile.Checksum
	}
	return s
}

// partFile streams one rank's sorted partition to outdir/part-%03d.
// It writes to part-%03d.tmp and renames on Close, so an aborted or
// reaped worker never leaves a truncated part file behind — outdir
// only ever contains complete partitions.
type partFile struct {
	f    *os.File
	w    *bufio.Writer
	path string
}

func newPartFile(outdir string, rank int) (*partFile, error) {
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(outdir, fmt.Sprintf("part-%03d", rank))
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return nil, err
	}
	return &partFile{f: f, w: bufio.NewWriterSize(f, 1<<20), path: path}, nil
}

func (p *partFile) Write(b []byte) error {
	_, err := p.w.Write(b)
	return err
}

// Close flushes, fsyncs and atomically publishes the part file:
// contents are durable before the rename and the rename is durable
// before Close returns (directory fsync), so a published partition
// survives a host crash — the same discipline as checkpoint manifests.
func (p *partFile) Close() error {
	if err := p.w.Flush(); err != nil {
		return err
	}
	if err := p.f.Sync(); err != nil {
		return err
	}
	if err := p.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(p.path+".tmp", p.path); err != nil {
		return err
	}
	return blockio.SyncDir(filepath.Dir(p.path))
}

// partSummary re-reads a published part file and valsorts it, O(1)
// memory.
func partSummary(outdir string, rank int) sortbench.Summary {
	f, err := os.Open(filepath.Join(outdir, fmt.Sprintf("part-%03d", rank)))
	fail(err)
	defer f.Close()
	s, err := sortbench.SummarizeReader(bufio.NewReaderSize(f, 1<<20))
	fail(err)
	return s
}

func recordOptions(p int, mem int64, block int, seed uint64, randomize, overlap bool) demsort.Options {
	opts := demsort.NewOptions(p, mem, block)
	opts.Model = demsort.ScaledModel(block)
	opts.Randomize = randomize
	opts.Overlap = overlap
	opts.Seed = seed
	return opts
}

func stripedRecordOptions(p int, mem int64, block int, seed uint64, randomize, overlap bool) demsort.StripedOptions {
	opts := demsort.NewStripedOptions(p, mem, block)
	opts.Model = demsort.ScaledModel(block)
	opts.Randomize = randomize
	opts.Overlap = overlap
	opts.Seed = seed
	return opts
}

// recordSinks builds the per-rank output sinks of an in-process run:
// each rank's sorted stream is valsorted incrementally and — when
// outdir is set — written to its part file. Distinct ranks stream
// concurrently on the sim backend; each writes only its own slot.
type recordSinks struct {
	accums []sortbench.Accum
	parts  []*partFile
}

func newRecordSinks(p int, outdir string) *recordSinks {
	s := &recordSinks{accums: make([]sortbench.Accum, p)}
	if outdir != "" {
		s.parts = make([]*partFile, p)
		for rank := 0; rank < p; rank++ {
			pf, err := newPartFile(outdir, rank)
			fail(err)
			s.parts[rank] = pf
		}
	}
	return s
}

func (s *recordSinks) sink(rank int, b []byte) error {
	s.accums[rank].Add(b)
	if s.parts != nil {
		return s.parts[rank].Write(b)
	}
	return nil
}

// finish publishes the part files and returns the merged valsort
// summary of the partitions in rank order.
func (s *recordSinks) finish() sortbench.Summary {
	var sums []sortbench.Summary
	for rank := range s.accums {
		sums = append(sums, s.accums[rank].Summary())
		if s.parts != nil {
			fail(s.parts[rank].Close())
		}
	}
	return sortbench.Merge(sums)
}

// phaseStats is the per-phase reporting surface both Result types
// share (the sim record runs print either through it).
type phaseStats interface {
	MaxWall(phase string) float64
	PhaseBytes(phase string) (read, written int64)
	TotalWall() float64
}

func printPhases(res phaseStats, phaseNames []string, nBytes int64) {
	for _, ph := range phaseNames {
		read, written := res.PhaseBytes(ph)
		fmt.Printf("  %-20s %10.4fs   io %s\n", ph, res.MaxWall(ph), fmtIO(read, written, nBytes))
	}
}

// runRecordsSim sorts gensort records on the simulated machine —
// the reference run the tcp backend's output must match bit for bit.
// Input arrives through the streaming Source and output leaves through
// the per-rank Sinks, so no tile or partition is ever resident in RAM.
func runRecordsSim(p int, lp launchParams) {
	sinks := newRecordSinks(p, lp.outdir)
	var stats phaseStats
	var phaseNames []string
	var nBytes int64
	if lp.striped {
		opts := stripedRecordOptions(p, lp.mem, lp.block, lp.seed, lp.randomize, lp.overlap)
		opts.NewStore = newStoreFactory(lp)
		opts.Source = lp.source()
		opts.Sink = sinks.sink
		res, err := demsort.SortStriped[elem.Rec100](demsort.Rec100Codec{}, opts, nil)
		fail(err)
		fmt.Printf("globally striped mergesort[records]: P=%d N=%d (%d runs, %d merge batches)\n",
			res.P, res.N, res.Runs, res.Batches)
		stats, phaseNames, nBytes = res, res.PhaseNames, res.N*100
	} else {
		opts := recordOptions(p, lp.mem, lp.block, lp.seed, lp.randomize, lp.overlap)
		opts.NewStore = newStoreFactory(lp)
		opts.Source = lp.source()
		opts.Sink = sinks.sink
		opts.Checkpoint = lp.checkpoint()
		res, err := demsort.Sort[elem.Rec100](demsort.Rec100Codec{}, opts, nil)
		fail(err)
		fmt.Printf("CanonicalMergeSort[records]: P=%d N=%d (R=%d runs, k=%d sub-operations)\n",
			res.P, res.N, res.Runs, res.SubOps)
		stats, phaseNames, nBytes = res, res.PhaseNames, res.N*100
	}
	printPhases(stats, phaseNames, nBytes)
	verdictRecords(sinks.finish(), inputSummary(lp, p))
	fmt.Printf("modelled total: %.4fs (%.2f MB/s equivalent)\n",
		stats.TotalWall(), float64(nBytes)/1e6/stats.TotalWall())
}

// ---------------------------------------------------------------------
// tcp worker: one PE of a real-process machine.
// ---------------------------------------------------------------------

func runTCPWorker(rank int, peers []string, lp launchParams) {
	p := len(peers)
	tm, err := tcp.New(tcp.Config{
		Rank:       rank,
		Peers:      peers,
		BlockBytes: lp.block,
		MemElems:   lp.mem,
		NewStore:   newStoreFactory(lp),
		JobID:      lp.jobid,
		Epoch:      lp.epoch,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		if errors.Is(err, tcp.ErrBind) {
			// The reserved port was grabbed before we bound it; tell
			// the launcher so it retries the fleet on fresh ports
			// instead of the peers dialing a dead address for 30s.
			os.Exit(exitListenRace)
		}
		os.Exit(1)
	}
	defer tm.Close()

	// Deterministic fault injection (chaos tests): the spec is shared
	// by the whole fleet and each fault names the rank it lives on, so
	// forwarding it verbatim to every worker is correct.
	var m cluster.Machine = tm
	if lp.fault != "" {
		faults, ferr := faulty.ParseSpec(lp.fault)
		fail(ferr)
		m = faulty.Wrap(tm, lp.seed, faults...)
	}

	// The input streams in via Source (gensort file section or
	// in-process generator) and the sorted partition streams out via
	// Sink to part-%03d.tmp, renamed on success: neither the tile nor
	// the output ever has to fit in this process's RAM, and outdir
	// never holds a truncated part.
	var part *partFile
	var sink func(rank int, b []byte) error
	if lp.outdir != "" {
		part, err = newPartFile(lp.outdir, rank)
		fail(err)
		sink = func(_ int, b []byte) error { return part.Write(b) }
	}

	// The instrumented Source: every byte the sort pulls from the input
	// goes through this counter, so a resumed run can prove it re-read
	// nothing (the resume acceptance test greps the line below).
	src, readBytes := countingSource(lp.source())

	start := time.Now()
	var phaseNames []string
	var perPE map[string]*vtime.PhaseStats
	var outLen int64
	if lp.striped {
		opts := stripedRecordOptions(p, lp.mem, lp.block, lp.seed, lp.randomize, lp.overlap)
		opts.Machine = m
		opts.Source = src
		opts.Sink = sink
		res, err := demsort.SortStriped[elem.Rec100](demsort.Rec100Codec{}, opts, nil)
		fail(err)
		phaseNames, perPE = res.PhaseNames, res.PerPE[rank]
		outLen = res.OutputLens[rank] // the rank's block-range share of the output
		if sink == nil {
			outLen = res.N // no collect ran; report the fleet total
		}
	} else {
		opts := recordOptions(p, lp.mem, lp.block, lp.seed, lp.randomize, lp.overlap)
		opts.Machine = m
		opts.Source = src
		opts.Sink = sink
		opts.Checkpoint = lp.checkpoint()
		res, err := demsort.Sort[elem.Rec100](demsort.Rec100Codec{}, opts, nil)
		fail(err)
		phaseNames, perPE = res.PhaseNames, res.PerPE[rank]
		outLen = res.OutputLens[rank]
	}
	if part != nil {
		fail(part.Close())
	}

	var phases []string
	for _, ph := range phaseNames {
		// A resumed run never entered the committed phases, so they
		// have no stats entry.
		if st := perPE[ph]; st != nil {
			phases = append(phases, fmt.Sprintf("%s %.3fs", ph, st.Wall))
		}
	}
	fmt.Printf("rank %d: read %d input bytes\n", rank, readBytes.Load())
	fmt.Printf("rank %d: %d records in %.3fs (%s)\n",
		rank, outLen, time.Since(start).Seconds(), strings.Join(phases, " | "))
}

// countingSource wraps a Source so every byte actually read from the
// input is tallied — the evidence behind "resume re-reads nothing".
func countingSource(src func(rank int) (io.Reader, int64, error)) (func(rank int) (io.Reader, int64, error), *atomic.Int64) {
	var n atomic.Int64
	return func(rank int) (io.Reader, int64, error) {
		r, cnt, err := src(rank)
		if err != nil {
			return nil, 0, err
		}
		return &countingReader{r: r, n: &n}, cnt, nil
	}, &n
}

type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// ---------------------------------------------------------------------
// KV16 simulated mode (the original figures workload).
// ---------------------------------------------------------------------

func runKV16Sim(p, n int, mem int64, block int, kind string, randomize, overlap, striped bool, seed uint64) {
	input := workload.Generate(workload.Kind(kind), p, n, seed)
	var ref []demsort.KV16
	for _, part := range input {
		ref = append(ref, part...)
	}
	nBytes := int64(len(ref)) * 16

	if striped {
		opts := demsort.NewStripedOptions(p, mem, block)
		opts.Model = demsort.ScaledModel(block)
		opts.Randomize = randomize
		opts.Overlap = overlap
		opts.Seed = seed
		opts.KeepOutput = true
		res, err := demsort.SortStriped[demsort.KV16](demsort.KV16Codec{}, opts, input)
		fail(err)
		fmt.Printf("globally striped mergesort: P=%d N=%d (%d runs, %d merge batches)\n",
			res.P, res.N, res.Runs, res.Batches)
		for _, ph := range res.PhaseNames {
			read, written := res.PhaseBytes(ph)
			fmt.Printf("  %-20s %10.4fs   io %s\n", ph, res.MaxWall(ph), fmtIO(read, written, nBytes))
		}
		okSorted := true
		for i := 1; i < len(res.Output); i++ {
			if res.Output[i].Key < res.Output[i-1].Key {
				okSorted = false
			}
		}
		verdict(okSorted && workload.Checksum(ref) == workload.Checksum(res.Output))
		fmt.Printf("modelled total: %.4fs (%.2f MB/s equivalent)\n",
			res.TotalWall(), float64(nBytes)/1e6/res.TotalWall())
		return
	}

	opts := demsort.NewOptions(p, mem, block)
	opts.Model = demsort.ScaledModel(block)
	opts.Randomize = randomize
	opts.Overlap = overlap
	opts.Seed = seed
	opts.KeepOutput = true
	res, err := demsort.Sort[demsort.KV16](demsort.KV16Codec{}, opts, input)
	fail(err)
	fmt.Printf("CanonicalMergeSort: P=%d N=%d (R=%d runs, k=%d sub-operations)\n",
		res.P, res.N, res.Runs, res.SubOps)
	for _, ph := range res.PhaseNames {
		read, written := res.PhaseBytes(ph)
		fmt.Printf("  %-20s %10.4fs   io %s\n", ph, res.MaxWall(ph), fmtIO(read, written, nBytes))
	}
	verdict(res.Validate(demsort.KV16Codec{}, input) == nil)
	fmt.Printf("modelled total: %.4fs (%.2f MB/s equivalent)\n",
		res.TotalWall(), float64(nBytes)/1e6/res.TotalWall())
}

func fmtIO(read, written, nBytes int64) string {
	return fmt.Sprintf("read %.2fxN write %.2fxN",
		float64(read)/float64(nBytes), float64(written)/float64(nBytes))
}

func verdict(ok bool) {
	if ok {
		fmt.Println("validation: OK (sorted, exact partition, permutation of input)")
		return
	}
	fmt.Println("validation: FAILED")
	os.Exit(1)
}

func verdictRecords(got, want sortbench.Summary) {
	fmt.Printf("valsort: records=%d unsorted=%d duplicates=%d checksum=%016x\n",
		got.Records, got.Unsorted, got.Duplicate, got.Checksum)
	verdict(got.Unsorted == 0 && got.Records == want.Records && got.Checksum == want.Checksum)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
