// Command demsort sorts a workload with CANONICALMERGESORT (or the
// globally striped variant) and prints the per-phase breakdown,
// validation verdict and throughput — a one-shot view of the system.
//
// Two transports are available:
//
//   - -transport=sim (default): the whole machine is simulated in this
//     process and per-phase times come from the calibrated
//     virtual-time cost model (the paper's figures);
//   - -transport=tcp: one OS process per PE over real sockets, and
//     per-phase times are wall-clock. Without -rank, demsort acts as a
//     launcher: it forks -p local worker processes, waits, and
//     valsort-validates the combined output. With -rank/-peers, it is
//     one worker of a (possibly multi-host) machine.
//
// The tcp transport (and sim with -records) sorts SortBenchmark-style
// 100-byte records: generated in-process gensort-equivalently from
// -seed, or read from a gensort file via -infile. Sorted partitions
// are written to -outdir as raw records (valsort-compatible).
//
// Usage:
//
//	demsort [-p 8] [-n 24576] [-mem 8192] [-block 1024]
//	        [-workload uniform|worstcase|reversed|narrow|allequal|hotkey|sorted]
//	        [-randomize=true] [-striped] [-seed 1]
//	        [-transport sim|tcp] [-records] [-infile data] [-outdir out]
//	        [-rank R -peers host:port,host:port,...]
//
// Examples:
//
//	demsort                                      # simulated, KV16 figures workload
//	demsort -records -outdir out                 # simulated, gensort records
//	demsort -transport=tcp -p 4 -outdir out      # 4 real worker processes on localhost
//	demsort -transport=tcp -rank 1 -peers hostA:7001,hostB:7002  # one PE of a 2-host machine
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	demsort "demsort"
	"demsort/internal/cluster/tcp"
	"demsort/internal/elem"
	"demsort/internal/sortbench"
	"demsort/internal/workload"
)

func main() {
	p := flag.Int("p", 8, "number of PEs (cluster nodes / worker processes)")
	n := flag.Int("n", 24576, "elements (records) per PE")
	mem := flag.Int64("mem", 8192, "internal memory budget per PE (elements)")
	block := flag.Int("block", 1024, "block size in bytes")
	kind := flag.String("workload", "uniform", "input distribution (sim KV16 mode)")
	randomize := flag.Bool("randomize", true, "shuffle input blocks before run formation")
	striped := flag.Bool("striped", false, "use the globally striped algorithm (Section III)")
	seed := flag.Uint64("seed", 1, "random seed")
	transport := flag.String("transport", "sim", "cluster backend: sim (virtual time) or tcp (real processes)")
	records := flag.Bool("records", false, "sort SortBenchmark 100-byte records instead of KV16")
	infile := flag.String("infile", "", "gensort input file (implies -records; rank r takes records [r·n, (r+1)·n))")
	outdir := flag.String("outdir", "", "write sorted partitions here as part-%03d (raw records)")
	rank := flag.Int("rank", -1, "this process's PE rank (tcp worker mode; -1 = launch workers)")
	peers := flag.String("peers", "", "comma-separated host:port listen addresses, one per rank (tcp)")
	flag.Parse()

	if *striped && (*records || *infile != "" || *transport == "tcp") {
		fail(fmt.Errorf("demsort: -striped currently supports only the simulated KV16 workload (its output collection is in-process)"))
	}
	switch *transport {
	case "sim":
		if *records || *infile != "" {
			runRecordsSim(*p, int64(*n), *mem, *block, *seed, *randomize, *infile, *outdir)
			return
		}
		runKV16Sim(*p, *n, *mem, *block, *kind, *randomize, *striped, *seed)
	case "tcp":
		if *rank < 0 {
			runLauncher(*p, int64(*n), *mem, *block, *seed, *randomize, *infile, *outdir)
			return
		}
		if *peers == "" {
			fail(fmt.Errorf("demsort: tcp worker mode needs -peers"))
		}
		runTCPWorker(*rank, strings.Split(*peers, ","), int64(*n), *mem, *block, *seed, *randomize, *infile, *outdir)
	default:
		fail(fmt.Errorf("demsort: unknown transport %q (want sim or tcp)", *transport))
	}
}

// ---------------------------------------------------------------------
// Record workloads (gensort-equivalent).
// ---------------------------------------------------------------------

// loadRecords returns PE rank's n records: the [rank·n, (rank+1)·n)
// tile of the gensort file when given, else generated in-process with
// the same generator the gensort command uses.
func loadRecords(infile string, seed uint64, rank int, n int64) []elem.Rec100 {
	if infile == "" {
		return sortbench.Generate(seed, int64(rank)*n, n)
	}
	f, err := os.Open(infile)
	fail(err)
	defer f.Close()
	buf := make([]byte, n*100)
	if _, err := f.ReadAt(buf, int64(rank)*n*100); err != nil {
		fail(fmt.Errorf("demsort: reading %d records at offset %d from %s: %w", n, int64(rank)*n*100, infile, err))
	}
	recs := make([]elem.Rec100, n)
	for i := range recs {
		copy(recs[i][:], buf[i*100:])
	}
	return recs
}

// inputSummary digests the whole input tile by tile (only Records and
// Checksum matter for the permutation check — the input is unsorted by
// nature, so no cross-tile order folding is needed or wanted).
func inputSummary(infile string, seed uint64, p int, nPer int64) sortbench.Summary {
	var s sortbench.Summary
	for rank := 0; rank < p; rank++ {
		tile := sortbench.Validate(loadRecords(infile, seed, rank, nPer))
		s.Records += tile.Records
		s.Checksum += tile.Checksum
	}
	return s
}

func writePart(outdir string, rank int, recs []elem.Rec100) string {
	path := filepath.Join(outdir, fmt.Sprintf("part-%03d", rank))
	buf := make([]byte, 0, len(recs)*100)
	for i := range recs {
		buf = append(buf, recs[i][:]...)
	}
	fail(os.WriteFile(path, buf, 0o644))
	return path
}

func recordOptions(p int, mem int64, block int, seed uint64, randomize bool) demsort.Options {
	opts := demsort.NewOptions(p, mem, block)
	opts.Model = demsort.ScaledModel(block)
	opts.Randomize = randomize
	opts.Seed = seed
	opts.KeepOutput = true
	return opts
}

// runRecordsSim sorts gensort records on the simulated machine —
// the reference run the tcp backend's output must match bit for bit.
func runRecordsSim(p int, nPer, mem int64, block int, seed uint64, randomize bool, infile, outdir string) {
	input := make([][]elem.Rec100, p)
	for rank := 0; rank < p; rank++ {
		input[rank] = loadRecords(infile, seed, rank, nPer)
	}
	res, err := demsort.Sort[elem.Rec100](demsort.Rec100Codec{}, recordOptions(p, mem, block, seed, randomize), input)
	fail(err)
	nBytes := res.N * 100
	fmt.Printf("CanonicalMergeSort[records]: P=%d N=%d (R=%d runs, k=%d sub-operations)\n",
		res.P, res.N, res.Runs, res.SubOps)
	for _, ph := range res.PhaseNames {
		read, written := res.PhaseBytes(ph)
		fmt.Printf("  %-20s %10.4fs   io %s\n", ph, res.MaxWall(ph), fmtIO(read, written, nBytes))
	}
	var sums []sortbench.Summary
	for rank := 0; rank < p; rank++ {
		sums = append(sums, sortbench.Validate(res.Output[rank]))
		if outdir != "" {
			fail(os.MkdirAll(outdir, 0o755))
			writePart(outdir, rank, res.Output[rank])
		}
	}
	verdictRecords(sortbench.Merge(sums), inputSummary(infile, seed, p, nPer))
	fmt.Printf("modelled total: %.4fs (%.2f MB/s equivalent)\n",
		res.TotalWall(), float64(nBytes)/1e6/res.TotalWall())
}

// ---------------------------------------------------------------------
// tcp worker: one PE of a real-process machine.
// ---------------------------------------------------------------------

func runTCPWorker(rank int, peers []string, nPer, mem int64, block int, seed uint64, randomize bool, infile, outdir string) {
	p := len(peers)
	m, err := tcp.New(tcp.Config{
		Rank:       rank,
		Peers:      peers,
		BlockBytes: block,
		MemElems:   mem,
	})
	fail(err)
	defer m.Close()

	opts := recordOptions(p, mem, block, seed, randomize)
	opts.Machine = m
	input := make([][]elem.Rec100, p)
	input[rank] = loadRecords(infile, seed, rank, nPer)

	start := time.Now()
	res, err := demsort.Sort[elem.Rec100](demsort.Rec100Codec{}, opts, input)
	fail(err)

	var phases []string
	for _, ph := range res.PhaseNames {
		phases = append(phases, fmt.Sprintf("%s %.3fs", ph, res.PerPE[rank][ph].Wall))
	}
	fmt.Printf("rank %d: %d records in %.3fs (%s)\n",
		rank, res.OutputLens[rank], time.Since(start).Seconds(), strings.Join(phases, " | "))
	if outdir != "" {
		fail(os.MkdirAll(outdir, 0o755))
		writePart(outdir, rank, res.Output[rank])
	}
}

// ---------------------------------------------------------------------
// tcp launcher: fork one worker process per PE on localhost.
// ---------------------------------------------------------------------

func runLauncher(p int, nPer, mem int64, block int, seed uint64, randomize bool, infile, outdir string) {
	if outdir == "" {
		outdir = "demsort-out"
	}
	fail(os.MkdirAll(outdir, 0o755))
	peers, err := tcp.ReservePorts(p)
	fail(err)
	exe, err := os.Executable()
	fail(err)

	fmt.Printf("launching %d workers on %s\n", p, strings.Join(peers, ","))
	start := time.Now()
	cmds := make([]*exec.Cmd, p)
	for rank := 0; rank < p; rank++ {
		args := []string{
			"-transport=tcp",
			"-rank", fmt.Sprint(rank),
			"-peers", strings.Join(peers, ","),
			"-n", fmt.Sprint(nPer),
			"-mem", fmt.Sprint(mem),
			"-block", fmt.Sprint(block),
			"-seed", fmt.Sprint(seed),
			fmt.Sprintf("-randomize=%v", randomize),
			"-outdir", outdir,
		}
		if infile != "" {
			args = append(args, "-infile", infile)
		}
		cmd := exec.Command(exe, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		// DEMSORT_ARGS lets the demsort test binary re-enter main()
		// with these flags; the release binary ignores it.
		cmd.Env = append(os.Environ(), "DEMSORT_ARGS="+strings.Join(args, " "))
		fail(cmd.Start())
		cmds[rank] = cmd
	}
	failed := false
	for rank, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "worker %d: %v\n", rank, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	wall := time.Since(start).Seconds()

	// valsort over the partitions, in rank order.
	var sums []sortbench.Summary
	for rank := 0; rank < p; rank++ {
		data, err := os.ReadFile(filepath.Join(outdir, fmt.Sprintf("part-%03d", rank)))
		fail(err)
		recs := make([]elem.Rec100, len(data)/100)
		for i := range recs {
			copy(recs[i][:], data[i*100:])
		}
		sums = append(sums, sortbench.Validate(recs))
	}
	got := sortbench.Merge(sums)
	verdictRecords(got, inputSummary(infile, seed, p, nPer))
	fmt.Printf("wall total: %.3fs (%.2f MB/s across %d processes)\n",
		wall, float64(got.Records)*100/1e6/wall, p)
}

// ---------------------------------------------------------------------
// KV16 simulated mode (the original figures workload).
// ---------------------------------------------------------------------

func runKV16Sim(p, n int, mem int64, block int, kind string, randomize, striped bool, seed uint64) {
	input := workload.Generate(workload.Kind(kind), p, n, seed)
	var ref []demsort.KV16
	for _, part := range input {
		ref = append(ref, part...)
	}
	nBytes := int64(len(ref)) * 16

	if striped {
		opts := demsort.NewStripedOptions(p, mem, block)
		opts.Model = demsort.ScaledModel(block)
		opts.Randomize = randomize
		opts.Seed = seed
		opts.KeepOutput = true
		res, err := demsort.SortStriped[demsort.KV16](demsort.KV16Codec{}, opts, input)
		fail(err)
		fmt.Printf("globally striped mergesort: P=%d N=%d (%d runs, %d merge batches)\n",
			res.P, res.N, res.Runs, res.Batches)
		for _, ph := range res.PhaseNames {
			read, written := res.PhaseBytes(ph)
			fmt.Printf("  %-20s %10.4fs   io %s\n", ph, res.MaxWall(ph), fmtIO(read, written, nBytes))
		}
		okSorted := true
		for i := 1; i < len(res.Output); i++ {
			if res.Output[i].Key < res.Output[i-1].Key {
				okSorted = false
			}
		}
		verdict(okSorted && workload.Checksum(ref) == workload.Checksum(res.Output))
		fmt.Printf("modelled total: %.4fs (%.2f MB/s equivalent)\n",
			res.TotalWall(), float64(nBytes)/1e6/res.TotalWall())
		return
	}

	opts := demsort.NewOptions(p, mem, block)
	opts.Model = demsort.ScaledModel(block)
	opts.Randomize = randomize
	opts.Seed = seed
	opts.KeepOutput = true
	res, err := demsort.Sort[demsort.KV16](demsort.KV16Codec{}, opts, input)
	fail(err)
	fmt.Printf("CanonicalMergeSort: P=%d N=%d (R=%d runs, k=%d sub-operations)\n",
		res.P, res.N, res.Runs, res.SubOps)
	for _, ph := range res.PhaseNames {
		read, written := res.PhaseBytes(ph)
		fmt.Printf("  %-20s %10.4fs   io %s\n", ph, res.MaxWall(ph), fmtIO(read, written, nBytes))
	}
	verdict(res.Validate(demsort.KV16Codec{}, input) == nil)
	fmt.Printf("modelled total: %.4fs (%.2f MB/s equivalent)\n",
		res.TotalWall(), float64(nBytes)/1e6/res.TotalWall())
}

func fmtIO(read, written, nBytes int64) string {
	return fmt.Sprintf("read %.2fxN write %.2fxN",
		float64(read)/float64(nBytes), float64(written)/float64(nBytes))
}

func verdict(ok bool) {
	if ok {
		fmt.Println("validation: OK (sorted, exact partition, permutation of input)")
		return
	}
	fmt.Println("validation: FAILED")
	os.Exit(1)
}

func verdictRecords(got, want sortbench.Summary) {
	fmt.Printf("valsort: records=%d unsorted=%d duplicates=%d checksum=%016x\n",
		got.Records, got.Unsorted, got.Duplicate, got.Checksum)
	verdict(got.Unsorted == 0 && got.Records == want.Records && got.Checksum == want.Checksum)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
