// Command demsort sorts a generated workload on the simulated
// distributed-memory cluster and prints the per-phase breakdown,
// validation verdict and throughput — a one-shot view of the system.
//
// Usage:
//
//	demsort [-p 8] [-n 24576] [-mem 8192] [-block 1024]
//	        [-workload uniform|worstcase|reversed|narrow|allequal|hotkey|sorted]
//	        [-randomize=true] [-striped] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	demsort "demsort"
	"demsort/internal/workload"
)

func main() {
	p := flag.Int("p", 8, "number of PEs (cluster nodes)")
	n := flag.Int("n", 24576, "elements per PE")
	mem := flag.Int64("mem", 8192, "internal memory budget per PE (elements)")
	block := flag.Int("block", 1024, "block size in bytes")
	kind := flag.String("workload", "uniform", "input distribution")
	randomize := flag.Bool("randomize", true, "shuffle input blocks before run formation")
	striped := flag.Bool("striped", false, "use the globally striped algorithm (Section III)")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	input := workload.Generate(workload.Kind(*kind), *p, *n, *seed)
	var ref []demsort.KV16
	for _, part := range input {
		ref = append(ref, part...)
	}
	nBytes := int64(len(ref)) * 16

	if *striped {
		opts := demsort.NewStripedOptions(*p, *mem, *block)
		opts.Model = demsort.ScaledModel(*block)
		opts.Randomize = *randomize
		opts.Seed = *seed
		opts.KeepOutput = true
		res, err := demsort.SortStriped[demsort.KV16](demsort.KV16Codec{}, opts, input)
		fail(err)
		fmt.Printf("globally striped mergesort: P=%d N=%d (%d runs, %d merge batches)\n",
			res.P, res.N, res.Runs, res.Batches)
		for _, ph := range res.PhaseNames {
			read, written := res.PhaseBytes(ph)
			fmt.Printf("  %-20s %10.4fs   io %s\n", ph, res.MaxWall(ph), fmtIO(read, written, nBytes))
		}
		okSorted := true
		for i := 1; i < len(res.Output); i++ {
			if res.Output[i].Key < res.Output[i-1].Key {
				okSorted = false
			}
		}
		verdict(okSorted && workload.Checksum(ref) == workload.Checksum(res.Output))
		fmt.Printf("modelled total: %.4fs (%.2f MB/s equivalent)\n",
			res.TotalWall(), float64(nBytes)/1e6/res.TotalWall())
		return
	}

	opts := demsort.NewOptions(*p, *mem, *block)
	opts.Model = demsort.ScaledModel(*block)
	opts.Randomize = *randomize
	opts.Seed = *seed
	opts.KeepOutput = true
	res, err := demsort.Sort[demsort.KV16](demsort.KV16Codec{}, opts, input)
	fail(err)
	fmt.Printf("CanonicalMergeSort: P=%d N=%d (R=%d runs, k=%d sub-operations)\n",
		res.P, res.N, res.Runs, res.SubOps)
	for _, ph := range res.PhaseNames {
		read, written := res.PhaseBytes(ph)
		fmt.Printf("  %-20s %10.4fs   io %s\n", ph, res.MaxWall(ph), fmtIO(read, written, nBytes))
	}
	verdict(res.Validate(demsort.KV16Codec{}, input) == nil)
	fmt.Printf("modelled total: %.4fs (%.2f MB/s equivalent)\n",
		res.TotalWall(), float64(nBytes)/1e6/res.TotalWall())
}

func fmtIO(read, written, nBytes int64) string {
	return fmt.Sprintf("read %.2fxN write %.2fxN",
		float64(read)/float64(nBytes), float64(written)/float64(nBytes))
}

func verdict(ok bool) {
	if ok {
		fmt.Println("validation: OK (sorted, exact partition, permutation of input)")
		return
	}
	fmt.Println("validation: FAILED")
	os.Exit(1)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
