package main

// The tcp fleet launcher: spawns one worker process per rank — forked
// locally for loopback placements, over ssh for remote hostfile hosts
// — streams their logs with a per-rank prefix, and supervises the
// fleet. Failure handling is what makes it cluster-grade:
//
//   - first non-zero exit: the survivors get a short grace period to
//     abort on their own (a lost peer unwinds them with "lost rank"),
//     then are killed, and the launcher exits 1 promptly instead of
//     waiting for every rank to unwind;
//   - the ReservePorts close-then-rebind race: a worker that cannot
//     bind its reserved port exits with exitListenRace (tcp.ErrBind),
//     and the launcher reaps the fleet and retries on fresh ports.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"demsort/internal/blockio"
	"demsort/internal/cluster/tcp"
	"demsort/internal/sortbench"
)

// exitListenRace is the exit code a worker uses when its reserved
// listen address was grabbed by another process (tcp.ErrBind): the
// launcher's signal to retry the fleet on freshly reserved ports.
const exitListenRace = 3

// graceAfterFailure is how long survivors get to unwind on their own
// ("lost rank" aborts) after the first worker failure before the
// launcher kills them.
const graceAfterFailure = 2 * time.Second

// launchParams bundles the sort flags every worker receives.
type launchParams struct {
	nPer      int64
	mem       int64
	block     int
	seed      uint64
	randomize bool
	overlap   bool
	striped   bool
	infile    string
	outdir    string
	store     string
	workdir   string
	fault     string
	restart   int    // launcher: fleet restarts left after a failure
	resume    bool   // rebuild state from committed manifests
	durable   bool   // commit phase checkpoints (implies surviving spill files)
	jobid     string // job identity (manifests + tcp handshake)
	epoch     int    // fleet incarnation number
}

// workerArgs renders the demsort worker command line for one rank.
func (lp launchParams) workerArgs(rank int, peers []string) []string {
	args := []string{
		"-transport=tcp",
		"-rank", fmt.Sprint(rank),
		"-peers", strings.Join(peers, ","),
		"-n", fmt.Sprint(lp.nPer),
		"-mem", fmt.Sprint(lp.mem),
		"-block", fmt.Sprint(lp.block),
		"-seed", fmt.Sprint(lp.seed),
		fmt.Sprintf("-randomize=%v", lp.randomize),
		fmt.Sprintf("-overlap=%v", lp.overlap),
		"-store", lp.store,
	}
	args = append(args, "-jobid", lp.jobid, "-epoch", fmt.Sprint(lp.epoch))
	if lp.striped {
		args = append(args, "-striped")
	}
	if lp.durable {
		args = append(args, "-durable")
	}
	if lp.resume {
		args = append(args, "-resume")
	}
	if lp.workdir != "" {
		args = append(args, "-workdir", lp.workdir)
	}
	if lp.outdir != "" {
		args = append(args, "-outdir", lp.outdir)
	}
	if lp.infile != "" {
		args = append(args, "-infile", lp.infile)
	}
	if lp.fault != "" {
		// The spec is space-free by construction (ParseSpec rejects
		// nothing else, and DEMSORT_ARGS splits on spaces).
		args = append(args, "-fault", lp.fault)
	}
	return args
}

// prefixWriter tags each line one worker writes with its rank, so the
// interleaved logs of a fleet stay attributable. Each worker has its
// own instance; lines are written to the underlying writer whole.
type prefixWriter struct {
	mu     sync.Mutex
	w      io.Writer
	prefix string
	tail   []byte // unterminated partial line
}

func (pw *prefixWriter) Write(p []byte) (int, error) {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	n := len(p)
	pw.tail = append(pw.tail, p...)
	for {
		i := bytes.IndexByte(pw.tail, '\n')
		if i < 0 {
			return n, nil
		}
		line := pw.tail[:i+1]
		if _, err := fmt.Fprintf(pw.w, "%s%s", pw.prefix, line); err != nil {
			return n, err
		}
		pw.tail = pw.tail[i+1:]
	}
}

// flush emits any unterminated final line.
func (pw *prefixWriter) flush() {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	if len(pw.tail) > 0 {
		fmt.Fprintf(pw.w, "%s%s\n", pw.prefix, pw.tail)
		pw.tail = nil
	}
}

// worker is one spawned rank process.
type worker struct {
	rank int
	cmd  *exec.Cmd
	out  *prefixWriter
	errW *prefixWriter
}

// spawnFleet starts one worker per placement. Loopback placements
// fork this binary (DEMSORT_ARGS keeps the test binary re-entrant,
// exactly like the single-host launcher always has); remote ones run
// remoteExe on the placement's host via sshCmd.
func spawnFleet(placements []tcp.Placement, peers []string, lp launchParams, sshCmd, remoteExe string) ([]*worker, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	if remoteExe == "" {
		remoteExe = exe
	}
	workers := make([]*worker, 0, len(placements))
	for _, pl := range placements {
		args := lp.workerArgs(pl.Rank, peers)
		var cmd *exec.Cmd
		if pl.Local {
			cmd = exec.Command(exe, args...)
			// DEMSORT_ARGS lets the demsort test binary re-enter main()
			// with these flags; the release binary ignores it.
			cmd.Env = append(os.Environ(), "DEMSORT_ARGS="+strings.Join(args, " "))
		} else {
			// -tt forces a remote tty so killing the ssh client (fleet
			// reaping) HUPs the remote worker instead of orphaning it
			// on its listen port.
			cmd = exec.Command(sshCmd, append([]string{"-o", "BatchMode=yes", "-tt", pl.Host, remoteExe}, args...)...)
		}
		w := &worker{
			rank: pl.Rank,
			cmd:  cmd,
			out:  &prefixWriter{w: os.Stdout, prefix: fmt.Sprintf("[w%d] ", pl.Rank)},
			errW: &prefixWriter{w: os.Stderr, prefix: fmt.Sprintf("[w%d] ", pl.Rank)},
		}
		cmd.Stdout, cmd.Stderr = w.out, w.errW
		if err := cmd.Start(); err != nil {
			killFleet(workers)
			return nil, fmt.Errorf("spawning worker %d on %s: %w", pl.Rank, pl.Host, err)
		}
		workers = append(workers, w)
	}
	return workers, nil
}

func killFleet(workers []*worker) {
	for _, w := range workers {
		w.cmd.Process.Kill() // no-op error if already gone
	}
}

// waitFleet supervises the running fleet. Every worker failure is
// reported as it lands; after the first one, survivors get
// graceAfterFailure to abort on their own (the transport's internal
// abort propagation unwinds them), then whatever still runs is killed.
// Returns the first failure and the ranks that hit the listen-race
// exit code (so the launcher can log the contested addresses).
func waitFleet(workers []*worker) (firstErr error, raceRanks []int) {
	type exit struct {
		rank int
		err  error
	}
	ch := make(chan exit, len(workers))
	for _, w := range workers {
		go func(w *worker) { ch <- exit{w.rank, w.cmd.Wait()} }(w)
	}
	var grace <-chan time.Time
	reaped := false
	for done := 0; done < len(workers); {
		select {
		case e := <-ch:
			done++
			if e.err == nil {
				continue
			}
			if exitCode(e.err) == exitListenRace {
				raceRanks = append(raceRanks, e.rank)
			}
			if reaped && exitCode(e.err) == -1 {
				continue // our own kill, not a worker failure
			}
			fmt.Fprintf(os.Stderr, "worker %d: %v\n", e.rank, e.err)
			if firstErr == nil {
				firstErr = fmt.Errorf("worker %d: %w", e.rank, e.err)
				grace = time.After(graceAfterFailure)
			}
		case <-grace:
			fmt.Fprintf(os.Stderr, "reaping the remaining workers\n")
			killFleet(workers)
			reaped = true
			grace = nil
		}
	}
	for _, w := range workers {
		w.out.flush()
		w.errW.flush()
	}
	return firstErr, raceRanks
}

func exitCode(err error) int {
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	return -1
}

// runLauncher drives a tcp fleet end to end: placement (hostfile or p
// loopback ranks), port assignment, spawn, supervision with
// listen-race retry, and — when every rank is local — valsort over
// the combined partitions.
func runLauncher(p int, lp launchParams, hostfilePath string, basePort int, sshCmd, remoteExe string) {
	if lp.outdir == "" {
		lp.outdir = "demsort-out"
	}
	fail(os.MkdirAll(lp.outdir, 0o755))
	if lp.store == "file" && lp.workdir == "" {
		lp.workdir = filepath.Join(lp.outdir, "work")
	}
	// Restartable jobs checkpoint from the first incarnation on (a
	// restart can only resume what a previous incarnation committed);
	// ram-backed or striped fleets restart from scratch instead.
	if lp.restart > 0 && lp.store == "file" && !lp.striped {
		lp.durable = true
	}
	// Standalone `demsort -resume`: adopt the on-disk job — scan the
	// surviving manifests and come back one epoch above the newest.
	if lp.resume {
		maxEpoch := -1
		for rank := 0; rank < p; rank++ {
			if man, err := blockio.LoadManifest(lp.workdir, rank); err == nil && man.Epoch > maxEpoch {
				maxEpoch = man.Epoch
			}
		}
		if lp.epoch <= maxEpoch {
			lp.epoch = maxEpoch + 1
		}
		fmt.Printf("resuming job %q from %s at epoch %d\n", lp.jobid, lp.workdir, lp.epoch)
	}

	var placements []tcp.Placement
	if hostfilePath != "" {
		hosts, err := tcp.LoadHostfile(hostfilePath)
		fail(err)
		placements, err = tcp.PlaceRanks(hosts, basePort)
		fail(err)
	} else {
		for rank := 0; rank < p; rank++ {
			placements = append(placements, tcp.Placement{Rank: rank, Host: "127.0.0.1", Local: true})
		}
	}
	p = len(placements)
	allLocal := true
	for _, pl := range placements {
		allLocal = allLocal && pl.Local
	}

	// Listen-race retries back off with jitter instead of immediately
	// re-reserving: the contention that stole one port (another test
	// fleet, a mass of short-lived dials) rarely clears in microseconds,
	// and stampeding back in lockstep just re-rolls the same dice.
	const maxAttempts = 5
	backoff := tcp.NewBackoff(50*time.Millisecond, time.Second, uint64(os.Getpid()))
	start := time.Now()
	for attempt := 1; ; attempt++ {
		// Assign the launcher-reserved ephemeral ports (loopback
		// placements without an explicit hostfile port).
		peers := make([]string, p)
		var ephemeral []int
		for i, pl := range placements {
			if pl.Listen == "" {
				ephemeral = append(ephemeral, i)
			} else {
				peers[i] = pl.Listen
			}
		}
		if len(ephemeral) > 0 {
			addrs, err := tcp.ReservePorts(len(ephemeral))
			fail(err)
			for j, i := range ephemeral {
				peers[i] = addrs[j]
			}
		}
		fmt.Printf("launching %d workers on %s\n", p, strings.Join(peers, ","))
		workers, err := spawnFleet(placements, peers, lp, sshCmd, remoteExe)
		fail(err)
		firstErr, raceRanks := waitFleet(workers)
		if firstErr == nil {
			break
		}
		if len(raceRanks) > 0 && len(ephemeral) > 0 && attempt < maxAttempts {
			for _, r := range raceRanks {
				fmt.Fprintf(os.Stderr, "attempt %d/%d: reserved address %s was taken before rank %d bound it\n",
					attempt, maxAttempts, peers[r], r)
			}
			wait := backoff.Next()
			fmt.Fprintf(os.Stderr, "retrying with fresh ports in %v\n", wait.Round(time.Millisecond))
			time.Sleep(wait)
			continue
		}
		// Worker death with restarts left: re-drive the job as a new
		// incarnation. A durable fleet resumes from the last committed
		// phase on the surviving workdir; otherwise it starts over. The
		// fault spec is not re-armed — it modelled the crash that
		// already happened, and a deterministic fault would just kill
		// the replacement fleet at the same call.
		if lp.restart > 0 {
			lp.restart--
			lp.epoch++
			lp.fault = ""
			if lp.durable {
				lp.resume = true
				fmt.Printf("re-admitting workers at job epoch %d (resuming from last committed phase)\n", lp.epoch)
			} else {
				fmt.Printf("restarting job from scratch at job epoch %d\n", lp.epoch)
			}
			continue
		}
		fmt.Fprintf(os.Stderr, "fleet failed: %v\n", firstErr)
		os.Exit(1)
	}
	wall := time.Since(start).Seconds()

	if !allLocal {
		fmt.Printf("fleet done in %.3fs; partitions live in %s on each worker's host (valsort them there)\n", wall, lp.outdir)
		return
	}

	// valsort over the partitions, in rank order, streaming (the
	// combined output may not fit in the launcher's RAM).
	var sums []sortbench.Summary
	for rank := 0; rank < p; rank++ {
		sums = append(sums, partSummary(lp.outdir, rank))
	}
	got := sortbench.Merge(sums)
	verdictRecords(got, inputSummary(lp, p))
	fmt.Printf("wall total: %.3fs (%.2f MB/s across %d processes)\n",
		wall, float64(got.Records)*100/1e6/wall, p)
}
