package main

// Acceptance tests for the checkpoint/restart plane: a worker killed
// after run formation, a launcher that re-admits the fleet at the next
// epoch, and a resumed sort that never re-reads a byte of input.

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestRestartResumesWithoutReread is the issue's acceptance scenario:
// inject rank=2,action=die after run formation on a 4-worker
// file-backed tcp fleet with -restart=1. The launcher must re-admit
// the workers at the next job epoch, resume from the manifests, and
// produce output byte-identical to an unfaulted sim run — with every
// resumed worker reporting ZERO input bytes read.
func TestRestartResumesWithoutReread(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	simDir := filepath.Join(tmp, "sim")
	tcpDir := filepath.Join(tmp, "tcp")

	runDemsort := func(args string) string {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), "DEMSORT_ARGS="+args)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("demsort %s: %v\n%s", args, err, out)
		}
		return string(out)
	}

	simOut := runDemsort("-records -p 4 -n 2000 -seed 55 -outdir " + simDir)
	tcpOut := runDemsort("-transport=tcp -p 4 -n 2000 -seed 55 -store=file -restart=1" +
		" -fault rank=2,action=die,op=AllToAllv,phase=all-to-all -outdir " + tcpDir)
	for _, out := range []string{simOut, tcpOut} {
		if !strings.Contains(out, "validation: OK") {
			t.Fatalf("run did not validate:\n%s", out)
		}
	}
	if !strings.Contains(tcpOut, "worker 2") {
		t.Fatalf("injected death did not fire:\n%s", tcpOut)
	}
	if !strings.Contains(tcpOut, "re-admitting workers at job epoch 1 (resuming from last committed phase)") {
		t.Fatalf("launcher did not re-admit the fleet via resume:\n%s", tcpOut)
	}
	// Zero re-read: every rank of the resumed incarnation reports it
	// pulled nothing from its input source (the crashed incarnation's
	// ranks never reach this print).
	for rank := 0; rank < 4; rank++ {
		if !strings.Contains(tcpOut, fmt.Sprintf("rank %d: read 0 input bytes", rank)) {
			t.Fatalf("rank %d re-read input on resume:\n%s", rank, tcpOut)
		}
	}
	for rank := 0; rank < 4; rank++ {
		name := fmt.Sprintf("part-%03d", rank)
		simPart, err := os.ReadFile(filepath.Join(simDir, name))
		if err != nil {
			t.Fatal(err)
		}
		tcpPart, err := os.ReadFile(filepath.Join(tcpDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(simPart) != string(tcpPart) {
			t.Fatalf("%s differs between the unfaulted sim run and the restarted tcp run", name)
		}
	}
}

// A RAM-backed fleet has nothing durable to resume from: -restart must
// fall back to a from-scratch rerun at the next epoch and still
// validate clean.
func TestRestartFromScratchRAM(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	outdir := filepath.Join(t.TempDir(), "out")
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"DEMSORT_ARGS=-transport=tcp -p 4 -n 1200 -seed 7 -restart=1"+
			" -fault rank=1,action=die,op=AllToAllv,phase=all-to-all -outdir "+outdir)
	out, runErr := cmd.CombinedOutput()
	if runErr != nil {
		t.Fatalf("launcher did not survive the restart: %v\n%s", runErr, out)
	}
	text := string(out)
	if !strings.Contains(text, "restarting job from scratch at job epoch 1") {
		t.Fatalf("RAM fleet did not restart from scratch:\n%s", text)
	}
	if !strings.Contains(text, "validation: OK") {
		t.Fatalf("restarted run did not validate:\n%s", text)
	}
}

// The striped sorter has no checkpoint plane; asking for one must be
// an upfront, actionable error — not a run that quietly cannot resume.
func TestDurableStripedRejected(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"DEMSORT_ARGS=-striped -durable -transport=tcp -store=file -p 2 -n 500 -outdir "+
			filepath.Join(t.TempDir(), "out"))
	out, runErr := cmd.CombinedOutput()
	if runErr == nil {
		t.Fatalf("-durable -striped was accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "striped") {
		t.Fatalf("rejection does not name the conflict:\n%s", out)
	}
}
