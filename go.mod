module demsort

go 1.24
