// Package sim is the simulated backend of the cluster transport plane:
// P PEs as goroutines in one process, one private address space each,
// with two deliberate parallels to the paper's MVAPICH/InfiniBand
// testbed:
//
//   - data really crosses between goroutine-private heaps, so locality
//     and communication-volume claims are measured, not assumed;
//   - every primitive synchronises the participating virtual clocks
//     and charges network time from the cost model (including fabric
//     congestion as a function of P), so phase timings reproduce the
//     shape of the paper's figures.
//
// Collectives are generation-synchronised rendezvous: all P PEs
// deposit (opName, entryTime, payload), the last arrival runs a
// compute function over the rank-ordered inputs — deterministic
// regardless of goroutine scheduling. Point-to-point messages go
// through growable per-(src,dst) mailboxes (initial capacity from
// Config.P2PDepth) that never block the sender, modelling MPI's eager
// buffering: deep prefetch/overlap patterns cannot deadlock on inbox
// capacity.
package sim

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"demsort/internal/blockio"
	"demsort/internal/cluster"
	"demsort/internal/membudget"
	"demsort/internal/vtime"
)

// Config describes the simulated machine.
type Config struct {
	// P is the number of PEs (cluster nodes; one PE = one node, §VI).
	P int
	// BlockBytes is the external-memory block size B in bytes.
	BlockBytes int
	// MemElems is the per-PE internal memory budget m in elements
	// (0 = untracked).
	MemElems int64
	// Model is the virtual-time cost model.
	Model vtime.CostModel
	// NewStore creates the block store backing one PE's volume; nil
	// defaults to RAM-backed stores.
	NewStore func(rank int) (blockio.Store, error)
	// P2PDepth is the initial capacity, in messages, of each
	// (src, dst) point-to-point mailbox (0 = DefaultP2PDepth).
	// Mailboxes grow beyond it on demand — the knob sizes the
	// steady-state allocation, it is not a blocking bound.
	P2PDepth int
	// Ctx optionally cancels the job from the outside: when it is
	// done, the machine aborts and Run returns *cluster.ErrAborted
	// with Rank cluster.JobRank. (Liveness machinery beyond this —
	// heartbeats, per-op deadlines — belongs to the multi-process tcp
	// backend; a single-process simulation cannot half-die.)
	Ctx context.Context
}

// DefaultP2PDepth is the default initial mailbox capacity.
const DefaultP2PDepth = 64

// Machine is the simulated cluster; it implements cluster.Machine.
type Machine struct {
	cfg   Config
	nodes []*cluster.Node
	eps   []*endpoint
	rv    *rendezvous
	p2p   []*mailbox // one mailbox per (src*P+dst)

	abortOnce sync.Once
	abortFlag atomic.Bool
	abortErr  error // always *cluster.ErrAborted once set

	done     chan struct{} // closed on abort or Close: the ctx watcher exits
	stopOnce sync.Once

	boxBytes atomic.Int64 // payload bytes queued undelivered across p2p mailboxes
	boxPeak  atomic.Int64 // high-water mark of boxBytes
}

// New builds a machine; Close releases the stores.
func New(cfg Config) (*Machine, error) {
	if cfg.P < 1 {
		return nil, fmt.Errorf("sim: need at least one PE, got %d", cfg.P)
	}
	if cfg.BlockBytes <= 0 {
		return nil, fmt.Errorf("sim: block size must be positive, got %d", cfg.BlockBytes)
	}
	if cfg.P2PDepth <= 0 {
		cfg.P2PDepth = DefaultP2PDepth
	}
	m := &Machine{cfg: cfg, done: make(chan struct{})}
	m.rv = newRendezvous(cfg.P, m)
	m.p2p = make([]*mailbox, cfg.P*cfg.P)
	for i := range m.p2p {
		m.p2p[i] = newMailbox(cfg.P2PDepth)
	}
	for rank := 0; rank < cfg.P; rank++ {
		var store blockio.Store
		var err error
		if cfg.NewStore != nil {
			store, err = cfg.NewStore(rank)
			if err != nil {
				return nil, err
			}
		} else {
			store = blockio.NewMemStore()
		}
		clock := vtime.NewClock()
		ep := &endpoint{m: m, rank: rank, clock: clock}
		m.eps = append(m.eps, ep)
		m.nodes = append(m.nodes, cluster.NewNode(
			ep,
			clock, // *vtime.Clock satisfies cluster.Stats
			blockio.NewVolume(store, cfg.BlockBytes, rank, cfg.Model, clock),
			membudget.New(cfg.MemElems),
		))
	}
	if cfg.Ctx != nil {
		go func() {
			select {
			case <-cfg.Ctx.Done():
				m.Abort(cfg.Ctx.Err())
			case <-m.done:
			}
		}()
	}
	return m, nil
}

// Close releases the per-PE stores.
func (m *Machine) Close() error {
	m.stopOnce.Do(func() { close(m.done) })
	var first error
	for _, n := range m.nodes {
		if err := n.Vol.Store().Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Nodes returns the PE contexts (for post-run stats inspection).
func (m *Machine) Nodes() []*cluster.Node { return m.nodes }

// P returns the machine size.
func (m *Machine) P() int { return m.cfg.P }

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Clock returns PE rank's virtual clock (tests and figure harnesses).
func (m *Machine) Clock(rank int) *vtime.Clock { return m.eps[rank].clock }

// abort is panicked through PE goroutines when any PE fails, so peers
// blocked in collectives unwind instead of deadlocking.
type abort struct{}

// Run executes fn on every PE concurrently and returns the first
// error. If a PE fails, the others are unblocked and unwound.
func (m *Machine) Run(fn func(*cluster.Node) error) error {
	var wg sync.WaitGroup
	for _, n := range m.nodes {
		wg.Add(1)
		go func(n *cluster.Node) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, isAbort := r.(abort); isAbort {
						return // unwound because a peer failed
					}
					m.fail(cluster.Abortedf(n.Rank, "sim: PE %d panicked: %v", n.Rank, r))
				}
			}()
			if err := fn(n); err != nil {
				m.fail(cluster.AsAborted(n.Rank, fmt.Errorf("PE %d: %w", n.Rank, err)))
			}
		}(n)
	}
	wg.Wait()
	return m.abortErr
}

// Abort implements cluster.Machine: external job-level cancellation —
// every blocked PE unwinds and Run returns *cluster.ErrAborted with
// Rank cluster.JobRank.
func (m *Machine) Abort(cause error) {
	m.fail(&cluster.ErrAborted{Rank: cluster.JobRank, Cause: cause})
}

// fail records the first failure — wrapped as *cluster.ErrAborted, the
// first attribution winning — and wakes every PE blocked in a
// collective or a p2p receive. abortErr is guarded by the rendezvous
// mutex: aborted() is only called with it held, and Run reads the
// error only after all PE goroutines have joined. Callers pass an
// already-attributed *ErrAborted when they know the culprit rank;
// plain errors are attributed to no PE in particular (JobRank).
func (m *Machine) fail(err error) {
	m.abortOnce.Do(func() {
		ae := cluster.AsAborted(cluster.JobRank, err)
		m.rv.mu.Lock()
		m.abortErr = ae
		m.abortFlag.Store(true)
		m.rv.cond.Broadcast()
		m.rv.mu.Unlock()
		m.stopOnce.Do(func() { close(m.done) })
		for _, box := range m.p2p {
			box.wake()
		}
	})
}

// aborted must be called with rv.mu held.
func (m *Machine) aborted() bool { return m.abortErr != nil }

// ---------------------------------------------------------------------
// Point-to-point mailboxes.
//
// Historically these were fixed 1024-deep channels, which could
// deadlock sender and receiver on deep prefetch/overlap patterns (both
// PEs fill each other's inbox before either drains). A mailbox is an
// unbounded FIFO ring: Send never blocks (MPI eager buffering), only
// Recv waits, and an abort wakes all waiters.
// ---------------------------------------------------------------------

type message struct {
	tag     int
	payload []byte
	arrival float64
}

type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	buf  []message // ring
	head int
	n    int
}

func newMailbox(capacity int) *mailbox {
	b := &mailbox{buf: make([]message, capacity)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// push enqueues without ever blocking, growing the ring as needed.
func (b *mailbox) push(msg message) {
	b.mu.Lock()
	if b.n == len(b.buf) {
		grown := make([]message, 2*len(b.buf)+1)
		for i := 0; i < b.n; i++ {
			grown[i] = b.buf[(b.head+i)%len(b.buf)]
		}
		b.buf = grown
		b.head = 0
	}
	b.buf[(b.head+b.n)%len(b.buf)] = msg
	b.n++
	b.cond.Signal()
	b.mu.Unlock()
}

// pop dequeues, blocking until a message arrives or the machine
// aborts; ok is false on abort.
func (b *mailbox) pop(m *Machine) (message, bool) {
	b.mu.Lock()
	for b.n == 0 && !m.abortFlag.Load() {
		b.cond.Wait()
	}
	if b.n == 0 {
		b.mu.Unlock()
		return message{}, false
	}
	msg := b.buf[b.head]
	b.buf[b.head] = message{}
	b.head = (b.head + 1) % len(b.buf)
	b.n--
	b.mu.Unlock()
	return msg, true
}

// wake unblocks all waiters (abort path).
func (b *mailbox) wake() {
	b.mu.Lock()
	b.cond.Broadcast()
	b.mu.Unlock()
}

// ---------------------------------------------------------------------
// Rendezvous: generation-synchronised collectives.
// ---------------------------------------------------------------------

type collIn struct {
	op   string
	t    float64
	data any
}

type collOut struct {
	t    float64
	data any
	net  float64 // network seconds to charge
	msgs int64
	sent int64
	recv int64
}

type rendezvous struct {
	mu      sync.Mutex
	cond    *sync.Cond
	p       int
	m       *Machine
	arrived int
	gen     uint64
	ins     []collIn
	outs    []collOut
}

func newRendezvous(p int, m *Machine) *rendezvous {
	rv := &rendezvous{p: p, m: m, ins: make([]collIn, p), outs: make([]collOut, p)}
	rv.cond = sync.NewCond(&rv.mu)
	return rv
}

// do performs one collective step for rank. compute receives the
// rank-ordered inputs and must fill outs.
func (rv *rendezvous) do(rank int, op string, t float64, data any, compute func(ins []collIn, outs []collOut)) collOut {
	rv.mu.Lock()
	if rv.m.aborted() {
		rv.mu.Unlock()
		panic(abort{})
	}
	rv.ins[rank] = collIn{op: op, t: t, data: data}
	rv.arrived++
	if rv.arrived == rv.p {
		for i := range rv.ins {
			if rv.ins[i].op != op {
				rv.mu.Unlock()
				rv.m.fail(cluster.Abortedf(i, "sim: collective mismatch: PE %d in %q, PE %d in %q",
					i, rv.ins[i].op, rank, op))
				panic(abort{})
			}
		}
		compute(rv.ins, rv.outs)
		rv.arrived = 0
		for i := range rv.ins {
			rv.ins[i] = collIn{}
		}
		rv.gen++
		out := rv.outs[rank]
		rv.cond.Broadcast()
		rv.mu.Unlock()
		return out
	}
	gen := rv.gen
	for rv.gen == gen && !rv.m.aborted() {
		rv.cond.Wait()
	}
	if rv.m.aborted() {
		rv.mu.Unlock()
		panic(abort{})
	}
	out := rv.outs[rank]
	rv.mu.Unlock()
	return out
}

// maxEntry returns the latest entry time among the inputs — collectives
// complete no earlier than the last participant arrives.
func maxEntry(ins []collIn) float64 {
	t := math.Inf(-1)
	for i := range ins {
		if ins[i].t > t {
			t = ins[i].t
		}
	}
	return t
}

// latencyTerm is the per-collective startup cost: a tree of messages.
func (m *Machine) latencyTerm() float64 {
	p := float64(m.cfg.P)
	return m.cfg.Model.NetLatency * math.Ceil(math.Log2(p)+1)
}

// ---------------------------------------------------------------------
// endpoint: the per-PE cluster.Transport implementation.
// ---------------------------------------------------------------------

type endpoint struct {
	m     *Machine
	rank  int
	clock *vtime.Clock
}

// Rank implements cluster.Transport.
func (e *endpoint) Rank() int { return e.rank }

// P implements cluster.Transport.
func (e *endpoint) P() int { return e.m.cfg.P }

// charge applies a collective result to the PE's clock. The forced
// clock jump — from this PE's entry time to the collective's completion
// — is the time it sat blocked waiting for stragglers and the wire, so
// it is charged as blocked time (overlapped transfers that complete
// before the PE arrives jump nothing and charge nothing).
func (e *endpoint) charge(out collOut) {
	entry := e.clock.Now()
	e.clock.AdvanceTo(out.t)
	st := e.clock.Cur()
	if out.t > entry {
		st.BlockedTime += out.t - entry
	}
	st.NetTime += out.net
	st.Messages += out.msgs
	st.BytesSent += out.sent
	st.BytesRecv += out.recv
}

// Barrier implements cluster.Transport.
func (e *endpoint) Barrier() {
	out := e.m.rv.do(e.rank, "barrier", e.clock.Now(), nil, func(ins []collIn, outs []collOut) {
		t := maxEntry(ins) + e.m.latencyTerm()
		for i := range outs {
			outs[i] = collOut{t: t}
		}
	})
	e.charge(out)
}

// AllToAllv implements cluster.Transport.
func (e *endpoint) AllToAllv(send [][]byte) [][]byte {
	if len(send) != e.m.cfg.P {
		panic(fmt.Sprintf("sim: AllToAllv needs %d destination slots, got %d", e.m.cfg.P, len(send)))
	}
	out := e.m.rv.do(e.rank, "alltoallv", e.clock.Now(), send, func(ins []collIn, outs []collOut) {
		p := e.m.cfg.P
		t0 := maxEntry(ins)
		bw := e.m.cfg.Model.EffNetBandwidth(p)
		lat := e.m.latencyTerm()
		// Route and cost per PE: time is governed by the max of bytes
		// in and bytes out on its NIC (full-duplex would be min; we
		// follow the paper's single-rail measurement and use max).
		for i := 0; i < p; i++ {
			recv := make([][]byte, p)
			var bytesIn, bytesOut int64
			var msgs int64
			for j := 0; j < p; j++ {
				sendJ := ins[j].data.([][]byte)
				recv[j] = sendJ[i]
				if i != j && len(sendJ[i]) > 0 {
					bytesIn += int64(len(sendJ[i]))
					msgs++
				}
			}
			sendI := ins[i].data.([][]byte)
			for j := 0; j < p; j++ {
				if j != i {
					bytesOut += int64(len(sendI[j]))
				}
			}
			vol := bytesIn
			if bytesOut > vol {
				vol = bytesOut
			}
			net := float64(vol)/bw + lat
			outs[i] = collOut{
				t:    t0 + net,
				data: recv,
				net:  net,
				msgs: msgs,
				sent: bytesOut,
				recv: bytesIn,
			}
		}
	})
	e.charge(out)
	return out.data.([][]byte)
}

// AllGather implements cluster.Transport.
func (e *endpoint) AllGather(data []byte) [][]byte {
	out := e.m.rv.do(e.rank, "allgather", e.clock.Now(), data, func(ins []collIn, outs []collOut) {
		p := e.m.cfg.P
		t0 := maxEntry(ins)
		bw := e.m.cfg.Model.EffNetBandwidth(p)
		lat := e.m.latencyTerm()
		all := make([][]byte, p)
		var total int64
		for j := 0; j < p; j++ {
			all[j] = ins[j].data.([]byte)
			total += int64(len(all[j]))
		}
		for i := 0; i < p; i++ {
			in := total - int64(len(all[i]))
			net := float64(in)/bw + lat
			outs[i] = collOut{t: t0 + net, data: all, net: net, msgs: int64(p - 1), sent: int64(len(all[i])) * int64(p-1), recv: in}
		}
	})
	e.charge(out)
	return out.data.([][]byte)
}

// Bcast implements cluster.Transport.
func (e *endpoint) Bcast(root int, data []byte) []byte {
	out := e.m.rv.do(e.rank, "bcast", e.clock.Now(), data, func(ins []collIn, outs []collOut) {
		p := e.m.cfg.P
		t0 := maxEntry(ins)
		bw := e.m.cfg.Model.EffNetBandwidth(p)
		lat := e.m.latencyTerm()
		payload := ins[root].data.([]byte)
		net := float64(len(payload))/bw + lat
		for i := 0; i < p; i++ {
			o := collOut{t: t0 + net, data: payload, net: net}
			if i != root {
				o.recv = int64(len(payload))
				o.msgs = 1
			} else {
				o.sent = int64(len(payload))
			}
			outs[i] = o
		}
	})
	e.charge(out)
	return out.data.([]byte)
}

// AllReduceInt64 implements cluster.Transport.
func (e *endpoint) AllReduceInt64(v int64, op string) int64 {
	out := e.m.rv.do(e.rank, "allreduce:"+op, e.clock.Now(), v, func(ins []collIn, outs []collOut) {
		t := maxEntry(ins) + e.m.latencyTerm()
		acc := ins[0].data.(int64)
		for j := 1; j < len(ins); j++ {
			x := ins[j].data.(int64)
			switch op {
			case "sum":
				acc += x
			case "max":
				if x > acc {
					acc = x
				}
			case "min":
				if x < acc {
					acc = x
				}
			case "or":
				acc |= x
			default:
				panic("sim: unknown reduce op " + op)
			}
		}
		for i := range outs {
			outs[i] = collOut{t: t, data: acc, net: e.m.latencyTerm(), msgs: 1}
		}
	})
	e.charge(out)
	return out.data.(int64)
}

// ExchangeAny implements cluster.Transport.
func (e *endpoint) ExchangeAny(items []any, nominalBytes int) []any {
	if len(items) != e.m.cfg.P {
		panic("sim: ExchangeAny needs P items")
	}
	out := e.m.rv.do(e.rank, "exchangeany", e.clock.Now(), items, func(ins []collIn, outs []collOut) {
		p := e.m.cfg.P
		t0 := maxEntry(ins)
		bw := e.m.cfg.Model.EffNetBandwidth(p)
		lat := e.m.latencyTerm()
		for i := 0; i < p; i++ {
			recv := make([]any, p)
			for j := 0; j < p; j++ {
				recv[j] = ins[j].data.([]any)[i]
			}
			net := float64((p-1)*nominalBytes)/bw + lat
			outs[i] = collOut{t: t0 + net, data: recv, net: net, msgs: int64(p - 1)}
		}
	})
	e.charge(out)
	return out.data.([]any)
}

// Send implements cluster.Transport: the NIC cost is charged and the
// arrival time stamped so the receiver's clock synchronises. Send
// never blocks (mailboxes grow on demand).
func (e *endpoint) Send(dst, tag int, payload []byte) {
	model := e.m.cfg.Model
	dur := float64(len(payload)) / model.EffNetBandwidth(e.m.cfg.P)
	st := e.clock.Cur()
	st.NetTime += dur
	st.BytesSent += int64(len(payload))
	arrival := e.clock.Now() + dur + model.NetLatency
	e.m.p2p[e.rank*e.m.cfg.P+dst].push(message{tag: tag, payload: payload, arrival: arrival})
	total := e.m.boxBytes.Add(int64(len(payload)))
	for {
		peak := e.m.boxPeak.Load()
		if total <= peak || e.m.boxPeak.CompareAndSwap(peak, total) {
			break
		}
	}
}

// Recv implements cluster.Transport, advancing this PE's clock to the
// message's arrival time.
func (e *endpoint) Recv(src, tag int) []byte {
	msg, ok := e.m.p2p[src*e.m.cfg.P+e.rank].pop(e.m)
	if !ok {
		panic(abort{}) // machine failed while we were blocked
	}
	if msg.tag != tag {
		e.m.fail(cluster.Abortedf(e.rank, "sim: PE %d expected tag %d from %d, got %d", e.rank, tag, src, msg.tag))
		panic(abort{})
	}
	e.m.boxBytes.Add(-int64(len(msg.payload)))
	entry := e.clock.Now()
	e.clock.AdvanceTo(msg.arrival)
	st := e.clock.Cur()
	if msg.arrival > entry {
		st.BlockedTime += msg.arrival - entry
	}
	st.BytesRecv += int64(len(msg.payload))
	// Count the message on the receive side, matching the collectives
	// (AllToAllv/AllGather/Bcast all count incoming messages only);
	// Send deliberately does not count, or every p2p message would be
	// double-counted relative to collective traffic.
	st.Messages++
	return msg.payload
}

// MailboxPeakBytes implements cluster.MailboxStats: the machine-wide
// high-water mark of payload bytes queued undelivered in the p2p
// mailboxes (the eager-buffering memory a real receiver would hold;
// one shared figure, since all PEs live in one address space here).
func (e *endpoint) MailboxPeakBytes() int64 { return e.m.boxPeak.Load() }

// Interface conformance.
var (
	_ cluster.Machine      = (*Machine)(nil)
	_ cluster.Transport    = (*endpoint)(nil)
	_ cluster.MailboxStats = (*endpoint)(nil)
	_ cluster.Stats        = (*vtime.Clock)(nil)
)
