package sim

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"demsort/internal/cluster"
	"demsort/internal/vtime"
)

func testConfig(p int) Config {
	m := vtime.Default()
	m.DiskJitter = 0
	return Config{P: p, BlockBytes: 1024, Model: m}
}

func TestBarrierSynchronisesClocks(t *testing.T) {
	m, err := New(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	err = m.Run(func(n *cluster.Node) error {
		n.AddCPU(float64(n.Rank)) // skewed clocks
		n.Barrier()
		if m.Clock(n.Rank).Now() < 3 {
			return fmt.Errorf("clock %v below slowest PE", m.Clock(n.Rank).Now())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAllvRoutesData(t *testing.T) {
	const p = 5
	m, err := New(testConfig(p))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	err = m.Run(func(n *cluster.Node) error {
		send := make([][]byte, p)
		for j := 0; j < p; j++ {
			send[j] = []byte(fmt.Sprintf("from %d to %d", n.Rank, j))
		}
		recv := n.AllToAllv(send)
		for j := 0; j < p; j++ {
			want := fmt.Sprintf("from %d to %d", j, n.Rank)
			if string(recv[j]) != want {
				return fmt.Errorf("recv[%d] = %q, want %q", j, recv[j], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAllvSelfMessageFree(t *testing.T) {
	m, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	err = m.Run(func(n *cluster.Node) error {
		send := make([][]byte, 2)
		send[n.Rank] = bytes.Repeat([]byte{1}, 1<<20) // only self traffic
		n.AllToAllv(send)
		_, stats := n.PhaseStats()
		if st := stats["init"]; st.BytesSent != 0 || st.BytesRecv != 0 {
			return fmt.Errorf("self message hit the network: %+v", st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGatherAndBcast(t *testing.T) {
	const p = 3
	m, err := New(testConfig(p))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	err = m.Run(func(n *cluster.Node) error {
		all := n.AllGather([]byte{byte(n.Rank * 10)})
		for j := 0; j < p; j++ {
			if all[j][0] != byte(j*10) {
				return fmt.Errorf("allgather[%d] = %d", j, all[j][0])
			}
		}
		got := n.Bcast(1, []byte{byte(n.Rank)})
		if got[0] != 1 {
			return fmt.Errorf("bcast got %d", got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduce(t *testing.T) {
	const p = 4
	m, err := New(testConfig(p))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	err = m.Run(func(n *cluster.Node) error {
		v := int64(n.Rank + 1)
		if got := n.AllReduceInt64(v, "sum"); got != 10 {
			return fmt.Errorf("sum %d", got)
		}
		if got := n.AllReduceInt64(v, "max"); got != 4 {
			return fmt.Errorf("max %d", got)
		}
		if got := n.AllReduceInt64(v, "min"); got != 1 {
			return fmt.Errorf("min %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvOrdering(t *testing.T) {
	m, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	err = m.Run(func(n *cluster.Node) error {
		if n.Rank == 0 {
			for i := 0; i < 10; i++ {
				n.Send(1, 7, []byte{byte(i)})
			}
			return nil
		}
		for i := 0; i < 10; i++ {
			got := n.Recv(0, 7)
			if got[0] != byte(i) {
				return fmt.Errorf("message %d out of order: %d", i, got[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDeepP2PDoesNotDeadlock is the regression test for the fixed
// 1024-deep p2p inboxes: both PEs push far more messages than any
// fixed channel capacity before either receives. With bounded-channel
// inboxes both senders block with full inboxes on each side and the
// machine deadlocks; growable mailboxes (initial capacity from
// Config.P2PDepth) absorb the burst.
func TestDeepP2PDoesNotDeadlock(t *testing.T) {
	const burst = 8192 // far beyond the historical 1024-deep inboxes
	cfg := testConfig(2)
	cfg.P2PDepth = 16 // deliberately tiny: growth must cover the burst
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	done := make(chan error, 1)
	go func() {
		done <- m.Run(func(n *cluster.Node) error {
			peer := 1 - n.Rank
			for i := 0; i < burst; i++ {
				n.Send(peer, 3, []byte{byte(i)})
			}
			for i := 0; i < burst; i++ {
				got := n.Recv(peer, 3)
				if got[0] != byte(i) {
					return fmt.Errorf("message %d out of order: %d", i, got[0])
				}
			}
			return nil
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("deadlocked: p2p inboxes blocked both senders")
	}
}

// TestRecvUnblocksOnPeerFailure: a PE blocked in Recv must unwind when
// another PE fails (previously it would block forever on its inbox
// channel and hang Run).
func TestRecvUnblocksOnPeerFailure(t *testing.T) {
	m, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	sentinel := errors.New("boom")
	done := make(chan error, 1)
	go func() {
		done <- m.Run(func(n *cluster.Node) error {
			if n.Rank == 0 {
				return sentinel
			}
			n.Recv(0, 1) // never sent
			return nil
		})
	}()
	select {
	case err := <-done:
		if err == nil || !errors.Is(err, sentinel) {
			t.Fatalf("got %v, want wrapped sentinel", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Recv did not unblock on peer failure")
	}
}

func TestExchangeAnyRoutesItems(t *testing.T) {
	const p = 4
	m, err := New(testConfig(p))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	err = m.Run(func(n *cluster.Node) error {
		items := make([]any, p)
		for j := 0; j < p; j++ {
			items[j] = fmt.Sprintf("%d->%d", n.Rank, j)
		}
		got := n.ExchangeAny(items, 16)
		for j := 0; j < p; j++ {
			want := fmt.Sprintf("%d->%d", j, n.Rank)
			if got[j] != want {
				return fmt.Errorf("got[%d] = %v, want %v", j, got[j], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestErrorPropagatesWithoutDeadlock(t *testing.T) {
	m, err := New(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	sentinel := errors.New("boom")
	err = m.Run(func(n *cluster.Node) error {
		if n.Rank == 2 {
			return sentinel // others are blocked in the barrier
		}
		n.Barrier()
		n.Barrier()
		return nil
	})
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want wrapped sentinel", err)
	}
}

func TestPanicPropagates(t *testing.T) {
	m, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	err = m.Run(func(n *cluster.Node) error {
		if n.Rank == 1 {
			panic("kaboom")
		}
		n.Barrier()
		return nil
	})
	if err == nil {
		t.Fatal("expected error from panicked PE")
	}
}

func TestCollectiveMismatchDetected(t *testing.T) {
	m, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	err = m.Run(func(n *cluster.Node) error {
		if n.Rank == 0 {
			n.Barrier()
		} else {
			n.AllGather(nil)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestDeterministicVirtualTime(t *testing.T) {
	run := func() []float64 {
		m, err := New(testConfig(8))
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		err = m.Run(func(n *cluster.Node) error {
			for round := 0; round < 5; round++ {
				send := make([][]byte, 8)
				for j := range send {
					send[j] = make([]byte, (n.Rank+1)*(j+1)*100)
				}
				n.AllToAllv(send)
				n.AddCPU(float64(n.Rank) * 0.001)
			}
			n.Barrier()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		var times []float64
		for rank := range m.Nodes() {
			times = append(times, m.Clock(rank).Now())
		}
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("virtual time nondeterministic at PE %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCongestionSlowsBigMachines(t *testing.T) {
	// The same per-PE traffic should take longer (virtually) on a
	// larger machine because the fabric congests — the effect the
	// paper measured (1300 -> 400 MB/s).
	wall := func(p int) float64 {
		m, err := New(testConfig(p))
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		var t0 float64
		err = m.Run(func(n *cluster.Node) error {
			send := make([][]byte, p)
			for j := range send {
				if j != n.Rank {
					send[j] = make([]byte, 1<<20/(p-1))
				}
			}
			n.AllToAllv(send)
			if n.Rank == 0 {
				t0 = m.Clock(0).Now()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return t0
	}
	if !(wall(32) > wall(2)) {
		t.Fatal("expected congestion to slow the larger machine")
	}
}

func TestVolumesIsolatedPerPE(t *testing.T) {
	m, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	err = m.Run(func(n *cluster.Node) error {
		id := n.Vol.Alloc()
		payload := bytes.Repeat([]byte{byte(n.Rank + 1)}, 8)
		n.Vol.WriteAsync(id, payload)
		n.Barrier()
		got := make([]byte, 8)
		n.Vol.ReadWait(id, got)
		if got[0] != byte(n.Rank+1) {
			return fmt.Errorf("PE %d read %d — volumes are shared?", n.Rank, got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{P: 0, BlockBytes: 1}); err == nil {
		t.Fatal("P=0 must be rejected")
	}
	if _, err := New(Config{P: 1, BlockBytes: 0}); err == nil {
		t.Fatal("BlockBytes=0 must be rejected")
	}
}
