//go:build !race

// The recycling assertion cannot run under the race detector: it
// intentionally randomises sync.Pool reuse, so pooled buffers look
// like fresh allocations and the heap-growth bound turns meaningless.

package tcp_test

import (
	"runtime"
	"runtime/debug"
	"sync"
	"testing"
	"time"

	"demsort/internal/bufpool"
	"demsort/internal/cluster"
	"demsort/internal/cluster/tcp"
)

// TestA2AStreamRecyclesSendBuffers: the pipelined all-to-all's steady
// state must circulate pooled buffers, not allocate per round — the
// sender goroutine recycles each posted payload after the socket
// write, the receiver recycles via RecycleRecv. With GC pinned, 64
// rounds of 1 MiB payloads on a 2-rank fleet must grow the heap far
// less than the ~128 MiB an unrecycled path would allocate.
func TestA2AStreamRecyclesSendBuffers(t *testing.T) {
	const (
		p       = 2
		payload = 1 << 20
		warmup  = 8
		rounds  = 64
	)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	peers := reservePorts(t, p)
	errs := make([]error, p)
	var growth uint64
	var wg sync.WaitGroup
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			m, err := tcp.New(tcp.Config{
				Rank: rank, Peers: peers, BlockBytes: confBlock, MemElems: confMem,
				ConnectTimeout: 20 * time.Second,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			defer m.Close()
			errs[rank] = m.Run(func(n *cluster.Node) error {
				st := n.OpenA2AStream(2)
				defer st.Close()
				roundTrip := func() {
					send := make([][]byte, p)
					b := bufpool.Get(payload)
					b[0] = byte(n.Rank)
					send[1-n.Rank] = b
					st.Post(send)
					cluster.RecycleRecv(st.Collect())
				}
				for i := 0; i < warmup; i++ {
					roundTrip()
				}
				n.Barrier()
				var ms runtime.MemStats
				var before uint64
				if n.Rank == 0 {
					runtime.ReadMemStats(&ms)
					before = ms.TotalAlloc
				}
				for i := 0; i < rounds; i++ {
					roundTrip()
				}
				n.Barrier()
				if n.Rank == 0 {
					runtime.ReadMemStats(&ms)
					growth = ms.TotalAlloc - before
				}
				return nil
			})
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	// Both ranks together move 2·rounds payloads; unrecycled that is
	// ≥ 128 MiB of fresh buffers. Half of one round's fleet-wide
	// payload volume is a generous ceiling for the recycled path's
	// bookkeeping allocations.
	if limit := uint64(p * payload * rounds / 128); growth > limit {
		t.Fatalf("steady-state stream rounds grew the heap by %d bytes (limit %d) — posted payloads are not being recycled", growth, limit)
	}
}
