package tcp

// Collective schedules. The flat O(P)-round schedules of the first tcp
// backend are replaced by the two classic topologies MPI
// implementations use at cluster scale:
//
//   - a binomial tree for the rooted collectives (Bcast, gather,
//     reduce, Barrier): O(log P) rounds, every node relays to at most
//     log P children, no node touches more than its subtree's data;
//   - a 1-factorization of the complete graph K_P for the personalised
//     exchanges (AllToAllv, ExchangeAny): the P-1 rounds (P rounds for
//     odd P) partition all rank pairs into perfect matchings, so in
//     every round each link carries exactly one exchange in each
//     direction — balanced link load with no hot node, the property
//     MP-sort identifies as dominant at scale.
//
// The schedules are pure functions of (rank, P) so they can be
// conformance-tested exhaustively without sockets.

// btreeUp returns vrank's children (ascending subtree size — the
// receive order of the reduce/gather direction) and parent in the
// binomial tree over p nodes rooted at vrank 0; parent is -1 for the
// root. The broadcast direction uses the same edges: parent first,
// then children in reverse (descending subtree size).
func btreeUp(vrank, p int) (children []int, parent int) {
	parent = -1
	for mask := 1; mask < p; mask <<= 1 {
		if vrank&mask != 0 {
			parent = vrank - mask
			break
		}
		if vrank+mask < p {
			children = append(children, vrank+mask)
		}
	}
	return children, parent
}

// btreeSpan returns the number of consecutive vranks [vrank, vrank+n)
// covered by vrank's subtree when it hands its accumulated parts to
// its parent: the subtree of a node attached at bit b spans 2^b
// vranks, clipped to the machine size.
func btreeSpan(vrank, p int) int {
	if vrank == 0 {
		return p
	}
	span := vrank & -vrank // lowest set bit
	if vrank+span > p {
		span = p - vrank
	}
	return span
}

// oneFactorRounds returns the number of rounds of the 1-factorization
// schedule over p ranks: p-1 for even p, p for odd p (one idle rank
// per round pairs with the dummy).
func oneFactorRounds(p int) int {
	if p%2 == 0 {
		return p - 1
	}
	return p
}

// oneFactorPartner returns rank's exchange partner in round r of the
// 1-factorization schedule, or -1 when rank idles that round (odd p
// only: its partner is the dummy node). The construction is the circle
// method: ranks 0..n-2 on a circle, rank n-1 (or the dummy) in the
// centre; round r pairs i with (r-i) mod (n-1), the fixed point with
// the centre.
func oneFactorPartner(rank, r, p int) int {
	n := p
	if n%2 == 1 {
		n++ // dummy node n-1
	}
	m := n - 1 // odd
	var q int
	switch {
	case rank == m:
		// centre: the fixed point i with 2i ≡ r (mod m); n/2 is the
		// inverse of 2 because 2·(n/2) = n ≡ 1 (mod m).
		q = r * (n / 2) % m
	default:
		q = ((r-rank)%m + m) % m
		if q == rank {
			q = m
		}
	}
	if q >= p {
		return -1 // paired with the dummy: idle round
	}
	return q
}
