package tcp

// Hostfile support: the one-file description of a real cluster that
// demsort's multi-host launcher consumes. The format is one host per
// line, MPI-hostfile-shaped:
//
//	# comment (blank lines ignored)
//	hostA            slots=4
//	hostB:7100       slots=2
//	localhost
//
// Each line contributes Slots ranks (default 1), placed consecutively;
// the machine size P is the total slot count. A host may carry an
// explicit first listen port — rank s of that host listens on port+s.
// Hosts without a port get launcher-assigned ports: ephemeral
// reservations for loopback hosts (exactly what the single-host fork
// launcher does), a base-port arithmetic for remote ones (the launcher
// cannot reserve ports on a machine it has not reached yet).

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
)

// Host is one parsed hostfile line: Slots ranks on Addr, listening on
// consecutive ports from Port (0 = launcher-assigned).
type Host struct {
	Addr  string
	Port  int
	Slots int
}

// Placement is one rank's spawn plan: where it runs and the address
// it listens on (empty until the launcher assigns an ephemeral port —
// only ever the case for loopback hosts).
type Placement struct {
	Rank   int
	Host   string
	Listen string
	Local  bool
}

// IsLoopbackHost reports whether a hostfile host names this machine's
// loopback — the spawn-by-fork (rather than ssh) case.
func IsLoopbackHost(host string) bool {
	switch strings.ToLower(host) {
	case "localhost", "127.0.0.1", "::1", "[::1]":
		return true
	}
	return false
}

// ParseHostfile reads the hostfile format from r.
func ParseHostfile(r io.Reader) ([]Host, error) {
	var hosts []Host
	sc := bufio.NewScanner(r)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		h := Host{Slots: 1}
		spec := fields[0]
		if host, port, err := net.SplitHostPort(spec); err == nil {
			pn, err := strconv.Atoi(port)
			if err != nil || pn < 1 || pn > 65535 {
				return nil, fmt.Errorf("hostfile line %d: bad port in %q", lineNo, spec)
			}
			h.Addr, h.Port = host, pn
		} else {
			h.Addr = spec
		}
		if h.Addr == "" {
			return nil, fmt.Errorf("hostfile line %d: empty host", lineNo)
		}
		for _, opt := range fields[1:] {
			key, val, ok := strings.Cut(opt, "=")
			if !ok || key != "slots" {
				return nil, fmt.Errorf("hostfile line %d: unknown option %q (want slots=k)", lineNo, opt)
			}
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("hostfile line %d: bad slot count %q", lineNo, val)
			}
			h.Slots = n
		}
		hosts = append(hosts, h)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hostfile: %w", err)
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("hostfile: no hosts")
	}
	return hosts, nil
}

// LoadHostfile reads and parses the hostfile at path.
func LoadHostfile(path string) ([]Host, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("hostfile: %w", err)
	}
	defer f.Close()
	hosts, err := ParseHostfile(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return hosts, nil
}

// PlaceRanks turns a hostfile into one Placement per rank (P = total
// slots), assigning listen ports: explicit hostfile ports count up
// from their base per rank on that host; port-less remote hosts count
// up from basePort; port-less loopback hosts are left for the
// launcher's ephemeral reservation (Listen == ""), matching the
// single-host fork launcher byte for byte. Ephemeral loopback ranks
// are rejected when the hostfile also names remote hosts — a
// launcher-local 127.0.0.1 address is unreachable (or worse, someone
// else's service) from a remote worker's loopback, so a mixed
// hostfile must give its loopback hosts explicit ports. Duplicate
// listen addresses are rejected outright: the second rank's bind
// would fail and masquerade as a reservation race.
func PlaceRanks(hosts []Host, basePort int) ([]Placement, error) {
	hasRemote := false
	for _, h := range hosts {
		hasRemote = hasRemote || !IsLoopbackHost(h.Addr)
	}
	var placements []Placement
	placed := map[string]int{} // ranks placed so far per host addr
	seen := map[string]bool{}  // assigned listen addresses
	rank := 0
	for _, h := range hosts {
		local := IsLoopbackHost(h.Addr)
		for s := 0; s < h.Slots; s++ {
			pl := Placement{Rank: rank, Host: h.Addr, Local: local}
			switch {
			case h.Port > 0:
				pl.Listen = net.JoinHostPort(h.Addr, strconv.Itoa(h.Port+s))
			case local:
				// ephemeral: the launcher reserves a free port
				if hasRemote {
					return nil, fmt.Errorf("hostfile: loopback host %s needs an explicit port in a multi-host fleet (remote workers cannot reach a launcher-reserved 127.0.0.1 port)", h.Addr)
				}
			default:
				if basePort <= 0 {
					return nil, fmt.Errorf("hostfile: remote host %s needs an explicit port (no base port configured)", h.Addr)
				}
				pl.Listen = net.JoinHostPort(h.Addr, strconv.Itoa(basePort+placed[h.Addr]))
			}
			if pl.Listen != "" {
				if seen[pl.Listen] {
					return nil, fmt.Errorf("hostfile: listen address %s assigned to two ranks (same host:port on several lines?)", pl.Listen)
				}
				seen[pl.Listen] = true
			}
			placed[h.Addr]++
			placements = append(placements, pl)
			rank++
		}
	}
	return placements, nil
}
