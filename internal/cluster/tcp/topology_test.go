package tcp

import (
	"fmt"
	"testing"
)

// TestBinomialTreeIsSpanning checks, for every machine size, that the
// up edges form one tree rooted at 0 (every non-root has exactly one
// parent, parent/child views agree) and that its depth is O(log P).
func TestBinomialTreeIsSpanning(t *testing.T) {
	for p := 1; p <= 70; p++ {
		parents := make([]int, p)
		for v := 0; v < p; v++ {
			children, parent := btreeUp(v, p)
			parents[v] = parent
			for _, c := range children {
				if c <= v || c >= p {
					t.Fatalf("p=%d: node %d has out-of-range child %d", p, v, c)
				}
				if _, cp := btreeUp(c, p); cp != v {
					t.Fatalf("p=%d: node %d claims child %d, whose parent is %d", p, v, c, cp)
				}
			}
		}
		if parents[0] != -1 {
			t.Fatalf("p=%d: root has parent %d", p, parents[0])
		}
		maxDepth := 0
		for v := 1; v < p; v++ {
			depth := 0
			for u := v; u != 0; u = parents[u] {
				if parents[u] < 0 || parents[u] >= u {
					t.Fatalf("p=%d: node %d has bad parent chain at %d -> %d", p, v, u, parents[u])
				}
				depth++
				if depth > p {
					t.Fatalf("p=%d: parent chain of %d does not reach the root", p, v)
				}
			}
			if depth > maxDepth {
				maxDepth = depth
			}
		}
		logP := 0
		for 1<<logP < p {
			logP++
		}
		if maxDepth > logP {
			t.Fatalf("p=%d: tree depth %d exceeds ceil(log2 P)=%d", p, maxDepth, logP)
		}
	}
}

// TestBinomialTreeSpans checks that a node's advertised gather span
// matches the set of vranks its subtree actually covers.
func TestBinomialTreeSpans(t *testing.T) {
	for p := 1; p <= 70; p++ {
		covered := make([]int, p) // vranks covered by each subtree, computed bottom-up
		for v := p - 1; v >= 0; v-- {
			covered[v] = 1
			children, _ := btreeUp(v, p)
			for _, c := range children {
				covered[v] += covered[c]
			}
		}
		for v := 0; v < p; v++ {
			if got, want := btreeSpan(v, p), covered[v]; got != want {
				t.Fatalf("p=%d: span(%d) = %d, subtree covers %d", p, v, got, want)
			}
		}
	}
}

// TestOneFactorizationIsPerfect checks that every round is a perfect
// matching (partner relation is symmetric, nobody is paired twice) and
// that across all rounds every pair of distinct ranks meets exactly
// once.
func TestOneFactorizationIsPerfect(t *testing.T) {
	for p := 1; p <= 33; p++ {
		t.Run(fmt.Sprintf("P%d", p), func(t *testing.T) {
			met := make(map[[2]int]int)
			rounds := oneFactorRounds(p)
			wantIdle := 0
			if p%2 == 1 {
				wantIdle = 1
			}
			for r := 0; r < rounds; r++ {
				idle := 0
				for rank := 0; rank < p; rank++ {
					q := oneFactorPartner(rank, r, p)
					if q == -1 {
						idle++
						continue
					}
					if q == rank || q < 0 || q >= p {
						t.Fatalf("round %d: rank %d paired with %d", r, rank, q)
					}
					if back := oneFactorPartner(q, r, p); back != rank {
						t.Fatalf("round %d: rank %d -> %d, but %d -> %d", r, rank, q, q, back)
					}
					if rank < q {
						met[[2]int{rank, q}]++
					}
				}
				if idle != wantIdle {
					t.Fatalf("round %d: %d idle ranks, want %d", r, idle, wantIdle)
				}
			}
			for a := 0; a < p; a++ {
				for b := a + 1; b < p; b++ {
					if met[[2]int{a, b}] != 1 {
						t.Fatalf("pair (%d,%d) met %d times", a, b, met[[2]int{a, b}])
					}
				}
			}
		})
	}
}
