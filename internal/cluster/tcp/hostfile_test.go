package tcp

import (
	"strings"
	"testing"
)

func TestParseHostfile(t *testing.T) {
	hf := `
# cluster description
hostA         slots=4   # four ranks here
hostB:7100    slots=2
localhost
[::1]:9000    slots=2
`
	hosts, err := ParseHostfile(strings.NewReader(hf))
	if err != nil {
		t.Fatal(err)
	}
	want := []Host{
		{Addr: "hostA", Port: 0, Slots: 4},
		{Addr: "hostB", Port: 7100, Slots: 2},
		{Addr: "localhost", Port: 0, Slots: 1},
		{Addr: "::1", Port: 9000, Slots: 2},
	}
	if len(hosts) != len(want) {
		t.Fatalf("parsed %d hosts, want %d: %+v", len(hosts), len(want), hosts)
	}
	for i, h := range hosts {
		if h != want[i] {
			t.Fatalf("host %d = %+v, want %+v", i, h, want[i])
		}
	}
}

func TestParseHostfileErrors(t *testing.T) {
	for _, bad := range []string{
		"",                      // no hosts
		"# only a comment\n",    // no hosts
		"hostA slots=0",         // bad slot count
		"hostA slots=x",         // bad slot count
		"hostA cpus=4",          // unknown option
		"hostA:notaport",        // bad port
		"hostA:70000 slots=2",   // port out of range
		"hostA slots=2 slots=x", // second option bad
	} {
		if _, err := ParseHostfile(strings.NewReader(bad)); err == nil {
			t.Errorf("hostfile %q parsed without error", bad)
		}
	}
}

func TestPlaceRanks(t *testing.T) {
	hosts := []Host{
		{Addr: "localhost", Port: 6000, Slots: 2},
		{Addr: "hostA", Port: 7100, Slots: 2},
		{Addr: "hostB", Slots: 2},
		{Addr: "hostB", Slots: 1}, // second line, same host: ports keep counting
	}
	pls, err := PlaceRanks(hosts, 7070)
	if err != nil {
		t.Fatal(err)
	}
	type want struct {
		host, listen string
		local        bool
	}
	wants := []want{
		{"localhost", "localhost:6000", true},
		{"localhost", "localhost:6001", true},
		{"hostA", "hostA:7100", false},
		{"hostA", "hostA:7101", false},
		{"hostB", "hostB:7070", false},
		{"hostB", "hostB:7071", false},
		{"hostB", "hostB:7072", false},
	}
	if len(pls) != len(wants) {
		t.Fatalf("placed %d ranks, want %d", len(pls), len(wants))
	}
	for i, pl := range pls {
		if pl.Rank != i || pl.Host != wants[i].host || pl.Listen != wants[i].listen || pl.Local != wants[i].local {
			t.Fatalf("placement %d = %+v, want %+v", i, pl, wants[i])
		}
	}
}

func TestPlaceRanksAllLoopbackIsEphemeral(t *testing.T) {
	pls, err := PlaceRanks([]Host{
		{Addr: "localhost", Slots: 2},
		{Addr: "127.0.0.1", Slots: 2},
	}, 7070)
	if err != nil {
		t.Fatal(err)
	}
	for i, pl := range pls {
		if !pl.Local || pl.Listen != "" {
			t.Fatalf("placement %d = %+v, want local with launcher-reserved port", i, pl)
		}
	}
}

func TestPlaceRanksRejectsBadFleets(t *testing.T) {
	cases := []struct {
		name     string
		hosts    []Host
		basePort int
	}{
		{"remote without port or base port", []Host{{Addr: "hostA", Slots: 1}}, 0},
		{"ephemeral loopback in a multi-host fleet", []Host{
			{Addr: "localhost", Slots: 2},
			{Addr: "hostA", Port: 7100, Slots: 2},
		}, 7070},
		{"duplicate explicit listen address", []Host{
			{Addr: "hostA", Port: 7100, Slots: 2},
			{Addr: "hostA", Port: 7101, Slots: 1}, // collides with rank 1
		}, 7070},
		{"explicit port colliding with base-port arithmetic", []Host{
			{Addr: "hostB", Slots: 2},             // 7070, 7071
			{Addr: "hostB", Port: 7071, Slots: 1}, // collides
		}, 7070},
	}
	for _, tc := range cases {
		if _, err := PlaceRanks(tc.hosts, tc.basePort); err == nil {
			t.Errorf("%s: placement succeeded, want error", tc.name)
		}
	}
}
