package tcp

import (
	"math/rand"
	"time"
)

// Backoff produces jittered exponential retry delays: attempt k waits
// around Base·Factor^k, capped at Max, with a uniform ±Jitter fraction
// so a fleet of processes retrying the same contended resource (a
// listen port, a peer that is still starting) does not stampede in
// lockstep. The sequence is deterministic for a given seed, which is
// what lets the fault-injection tests reproduce timing-sensitive
// schedules exactly.
type Backoff struct {
	// Base is the first delay (default 25ms).
	Base time.Duration
	// Max caps every delay (default 2s).
	Max time.Duration
	// Factor is the per-attempt growth (default 2).
	Factor float64
	// Jitter is the uniform random fraction applied to each delay,
	// 0..1 (default 0.5: delays land in [d/2, 3d/2)).
	Jitter float64

	rng     *rand.Rand
	attempt int
}

// NewBackoff returns a Backoff with the given base and cap and a
// deterministic jitter stream from seed.
func NewBackoff(base, max time.Duration, seed uint64) *Backoff {
	b := &Backoff{Base: base, Max: max}
	b.rng = rand.New(rand.NewSource(int64(seed)))
	return b
}

// Next returns the delay to sleep before the next retry and advances
// the attempt counter.
func (b *Backoff) Next() time.Duration {
	base, max, factor, jitter := b.Base, b.Max, b.Factor, b.Jitter
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	if factor < 1 {
		factor = 2
	}
	if jitter < 0 || jitter > 1 {
		jitter = 0.5
	}
	d := float64(base)
	for i := 0; i < b.attempt; i++ {
		d *= factor
		if d >= float64(max) {
			d = float64(max)
			break
		}
	}
	b.attempt++
	if jitter > 0 && b.rng != nil {
		d *= 1 + jitter*(2*b.rng.Float64()-1)
	}
	if d > float64(max) {
		d = float64(max)
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// Attempt returns the number of delays handed out so far.
func (b *Backoff) Attempt() int { return b.attempt }

// Reset rewinds the attempt counter (the jitter stream keeps
// advancing, so a reset sequence still differs run to run within one
// seed — only cross-process determinism is preserved).
func (b *Backoff) Reset() { b.attempt = 0 }
