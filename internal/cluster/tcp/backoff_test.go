package tcp

import (
	"testing"
	"time"
)

func TestBackoffDeterministicPerSeed(t *testing.T) {
	a, b := NewBackoff(10*time.Millisecond, time.Second, 42), NewBackoff(10*time.Millisecond, time.Second, 42)
	for i := 0; i < 20; i++ {
		if da, db := a.Next(), b.Next(); da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, da, db)
		}
	}
	c := NewBackoff(10*time.Millisecond, time.Second, 43)
	same := true
	for i := 0; i < 20; i++ {
		if a.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter streams")
	}
}

func TestBackoffGrowthAndCap(t *testing.T) {
	bo := NewBackoff(10*time.Millisecond, 100*time.Millisecond, 7)
	prevCeil := time.Duration(0)
	for i := 0; i < 12; i++ {
		d := bo.Next()
		// The ideal (pre-jitter) delay doubles until the cap; jitter
		// keeps the sample within [ideal/2, ideal] for Jitter=0.5.
		ideal := 10 * time.Millisecond << i
		if ideal > 100*time.Millisecond {
			ideal = 100 * time.Millisecond
		}
		if d > ideal {
			t.Fatalf("attempt %d: %v above the jittered ceiling %v", i, d, ideal)
		}
		if d < ideal/2 {
			t.Fatalf("attempt %d: %v below half the ceiling %v (Jitter=0.5)", i, d, ideal)
		}
		if ideal > prevCeil {
			prevCeil = ideal
		}
	}
	if prevCeil != 100*time.Millisecond {
		t.Fatalf("never reached the cap: ceiling %v", prevCeil)
	}
}

func TestBackoffResetRewindsAttempts(t *testing.T) {
	bo := NewBackoff(10*time.Millisecond, 10*time.Second, 7)
	for i := 0; i < 6; i++ {
		bo.Next()
	}
	if bo.Attempt() != 6 {
		t.Fatalf("Attempt() = %d, want 6", bo.Attempt())
	}
	bo.Reset()
	if bo.Attempt() != 0 {
		t.Fatalf("Attempt() after Reset = %d, want 0", bo.Attempt())
	}
	if d := bo.Next(); d > 10*time.Millisecond {
		t.Fatalf("first delay after Reset = %v, want back at the %v base", d, 10*time.Millisecond)
	}
}

func TestBackoffZeroValueDefaults(t *testing.T) {
	var bo Backoff
	for i := 0; i < 30; i++ {
		d := bo.Next()
		if d <= 0 || d > 2*time.Second {
			t.Fatalf("attempt %d: %v outside (0, 2s] with default Base/Max", i, d)
		}
	}
}
