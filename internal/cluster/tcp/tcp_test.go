package tcp

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"demsort/internal/cluster"
	"demsort/internal/vtime"
)

// freePorts reserves p distinct localhost ports (ReservePorts with
// test error handling).
func freePorts(t *testing.T, p int) []string {
	t.Helper()
	addrs, err := ReservePorts(p)
	if err != nil {
		t.Fatal(err)
	}
	return addrs
}

// runMachines hosts P tcp machines in this process (one goroutine
// each) — the full wire protocol over real localhost sockets — and
// runs fn on every PE.
func runMachines(t *testing.T, p int, fn func(*cluster.Node) error) {
	t.Helper()
	peers := freePorts(t, p)
	model := vtime.Default()
	model.DiskJitter = 0
	errs := make([]error, p)
	var wg sync.WaitGroup
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			m, err := New(Config{
				Rank:           rank,
				Peers:          peers,
				BlockBytes:     1024,
				Model:          model,
				ConnectTimeout: 20 * time.Second,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			defer m.Close()
			errs[rank] = m.Run(fn)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func TestBarrierCompletes(t *testing.T) {
	runMachines(t, 4, func(n *cluster.Node) error {
		for i := 0; i < 5; i++ {
			n.Barrier()
		}
		return nil
	})
}

func TestAllToAllvRoutesData(t *testing.T) {
	const p = 5
	runMachines(t, p, func(n *cluster.Node) error {
		send := make([][]byte, p)
		for j := 0; j < p; j++ {
			send[j] = []byte(fmt.Sprintf("from %d to %d", n.Rank, j))
		}
		recv := n.AllToAllv(send)
		for j := 0; j < p; j++ {
			want := fmt.Sprintf("from %d to %d", j, n.Rank)
			if string(recv[j]) != want {
				return fmt.Errorf("recv[%d] = %q, want %q", j, recv[j], want)
			}
		}
		return nil
	})
}

func TestAllToAllvSelfMessageFree(t *testing.T) {
	runMachines(t, 2, func(n *cluster.Node) error {
		send := make([][]byte, 2)
		send[n.Rank] = bytes.Repeat([]byte{1}, 1<<20) // only self traffic
		recv := n.AllToAllv(send)
		if &recv[n.Rank][0] != &send[n.Rank][0] {
			return errors.New("self message was copied")
		}
		_, stats := n.PhaseStats()
		if st := stats["init"]; st.BytesSent != 0 || st.BytesRecv != 0 {
			return fmt.Errorf("self message hit the network: %+v", st)
		}
		return nil
	})
}

func TestAllToAllvLargeAndSkewed(t *testing.T) {
	// Uneven, multi-frame payloads exercise framing and the pairwise
	// schedule under different per-rank progress.
	const p = 4
	runMachines(t, p, func(n *cluster.Node) error {
		send := make([][]byte, p)
		for j := 0; j < p; j++ {
			size := (n.Rank + 1) * (j + 1) * 70000
			send[j] = bytes.Repeat([]byte{byte(10*n.Rank + j)}, size)
		}
		recv := n.AllToAllv(send)
		for j := 0; j < p; j++ {
			wantLen := (j + 1) * (n.Rank + 1) * 70000
			if len(recv[j]) != wantLen {
				return fmt.Errorf("recv[%d] has %d bytes, want %d", j, len(recv[j]), wantLen)
			}
			if recv[j][0] != byte(10*j+n.Rank) || recv[j][wantLen-1] != byte(10*j+n.Rank) {
				return fmt.Errorf("recv[%d] corrupted", j)
			}
		}
		return nil
	})
}

func TestAllGatherAndBcast(t *testing.T) {
	const p = 3
	runMachines(t, p, func(n *cluster.Node) error {
		all := n.AllGather([]byte{byte(n.Rank * 10)})
		for j := 0; j < p; j++ {
			if len(all[j]) != 1 || all[j][0] != byte(j*10) {
				return fmt.Errorf("allgather[%d] = %v", j, all[j])
			}
		}
		got := n.Bcast(1, []byte{byte(n.Rank)})
		if got[0] != 1 {
			return fmt.Errorf("bcast got %d", got[0])
		}
		return nil
	})
}

func TestAllReduce(t *testing.T) {
	const p = 4
	runMachines(t, p, func(n *cluster.Node) error {
		v := int64(n.Rank + 1)
		if got := n.AllReduceInt64(v, "sum"); got != 10 {
			return fmt.Errorf("sum %d", got)
		}
		if got := n.AllReduceInt64(v, "max"); got != 4 {
			return fmt.Errorf("max %d", got)
		}
		if got := n.AllReduceInt64(v, "min"); got != 1 {
			return fmt.Errorf("min %d", got)
		}
		if got := n.AllReduceInt64(1<<uint(n.Rank), "or"); got != 15 {
			return fmt.Errorf("or %d", got)
		}
		return nil
	})
}

// TestCollectivesManyRanks sweeps the tree/1-factor schedules across
// machine sizes that stress them differently: odd P (dummy rounds in
// the 1-factorization), non-power-of-two P (clipped binomial
// subtrees), and a power of two.
func TestCollectivesManyRanks(t *testing.T) {
	for _, p := range []int{3, 5, 6, 8} {
		p := p
		t.Run(fmt.Sprintf("P%d", p), func(t *testing.T) {
			runMachines(t, p, func(n *cluster.Node) error {
				n.Barrier()
				all := n.AllGather([]byte{byte(n.Rank), byte(n.Rank * 3)})
				for j := 0; j < p; j++ {
					if len(all[j]) != 2 || all[j][0] != byte(j) || all[j][1] != byte(j*3) {
						return fmt.Errorf("allgather[%d] = %v", j, all[j])
					}
				}
				for root := 0; root < p; root++ {
					got := n.Bcast(root, []byte{byte(100 + n.Rank)})
					if len(got) != 1 || got[0] != byte(100+root) {
						return fmt.Errorf("bcast root %d got %v", root, got)
					}
				}
				if got, want := n.AllReduceInt64(int64(n.Rank+1), "sum"), int64(p*(p+1)/2); got != want {
					return fmt.Errorf("sum = %d, want %d", got, want)
				}
				if got := n.AllReduceInt64(int64(n.Rank), "max"); got != int64(p-1) {
					return fmt.Errorf("max = %d, want %d", got, p-1)
				}
				send := make([][]byte, p)
				for j := 0; j < p; j++ {
					send[j] = bytes.Repeat([]byte{byte(16*n.Rank + j)}, 3+j+n.Rank)
				}
				recv := n.AllToAllv(send)
				for j := 0; j < p; j++ {
					want := bytes.Repeat([]byte{byte(16*j + n.Rank)}, 3+n.Rank+j)
					if !bytes.Equal(recv[j], want) {
						return fmt.Errorf("alltoallv recv[%d] = %v, want %v", j, recv[j], want)
					}
				}
				n.Barrier()
				return nil
			})
		})
	}
}

// TestCollectiveResultsDoNotAliasArena pins the pooled-buffer
// contract: AllGather and Bcast results are retained by callers, so
// they must not alias arena buffers that later traffic will reuse.
// The test takes collective results, then churns the arena with
// all-to-all rounds (whose receive buffers are recycled), and checks
// the earlier results are still intact.
func TestCollectiveResultsDoNotAliasArena(t *testing.T) {
	const p = 4
	runMachines(t, p, func(n *cluster.Node) error {
		gathered := n.AllGather(bytes.Repeat([]byte{byte(n.Rank + 1)}, 256))
		bcasted := n.Bcast(2, bytes.Repeat([]byte{0xAB}, 512))
		for round := 0; round < 8; round++ {
			send := make([][]byte, p)
			for j := 0; j < p; j++ {
				send[j] = bytes.Repeat([]byte{0xFF}, 256+round)
			}
			cluster.RecycleRecv(n.AllToAllv(send))
		}
		for j := 0; j < p; j++ {
			for _, b := range gathered[j] {
				if b != byte(j+1) {
					return fmt.Errorf("allgather result for rank %d was clobbered", j)
				}
			}
		}
		for _, b := range bcasted {
			if b != 0xAB {
				return fmt.Errorf("bcast result was clobbered")
			}
		}
		return nil
	})
}

func TestSendRecvOrdering(t *testing.T) {
	runMachines(t, 2, func(n *cluster.Node) error {
		if n.Rank == 0 {
			for i := 0; i < 100; i++ {
				n.Send(1, 7, []byte{byte(i)})
			}
			n.Barrier()
			return nil
		}
		for i := 0; i < 100; i++ {
			got := n.Recv(0, 7)
			if got[0] != byte(i) {
				return fmt.Errorf("message %d out of order: %d", i, got[0])
			}
		}
		n.Barrier()
		return nil
	})
}

func TestExchangeAnyGob(t *testing.T) {
	const p = 4
	runMachines(t, p, func(n *cluster.Node) error {
		items := make([]any, p)
		for j := 0; j < p; j++ {
			items[j] = []int64{int64(n.Rank), int64(j)}
		}
		got := n.ExchangeAny(items, 16)
		for j := 0; j < p; j++ {
			vs, ok := got[j].([]int64)
			if !ok || len(vs) != 2 || vs[0] != int64(j) || vs[1] != int64(n.Rank) {
				return fmt.Errorf("got[%d] = %v", j, got[j])
			}
		}
		return nil
	})
}

func TestWallClockPhaseStats(t *testing.T) {
	runMachines(t, 2, func(n *cluster.Node) error {
		n.SetPhase("spin")
		time.Sleep(30 * time.Millisecond)
		n.AddCPU(1e9) // modelled charge: must NOT leak into wall time
		n.Barrier()
		n.SetPhase("done")
		_, stats := n.PhaseStats()
		w := stats["spin"].Wall
		if w < 0.02 || w > 10 {
			return fmt.Errorf("spin wall %.3fs, want real wall-clock around 0.03s", w)
		}
		return nil
	})
}

func TestPeerLossUnblocksRun(t *testing.T) {
	// Rank 1 exits without participating in the barrier and closes its
	// machine; rank 0, blocked in Barrier, must unwind with an error
	// instead of hanging.
	peers := freePorts(t, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			m, err := New(Config{Rank: rank, Peers: peers, BlockBytes: 1024, ConnectTimeout: 20 * time.Second})
			if err != nil {
				errs[rank] = err
				return
			}
			if rank == 1 {
				m.Close() // abandon the machine
				return
			}
			defer m.Close()
			errs[rank] = m.Run(func(n *cluster.Node) error {
				n.Barrier()
				return nil
			})
		}(rank)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("rank 0 hung in Barrier after peer loss")
	}
	if errs[0] == nil {
		t.Fatal("rank 0 should report the lost peer")
	}
}

func TestTagMismatchFailsMachine(t *testing.T) {
	peers := freePorts(t, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			m, err := New(Config{Rank: rank, Peers: peers, BlockBytes: 1024, ConnectTimeout: 20 * time.Second})
			if err != nil {
				errs[rank] = err
				return
			}
			defer m.Close()
			errs[rank] = m.Run(func(n *cluster.Node) error {
				if n.Rank == 0 {
					n.Send(1, 7, []byte{1})
				} else {
					n.Recv(0, 8) // wrong tag
				}
				return nil
			})
		}(rank)
	}
	wg.Wait()
	if errs[1] == nil {
		t.Fatal("tag mismatch must fail the receiving machine")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Rank: 0, Peers: nil, BlockBytes: 1024}); err == nil {
		t.Fatal("empty peer list must be rejected")
	}
	if _, err := New(Config{Rank: 2, Peers: []string{"a", "b"}, BlockBytes: 1024}); err == nil {
		t.Fatal("out-of-range rank must be rejected")
	}
	if _, err := New(Config{Rank: 0, Peers: []string{"127.0.0.1:0"}, BlockBytes: 0}); err == nil {
		t.Fatal("zero block size must be rejected")
	}
}

func TestSingleRankMachine(t *testing.T) {
	// P=1 short-circuits every collective; AllReduce in particular must
	// return v, not reduce v with itself.
	runMachines(t, 1, func(n *cluster.Node) error {
		if got := n.AllReduceInt64(500, "sum"); got != 500 {
			return fmt.Errorf("P=1 sum = %d, want 500", got)
		}
		if got := n.AllReduceInt64(7, "max"); got != 7 {
			return fmt.Errorf("P=1 max = %d, want 7", got)
		}
		n.Barrier()
		all := n.AllGather([]byte{9})
		if len(all) != 1 || all[0][0] != 9 {
			return fmt.Errorf("P=1 allgather = %v", all)
		}
		recv := n.AllToAllv([][]byte{{1, 2}})
		if len(recv) != 1 || len(recv[0]) != 2 {
			return fmt.Errorf("P=1 alltoallv = %v", recv)
		}
		return nil
	})
}
