package tcp_test

// Streaming-boundary conformance: the striped sort's Sink-routed
// output and the canonical sort's Source-fed input must behave
// identically on the sim backend and on real tcp machines — and a
// Source or Sink failure on one rank must abort the whole fleet in
// bounded time instead of wedging it.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"demsort/internal/blockio"
	"demsort/internal/cluster/tcp"
	"demsort/internal/core"
	"demsort/internal/elem"
	"demsort/internal/sortbench"
	"demsort/internal/stripesort"
	"demsort/internal/vtime"
)

func stripedConfConfig(p int) stripesort.Config {
	cfg := stripesort.DefaultConfig(p, confMem, confBlock)
	cfg.Seed = confSeed
	model := vtime.Default()
	model.DiskJitter = 0
	cfg.Model = model
	return cfg
}

func confSource(rank int) (io.Reader, int64, error) {
	return sortbench.NewReader(confSeed, int64(rank)*confNPer, confNPer), confNPer, nil
}

// sortStripedSim runs the striped workload on the sim backend and
// returns what each rank's Sink received (its contiguous share of the
// sorted output).
func sortStripedSim(t *testing.T, p int, overlap bool) [][]byte {
	t.Helper()
	cfg := stripedConfConfig(p)
	cfg.Overlap = overlap
	cfg.Source = confSource
	out := make([][]byte, p)
	var mu sync.Mutex
	cfg.Sink = func(rank int, b []byte) error {
		mu.Lock()
		out[rank] = append(out[rank], b...)
		mu.Unlock()
		return nil
	}
	if _, err := stripesort.Sort[elem.Rec100](elem.Rec100Codec{}, cfg, nil); err != nil {
		t.Fatal(err)
	}
	return out
}

// sortStripedTCP runs the same striped workload on p tcp machines and
// returns the per-rank Sink streams.
func sortStripedTCP(t *testing.T, p int, newStore func(rank int) (blockio.Store, error), overlap bool) [][]byte {
	t.Helper()
	peers := reservePorts(t, p)
	out := make([][]byte, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			m, err := tcp.New(tcp.Config{
				Rank:           rank,
				Peers:          peers,
				BlockBytes:     confBlock,
				MemElems:       confMem,
				NewStore:       newStore,
				ConnectTimeout: 20 * time.Second,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			defer m.Close()
			cfg := stripedConfConfig(p)
			cfg.Overlap = overlap
			cfg.Machine = m
			cfg.Source = confSource
			cfg.Sink = func(r int, b []byte) error {
				out[r] = append(out[r], b...)
				return nil
			}
			if _, err := stripesort.Sort[elem.Rec100](elem.Rec100Codec{}, cfg, nil); err != nil {
				errs[rank] = err
			}
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("tcp rank %d: %v", rank, err)
		}
	}
	return out
}

// TestSimTCPStripedConformance: the striped sort's per-rank output
// streams must be byte-identical between the sim backend and real tcp
// machines — the contract behind `demsort -striped -transport=tcp`
// part files diffing clean against the sim run.
func TestSimTCPStripedConformance(t *testing.T) {
	for _, p := range []int{2, 4} {
		for _, store := range []string{"ram", "file"} {
			t.Run(fmt.Sprintf("P%d_%s", p, store), func(t *testing.T) {
				var newStore func(rank int) (blockio.Store, error)
				if store == "file" {
					newStore = blockio.FileStoreFactory(t.TempDir(), confBlock)
				}
				simOut := sortStripedSim(t, p, true)
				tcpOut := sortStripedTCP(t, p, newStore, true)
				for rank := 0; rank < p; rank++ {
					if !bytes.Equal(simOut[rank], tcpOut[rank]) {
						t.Fatalf("rank %d: striped sim and tcp streams differ (%d vs %d bytes)",
							rank, len(simOut[rank]), len(tcpOut[rank]))
					}
				}
				var sums []sortbench.Summary
				for _, part := range decodeParts(tcpOut) {
					sums = append(sums, sortbench.Validate(part))
				}
				all := sortbench.Merge(sums)
				if all.Unsorted != 0 {
					t.Fatalf("striped tcp output not sorted: %d inversions", all.Unsorted)
				}
				if all.Records != int64(p)*confNPer {
					t.Fatalf("striped output carries %d records, want %d", all.Records, int64(p)*confNPer)
				}
			})
		}
	}
}

// TestSimTCPSourceConformance: Source-fed canonical input on tcp must
// be byte-identical to the slice-fed sim reference.
func TestSimTCPSourceConformance(t *testing.T) {
	const p = 4
	simOut := sortSim(t, p) // slice-fed reference
	peers := reservePorts(t, p)
	out := make([][]byte, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			m, err := tcp.New(tcp.Config{
				Rank: rank, Peers: peers, BlockBytes: confBlock, MemElems: confMem,
				ConnectTimeout: 20 * time.Second,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			defer m.Close()
			cfg := confConfig(p)
			cfg.Machine = m
			cfg.KeepOutput = false
			cfg.Source = confSource
			cfg.Sink = func(r int, b []byte) error {
				out[r] = append(out[r], b...)
				return nil
			}
			if _, err := core.Sort[elem.Rec100](elem.Rec100Codec{}, cfg, nil); err != nil {
				errs[rank] = err
			}
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("tcp rank %d: %v", rank, err)
		}
	}
	for rank := 0; rank < p; rank++ {
		if !bytes.Equal(simOut[rank], out[rank]) {
			t.Fatalf("rank %d: Source-fed tcp output differs from slice-fed sim", rank)
		}
	}
}

// limitedErrReader yields limit bytes, then a permanent error.
type limitedErrReader struct {
	r     io.Reader
	limit int64
	err   error
}

func (l *limitedErrReader) Read(p []byte) (int, error) {
	if l.limit <= 0 {
		return 0, l.err
	}
	if int64(len(p)) > l.limit {
		p = p[:l.limit]
	}
	n, err := l.r.Read(p)
	l.limit -= int64(n)
	return n, err
}

// TestStreamFaultAbortsFleetBounded injects a Source failure (one
// rank's input stream dies mid-load) and a Sink failure (one rank's
// output consumer rejects a write) into a 4-machine tcp fleet: the
// failing rank must surface the injected error and every rank must
// return — not hang — well inside the bound.
func TestStreamFaultAbortsFleetBounded(t *testing.T) {
	injected := errors.New("injected stream fault")
	const p = 4
	const faulty = 2
	for _, mode := range []string{"source", "sink"} {
		t.Run(mode, func(t *testing.T) {
			peers := reservePorts(t, p)
			errs := make([]error, p)
			done := make(chan struct{})
			var wg sync.WaitGroup
			start := time.Now()
			for rank := 0; rank < p; rank++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					m, err := tcp.New(tcp.Config{
						Rank: rank, Peers: peers, BlockBytes: confBlock, MemElems: confMem,
						ConnectTimeout: 20 * time.Second,
					})
					if err != nil {
						errs[rank] = err
						return
					}
					defer m.Close()
					cfg := confConfig(p)
					cfg.Machine = m
					cfg.KeepOutput = false
					cfg.Source = func(r int) (io.Reader, int64, error) {
						src, n, _ := confSource(r)
						if mode == "source" && r == faulty {
							return &limitedErrReader{r: src, limit: 10 * confBlock, err: injected}, n, nil
						}
						return src, n, nil
					}
					cfg.Sink = func(r int, b []byte) error {
						if mode == "sink" && r == faulty {
							return injected
						}
						return nil
					}
					_, err = core.Sort[elem.Rec100](elem.Rec100Codec{}, cfg, nil)
					errs[rank] = err
				}(rank)
			}
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(45 * time.Second):
				t.Fatalf("fleet still running 45s after an injected %s fault", mode)
			}
			if elapsed := time.Since(start); elapsed > 40*time.Second {
				t.Fatalf("fleet took %v to unwind", elapsed)
			}
			if !errors.Is(errs[faulty], injected) {
				t.Fatalf("rank %d did not surface the injected error: %v", faulty, errs[faulty])
			}
			if mode == "source" {
				// A load-phase death strands every other rank at the
				// post-load barrier; each must have unwound with a
				// transport failure, not a hang.
				for rank := 0; rank < p; rank++ {
					if rank != faulty && errs[rank] == nil {
						t.Errorf("rank %d finished cleanly despite the dead fleet", rank)
					}
				}
			}
		})
	}
}
