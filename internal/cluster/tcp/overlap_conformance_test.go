package tcp_test

// Overlap conformance: every overlapped path of the pipeline — the
// double-buffered Source load, the A2AStream-pipelined all-to-all, the
// read-ahead Sink collect and the windowed striped collect — must
// produce per-rank output streams byte-identical to the synchronous
// paths, on the sim backend and on real tcp machines alike. The
// synchronous sim run is the reference everything else diffs against.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"demsort/internal/blockio"
	"demsort/internal/cluster/tcp"
	"demsort/internal/core"
	"demsort/internal/elem"
	"demsort/internal/sortbench"
)

// sortSimStream runs the Source/Sink-fed canonical workload on the sim
// backend — through the overlapped loader, exchange and collect when
// overlap is set — and returns the per-rank Sink streams.
func sortSimStream(t *testing.T, p int, overlap bool) [][]byte {
	t.Helper()
	cfg := confConfig(p)
	cfg.KeepOutput = false
	cfg.Overlap = overlap
	cfg.Source = confSource
	out := make([][]byte, p)
	var mu sync.Mutex
	cfg.Sink = func(rank int, b []byte) error {
		mu.Lock()
		out[rank] = append(out[rank], b...)
		mu.Unlock()
		return nil
	}
	if _, err := core.Sort[elem.Rec100](elem.Rec100Codec{}, cfg, nil); err != nil {
		t.Fatal(err)
	}
	return out
}

// sortTCPStream is sortSimStream on p tcp machines.
func sortTCPStream(t *testing.T, p int, newStore func(rank int) (blockio.Store, error), overlap bool) [][]byte {
	t.Helper()
	peers := reservePorts(t, p)
	out := make([][]byte, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			m, err := tcp.New(tcp.Config{
				Rank:           rank,
				Peers:          peers,
				BlockBytes:     confBlock,
				MemElems:       confMem,
				NewStore:       newStore,
				ConnectTimeout: 20 * time.Second,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			defer m.Close()
			cfg := confConfig(p)
			cfg.KeepOutput = false
			cfg.Overlap = overlap
			cfg.Machine = m
			cfg.Source = confSource
			cfg.Sink = func(r int, b []byte) error {
				out[r] = append(out[r], b...)
				return nil
			}
			if _, err := core.Sort[elem.Rec100](elem.Rec100Codec{}, cfg, nil); err != nil {
				errs[rank] = err
			}
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("tcp rank %d: %v", rank, err)
		}
	}
	return out
}

// TestOverlapConformance pins overlapped ≡ synchronous for the
// canonical sort across P ∈ {2, 4, 8}, RAM and file stores, sim and
// tcp backends.
func TestOverlapConformance(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		for _, store := range []string{"ram", "file"} {
			t.Run(fmt.Sprintf("P%d_%s", p, store), func(t *testing.T) {
				var newStore func(rank int) (blockio.Store, error)
				if store == "file" {
					newStore = blockio.FileStoreFactory(t.TempDir(), confBlock)
				}
				ref := sortSimStream(t, p, false)
				runs := []struct {
					name string
					out  [][]byte
				}{
					{"sim overlapped", sortSimStream(t, p, true)},
					{"tcp synchronous", sortTCPStream(t, p, newStore, false)},
					{"tcp overlapped", sortTCPStream(t, p, newStore, true)},
				}
				for _, run := range runs {
					for rank := 0; rank < p; rank++ {
						if !bytes.Equal(ref[rank], run.out[rank]) {
							t.Fatalf("rank %d: %s stream differs from synchronous sim (%d vs %d bytes)",
								rank, run.name, len(run.out[rank]), len(ref[rank]))
						}
					}
				}
				var sums []sortbench.Summary
				for _, part := range decodeParts(ref) {
					sums = append(sums, sortbench.Validate(part))
				}
				all := sortbench.Merge(sums)
				if all.Unsorted != 0 || all.Records != int64(p)*confNPer {
					t.Fatalf("reference output invalid: %d inversions, %d records", all.Unsorted, all.Records)
				}
			})
		}
	}
}

// TestOverlapStripedConformance pins overlapped ≡ synchronous for the
// striped sort's windowed collect (and its overlapped load) on both
// backends.
func TestOverlapStripedConformance(t *testing.T) {
	const p = 4
	for _, store := range []string{"ram", "file"} {
		t.Run(store, func(t *testing.T) {
			var newStore func(rank int) (blockio.Store, error)
			if store == "file" {
				newStore = blockio.FileStoreFactory(t.TempDir(), confBlock)
			}
			ref := sortStripedSim(t, p, false)
			runs := []struct {
				name string
				out  [][]byte
			}{
				{"sim overlapped", sortStripedSim(t, p, true)},
				{"tcp synchronous", sortStripedTCP(t, p, newStore, false)},
				{"tcp overlapped", sortStripedTCP(t, p, newStore, true)},
			}
			for _, run := range runs {
				for rank := 0; rank < p; rank++ {
					if !bytes.Equal(ref[rank], run.out[rank]) {
						t.Fatalf("rank %d: %s striped stream differs from synchronous sim (%d vs %d bytes)",
							rank, run.name, len(run.out[rank]), len(ref[rank]))
					}
				}
			}
		})
	}
}
