package tcp_test

// Cross-backend conformance: the seeded canonical workload sorted by
// CANONICALMERGESORT must produce byte-identical output — and matching
// valsort summaries — whether the phases run on the in-process sim
// backend or on tcp machines speaking the real wire protocol over
// localhost sockets. This is the contract that makes the sim figures
// transferable to real deployments.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"demsort/internal/blockio"
	"demsort/internal/cluster/tcp"
	"demsort/internal/core"
	"demsort/internal/elem"
	"demsort/internal/sortbench"
	"demsort/internal/vtime"
)

const (
	confSeed  = 42
	confNPer  = 3000 // records per PE
	confBlock = 1024
	confMem   = 8192
)

func confConfig(p int) core.Config {
	cfg := core.DefaultConfig(p, confMem, confBlock)
	cfg.Seed = confSeed
	cfg.KeepOutput = true
	model := vtime.Default()
	model.DiskJitter = 0
	cfg.Model = model
	return cfg
}

func confInput(rank int) []elem.Rec100 {
	return sortbench.Generate(confSeed, int64(rank)*confNPer, confNPer)
}

// sortSim runs the workload on the sim backend and returns the encoded
// per-rank outputs.
func sortSim(t *testing.T, p int) [][]byte {
	t.Helper()
	input := make([][]elem.Rec100, p)
	for rank := range input {
		input[rank] = confInput(rank)
	}
	res, err := core.Sort[elem.Rec100](elem.Rec100Codec{}, confConfig(p), input)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, p)
	for rank := range out {
		out[rank] = elem.EncodeSlice(elem.Rec100Codec{}, res.Output[rank])
	}
	return out
}

// sortTCP runs the same workload on p tcp machines (one goroutine
// each, real localhost sockets) and returns the encoded per-rank
// outputs. newStore selects the per-rank block store (nil = RAM).
func sortTCP(t *testing.T, p int, newStore func(rank int) (blockio.Store, error)) [][]byte {
	t.Helper()
	peers := reservePorts(t, p)
	out := make([][]byte, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			m, err := tcp.New(tcp.Config{
				Rank:           rank,
				Peers:          peers,
				BlockBytes:     confBlock,
				MemElems:       confMem,
				NewStore:       newStore,
				ConnectTimeout: 20 * time.Second,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			defer m.Close()
			cfg := confConfig(p)
			cfg.Machine = m
			input := make([][]elem.Rec100, p)
			input[rank] = confInput(rank)
			res, err := core.Sort[elem.Rec100](elem.Rec100Codec{}, cfg, input)
			if err != nil {
				errs[rank] = err
				return
			}
			if res.N != int64(p)*confNPer {
				errs[rank] = fmt.Errorf("global N = %d, want %d", res.N, int64(p)*confNPer)
				return
			}
			out[rank] = elem.EncodeSlice(elem.Rec100Codec{}, res.Output[rank])
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("tcp rank %d: %v", rank, err)
		}
	}
	return out
}

func reservePorts(t *testing.T, p int) []string {
	t.Helper()
	addrs, err := tcp.ReservePorts(p)
	if err != nil {
		t.Fatal(err)
	}
	return addrs
}

func decodeParts(parts [][]byte) [][]elem.Rec100 {
	out := make([][]elem.Rec100, len(parts))
	for i, part := range parts {
		out[i] = elem.DecodeSlice(elem.Rec100Codec{}, part, len(part)/100)
	}
	return out
}

func TestSimTCPConformance(t *testing.T) {
	// P=8 exercises a deeper binomial tree and more 1-factor rounds;
	// the file store runs the tcp workers disk-backed, as a cluster
	// deployment (-store=file) would.
	for _, p := range []int{2, 4, 8} {
		for _, store := range []string{"ram", "file"} {
			t.Run(fmt.Sprintf("P%d_%s", p, store), func(t *testing.T) {
				var newStore func(rank int) (blockio.Store, error)
				if store == "file" {
					newStore = blockio.FileStoreFactory(t.TempDir(), confBlock)
				}
				simOut := sortSim(t, p)
				tcpOut := sortTCP(t, p, newStore)
				for rank := 0; rank < p; rank++ {
					if !bytes.Equal(simOut[rank], tcpOut[rank]) {
						t.Fatalf("rank %d: sim and tcp outputs differ (%d vs %d bytes)",
							rank, len(simOut[rank]), len(tcpOut[rank]))
					}
				}

				// valsort summaries: per-partition validation merged across
				// boundaries must match between backends and against the
				// generator's digest.
				var simSums, tcpSums []sortbench.Summary
				for _, part := range decodeParts(simOut) {
					simSums = append(simSums, sortbench.Validate(part))
				}
				for _, part := range decodeParts(tcpOut) {
					tcpSums = append(tcpSums, sortbench.Validate(part))
				}
				simAll := sortbench.Merge(simSums)
				tcpAll := sortbench.Merge(tcpSums)
				if simAll.Records != tcpAll.Records || simAll.Unsorted != tcpAll.Unsorted ||
					simAll.Checksum != tcpAll.Checksum || simAll.Duplicate != tcpAll.Duplicate {
					t.Fatalf("valsort summaries differ: sim %+v vs tcp %+v", simAll, tcpAll)
				}
				if tcpAll.Unsorted != 0 {
					t.Fatalf("tcp output not sorted: %d inversions", tcpAll.Unsorted)
				}
				want := sortbench.Validate(func() []elem.Rec100 {
					var all []elem.Rec100
					for rank := 0; rank < p; rank++ {
						all = append(all, confInput(rank)...)
					}
					return all
				}())
				if tcpAll.Records != want.Records || tcpAll.Checksum != want.Checksum {
					t.Fatalf("output is not a permutation of the input: got %d/%016x, want %d/%016x",
						tcpAll.Records, tcpAll.Checksum, want.Records, want.Checksum)
				}
			})
		}
	}
}
