package tcp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"demsort/internal/cluster"
)

// launchFleet hosts P tcp machines in this process with per-rank
// config hooks and returns each rank's Run error. Machines are closed
// before it returns.
func launchFleet(t *testing.T, p int, tweak func(rank int, cfg *Config), fn func(m *Machine, n *cluster.Node) error) []error {
	t.Helper()
	peers := freePorts(t, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg := Config{Rank: rank, Peers: peers, BlockBytes: 1024, ConnectTimeout: 20 * time.Second}
			if tweak != nil {
				tweak(rank, &cfg)
			}
			m, err := New(cfg)
			if err != nil {
				errs[rank] = err
				return
			}
			defer m.Close()
			errs[rank] = m.Run(func(n *cluster.Node) error { return fn(m, n) })
		}(rank)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("fleet did not unwind in bounded time")
	}
	return errs
}

// TestAbortPropagatesPeerToPeer: one rank's program fails while the
// others are blocked in a collective; the abort frame must unwind
// every survivor with the typed error attributing the failing rank.
func TestAbortPropagatesPeerToPeer(t *testing.T) {
	injected := errors.New("injected program failure")
	errs := launchFleet(t, 4, nil, func(m *Machine, n *cluster.Node) error {
		if n.Rank == 2 {
			time.Sleep(50 * time.Millisecond) // let the others block in Barrier
			return injected
		}
		n.Barrier() // never completes: rank 2 gives up instead
		return nil
	})
	for rank, err := range errs {
		var ae *cluster.ErrAborted
		if !errors.As(err, &ae) {
			t.Fatalf("rank %d: %v (want *cluster.ErrAborted)", rank, err)
		}
		if ae.Rank != 2 {
			t.Fatalf("rank %d attributed the abort to rank %d, want 2 (%v)", rank, ae.Rank, err)
		}
	}
	// The failing rank keeps its own cause reachable through the chain.
	if !errors.Is(errs[2], injected) {
		t.Fatalf("rank 2 lost its cause: %v", errs[2])
	}
}

// TestWedgedPeerDetectedByHeartbeat: a peer that is alive at the
// socket level but makes no progress (and proves no liveness) must be
// detected by the heartbeat timeout, not waited on forever — the
// failure mode a plain EOF check can never catch.
func TestWedgedPeerDetectedByHeartbeat(t *testing.T) {
	start := time.Now()
	errs := launchFleet(t, 2,
		func(rank int, cfg *Config) {
			cfg.HeartbeatInterval = 20 * time.Millisecond
			cfg.HeartbeatTimeout = 300 * time.Millisecond
			cfg.OpTimeout = 30 * time.Second // keep the backstop out of this test
		},
		func(m *Machine, n *cluster.Node) error {
			if n.Rank == 1 {
				m.Wedge()    // stop proving liveness, like a livelocked process
				n.Recv(0, 9) // never sent: parks here until rank 0's abort frame lands
				return nil
			}
			n.Recv(1, 7) // never sent: only the heartbeat timeout can end this
			return nil
		})
	var ae *cluster.ErrAborted
	if !errors.As(errs[0], &ae) || ae.Rank != 1 {
		t.Fatalf("rank 0: %v (want *cluster.ErrAborted naming rank 1)", errs[0])
	}
	if !strings.Contains(errs[0].Error(), "silent") {
		t.Fatalf("rank 0's error should say the peer went silent: %v", errs[0])
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("wedge detection took %v; want bounded by the heartbeat timeout", elapsed)
	}
}

// TestOpTimeoutBoundsBlockingReceive: even a peer that heartbeats
// forever cannot hold a receive past the per-op backstop.
func TestOpTimeoutBoundsBlockingReceive(t *testing.T) {
	errs := launchFleet(t, 1,
		func(rank int, cfg *Config) { cfg.OpTimeout = 200 * time.Millisecond },
		func(m *Machine, n *cluster.Node) error {
			n.Recv(0, 7) // self-receive that was never sent
			return nil
		})
	var ae *cluster.ErrAborted
	if !errors.As(errs[0], &ae) {
		t.Fatalf("got %v, want *cluster.ErrAborted", errs[0])
	}
	if !strings.Contains(errs[0].Error(), "op deadline") {
		t.Fatalf("error should name the op deadline: %v", errs[0])
	}
}

// TestContextCancelAbortsFleet: job-level cancellation unwinds every
// rank with the JobRank attribution.
func TestContextCancelAbortsFleet(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	errs := launchFleet(t, 2,
		func(rank int, cfg *Config) { cfg.Ctx = ctx },
		func(m *Machine, n *cluster.Node) error {
			n.Recv(1-n.Rank, 7) // both block: only the cancellation ends this
			return nil
		})
	for rank, err := range errs {
		var ae *cluster.ErrAborted
		if !errors.As(err, &ae) {
			t.Fatalf("rank %d: %v (want *cluster.ErrAborted)", rank, err)
		}
		if ae.Rank != cluster.JobRank {
			t.Fatalf("rank %d attributed the cancellation to rank %d, want JobRank", rank, ae.Rank)
		}
	}
	if !errors.Is(errs[0], context.Canceled) && !errors.Is(errs[1], context.Canceled) {
		t.Fatalf("no rank kept context.Canceled reachable: %v / %v", errs[0], errs[1])
	}
}

// TestAbortMethodUnblocksRun: Machine.Abort from another goroutine
// (a supervisor) unwinds a blocked run.
func TestAbortMethodUnblocksRun(t *testing.T) {
	cause := errors.New("supervisor says stop")
	var once sync.Once
	errs := launchFleet(t, 2, nil, func(m *Machine, n *cluster.Node) error {
		if n.Rank == 0 {
			once.Do(func() {
				go func() {
					time.Sleep(100 * time.Millisecond)
					m.Abort(cause)
				}()
			})
		}
		n.Recv(1-n.Rank, 7)
		return nil
	})
	var ae *cluster.ErrAborted
	if !errors.As(errs[0], &ae) || ae.Rank != cluster.JobRank {
		t.Fatalf("rank 0: %v (want JobRank abort)", errs[0])
	}
	if !errors.Is(errs[0], cause) {
		t.Fatalf("rank 0 lost the supervisor's cause: %v", errs[0])
	}
	if errs[1] == nil {
		t.Fatal("rank 1 must unwind too (abort fan-out)")
	}
}

// TestMailboxPeakBytes: eager receive-side buffering is accounted —
// a receiver that lags its sender reports the queued high-water mark.
func TestMailboxPeakBytes(t *testing.T) {
	const msgs, size = 10, 1000
	runMachines(t, 2, func(n *cluster.Node) error {
		if n.Rank == 0 {
			for i := 0; i < msgs; i++ {
				n.Send(1, 7, make([]byte, size))
			}
			n.Barrier()
			return nil
		}
		// The reader enqueues eagerly whether or not this program is
		// receiving yet, so the high-water mark must climb to all ten
		// messages before a single Recv runs.
		deadline := time.Now().Add(10 * time.Second)
		for n.MailboxPeakBytes() < msgs*size {
			if time.Now().After(deadline) {
				return fmt.Errorf("mailbox peak stuck at %d bytes, want at least %d", n.MailboxPeakBytes(), msgs*size)
			}
			time.Sleep(time.Millisecond)
		}
		for i := 0; i < msgs; i++ {
			n.Recv(0, 7)
		}
		n.Barrier()
		return nil
	})
}

// TestDropPeerAbortsBothEnds: a severed link is a failure, promptly
// detected on both sides.
func TestDropPeerAbortsBothEnds(t *testing.T) {
	errs := launchFleet(t, 2, nil, func(m *Machine, n *cluster.Node) error {
		if n.Rank == 0 {
			time.Sleep(50 * time.Millisecond)
			m.DropPeer(1)
		}
		n.Recv(1-n.Rank, 7)
		return nil
	})
	for rank, err := range errs {
		var ae *cluster.ErrAborted
		if !errors.As(err, &ae) {
			t.Fatalf("rank %d: %v (want *cluster.ErrAborted)", rank, err)
		}
	}
}

// tcpGoroutines counts live goroutines currently executing this
// package's machine code (read loops, liveness, watchers).
func tcpGoroutines() int {
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	count := 0
	for _, g := range strings.Split(string(buf), "\n\n") {
		if strings.Contains(g, "demsort/internal/cluster/tcp.(*Machine)") {
			count++
		}
	}
	return count
}

// TestCloseLeaksNoGoroutines pins the shutdown contract: after Close
// returns on every machine — clean run and aborted run alike — no
// reader, liveness or watcher goroutine survives.
func TestCloseLeaksNoGoroutines(t *testing.T) {
	before := tcpGoroutines()
	// Clean run.
	runMachines(t, 3, func(n *cluster.Node) error {
		n.Barrier()
		n.AllGather([]byte{byte(n.Rank)})
		return nil
	})
	// Aborted run.
	launchFleet(t, 3, nil, func(m *Machine, n *cluster.Node) error {
		if n.Rank == 1 {
			return errors.New("boom")
		}
		n.Barrier()
		return nil
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		if now := tcpGoroutines(); now <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d tcp machine goroutines before, %d after", before, tcpGoroutines())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
