package tcp

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"demsort/internal/cluster"
	"demsort/internal/vtime"
)

// TestStaleIncarnationFenced pins the restart plane's wire guarantee:
// a straggler process from a dead epoch (or a different job) that
// dials a new fleet's listener is dropped at the handshake — its data
// frames never enter the new incarnation — while the real peers still
// form the fleet and exchange correct data.
func TestStaleIncarnationFenced(t *testing.T) {
	const p = 2
	peers := freePorts(t, p)
	model := vtime.Default()
	model.DiskJitter = 0
	cfgFor := func(rank, epoch int) Config {
		return Config{
			Rank: rank, Peers: peers, BlockBytes: 1024, Model: model,
			ConnectTimeout: 20 * time.Second,
			JobID:          "sortjob", Epoch: epoch,
		}
	}

	// Rank 0 of the NEW incarnation (epoch 3) comes up and listens.
	type newRes struct {
		m   *Machine
		err error
	}
	m0Ch := make(chan newRes, 1)
	go func() {
		m, err := New(cfgFor(0, 3))
		m0Ch <- newRes{m, err}
	}()

	// A straggler from the dead incarnation dials in first: right
	// magic, right job, stale epoch — and a payload that must never be
	// delivered as a frame. Retry until rank 0's listener is bound.
	dial := func() net.Conn {
		deadline := time.Now().Add(10 * time.Second)
		for {
			c, err := net.Dial("tcp", peers[0])
			if err == nil {
				return c
			}
			if time.Now().After(deadline) {
				t.Fatalf("dialing rank 0: %v", err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	stale := dial()
	defer stale.Close()
	var hs [hsLen]byte
	binary.LittleEndian.PutUint32(hs[:4], magic)
	binary.LittleEndian.PutUint32(hs[4:8], 1) // claims to be rank 1
	binary.LittleEndian.PutUint32(hs[8:12], 2)
	binary.LittleEndian.PutUint64(hs[12:20], jobHash("sortjob"))
	if _, err := stale.Write(hs[:]); err != nil {
		t.Fatal(err)
	}
	stale.Write([]byte("stale frame from the dead incarnation"))

	// And a worker from a different job at the right epoch.
	foreign := dial()
	defer foreign.Close()
	binary.LittleEndian.PutUint32(hs[8:12], 3)
	binary.LittleEndian.PutUint64(hs[12:20], jobHash("otherjob"))
	if _, err := foreign.Write(hs[:]); err != nil {
		t.Fatal(err)
	}

	// Both impostors are queued on the listener before the real rank 1
	// dials; the serial accept loop must fence them and keep waiting.
	time.Sleep(200 * time.Millisecond)

	fn := func(n *cluster.Node) error {
		n.Barrier()
		send := make([][]byte, p)
		for j := range send {
			send[j] = []byte(fmt.Sprintf("live %d->%d", n.Rank, j))
		}
		recv := n.AllToAllv(send)
		for j := 0; j < p; j++ {
			if want := fmt.Sprintf("live %d->%d", j, n.Rank); string(recv[j]) != want {
				return fmt.Errorf("stale data leaked into the live fleet: %q", recv[j])
			}
		}
		return nil
	}

	errs := make([]error, p)
	var fenced int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		r := <-m0Ch
		if r.err != nil {
			errs[0] = r.err
			return
		}
		defer r.m.Close()
		errs[0] = r.m.Run(fn)
		fenced = r.m.FencedConns()
	}()
	go func() {
		defer wg.Done()
		m, err := New(cfgFor(1, 3))
		if err != nil {
			errs[1] = err
			return
		}
		defer m.Close()
		errs[1] = m.Run(fn)
	}()
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	if fenced != 2 {
		t.Fatalf("rank 0 fenced %d connections, want 2 (stale epoch + foreign job)", fenced)
	}
}
