// Package tcp is the real-process backend of the cluster transport
// plane: one OS process per PE, exchanging length-prefixed framed
// messages over persistent pairwise TCP connections (localhost or a
// host list). It plays the role MVAPICH plays in the paper — the
// collectives are built from point-to-point primitives with
// cluster-shaped schedules (topology.go): the rooted collectives
// (Barrier, Bcast, AllGather, AllReduceInt64) run over a binomial
// tree in O(log P) rounds, and the personalised exchanges (AllToAllv,
// ExchangeAny) follow a 1-factorization of K_P, so every round is a
// perfect matching with one exchange per link in each direction —
// balanced link load, and the machine's P² streams never funnel
// through one node.
//
// Timing differs from the sim backend by design: a tcp PE reports real
// wall-clock seconds per phase (cluster.Stats backed by time.Now), and
// modelled CPU charges are no-ops — the computation itself is already
// on the wall. Disk traffic is still tracked through the PE's
// blockio.Volume byte counters.
//
// Wire protocol, per frame: a 12-byte header (int32 tag, uint64
// payload length, both little-endian) followed by the payload. Like
// the paper's re-implemented MPI_Alltoallv, there is no message-size
// limit. Tags <= -1000 are reserved for the collectives; phase-level
// Send/Recv may use any tag above that. A per-peer reader goroutine
// drains its socket into an unbounded mailbox, so senders never block
// on the receiver's progress (eager buffering) and pairwise collective
// schedules cannot deadlock.
//
// ExchangeAny crosses address spaces, so items must be gob-encodable;
// common scalar and slice types are pre-registered, anything else
// needs gob.Register at both ends.
//
// # Failure plane
//
// A machine of real processes cannot assume a healthy fleet: any rank
// can crash (EOF mid-protocol), wedge (conn open, nothing flowing) or
// be cancelled. The backend detects and unwinds all three from the
// inside, in bounded time, without an external supervisor:
//
//   - liveness: every rank sends heartbeat frames on pairwise conns
//     that have been idle for HeartbeatInterval; a blocked receive
//     whose peer has been silent past HeartbeatTimeout fails the
//     machine with *cluster.ErrAborted naming that peer — this is how
//     a wedged (not merely closed) process is caught. OpTimeout is
//     the hard per-op backstop: no single blocking send or receive
//     outlives it even while heartbeats still flow.
//   - abort propagation: the first failure (lost conn, missed
//     heartbeats, a rank's program returning an error, Abort/context
//     cancellation) fans an ABORT frame out to every peer carrying
//     the culprit rank and cause, so the whole fleet unwinds
//     peer-to-peer with consistent attribution instead of each rank
//     timing out on its own. Stuck writers are unblocked by poisoning
//     their write deadlines.
//   - bring-up: dial retries use jittered exponential backoff
//     (Backoff), bounded by ConnectTimeout.
//
// Receive-side buffering is accounted: MailboxPeakBytes reports the
// high-water mark of queued undelivered frames, and crossing
// MailboxHighWater warn-logs once.
package tcp

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"demsort/internal/blockio"
	"demsort/internal/bufpool"
	"demsort/internal/cluster"
	"demsort/internal/membudget"
	"demsort/internal/vtime"
)

// Reserved collective tags (outside the phase-level tag space).
const (
	tagBarrier    = -1000
	tagBarrierAck = -1001
	tagGather     = -1002
	tagGatherVec  = -1003
	tagBcast      = -1004
	tagReduce     = -1005
	tagReduceRes  = -1006
	tagA2A        = -1007
	tagXAny       = -1008
	tagClose      = -1009 // goodbye: the peer is shutting down cleanly
	tagAbort      = -1010 // abort fan-out: payload = culprit rank + cause
	tagHB         = -1011 // heartbeat: empty, consumed by the reader
)

// frameOverhead is the accounting weight of one queued frame beyond
// its payload (the wire header).
const frameOverhead = 12

// handshake magic prefixing the dialer's announcement. The full
// handshake is hsLen bytes: magic(4) · rank(4) · epoch(4) ·
// fnv64a(JobID)(8). Epoch and job hash are the incarnation fence: an
// accepted connection presenting the wrong epoch or job is closed
// before it can deliver a single frame.
const (
	magic = 0x44454d53 // "DEMS"
	hsLen = 20
)

// jobHash is the handshake's job identity: FNV-1a over the JobID.
func jobHash(jobID string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(jobID); i++ {
		h ^= uint64(jobID[i])
		h *= 1099511628211
	}
	return h
}

// ErrBind marks a New failure to bind the configured listen address —
// usually the reservation race (another process grabbed a ReservePorts
// port between the launcher closing it and this worker re-binding).
// Launchers detect it with errors.Is and retry the fleet on fresh
// ports instead of letting the peers dial a dead address until their
// connect timeout.
var ErrBind = errors.New("listen address unavailable")

func init() {
	// Common metadata types so ExchangeAny works out of the box.
	gob.Register([]byte(nil))
	gob.Register([]int64(nil))
	gob.Register([]uint64(nil))
	gob.Register(int64(0))
	gob.Register(uint64(0))
	gob.Register("")
}

// Config describes this process's PE and the machine it joins.
type Config struct {
	// Rank is this process's PE index in 0..P-1.
	Rank int
	// Peers lists every PE's listen address ("host:port"), indexed by
	// rank; len(Peers) is the machine size P.
	Peers []string
	// Listen optionally overrides the address this PE binds
	// (defaults to Peers[Rank]; useful behind NAT or with 0.0.0.0).
	Listen string
	// BlockBytes is the external-memory block size B in bytes.
	BlockBytes int
	// MemElems is the per-PE internal memory budget in elements.
	MemElems int64
	// Model parameterises the PE's Volume accounting (modelled I/O
	// durations; byte counters are real). Zero value: vtime.Default.
	Model vtime.CostModel
	// NewStore creates the block store backing this PE's volume; nil
	// defaults to a RAM-backed store.
	NewStore func(rank int) (blockio.Store, error)
	// ConnectTimeout bounds connection establishment (dial retries
	// plus accepts); 0 means 30s.
	ConnectTimeout time.Duration
	// Ctx optionally cancels the job from the outside: when it is
	// done, the machine aborts (Run returns *cluster.ErrAborted with
	// Rank cluster.JobRank) and the abort fans out to the peers.
	Ctx context.Context
	// HeartbeatInterval is how often an idle pairwise connection
	// carries a heartbeat frame so silence means trouble rather than
	// idleness; 0 means 500ms, negative disables sending (peers will
	// flag this rank as wedged if its conns stay idle too long).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a peer may stay silent while this
	// rank blocks on it before the machine aborts with that peer as
	// the culprit — the wedged-peer detector; 0 means
	// max(10×HeartbeatInterval, 5s), negative disables.
	HeartbeatTimeout time.Duration
	// OpTimeout is the hard backstop on any single blocking send or
	// receive, independent of peer liveness (a peer can heartbeat
	// forever without sending the frame this rank needs); 0 means 2m,
	// negative disables.
	OpTimeout time.Duration
	// MailboxHighWater warn-logs (once) when the bytes queued
	// undelivered across this PE's mailboxes exceed it; 0 means
	// 256 MiB, negative disables.
	MailboxHighWater int64
	// JobID names the job this fleet runs; it is hashed into the
	// connection handshake so a worker from a different job cannot
	// join. Empty is a valid (shared) name.
	JobID string
	// Epoch is the fleet incarnation number, carried in the handshake.
	// After a crash the launcher restarts the whole fleet at a higher
	// epoch; a straggler process from the dead incarnation that dials a
	// new-epoch listener is fenced — its connection is dropped before
	// any frame of stale data can enter the new fleet.
	Epoch int
}

// Machine hosts this process's single PE; it implements both
// cluster.Machine and cluster.Transport.
type Machine struct {
	cfg   Config
	rank  int
	p     int
	ln    net.Listener
	peers   []*peerConn // by rank; self slot is mailbox-only
	peersMu sync.Mutex  // guards slot publication during bring-up
	node  *cluster.Node
	clock *vtime.Clock
	stats *wallStats

	closed    atomic.Bool
	abortOnce sync.Once
	abortFlag atomic.Bool
	abortErr  *cluster.ErrAborted
	abortMu   sync.Mutex

	done     chan struct{} // closed on abort or Close: background goroutines exit
	stopOnce sync.Once
	wedged   atomic.Bool    // fault injection: stop proving liveness
	bg       sync.WaitGroup // liveness + ctx watcher + per-peer readers

	boxBytes atomic.Int64 // bytes currently queued undelivered
	boxPeak  atomic.Int64 // high-water mark of boxBytes
	hwWarned atomic.Bool

	fenced atomic.Int64 // connections dropped for a stale epoch/job
}

// FencedConns reports how many inbound connections were dropped at the
// handshake for presenting a stale epoch or a foreign job ID.
func (m *Machine) FencedConns() int64 { return m.fenced.Load() }

type peerConn struct {
	conn net.Conn
	wmu  sync.Mutex
	box  *mailbox

	// lastHeard/lastSent are unix nanos of the last frame read from /
	// written to this peer — the liveness plane's evidence.
	lastHeard atomic.Int64
	lastSent  atomic.Int64
}

// sayGoodbye tells the peer this rank is shutting down cleanly, so a
// subsequent EOF on the connection is not treated as a lost peer
// (ranks of one machine may finish at different times; a fast rank's
// Close must not abort a slow rank still mid-collective with others).
func (pc *peerConn) sayGoodbye() {
	var hdr [12]byte
	tag := int32(tagClose)
	binary.LittleEndian.PutUint32(hdr[:4], uint32(tag))
	pc.wmu.Lock()
	pc.conn.Write(hdr[:]) // best effort: the conn may already be gone
	pc.wmu.Unlock()
}

// New joins the machine: it binds the local listen address, connects
// to every peer (rank i dials every rank below it and accepts from
// every rank above, so each pair shares one persistent connection) and
// assembles the PE context. Every process of the machine must call New
// with the same Peers list within ConnectTimeout of each other.
func New(cfg Config) (*Machine, error) {
	p := len(cfg.Peers)
	if p < 1 {
		return nil, fmt.Errorf("tcp: empty peer list")
	}
	if cfg.Rank < 0 || cfg.Rank >= p {
		return nil, fmt.Errorf("tcp: rank %d outside peer list of %d", cfg.Rank, p)
	}
	if cfg.BlockBytes <= 0 {
		return nil, fmt.Errorf("tcp: block size must be positive, got %d", cfg.BlockBytes)
	}
	if cfg.Model == (vtime.CostModel{}) {
		cfg.Model = vtime.Default()
	}
	if cfg.ConnectTimeout <= 0 {
		cfg.ConnectTimeout = 30 * time.Second
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 500 * time.Millisecond
	}
	if cfg.HeartbeatTimeout == 0 {
		cfg.HeartbeatTimeout = 10 * cfg.HeartbeatInterval
		if cfg.HeartbeatTimeout < 5*time.Second {
			cfg.HeartbeatTimeout = 5 * time.Second
		}
	}
	if cfg.OpTimeout == 0 {
		cfg.OpTimeout = 2 * time.Minute
	}
	if cfg.MailboxHighWater == 0 {
		cfg.MailboxHighWater = 256 << 20
	}
	m := &Machine{cfg: cfg, rank: cfg.Rank, p: p, peers: make([]*peerConn, p), done: make(chan struct{})}
	m.peers[cfg.Rank] = &peerConn{box: newMailbox()} // rank-local messages

	if p > 1 {
		addr := cfg.Listen
		if addr == "" {
			addr = cfg.Peers[cfg.Rank]
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			// Only an address already in use is the reservation race
			// (ErrBind → launcher retries on fresh ports); a bad or
			// unroutable listen address is not retryable.
			if errors.Is(err, syscall.EADDRINUSE) {
				return nil, fmt.Errorf("tcp: rank %d listen %s (%v): %w", cfg.Rank, addr, err, ErrBind)
			}
			return nil, fmt.Errorf("tcp: rank %d listen %s: %w", cfg.Rank, addr, err)
		}
		m.ln = ln
		if err := m.connect(); err != nil {
			m.Close()
			return nil, err
		}
	}

	var store blockio.Store
	var err error
	if cfg.NewStore != nil {
		store, err = cfg.NewStore(cfg.Rank)
	} else {
		store = blockio.NewMemStore()
	}
	if err != nil {
		m.Close()
		return nil, err
	}
	m.clock = vtime.NewClock()
	m.stats = newWallStats(m.clock)
	m.node = cluster.NewNode(
		m,
		m.stats,
		blockio.NewVolume(store, cfg.BlockBytes, cfg.Rank, cfg.Model, m.clock),
		membudget.New(cfg.MemElems),
	)
	m.bg.Add(1)
	go m.liveness()
	if cfg.Ctx != nil {
		m.bg.Add(1)
		go func() {
			defer m.bg.Done()
			select {
			case <-cfg.Ctx.Done():
				m.fail(&cluster.ErrAborted{Rank: cluster.JobRank, Cause: cfg.Ctx.Err()})
			case <-m.done:
			}
		}()
	}
	return m, nil
}

// connect establishes the pairwise connections: accept from higher
// ranks while dialing lower ranks (with retries — peers may still be
// starting up).
func (m *Machine) connect() error {
	deadline := time.Now().Add(m.cfg.ConnectTimeout)
	errCh := make(chan error, 2)
	var wg sync.WaitGroup

	// Accept from every higher rank.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for accepted := 0; accepted < m.p-1-m.rank; {
			if d, ok := m.ln.(*net.TCPListener); ok {
				d.SetDeadline(deadline)
			}
			conn, err := m.ln.Accept()
			if err != nil {
				errCh <- fmt.Errorf("tcp: rank %d accept: %w", m.rank, err)
				return
			}
			// The handshake read gets its own deadline so a fenced or
			// silent dialer cannot stall bring-up of the real peers.
			conn.SetReadDeadline(deadline)
			var hs [hsLen]byte
			if _, err := io.ReadFull(conn, hs[:]); err != nil {
				errCh <- fmt.Errorf("tcp: rank %d handshake read: %w", m.rank, err)
				return
			}
			conn.SetReadDeadline(time.Time{})
			// Incarnation fence: a dialer from another job or a dead
			// epoch is dropped on the floor, not treated as a fleet
			// error — the real peer of this slot is still expected.
			if binary.LittleEndian.Uint32(hs[:4]) != magic ||
				int(binary.LittleEndian.Uint32(hs[8:12])) != m.cfg.Epoch ||
				binary.LittleEndian.Uint64(hs[12:20]) != jobHash(m.cfg.JobID) {
				m.fenced.Add(1)
				conn.Close()
				continue
			}
			src := int(binary.LittleEndian.Uint32(hs[4:8]))
			if src <= m.rank || src >= m.p || m.peers[src] != nil {
				errCh <- fmt.Errorf("tcp: rank %d: unexpected handshake from rank %d", m.rank, src)
				return
			}
			m.registerPeer(src, conn)
			accepted++
		}
	}()

	// Dial every lower rank, with jittered exponential backoff: the
	// peer may still be starting, and a whole fleet redialing in
	// lockstep (same launcher, same tick) only prolongs the contention.
	wg.Add(1)
	go func() {
		defer wg.Done()
		bo := NewBackoff(10*time.Millisecond, time.Second, uint64(m.rank)+1)
		for dst := 0; dst < m.rank; dst++ {
			bo.Reset()
			var conn net.Conn
			var err error
			for {
				conn, err = net.DialTimeout("tcp", m.cfg.Peers[dst], time.Second)
				if err == nil || time.Now().After(deadline) {
					break
				}
				time.Sleep(bo.Next())
			}
			if err != nil {
				errCh <- fmt.Errorf("tcp: rank %d dial rank %d (%s): %w", m.rank, dst, m.cfg.Peers[dst], err)
				return
			}
			var hs [hsLen]byte
			binary.LittleEndian.PutUint32(hs[:4], magic)
			binary.LittleEndian.PutUint32(hs[4:8], uint32(m.rank))
			binary.LittleEndian.PutUint32(hs[8:12], uint32(m.cfg.Epoch))
			binary.LittleEndian.PutUint64(hs[12:20], jobHash(m.cfg.JobID))
			if _, err := conn.Write(hs[:]); err != nil {
				errCh <- fmt.Errorf("tcp: rank %d handshake write to %d: %w", m.rank, dst, err)
				return
			}
			m.registerPeer(dst, conn)
		}
	}()

	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}
	for src := range m.peers {
		if src != m.rank && m.peers[src] == nil {
			return fmt.Errorf("tcp: rank %d: no connection to rank %d", m.rank, src)
		}
	}
	return nil
}

func (m *Machine) registerPeer(rank int, conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	pc := &peerConn{conn: conn, box: newMailbox()}
	now := time.Now().UnixNano()
	pc.lastHeard.Store(now)
	pc.lastSent.Store(now)
	// Published under the lock: an early-registered peer's readLoop can
	// fail (and so walk every slot) while bring-up is still registering.
	m.peersMu.Lock()
	m.peers[rank] = pc
	m.peersMu.Unlock()
	m.bg.Add(1)
	go m.readLoop(rank, pc)
}

// readLoop drains one peer's socket into its mailbox; it owns the read
// side of the connection. Payload buffers come from the shared arena
// and are owned by the consumer after delivery (RecycleRecv applies).
// Every frame — data, goodbye, heartbeat, abort — counts as proof of
// life for the peer.
func (m *Machine) readLoop(src int, pc *peerConn) {
	defer m.bg.Done()
	var hdr [12]byte
	for {
		if _, err := io.ReadFull(pc.conn, hdr[:]); err != nil {
			if !m.closed.Load() && !m.abortFlag.Load() && !pc.box.isClosed() {
				m.fail(cluster.Abortedf(src, "tcp: rank %d lost rank %d: %w", m.rank, src, err))
			}
			return
		}
		pc.lastHeard.Store(time.Now().UnixNano())
		tag := int(int32(binary.LittleEndian.Uint32(hdr[:4])))
		size := binary.LittleEndian.Uint64(hdr[4:12])
		var payload []byte
		if size > 0 {
			payload = bufpool.Get(int(size))
			if _, err := io.ReadFull(pc.conn, payload); err != nil {
				if !m.closed.Load() && !m.abortFlag.Load() {
					m.fail(cluster.Abortedf(src, "tcp: rank %d lost rank %d mid-frame: %w", m.rank, src, err))
				}
				return
			}
		}
		switch tag {
		case tagHB:
			// Liveness only; never delivered.
			bufpool.Put(payload)
		case tagClose:
			// The peer is done; any frames it owed us are already in
			// the mailbox (TCP is ordered), so a later empty wait on
			// this peer is a genuine protocol error, not a race.
			bufpool.Put(payload)
			pc.box.close()
		case tagAbort:
			culprit, cause := decodeAbort(payload, src)
			bufpool.Put(payload)
			m.fail(&cluster.ErrAborted{Rank: culprit, Cause: cause})
		default:
			m.enqueue(pc, frame{tag: tag, payload: payload})
		}
	}
}

// Close says goodbye to every peer, then tears down connections,
// listener, background goroutines and the store. On return no
// machine-owned goroutine is left running (the leak checks in the
// tests pin this).
func (m *Machine) Close() error {
	for _, pc := range m.peers {
		if pc != nil && pc.conn != nil && !m.closed.Load() && !m.abortFlag.Load() {
			pc.sayGoodbye()
		}
	}
	m.closed.Store(true)
	m.stop()
	for _, pc := range m.peers {
		if pc != nil {
			if pc.conn != nil {
				pc.conn.Close()
			}
			pc.box.wakeAll()
		}
	}
	if m.ln != nil {
		m.ln.Close()
	}
	m.bg.Wait()
	if m.node != nil {
		return m.node.Vol.Store().Close()
	}
	return nil
}

// stop makes the background goroutines (liveness, ctx watcher) exit.
func (m *Machine) stop() {
	m.stopOnce.Do(func() { close(m.done) })
}

// snapshotPeers copies the peer table under the publication lock, for
// walkers that may run while bring-up is still registering conns (the
// abort fan-out paths). After connect returns the table is immutable.
func (m *Machine) snapshotPeers() []*peerConn {
	m.peersMu.Lock()
	defer m.peersMu.Unlock()
	out := make([]*peerConn, len(m.peers))
	copy(out, m.peers)
	return out
}

// Nodes returns the locally hosted PE contexts: exactly one.
func (m *Machine) Nodes() []*cluster.Node { return []*cluster.Node{m.node} }

// P returns the machine size.
func (m *Machine) P() int { return m.p }

// Rank implements cluster.Transport.
func (m *Machine) Rank() int { return m.rank }

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// tcpAbort is panicked through the PE program when the machine fails,
// so Run unwinds instead of hanging on a dead transport.
type tcpAbort struct{}

// fail records the first failure, fans the abort out to every peer and
// wakes every blocked wait. Callers attribute: a lost or silent peer
// fails with that peer's rank, a local bug with m.rank, a received
// abort frame with the origin's attribution (abortOnce stops the frame
// from echoing back and forth).
func (m *Machine) fail(err error) {
	m.abortOnce.Do(func() {
		ae := cluster.AsAborted(m.rank, err)
		m.abortMu.Lock()
		m.abortErr = ae
		m.abortMu.Unlock()
		m.abortFlag.Store(true)
		m.broadcastAbort(ae)
		m.stop()
		for _, pc := range m.snapshotPeers() {
			if pc != nil {
				pc.box.wakeAll()
			}
		}
	})
}

// broadcastAbort sends the abort frame to every peer (best effort,
// bounded: TryLock the write lane, short write deadline) and then
// poisons every connection's write deadline so a sender stuck mid-write
// to a wedged peer unwinds through its own deadline error.
func (m *Machine) broadcastAbort(ae *cluster.ErrAborted) {
	payload := encodeAbort(ae)
	var hdr [12]byte
	tag := int32(tagAbort)
	binary.LittleEndian.PutUint32(hdr[:4], uint32(tag))
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(payload)))
	for rank, pc := range m.snapshotPeers() {
		if rank == m.rank || pc == nil || pc.conn == nil {
			continue
		}
		if pc.wmu.TryLock() {
			pc.conn.SetWriteDeadline(time.Now().Add(500 * time.Millisecond))
			bufs := net.Buffers{hdr[:], payload}
			bufs.WriteTo(pc.conn) // best effort: EOF peers learn via their read side
			pc.wmu.Unlock()
		}
		// A writer holding wmu (or a later one) hits this deadline,
		// observes abortFlag and unwinds instead of blocking forever on
		// a full send buffer to a dead or wedged peer.
		pc.conn.SetWriteDeadline(time.Now())
	}
}

// encodeAbort frames an abort for the wire: int32 culprit rank, then
// the cause string.
func encodeAbort(ae *cluster.ErrAborted) []byte {
	cause := "unknown cause"
	if ae.Cause != nil {
		cause = ae.Cause.Error()
	}
	b := make([]byte, 4+len(cause))
	binary.LittleEndian.PutUint32(b[:4], uint32(int32(ae.Rank)))
	copy(b[4:], cause)
	return b
}

// decodeAbort parses an abort frame; a malformed frame is attributed
// to the sender.
func decodeAbort(payload []byte, src int) (culprit int, cause error) {
	if len(payload) < 4 {
		return src, fmt.Errorf("abort from rank %d (malformed frame)", src)
	}
	culprit = int(int32(binary.LittleEndian.Uint32(payload[:4])))
	if culprit != cluster.JobRank && (culprit < 0 || culprit >= 1<<20) {
		culprit = src
	}
	return culprit, fmt.Errorf("abort relayed by rank %d: %s", src, payload[4:])
}

func (m *Machine) failNow(err error) {
	m.fail(err)
	panic(tcpAbort{})
}

// Abort implements cluster.Machine: external job-level cancellation.
// The local PE unwinds (Run returns *cluster.ErrAborted with Rank
// cluster.JobRank) and the abort fans out to the peer processes.
func (m *Machine) Abort(cause error) {
	m.fail(&cluster.ErrAborted{Rank: cluster.JobRank, Cause: cause})
}

// Kill severs the machine abruptly: no goodbye, no abort broadcast,
// connections dropped mid-protocol — to the peers this is exactly what
// a SIGKILLed or segfaulted worker looks like. The fault-injection
// plane uses it to make one in-process rank "crash"; after Kill the
// machine is unusable and Close only releases local resources.
func (m *Machine) Kill() {
	m.closed.Store(true)
	m.stop()
	for _, pc := range m.snapshotPeers() {
		if pc != nil {
			if pc.conn != nil {
				pc.conn.Close()
			}
			pc.box.wakeAll()
		}
	}
	if m.ln != nil {
		m.ln.Close()
	}
}

// Wedge simulates a stuck-but-alive process: heartbeats stop flowing
// out, connections stay open, reads keep draining. Peers blocked on
// this rank detect it through HeartbeatTimeout. Fault injection only.
func (m *Machine) Wedge() { m.wedged.Store(true) }

// DropPeer abruptly closes the connection to one peer — the
// deterministic form of a broken link. Both ends observe a lost conn
// mid-protocol and abort attributing the other side.
func (m *Machine) DropPeer(rank int) {
	if rank < 0 || rank >= m.p || rank == m.rank {
		return
	}
	if pc := m.peers[rank]; pc != nil && pc.conn != nil {
		pc.conn.Close()
	}
}

// MailboxPeakBytes implements cluster.MailboxStats: the high-water
// mark of bytes queued undelivered across this PE's mailboxes.
func (m *Machine) MailboxPeakBytes() int64 { return m.boxPeak.Load() }

// liveness is the machine's background pulse: it periodically wakes
// every mailbox waiter (giving blocked pops their deadline granularity
// — sync.Cond has no timed wait) and heartbeats idle outbound conns so
// silence is evidence. It never touches the clock or phase stats,
// which belong to the PE goroutine.
func (m *Machine) liveness() {
	defer m.bg.Done()
	hb := m.cfg.HeartbeatInterval
	if hb <= 0 {
		hb = 500 * time.Millisecond
	}
	wake := hb / 2
	if wake < time.Millisecond {
		wake = time.Millisecond
	}
	if wake > 250*time.Millisecond {
		wake = 250 * time.Millisecond
	}
	t := time.NewTicker(wake)
	defer t.Stop()
	var lastHB time.Time
	for {
		select {
		case <-m.done:
			return
		case now := <-t.C:
			for _, pc := range m.peers {
				if pc != nil {
					pc.box.wakeAll()
				}
			}
			if m.cfg.HeartbeatInterval < 0 || m.wedged.Load() {
				continue
			}
			if now.Sub(lastHB) < hb {
				continue
			}
			lastHB = now
			m.sendHeartbeats(hb)
		}
	}
}

// sendHeartbeats writes one heartbeat frame to every peer whose
// outbound lane has been idle for at least the interval. TryLock: if a
// data frame is being written right now, that frame is the heartbeat.
func (m *Machine) sendHeartbeats(interval time.Duration) {
	var hdr [12]byte
	tag := int32(tagHB)
	binary.LittleEndian.PutUint32(hdr[:4], uint32(tag))
	for rank, pc := range m.peers {
		if rank == m.rank || pc == nil || pc.conn == nil {
			continue
		}
		if time.Since(time.Unix(0, pc.lastSent.Load())) < interval {
			continue
		}
		if !pc.wmu.TryLock() {
			continue
		}
		pc.conn.SetWriteDeadline(time.Now().Add(interval))
		_, err := pc.conn.Write(hdr[:])
		pc.conn.SetWriteDeadline(time.Time{})
		pc.lastSent.Store(time.Now().UnixNano())
		pc.wmu.Unlock()
		_ = err // a dead conn is the read side's discovery to make
	}
}

// Run executes fn on the local PE (in the calling goroutine) and
// returns its error, or the transport failure that unwound it. Any
// failure — fn returning an error included — aborts the machine, so
// the peers unwind too instead of blocking on a rank that has given
// up.
func (m *Machine) Run(fn func(*cluster.Node) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(tcpAbort); ok {
				m.abortMu.Lock()
				err = m.abortErr
				m.abortMu.Unlock()
				return
			}
			m.fail(cluster.AsAborted(m.rank, fmt.Errorf("tcp: PE %d panicked: %v", m.rank, r)))
			m.abortMu.Lock()
			err = m.abortErr
			m.abortMu.Unlock()
		}
	}()
	if err := fn(m.node); err != nil {
		ae := cluster.AsAborted(m.rank, fmt.Errorf("PE %d: %w", m.rank, err))
		m.fail(ae)
		m.abortMu.Lock()
		recorded := m.abortErr
		m.abortMu.Unlock()
		return recorded
	}
	if m.abortFlag.Load() {
		m.abortMu.Lock()
		defer m.abortMu.Unlock()
		return m.abortErr
	}
	return nil
}

// ---------------------------------------------------------------------
// Framed point-to-point primitives.
// ---------------------------------------------------------------------

type frame struct {
	tag     int
	payload []byte
}

// mailbox is an unbounded FIFO of received frames (one per peer); the
// reader goroutine pushes, the PE program pops. closed marks a clean
// goodbye from the peer: frames already delivered stay poppable, but
// an empty wait will never be satisfied.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	q       []frame
	head    int
	peerBye bool
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) push(f frame) {
	b.mu.Lock()
	b.q = append(b.q, f)
	b.cond.Signal()
	b.mu.Unlock()
}

func (b *mailbox) close() {
	b.mu.Lock()
	b.peerBye = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *mailbox) isClosed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peerBye
}

func (b *mailbox) wakeAll() {
	b.mu.Lock()
	b.cond.Broadcast()
	b.mu.Unlock()
}

// enqueue delivers a frame to a mailbox and charges the machine's
// receive-side accounting, warn-logging once past the high-water mark.
func (m *Machine) enqueue(pc *peerConn, f frame) {
	pc.box.push(f)
	total := m.boxBytes.Add(int64(len(f.payload)) + frameOverhead)
	for {
		peak := m.boxPeak.Load()
		if total <= peak || m.boxPeak.CompareAndSwap(peak, total) {
			break
		}
	}
	if hw := m.cfg.MailboxHighWater; hw > 0 && total > hw && !m.hwWarned.Swap(true) {
		log.Printf("tcp: rank %d: %d bytes queued undelivered in receive mailboxes (high-water mark %d) — this PE is falling behind its peers", m.rank, total, hw)
	}
}

// popFrame blocks for the next frame from src, bounded by the failure
// plane: the liveness goroutine re-wakes the wait periodically so a
// silent peer (HeartbeatTimeout) or an overlong wait (OpTimeout) fails
// the machine instead of blocking forever.
func (m *Machine) popFrame(src int) (frame, bool) {
	pc := m.peers[src]
	b := pc.box
	start := time.Now()
	b.mu.Lock()
	for b.head == len(b.q) && !b.peerBye && !m.abortFlag.Load() && !m.closed.Load() {
		if err := m.stalled(src, pc, start); err != nil {
			b.mu.Unlock()
			m.failNow(err)
		}
		b.cond.Wait()
	}
	if b.head == len(b.q) {
		b.mu.Unlock()
		return frame{}, false
	}
	f := b.q[b.head]
	b.q[b.head] = frame{}
	b.head++
	if b.head == len(b.q) {
		b.q = b.q[:0]
		b.head = 0
	} else if b.head > 32 && b.head*2 >= len(b.q) {
		// Compact once the dead prefix dominates, so a queue that
		// never fully drains (a peer staying a round ahead for a whole
		// phase) keeps a bounded footprint instead of growing with the
		// total frame count.
		n := copy(b.q, b.q[b.head:])
		clear(b.q[n:])
		b.q = b.q[:n]
		b.head = 0
	}
	b.mu.Unlock()
	m.boxBytes.Add(-int64(len(f.payload)) - frameOverhead)
	return f, true
}

// stalled decides whether a blocked receive from src has outlived the
// failure plane's bounds. Self-messages only face OpTimeout (there is
// no liveness question about this process).
func (m *Machine) stalled(src int, pc *peerConn, start time.Time) error {
	now := time.Now()
	if ot := m.cfg.OpTimeout; ot > 0 && now.Sub(start) > ot {
		return cluster.Abortedf(src, "tcp: rank %d: receive from rank %d exceeded the %v op deadline", m.rank, src, ot)
	}
	if src != m.rank {
		if ht := m.cfg.HeartbeatTimeout; ht > 0 {
			if silent := now.Sub(time.Unix(0, pc.lastHeard.Load())); silent > ht {
				return cluster.Abortedf(src, "tcp: rank %d: rank %d silent for %v (heartbeat timeout %v) — presumed dead or wedged",
					m.rank, src, silent.Round(time.Millisecond), ht)
			}
		}
	}
	return nil
}

// writeFrame writes one frame to dst's socket and returns the write
// error instead of failing the machine — the shared write path of the
// PE goroutine (sendFrame) and the pipelined stream's background
// sender, which must never panic or touch the PE-owned clock. Writes
// are bounded by OpTimeout so a wedged receiver with a full socket
// buffer cannot block a writer forever; an abort elsewhere poisons the
// write deadline and unblocks it immediately.
func (m *Machine) writeFrame(dst, tag int, payload []byte) error {
	pc := m.peers[dst]
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(int32(tag)))
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(payload)))
	bufs := net.Buffers{hdr[:], payload}
	if len(payload) == 0 {
		bufs = bufs[:1]
	}
	pc.wmu.Lock()
	if ot := m.cfg.OpTimeout; ot > 0 {
		pc.conn.SetWriteDeadline(time.Now().Add(ot))
	}
	_, err := bufs.WriteTo(pc.conn)
	if err == nil {
		pc.conn.SetWriteDeadline(time.Time{})
	}
	pc.lastSent.Store(time.Now().UnixNano())
	pc.wmu.Unlock()
	return err
}

// sendFrame writes one frame to dst (self-delivery bypasses the
// network and the byte counters, matching the sim backend) and charges
// the PE's accounting; the write duration counts as blocked time.
func (m *Machine) sendFrame(dst, tag int, payload []byte) {
	if m.abortFlag.Load() {
		panic(tcpAbort{})
	}
	if dst == m.rank {
		m.enqueue(m.peers[m.rank], frame{tag: tag, payload: payload})
		return
	}
	t0 := time.Now()
	err := m.writeFrame(dst, tag, payload)
	if err != nil {
		if m.abortFlag.Load() {
			panic(tcpAbort{}) // the abort path poisoned this write
		}
		m.failNow(cluster.Abortedf(dst, "tcp: rank %d send to %d: %w", m.rank, dst, err))
	}
	st := m.clock.Cur()
	st.BlockedTime += time.Since(t0).Seconds()
	st.BytesSent += int64(len(payload))
}

// recvFrame blocks for the next frame from src and enforces the tag
// protocol; the wait is charged as network and blocked time.
func (m *Machine) recvFrame(src, tag int) []byte {
	t0 := time.Now()
	f, ok := m.popFrame(src)
	if !ok {
		if m.abortFlag.Load() {
			panic(tcpAbort{})
		}
		m.failNow(cluster.Abortedf(src, "tcp: rank %d waiting on rank %d, which has shut down", m.rank, src))
	}
	if f.tag != tag {
		m.failNow(cluster.Abortedf(m.rank, "tcp: rank %d expected tag %d from %d, got %d", m.rank, tag, src, f.tag))
	}
	st := m.clock.Cur()
	wait := time.Since(t0).Seconds()
	st.NetTime += wait
	st.BlockedTime += wait
	if src != m.rank {
		st.BytesRecv += int64(len(f.payload))
		st.Messages++
	}
	return f.payload
}

// Send implements cluster.Transport (phase-level tags must be above
// the reserved collective range).
func (m *Machine) Send(dst, tag int, payload []byte) {
	if tag <= tagBarrier {
		m.failNow(fmt.Errorf("tcp: tag %d is reserved for collectives", tag))
	}
	m.sendFrame(dst, tag, payload)
}

// Recv implements cluster.Transport.
func (m *Machine) Recv(src, tag int) []byte {
	if tag <= tagBarrier {
		m.failNow(fmt.Errorf("tcp: tag %d is reserved for collectives", tag))
	}
	return m.recvFrame(src, tag)
}

// ---------------------------------------------------------------------
// Collectives from point-to-point.
// ---------------------------------------------------------------------

// Barrier implements cluster.Transport: a binomial-tree reduce to
// rank 0 followed by a tree release, O(log P) rounds each way.
func (m *Machine) Barrier() {
	if m.p == 1 {
		return
	}
	children, parent := btreeUp(m.rank, m.p)
	for _, c := range children {
		bufpool.Put(m.recvFrame(c, tagBarrier))
	}
	if parent >= 0 {
		m.sendFrame(parent, tagBarrier, nil)
		bufpool.Put(m.recvFrame(parent, tagBarrierAck))
	}
	for i := len(children) - 1; i >= 0; i-- {
		m.sendFrame(children[i], tagBarrierAck, nil)
	}
}

// AllToAllv implements cluster.Transport with a 1-factorization
// schedule: the rounds partition all rank pairs into perfect
// matchings, so each PE stages only its own O(N/P) send and receive
// buffers, every link carries exactly one exchange per round in each
// direction, and the machine's P² streams never funnel through one
// node. Eager reader-side buffering makes the schedule deadlock-free
// even when ranks progress at different rates.
func (m *Machine) AllToAllv(send [][]byte) [][]byte {
	if len(send) != m.p {
		m.failNow(fmt.Errorf("tcp: AllToAllv needs %d destination slots, got %d", m.p, len(send)))
	}
	recv := make([][]byte, m.p)
	recv[m.rank] = send[m.rank] // self-message: delivered uncopied, off-network
	for r := 0; r < oneFactorRounds(m.p); r++ {
		q := oneFactorPartner(m.rank, r, m.p)
		if q < 0 {
			continue // odd P: paired with the dummy this round
		}
		m.sendFrame(q, tagA2A, send[q])
		recv[q] = m.recvFrame(q, tagA2A)
	}
	return recv
}

// a2aStream is the pipelined AllToAllv path (cluster.A2AStream): a
// background sender goroutine drains posted exchanges onto the wire in
// 1-factor round order while the PE goroutine encodes the next
// exchange or collects the previous one — the double-buffered
// all-to-all of §IV-E. Per-peer frame order is preserved (one FIFO
// sender, ordered TCP, no other collectives while the stream is open),
// so a plain recvFrame sequence on the collect side matches exchanges
// one to one.
//
// Division of labour: the sender goroutine only writes sockets and
// recycles written buffers — it accumulates its wire accounting in an
// atomic drained into the PE-owned clock at Collect/Close, and on a
// write error it fails the machine via m.fail (never panic, which only
// the PE goroutine may do) and exits. Abort unwinds close m.done,
// which the sender selects on, so Close always joins in bounded time.
type a2aStream struct {
	m      *Machine
	window int

	sendQ      chan [][]byte // posted, not yet fully written; cap = window
	senderDone chan struct{} // closed when the sender goroutine exits
	closeOnce  sync.Once

	selfQ  [][]byte // self payloads of posted exchanges, FIFO
	posted int      // exchanges posted but not collected

	sentBytes atomic.Int64 // wire bytes written by the sender, undrained
}

// OpenA2AStream implements cluster.StreamingTransport.
func (m *Machine) OpenA2AStream(window int) cluster.A2AStream {
	if window < 1 {
		window = 1
	}
	// The queue holds posted-but-not-yet-dequeued exchanges, which can
	// trail the posted-but-not-collected count: collecting exchange s
	// only proves the peers wrote, not that our own sender was ever
	// scheduled. Peers' equal windows bound the lag at one extra window,
	// so 2·window slots keep Post non-blocking.
	s := &a2aStream{
		m:          m,
		window:     window,
		sendQ:      make(chan [][]byte, 2*window),
		senderDone: make(chan struct{}),
	}
	m.bg.Add(1)
	go s.sender()
	return s
}

// Post implements cluster.A2AStream. It never blocks on the network:
// the vector is handed to the sender goroutine, whose queue has room
// for the full window by construction (posted ≤ window is enforced
// here, and a collected exchange has always left the queue).
func (s *a2aStream) Post(send [][]byte) {
	m := s.m
	if m.abortFlag.Load() {
		panic(tcpAbort{})
	}
	if len(send) != m.p {
		m.failNow(fmt.Errorf("tcp: A2AStream Post needs %d destination slots, got %d", m.p, len(send)))
	}
	if s.posted >= s.window {
		m.failNow(fmt.Errorf("tcp: A2AStream window overflow: %d exchanges already in flight (window %d)", s.posted, s.window))
	}
	s.posted++
	s.selfQ = append(s.selfQ, send[m.rank])
	select {
	case s.sendQ <- send:
	default:
		// Unreachable while every rank runs the same window (see the
		// 2·window queue sizing in OpenA2AStream).
		m.failNow(fmt.Errorf("tcp: A2AStream sender queue full despite window accounting"))
	}
}

// Collect implements cluster.A2AStream: it receives the oldest posted
// exchange's frames on the PE goroutine (recvFrame charges blocked and
// network time per round) and drains the sender's wire accounting into
// the phase stats.
func (s *a2aStream) Collect() [][]byte {
	m := s.m
	if s.posted == 0 {
		m.failNow(fmt.Errorf("tcp: A2AStream Collect without a posted exchange"))
	}
	s.posted--
	recv := make([][]byte, m.p)
	recv[m.rank] = s.selfQ[0] // self-message: delivered uncopied, off-network
	s.selfQ[0] = nil
	s.selfQ = s.selfQ[1:]
	for r := 0; r < oneFactorRounds(m.p); r++ {
		q := oneFactorPartner(m.rank, r, m.p)
		if q < 0 {
			continue
		}
		recv[q] = m.recvFrame(q, tagA2A)
	}
	m.clock.Cur().BytesSent += s.sentBytes.Swap(0)
	return recv
}

// Close implements cluster.A2AStream: it stops the sender goroutine and
// joins it (bounded even mid-abort — the poisoned write deadlines and
// m.done unblock it), then releases any uncollected self payloads.
// Idempotent; safe in deferred unwind paths.
func (s *a2aStream) Close() {
	s.closeOnce.Do(func() {
		close(s.sendQ)
		<-s.senderDone
		for _, b := range s.selfQ {
			bufpool.Put(b)
		}
		s.selfQ = nil
		s.posted = 0
		s.m.clock.Cur().BytesSent += s.sentBytes.Swap(0)
	})
}

// sender drains posted exchanges onto the wire in posting order.
func (s *a2aStream) sender() {
	defer s.m.bg.Done()
	defer close(s.senderDone)
	for {
		select {
		case send, ok := <-s.sendQ:
			if !ok {
				return
			}
			if !s.writeExchange(send) {
				return
			}
		case <-s.m.done:
			return
		}
	}
}

// writeExchange writes one exchange's frames in 1-factor round order,
// recycling each non-self payload to the arena once it is on the wire
// (the PR 1 allocation discipline: double-buffer scratch comes from
// bufpool and goes back per round). Returns false when the machine is
// aborting or a write failed — the failure is recorded via m.fail and
// the PE goroutine unwinds through its own blocked receive.
func (s *a2aStream) writeExchange(send [][]byte) bool {
	m := s.m
	for r := 0; r < oneFactorRounds(m.p); r++ {
		q := oneFactorPartner(m.rank, r, m.p)
		if q < 0 {
			continue
		}
		if m.abortFlag.Load() {
			return false
		}
		payload := send[q]
		if err := m.writeFrame(q, tagA2A, payload); err != nil {
			// A killed or closed machine severed its own sockets: the
			// write error is local, not the peer's fault — unwind without
			// blaming q (a SIGKILLed worker broadcasts nothing).
			if !m.abortFlag.Load() && !m.closed.Load() {
				m.fail(cluster.Abortedf(q, "tcp: rank %d pipelined send to %d: %w", m.rank, q, err))
			}
			return false
		}
		s.sentBytes.Add(int64(len(payload)))
		if payload != nil {
			send[q] = nil
			bufpool.Put(payload)
		}
	}
	return true
}

// bcastTree distributes data down the binomial tree rooted at root
// with the given tag and returns this rank's copy. Non-root ranks
// copy the payload out of the pooled receive buffer (the result is
// retained by callers and shared structurally, so it must not alias
// the arena) and recycle it before relaying.
func (m *Machine) bcastTree(root int, data []byte, tag int) []byte {
	vrank := (m.rank - root + m.p) % m.p
	children, parent := btreeUp(vrank, m.p)
	if parent >= 0 {
		payload := m.recvFrame((parent+root)%m.p, tag)
		data = append(make([]byte, 0, len(payload)), payload...)
		bufpool.Put(payload)
	}
	for i := len(children) - 1; i >= 0; i-- { // descending subtree size
		m.sendFrame((children[i]+root)%m.p, tag, data)
	}
	return data
}

// AllGather implements cluster.Transport: a binomial-tree gather to
// rank 0 (each node forwards its subtree's parts as one
// length-prefixed vector), then a tree broadcast of the full
// concatenation, O(log P) rounds each way. The returned slices share
// the broadcast vector structurally; no pooled buffer escapes.
func (m *Machine) AllGather(data []byte) [][]byte {
	if m.p == 1 {
		return [][]byte{data}
	}
	parts := make([][]byte, m.p) // indexed by rank; this node fills [rank, rank+span)
	parts[m.rank] = data
	children, parent := btreeUp(m.rank, m.p)
	var pooled [][]byte // children's vectors: recycled after re-encoding
	for _, c := range children {
		payload := m.recvFrame(c, tagGather)
		copy(parts[c:], decodeVec(payload, btreeSpan(c, m.p)))
		pooled = append(pooled, payload)
	}
	var full []byte
	if parent >= 0 {
		m.sendFrame(parent, tagGather, encodeVec(parts[m.rank:m.rank+btreeSpan(m.rank, m.p)]))
		for _, b := range pooled {
			bufpool.Put(b)
		}
		full = m.bcastTree(0, nil, tagGatherVec)
	} else {
		full = encodeVec(parts)
		for _, b := range pooled {
			bufpool.Put(b)
		}
		m.bcastTree(0, full, tagGatherVec)
	}
	return decodeVec(full, m.p)
}

// Bcast implements cluster.Transport: binomial tree from root,
// O(log P) rounds.
func (m *Machine) Bcast(root int, data []byte) []byte {
	if m.p == 1 {
		return data
	}
	return m.bcastTree(root, data, tagBcast)
}

// AllReduceInt64 implements cluster.Transport: a binomial-tree reduce
// to rank 0 (partial results combine on the way up), then a tree
// broadcast of the result, O(log P) rounds each way.
func (m *Machine) AllReduceInt64(v int64, op string) int64 {
	reduce := func(acc, x int64) int64 {
		switch op {
		case "sum":
			return acc + x
		case "max":
			if x > acc {
				return x
			}
			return acc
		case "min":
			if x < acc {
				return x
			}
			return acc
		case "or":
			return acc | x
		default:
			m.failNow(fmt.Errorf("tcp: unknown reduce op %q", op))
			return 0
		}
	}
	if m.p == 1 {
		reduce(0, 0) // still validate op
		return v
	}
	children, parent := btreeUp(m.rank, m.p)
	acc := v
	for _, c := range children {
		x := m.recvFrame(c, tagReduce)
		acc = reduce(acc, int64(binary.LittleEndian.Uint64(x)))
		bufpool.Put(x)
	}
	var buf [8]byte
	if parent >= 0 {
		binary.LittleEndian.PutUint64(buf[:], uint64(acc))
		m.sendFrame(parent, tagReduce, buf[:])
		res := m.recvFrame(parent, tagReduceRes)
		acc = int64(binary.LittleEndian.Uint64(res))
		bufpool.Put(res)
	}
	binary.LittleEndian.PutUint64(buf[:], uint64(acc))
	for i := len(children) - 1; i >= 0; i-- {
		m.sendFrame(children[i], tagReduceRes, buf[:])
	}
	return acc
}

// ExchangeAny implements cluster.Transport: items cross address
// spaces gob-encoded, on the same 1-factorization schedule as
// AllToAllv. nominalBytes is a cost-model parameter without meaning on
// this backend.
func (m *Machine) ExchangeAny(items []any, nominalBytes int) []any {
	if len(items) != m.p {
		m.failNow(fmt.Errorf("tcp: ExchangeAny needs %d items, got %d", m.p, len(items)))
	}
	out := make([]any, m.p)
	out[m.rank] = items[m.rank]
	for r := 0; r < oneFactorRounds(m.p); r++ {
		q := oneFactorPartner(m.rank, r, m.p)
		if q < 0 {
			continue
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&items[q]); err != nil {
			m.failNow(fmt.Errorf("tcp: ExchangeAny encode for %d: %w", q, err))
		}
		m.sendFrame(q, tagXAny, buf.Bytes())
		payload := m.recvFrame(q, tagXAny)
		var v any
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&v); err != nil {
			m.failNow(fmt.Errorf("tcp: ExchangeAny decode from %d: %w", q, err))
		}
		bufpool.Put(payload)
		out[q] = v
	}
	return out
}

// ReservePorts picks p distinct free localhost listen addresses by
// briefly binding 127.0.0.1:0 — the launcher's (and the tests') way to
// build a Peers list. The listeners are closed before the machines
// bind, so a rare race with another process grabbing a port in between
// is possible; New reports that as ErrBind, and launchers respond by
// reaping the fleet and retrying with a fresh reservation (explicit
// ports sidestep the race entirely).
func ReservePorts(p int) ([]string, error) {
	addrs := make([]string, p)
	lns := make([]net.Listener, 0, p)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := 0; i < p; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("tcp: reserving port %d of %d: %w", i, p, err)
		}
		lns = append(lns, ln)
		addrs[i] = ln.Addr().String()
	}
	return addrs, nil
}

// encodeVec frames P byte slices as [P × uint64 length][concat].
func encodeVec(parts [][]byte) []byte {
	total := 8 * len(parts)
	for _, p := range parts {
		total += len(p)
	}
	vec := make([]byte, 0, total)
	var tmp [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(tmp[:], uint64(len(p)))
		vec = append(vec, tmp[:]...)
	}
	for _, p := range parts {
		vec = append(vec, p...)
	}
	return vec
}

// decodeVec slices an encodeVec payload back into P parts (sharing
// the backing array — AllGather results are structurally shared).
func decodeVec(vec []byte, p int) [][]byte {
	parts := make([][]byte, p)
	off := 8 * p
	for i := 0; i < p; i++ {
		n := int(binary.LittleEndian.Uint64(vec[8*i:]))
		parts[i] = vec[off : off+n : off+n]
		off += n
	}
	return parts
}

// ---------------------------------------------------------------------
// Wall-clock stats.
// ---------------------------------------------------------------------

// wallStats implements cluster.Stats over real time: phase wall
// seconds come from time.Now, byte/message counters ride on the
// underlying clock's PhaseStats (which the Volume and the transport
// already charge), and modelled CPU charges are dropped — the real
// computation is already on the wall.
type wallStats struct {
	clock *vtime.Clock
	start time.Time
	wall  map[string]float64
}

func newWallStats(c *vtime.Clock) *wallStats {
	return &wallStats{clock: c, start: time.Now(), wall: map[string]float64{}}
}

// SetPhase implements cluster.Stats.
func (s *wallStats) SetPhase(name string) {
	now := time.Now()
	s.wall[s.clock.Phase()] += now.Sub(s.start).Seconds()
	s.start = now
	s.clock.SetPhase(name)
}

// Phase implements cluster.Stats.
func (s *wallStats) Phase() string { return s.clock.Phase() }

// AddCPU implements cluster.Stats: modelled charges are meaningless on
// a wall-clock backend.
func (s *wallStats) AddCPU(sec float64) {}

// Stats implements cluster.Stats: the virtual clock's per-phase
// counters with Wall replaced by measured wall-clock seconds.
func (s *wallStats) Stats() (names []string, stats map[string]*vtime.PhaseStats) {
	now := time.Now()
	s.wall[s.clock.Phase()] += now.Sub(s.start).Seconds()
	s.start = now
	names, stats = s.clock.Stats()
	for ph, st := range stats {
		st.Wall = s.wall[ph]
	}
	return names, stats
}

// Interface conformance.
var (
	_ cluster.Machine            = (*Machine)(nil)
	_ cluster.Transport          = (*Machine)(nil)
	_ cluster.MailboxStats       = (*Machine)(nil)
	_ cluster.StreamingTransport = (*Machine)(nil)
	_ cluster.Stats              = (*wallStats)(nil)
)
