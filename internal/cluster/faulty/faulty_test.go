package faulty_test

// The chaos matrix of the failure plane: deterministic fault injection
// over real tcp machines running the full sort, asserting the whole
// fleet unwinds in bounded time with correct blame and no published
// partition files — plus the spec parser and the cheaper actions on
// the sim backend.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"demsort/internal/blockio"
	"demsort/internal/cluster"
	"demsort/internal/cluster/faulty"
	"demsort/internal/cluster/sim"
	"demsort/internal/cluster/tcp"
	"demsort/internal/core"
	"demsort/internal/elem"
	"demsort/internal/sortbench"
)

const (
	seed  = 42
	nPer  = 2000
	block = 1024
	mem   = 8192
)

func TestParseSpecRoundTrip(t *testing.T) {
	faults := []faulty.Fault{
		{Rank: 2, Action: faulty.Die, Op: "AllToAllv", Phase: "all-to-all"},
		{Rank: 0, Action: faulty.Delay, MaxDelay: 5 * time.Millisecond},
		{Rank: 1, Action: faulty.Wedge, Phase: "collect", Call: 3},
		{Rank: 3, Action: faulty.DropConn, Peer: 1},
		{Rank: 0, Action: faulty.Crash, Op: "Barrier"},
	}
	var specs []string
	for _, f := range faults {
		specs = append(specs, f.String())
	}
	spec := strings.Join(specs, ";")
	if strings.Contains(spec, " ") {
		t.Fatalf("spec %q contains spaces — the launcher splits worker argv on them", spec)
	}
	parsed, err := faulty.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(faults) {
		t.Fatalf("parsed %d faults, want %d", len(parsed), len(faults))
	}
	for i := range faults {
		if parsed[i] != faults[i] {
			t.Fatalf("fault %d did not round-trip: %+v vs %+v", i, parsed[i], faults[i])
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"action=die",                      // no rank
		"rank=1",                          // no action
		"rank=1,action=meteorstrike",      // unknown action
		"rank=1,action=die,when=later",    // unknown key
		"rank=1,action=die,notakeyvalue",  // not key=value
		"rank=x,action=die",               // bad int
		"rank=1,action=delay,maxdelay=5x", // bad duration
		"rank=1,action=die,op=Telepathy",  // unknown transport op
		"rank=1,action=die,phase=warp",    // unknown sort phase
	} {
		if _, err := faulty.ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted a malformed spec", spec)
		}
	}
	// A typoed op/phase must tell the user what IS valid.
	if _, err := faulty.ParseSpec("rank=1,action=die,op=Telepathy"); err == nil ||
		!strings.Contains(err.Error(), "AllToAllv") {
		t.Errorf("op error does not list the known ops: %v", err)
	}
	if _, err := faulty.ParseSpec("rank=1,action=die,phase=warp"); err == nil ||
		!strings.Contains(err.Error(), "multiway selection") {
		t.Errorf("phase error does not list the known phases: %v", err)
	}
}

// Every advertised op and phase must actually parse — the validation
// lists are the injector's user contract.
func TestParseSpecKnownSetsAccepted(t *testing.T) {
	for _, op := range faulty.KnownOps {
		if _, err := faulty.ParseSpec("rank=0,action=die,op=" + op); err != nil {
			t.Errorf("known op %q rejected: %v", op, err)
		}
	}
	for _, ph := range faulty.KnownPhases {
		if _, err := faulty.ParseSpec("rank=0,action=die,phase=" + ph); err != nil {
			t.Errorf("known phase %q rejected: %v", ph, err)
		}
	}
}

// TestCrashOnSimBackend: without backend hooks a Crash degrades to a
// panic, which the sim backend must convert into a typed abort naming
// the crashed PE.
func TestCrashOnSimBackend(t *testing.T) {
	sm, err := sim.New(sim.Config{P: 4, BlockBytes: block, MemElems: mem})
	if err != nil {
		t.Fatal(err)
	}
	m := faulty.Wrap(sm, seed, faulty.Fault{Rank: 2, Action: faulty.Crash, Op: "AllToAllv", Phase: core.PhaseExchange})
	defer m.Close()
	cfg := core.DefaultConfig(4, mem, block)
	cfg.Seed = seed
	cfg.Machine = m
	cfg.KeepOutput = false
	cfg.Source = recSource
	cfg.Sink = func(int, []byte) error { return nil }
	_, err = core.Sort[elem.Rec100](elem.Rec100Codec{}, cfg, nil)
	var ae *cluster.ErrAborted
	if !errors.As(err, &ae) || ae.Rank != 2 {
		t.Fatalf("sim crash returned %v, want *cluster.ErrAborted naming rank 2", err)
	}
}

// TestDelayPerturbsNothing: Delay must jitter the schedule without
// changing a byte of output — and identically across runs with the
// same seed (determinism of the injected sleeps is the whole point).
func TestDelayPerturbsNothing(t *testing.T) {
	run := func(withFault bool) [][]byte {
		sm, err := sim.New(sim.Config{P: 4, BlockBytes: block, MemElems: mem})
		if err != nil {
			t.Fatal(err)
		}
		var m cluster.Machine = sm
		if withFault {
			m = faulty.Wrap(sm, seed, faulty.Fault{Rank: 1, Action: faulty.Delay, Op: "AllToAllv", MaxDelay: 2 * time.Millisecond})
		}
		defer m.Close()
		cfg := core.DefaultConfig(4, mem, block)
		cfg.Seed = seed
		cfg.Machine = m
		cfg.KeepOutput = false
		cfg.Source = recSource
		out := make([][]byte, 4)
		var mu sync.Mutex
		cfg.Sink = func(r int, b []byte) error {
			mu.Lock()
			out[r] = append(out[r], b...)
			mu.Unlock()
			return nil
		}
		if _, err := core.Sort[elem.Rec100](elem.Rec100Codec{}, cfg, nil); err != nil {
			t.Fatal(err)
		}
		return out
	}
	clean, delayed := run(false), run(true)
	for r := range clean {
		if !bytes.Equal(clean[r], delayed[r]) {
			t.Fatalf("rank %d: a Delay fault changed the output", r)
		}
	}
}

// TestDropConnAbortsBothRanks: the DropConn action reaches the tcp
// backend's hook and both ends of the severed link unwind typed.
func TestDropConnAbortsBothRanks(t *testing.T) {
	peers := freePorts(t, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tm, err := tcp.New(tcp.Config{Rank: rank, Peers: peers, BlockBytes: block, ConnectTimeout: 20 * time.Second})
			if err != nil {
				errs[rank] = err
				return
			}
			m := faulty.Wrap(tm, seed, faulty.Fault{Rank: 0, Action: faulty.DropConn, Peer: 1, Op: "Barrier", Call: 2})
			defer m.Close()
			errs[rank] = m.Run(func(n *cluster.Node) error {
				n.Barrier() // survives: the fault arms on the second call
				n.Barrier() // severed mid-collective
				return nil
			})
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		var ae *cluster.ErrAborted
		if !errors.As(err, &ae) {
			t.Fatalf("rank %d: %v (want *cluster.ErrAborted)", rank, err)
		}
	}
}

func recSource(rank int) (io.Reader, int64, error) {
	return sortbench.NewReader(seed, int64(rank)*nPer, nPer), nPer, nil
}

// bandedSource feeds each rank 12000 records with descending keys, so
// every memory-sized chunk occupies its own key band in reverse chunk
// order. With block randomization off, run formation cannot
// pre-balance this: the final exchange must cross-shuffle whole run
// segments, which drives k to 3 (P=2) / 5 (P=4) sub-operations against
// the 2048-element quota — enough rounds for the pipelined A2AStream
// path to have an exchange in flight when the injected fault fires.
func bandedSource(rank int) (io.Reader, int64, error) {
	const n = 12000
	buf := make([]byte, 0, n*100)
	for i := int64(0); i < n; i++ {
		var r elem.Rec100
		binary.BigEndian.PutUint64(r[:8], uint64(n-i))
		r[8] = byte(rank)
		r[9] = byte(i)
		copy(r[10:], fmt.Sprintf("%020d", i))
		buf = append(buf, r[:]...)
	}
	return bytes.NewReader(buf), n, nil
}

func freePorts(t *testing.T, p int) []string {
	t.Helper()
	addrs, err := tcp.ReservePorts(p)
	if err != nil {
		t.Fatal(err)
	}
	return addrs
}

// chaosScenario is one cell family of the fault matrix.
type chaosScenario struct {
	name  string
	fault func(rank int) faulty.Fault
	// heartbeat scenarios need tight liveness bounds to finish fast.
	tightHeartbeat bool
	// banded scenarios feed descending banded keys with block
	// randomization off, the adversarial input that forces k ≥ 2
	// exchange sub-operations — with uniform input the randomized run
	// formation pre-balances the data and the A2AStream path never
	// engages (k = 1 moves only the sampling residue).
	banded bool
}

var chaosScenarios = []chaosScenario{
	{"crash-before-selection", func(r int) faulty.Fault {
		return faulty.Fault{Rank: r, Action: faulty.Crash, Phase: core.PhaseSelection}
	}, false, false},
	{"crash-mid-all-to-all", func(r int) faulty.Fault {
		return faulty.Fault{Rank: r, Action: faulty.Crash, Op: "AllToAllv", Phase: core.PhaseExchange}
	}, false, false},
	{"wedge-mid-collect", func(r int) faulty.Fault {
		return faulty.Fault{Rank: r, Action: faulty.Wedge, Phase: "collect"}
	}, true, false},
	// Banded input gives k ≥ 3 sub-operations, so the second AllToAllv
	// call is a Post issued while the first exchange is still on the
	// wire — the fault lands mid double-buffered round, with the sender
	// goroutine live and a posted window un-collected.
	{"crash-mid-pipelined-exchange", func(r int) faulty.Fault {
		return faulty.Fault{Rank: r, Action: faulty.Crash, Op: "AllToAllv", Phase: core.PhaseExchange, Call: 2}
	}, false, true},
	{"wedge-mid-pipelined-exchange", func(r int) faulty.Fault {
		return faulty.Fault{Rank: r, Action: faulty.Wedge, Op: "AllToAllv", Phase: core.PhaseExchange, Call: 2}
	}, true, true},
}

// TestChaosMatrix drives the full sort on real tcp machines through
// every fault scenario × machine size × store backend, asserting the
// failure-plane contract end to end:
//
//   - the whole fleet unwinds in bounded time (no hangs, no reaper);
//   - every survivor's error is *cluster.ErrAborted naming the faulty
//     rank — blame is consistent fleet-wide;
//   - not one part-%03d file is published (staging .tmp only);
//   - no machine goroutines outlive the fleet.
func TestChaosMatrix(t *testing.T) {
	for _, sc := range chaosScenarios {
		for _, p := range []int{2, 4} {
			for _, store := range []string{"ram", "file"} {
				t.Run(fmt.Sprintf("%s_P%d_%s", sc.name, p, store), func(t *testing.T) {
					var newStore func(rank int) (blockio.Store, error)
					if store == "file" {
						newStore = blockio.FileStoreFactory(t.TempDir(), block)
					}
					runChaosCell(t, p, p/2, sc, newStore)
				})
			}
		}
	}
	// The fleet machinery must be fully gone once every cell is done.
	deadline := time.Now().Add(10 * time.Second)
	for machineGoroutines() > 0 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("machine goroutines leaked past Close:\n%s", buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func runChaosCell(t *testing.T, p, faultRank int, sc chaosScenario, newStore func(rank int) (blockio.Store, error)) {
	outdir := t.TempDir()
	peers := freePorts(t, p)
	fault := sc.fault(faultRank)
	errs := make([]error, p)
	machines := make([]*faulty.Machine, p)
	var created sync.WaitGroup
	created.Add(p)
	rankDone := make(chan int, p)
	start := time.Now()
	for rank := 0; rank < p; rank++ {
		go func(rank int) {
			defer func() { rankDone <- rank }()
			cfg := tcp.Config{
				Rank: rank, Peers: peers,
				BlockBytes: block, MemElems: mem,
				NewStore:       newStore,
				ConnectTimeout: 20 * time.Second,
			}
			if sc.tightHeartbeat {
				cfg.HeartbeatInterval = 20 * time.Millisecond
				cfg.HeartbeatTimeout = 300 * time.Millisecond
			}
			tm, err := tcp.New(cfg)
			if err != nil {
				errs[rank] = err
				created.Done()
				return
			}
			m := faulty.Wrap(tm, seed, fault)
			machines[rank] = m
			created.Done()
			defer m.Close()

			scfg := core.DefaultConfig(p, mem, block)
			scfg.Seed = seed
			scfg.Machine = m
			scfg.KeepOutput = false
			scfg.Source = recSource
			if sc.banded {
				scfg.Randomize = false
				scfg.Source = bandedSource
			}
			// Mirror the worker binary's publish protocol: stage to
			// .tmp, rename only after a clean sort.
			tmp := filepath.Join(outdir, fmt.Sprintf("part-%03d.tmp", rank))
			f, err := os.Create(tmp)
			if err != nil {
				errs[rank] = err
				return
			}
			scfg.Sink = func(_ int, b []byte) error {
				_, werr := f.Write(b)
				return werr
			}
			_, err = core.Sort[elem.Rec100](elem.Rec100Codec{}, scfg, nil)
			errs[rank] = err
			f.Close()
			if err == nil {
				os.Rename(tmp, strings.TrimSuffix(tmp, ".tmp"))
			}
		}(rank)
	}
	created.Wait()

	// Survivors must unwind on their own; the wedged rank stays parked
	// until released (it models a stuck process, and only resumes to
	// observe the abort the survivors raised).
	pending := p
	survivorsLeft := p - 1
	timeout := time.After(60 * time.Second)
	for pending > 0 {
		select {
		case rank := <-rankDone:
			pending--
			if rank != faultRank {
				if survivorsLeft--; survivorsLeft == 0 && machines[faultRank] != nil {
					machines[faultRank].Release()
				}
			}
		case <-timeout:
			t.Fatalf("fleet still running 60s after the injected fault (%d ranks pending)", pending)
		}
	}
	if elapsed := time.Since(start); elapsed > 55*time.Second {
		t.Fatalf("fleet took %v to unwind", elapsed)
	}

	for rank, err := range errs {
		var ae *cluster.ErrAborted
		if !errors.As(err, &ae) {
			t.Fatalf("rank %d: %v (want *cluster.ErrAborted)", rank, err)
		}
		// Survivors must all blame the faulty rank; the faulty rank's
		// own attribution depends on what it observes first when it
		// resumes, so only its typed unwind is asserted.
		if rank != faultRank && ae.Rank != faultRank {
			t.Fatalf("rank %d blamed rank %d, want %d (%v)", rank, ae.Rank, faultRank, err)
		}
	}

	entries, err := os.ReadDir(outdir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			continue // staging debris is fine; published parts are not
		}
		if strings.HasPrefix(e.Name(), "part-") {
			t.Fatalf("aborted fleet published %s — parts must only appear via rename-on-success", e.Name())
		}
	}
}

// machineGoroutines counts goroutines still inside tcp machine code.
func machineGoroutines() int {
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	n := 0
	for _, g := range strings.Split(string(buf), "\n\n") {
		if strings.Contains(g, "demsort/internal/cluster/tcp.(*Machine)") {
			n++
		}
	}
	return n
}
