// Package faulty is the deterministic chaos layer of the transport
// plane: a cluster.Machine wrapper that injects failures — delays,
// crashes, process death, wedges, dropped connections — at exact,
// reproducible points (the Nth matching transport call of a given op
// in a given phase, on a given rank). It wraps either backend, so the
// failure plane built into tcp (heartbeats, per-op deadlines, abort
// fan-out) and the abort semantics of sim are exercised by table-driven
// tests instead of one-off environment-variable hacks.
//
// Faults trigger from the PE's own program goroutine, in the wrapped
// Transport methods, which is what makes them deterministic: the
// trigger point is a position in the PE's call sequence, not a timer
// race. The seeded RNG only parameterises delay durations.
//
// Backend-specific sharp edges (abrupt socket teardown, stopped
// heartbeats, a severed link) are reached through optional interfaces
// the tcp backend implements (Kill, Wedge, DropPeer); on backends
// without them the fault degrades to its process-level effect (a crash
// is a panic either way).
package faulty

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"demsort/internal/cluster"
)

// Action is the kind of failure a Fault injects.
type Action string

const (
	// Delay sleeps a seeded-random duration in [MaxDelay/2, MaxDelay]
	// before the op — jitter without failure, for schedule-perturbation
	// tests.
	Delay Action = "delay"
	// Crash kills the rank in-process: the backend's Kill (abrupt
	// socket teardown, no goodbye, no abort broadcast — exactly a
	// SIGKILLed worker as seen by the peers) followed by a panic that
	// unwinds the PE program.
	Crash Action = "crash"
	// Die exits the whole process (status 11) — the real-fleet form of
	// Crash, for launcher-level tests where the rank is its own OS
	// process.
	Die Action = "die"
	// Wedge stops the rank's heartbeats (if the backend has them) and
	// parks the PE program: alive at the OS level, making no progress
	// — the failure mode only liveness detection can catch. The parked
	// program resumes on Release/Close and then unwinds through the
	// backend's abort path.
	Wedge Action = "wedge"
	// DropConn abruptly severs the connection to Peer (both ends see a
	// lost link mid-protocol).
	DropConn Action = "dropconn"
)

// Fault is one injection point.
type Fault struct {
	// Rank is the PE the fault lives on.
	Rank int
	// Action is what happens.
	Action Action
	// Op filters on the Transport method name ("AllToAllv", "Recv",
	// ...); empty matches any op.
	Op string
	// Phase filters on the PE's accounting phase at call time (e.g.
	// "all-to-all", "multiway selection"); empty matches any phase.
	Phase string
	// Call is the 1-based index of the matching call that triggers
	// (0 means the first). Delay triggers on every matching call from
	// Call onward; the other actions trigger once.
	Call int
	// Peer is the target rank for DropConn.
	Peer int
	// MaxDelay bounds Delay sleeps (0 means 10ms).
	MaxDelay time.Duration
}

func (f Fault) String() string {
	s := fmt.Sprintf("rank=%d,action=%s", f.Rank, f.Action)
	if f.Op != "" {
		s += ",op=" + f.Op
	}
	if f.Phase != "" {
		s += ",phase=" + f.Phase
	}
	if f.Call > 0 {
		s += fmt.Sprintf(",call=%d", f.Call)
	}
	if f.Action == DropConn {
		s += fmt.Sprintf(",peer=%d", f.Peer)
	}
	if f.MaxDelay > 0 {
		s += ",maxdelay=" + f.MaxDelay.String()
	}
	return s
}

// KnownOps lists the Transport methods a Fault's Op can intercept —
// the complete trigger surface of this package.
var KnownOps = []string{
	"Barrier", "AllToAllv", "AllGather", "Bcast", "AllReduceInt64",
	"ExchangeAny", "Send", "Recv",
}

// KnownPhases lists every phase name the sorters announce via
// SetPhase — the values a Fault's Phase can match. A spec naming an
// unknown phase would silently never fire, so ParseSpec rejects it.
var KnownPhases = []string{
	// core (CANONICALMERGESORT)
	"load", "run formation", "multiway selection", "all-to-all",
	"final merge", "collect",
	// stripesort
	"merge",
	// baseline (NOW-Sort)
	"sampling", "distribute", "local external sort",
}

func known(val string, set []string) bool {
	for _, s := range set {
		if s == val {
			return true
		}
	}
	return false
}

// ParseSpec parses a fault list from its flag form: faults separated
// by ';', fields by ',', each field key=value — e.g.
//
//	rank=2,action=die,op=AllToAllv,phase=all-to-all;rank=0,action=delay,maxdelay=5ms
//
// No spaces (the launcher splits worker argv on them). Actions, ops
// and phases are validated against the known sets here, at parse time:
// a typo'd trigger would otherwise be discovered only by never firing.
func ParseSpec(spec string) ([]Fault, error) {
	var faults []Fault
	for _, one := range strings.Split(spec, ";") {
		one = strings.TrimSpace(one)
		if one == "" {
			continue
		}
		f := Fault{Rank: -1}
		for _, kv := range strings.Split(one, ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("faulty: field %q is not key=value in %q", kv, one)
			}
			var err error
			switch key {
			case "rank":
				f.Rank, err = strconv.Atoi(val)
			case "action":
				f.Action = Action(val)
				switch f.Action {
				case Delay, Crash, Die, Wedge, DropConn:
				default:
					err = fmt.Errorf("unknown action %q", val)
				}
			case "op":
				f.Op = val
				if !known(val, KnownOps) {
					err = fmt.Errorf("unknown op %q (known: %s)", val, strings.Join(KnownOps, ", "))
				}
			case "phase":
				f.Phase = val
				if !known(val, KnownPhases) {
					err = fmt.Errorf("unknown phase %q (known: %s)", val, strings.Join(KnownPhases, ", "))
				}
			case "call":
				f.Call, err = strconv.Atoi(val)
			case "peer":
				f.Peer, err = strconv.Atoi(val)
			case "maxdelay":
				f.MaxDelay, err = time.ParseDuration(val)
			default:
				err = fmt.Errorf("unknown key %q", key)
			}
			if err != nil {
				return nil, fmt.Errorf("faulty: %q: %v", one, err)
			}
		}
		if f.Rank < 0 {
			return nil, fmt.Errorf("faulty: %q needs rank=", one)
		}
		if f.Action == "" {
			return nil, fmt.Errorf("faulty: %q needs action=", one)
		}
		faults = append(faults, f)
	}
	return faults, nil
}

// Optional backend hooks (the tcp backend implements all three).
type killer interface{ Kill() }
type wedger interface{ Wedge() }
type connDropper interface{ DropPeer(rank int) }

// Machine wraps a backend machine, injecting the configured faults
// into the Transport calls of the PEs it hosts. It implements
// cluster.Machine and delegates everything else.
type Machine struct {
	inner  cluster.Machine
	seed   uint64
	faults []Fault

	release     chan struct{}
	releaseOnce sync.Once
}

// Wrap builds a fault-injecting machine over inner. seed drives delay
// durations only — trigger points are positional and exact.
func Wrap(inner cluster.Machine, seed uint64, faults ...Fault) *Machine {
	return &Machine{inner: inner, seed: seed, faults: faults, release: make(chan struct{})}
}

// Release un-parks every PE wedged by a Wedge fault (test cleanup);
// the resumed programs unwind through the backend's abort path.
func (m *Machine) Release() {
	m.releaseOnce.Do(func() { close(m.release) })
}

// Run implements cluster.Machine: each locally hosted PE runs fn
// against a Transport that injects this rank's faults.
func (m *Machine) Run(fn func(*cluster.Node) error) error {
	return m.inner.Run(func(n *cluster.Node) error {
		tr := &transport{
			Transport: n.Transport(),
			st:        n.NodeStats(),
			m:         m,
			rng:       rand.New(rand.NewSource(int64(m.seed ^ uint64(n.Rank)*0x9e3779b97f4a7c15))),
		}
		for _, f := range m.faults {
			if f.Rank == n.Rank {
				tr.faults = append(tr.faults, &armed{Fault: f})
			}
		}
		return fn(cluster.NewNode(tr, n.NodeStats(), n.Vol, n.Mem))
	})
}

// Nodes implements cluster.Machine.
func (m *Machine) Nodes() []*cluster.Node { return m.inner.Nodes() }

// P implements cluster.Machine.
func (m *Machine) P() int { return m.inner.P() }

// Abort implements cluster.Machine.
func (m *Machine) Abort(cause error) { m.inner.Abort(cause) }

// Close implements cluster.Machine (and releases any wedged PE first,
// so its goroutine can unwind).
func (m *Machine) Close() error {
	m.Release()
	return m.inner.Close()
}

// armed is one fault plus its per-PE trigger state.
type armed struct {
	Fault
	seen  int  // matching calls so far
	fired bool // one-shot actions already taken
}

// transport intercepts every Transport call on one PE.
type transport struct {
	cluster.Transport
	st     cluster.Stats
	m      *Machine
	faults []*armed
	rng    *rand.Rand
}

// before runs the fault check for one op on the PE's own goroutine.
func (t *transport) before(op string) {
	for _, f := range t.faults {
		if f.fired {
			continue
		}
		if f.Op != "" && f.Op != op {
			continue
		}
		if f.Phase != "" && f.Phase != t.st.Phase() {
			continue
		}
		f.seen++
		nth := f.Call
		if nth < 1 {
			nth = 1
		}
		if f.seen < nth {
			continue
		}
		switch f.Action {
		case Delay:
			max := f.MaxDelay
			if max <= 0 {
				max = 10 * time.Millisecond
			}
			time.Sleep(max/2 + time.Duration(t.rng.Int63n(int64(max/2)+1)))
		case Crash:
			f.fired = true
			if k, ok := t.m.inner.(killer); ok {
				k.Kill()
			}
			panic(fmt.Sprintf("faulty: injected crash on rank %d (%s)", t.Transport.Rank(), f.Fault))
		case Die:
			f.fired = true
			fmt.Fprintf(os.Stderr, "faulty: injected death of rank %d (%s)\n", t.Transport.Rank(), f.Fault)
			os.Exit(11)
		case Wedge:
			f.fired = true
			if w, ok := t.m.inner.(wedger); ok {
				w.Wedge()
			}
			<-t.m.release
		case DropConn:
			f.fired = true
			if d, ok := t.m.inner.(connDropper); ok {
				d.DropPeer(f.Peer)
			}
		}
	}
}

// The intercepted surface: every call announces its op name first.

func (t *transport) Barrier() { t.before("Barrier"); t.Transport.Barrier() }

func (t *transport) AllToAllv(send [][]byte) [][]byte {
	t.before("AllToAllv")
	return t.Transport.AllToAllv(send)
}

func (t *transport) AllGather(data []byte) [][]byte {
	t.before("AllGather")
	return t.Transport.AllGather(data)
}

func (t *transport) Bcast(root int, data []byte) []byte {
	t.before("Bcast")
	return t.Transport.Bcast(root, data)
}

func (t *transport) AllReduceInt64(v int64, op string) int64 {
	t.before("AllReduceInt64")
	return t.Transport.AllReduceInt64(v, op)
}

func (t *transport) ExchangeAny(items []any, nominalBytes int) []any {
	t.before("ExchangeAny")
	return t.Transport.ExchangeAny(items, nominalBytes)
}

func (t *transport) Send(dst, tag int, payload []byte) {
	t.before("Send")
	t.Transport.Send(dst, tag, payload)
}

func (t *transport) Recv(src, tag int) []byte {
	t.before("Recv")
	return t.Transport.Recv(src, tag)
}

// MailboxPeakBytes delegates to the wrapped backend when it buffers
// (cluster.MailboxStats passthrough).
func (t *transport) MailboxPeakBytes() int64 {
	if ms, ok := t.Transport.(cluster.MailboxStats); ok {
		return ms.MailboxPeakBytes()
	}
	return 0
}

// OpenA2AStream forwards the pipelined all-to-all path
// (cluster.StreamingTransport passthrough), wrapping the stream so
// every posted exchange still runs this rank's AllToAllv fault check on
// the PE goroutine — without this, chaos runs would silently fall back
// to the synchronous adapter and never exercise the double-buffered
// rounds. On a backend without an asynchronous path the synchronous
// adapter is built over this wrapper, so its Post reaches the fault
// check through the intercepted AllToAllv.
func (t *transport) OpenA2AStream(window int) cluster.A2AStream {
	if st, ok := t.Transport.(cluster.StreamingTransport); ok {
		return &faultyStream{inner: st.OpenA2AStream(window), t: t}
	}
	return cluster.SyncA2AStream(t)
}

// faultyStream injects the AllToAllv fault at each Post — the same
// call position the synchronous path triggers at.
type faultyStream struct {
	inner cluster.A2AStream
	t     *transport
}

func (s *faultyStream) Post(send [][]byte) {
	s.t.before("AllToAllv")
	s.inner.Post(send)
}

func (s *faultyStream) Collect() [][]byte { return s.inner.Collect() }

func (s *faultyStream) Close() { s.inner.Close() }

// Interface conformance.
var (
	_ cluster.Machine            = (*Machine)(nil)
	_ cluster.Transport          = (*transport)(nil)
	_ cluster.MailboxStats       = (*transport)(nil)
	_ cluster.StreamingTransport = (*transport)(nil)
)
