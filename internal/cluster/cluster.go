// Package cluster simulates the distributed-memory machine: P PEs, one
// goroutine each with a private address space, exchanging data only
// through MPI-like primitives (point-to-point Send/Recv and the
// collectives Barrier, Bcast, AllGather, AllToAllv, Allreduce). The
// paper's implementation uses MVAPICH over InfiniBand; this package is
// the stand-in, with two deliberate parallels:
//
//   - data really crosses between goroutine-private heaps, so locality
//     and communication-volume claims are measured, not assumed;
//   - every primitive synchronises the participating virtual clocks
//     and charges network time from the cost model (including fabric
//     congestion as a function of P), so phase timings reproduce the
//     shape of the paper's figures.
//
// Like the paper's re-implemented MPI_Alltoallv (which broke MPI's
// 2 GiB counts limit), AllToAllv here has no message-size limit.
package cluster

import (
	"fmt"
	"math"
	"sync"

	"demsort/internal/blockio"
	"demsort/internal/bufpool"
	"demsort/internal/membudget"
	"demsort/internal/vtime"
)

// Config describes the simulated machine.
type Config struct {
	// P is the number of PEs (cluster nodes; one PE = one node, §VI).
	P int
	// BlockBytes is the external-memory block size B in bytes.
	BlockBytes int
	// MemElems is the per-PE internal memory budget m in elements
	// (0 = untracked).
	MemElems int64
	// Model is the virtual-time cost model.
	Model vtime.CostModel
	// NewStore creates the block store backing one PE's volume; nil
	// defaults to RAM-backed stores.
	NewStore func(rank int) (blockio.Store, error)
}

// Machine is the simulated cluster.
type Machine struct {
	cfg   Config
	nodes []*Node
	rv    *rendezvous
	p2p   []chan message // one inbox per (src*P+dst)

	abortOnce sync.Once
	abortErr  error
}

// Node is the per-PE context handed to the program run on the machine.
type Node struct {
	// Rank is this PE's index in 0..P-1.
	Rank int
	// P is the machine size.
	P int
	// Clock is the PE's virtual clock.
	Clock *vtime.Clock
	// Vol is the PE's local disk volume.
	Vol *blockio.Volume
	// Mem tracks the PE's internal memory budget.
	Mem *membudget.Tracker

	m *Machine
}

type message struct {
	tag     int
	payload []byte
	arrival float64
}

// New builds a machine; Close releases the stores.
func New(cfg Config) (*Machine, error) {
	if cfg.P < 1 {
		return nil, fmt.Errorf("cluster: need at least one PE, got %d", cfg.P)
	}
	if cfg.BlockBytes <= 0 {
		return nil, fmt.Errorf("cluster: block size must be positive, got %d", cfg.BlockBytes)
	}
	m := &Machine{cfg: cfg}
	m.rv = newRendezvous(cfg.P, m)
	m.p2p = make([]chan message, cfg.P*cfg.P)
	for i := range m.p2p {
		m.p2p[i] = make(chan message, 1024)
	}
	for rank := 0; rank < cfg.P; rank++ {
		var store blockio.Store
		var err error
		if cfg.NewStore != nil {
			store, err = cfg.NewStore(rank)
			if err != nil {
				return nil, err
			}
		} else {
			store = blockio.NewMemStore()
		}
		clock := vtime.NewClock()
		m.nodes = append(m.nodes, &Node{
			Rank:  rank,
			P:     cfg.P,
			Clock: clock,
			Vol:   blockio.NewVolume(store, cfg.BlockBytes, rank, cfg.Model, clock),
			Mem:   membudget.New(cfg.MemElems),
			m:     m,
		})
	}
	return m, nil
}

// Close releases the per-PE stores.
func (m *Machine) Close() error {
	var first error
	for _, n := range m.nodes {
		if err := n.Vol.Store().Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Nodes returns the PE contexts (for post-run stats inspection).
func (m *Machine) Nodes() []*Node { return m.nodes }

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// abort is panicked through PE goroutines when any PE fails, so peers
// blocked in collectives unwind instead of deadlocking.
type abort struct{}

// Run executes fn on every PE concurrently and returns the first
// error. If a PE fails, the others are unblocked and unwound.
func (m *Machine) Run(fn func(*Node) error) error {
	var wg sync.WaitGroup
	for _, n := range m.nodes {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, isAbort := r.(abort); isAbort {
						return // unwound because a peer failed
					}
					m.fail(fmt.Errorf("cluster: PE %d panicked: %v", n.Rank, r))
				}
			}()
			if err := fn(n); err != nil {
				m.fail(fmt.Errorf("PE %d: %w", n.Rank, err))
			}
		}(n)
	}
	wg.Wait()
	return m.abortErr
}

// fail records the first error and wakes every PE blocked in a
// collective. abortErr is guarded by the rendezvous mutex: aborted() is
// only called with it held, and Run reads the error only after all PE
// goroutines have joined.
func (m *Machine) fail(err error) {
	m.abortOnce.Do(func() {
		m.rv.mu.Lock()
		m.abortErr = err
		m.rv.cond.Broadcast()
		m.rv.mu.Unlock()
	})
}

// aborted must be called with rv.mu held.
func (m *Machine) aborted() bool { return m.abortErr != nil }

// ---------------------------------------------------------------------
// Rendezvous: generation-synchronised collectives.
//
// Every collective is: all P PEs deposit (opName, entryTime, payload);
// the last arrival runs a compute function over the rank-ordered
// inputs, producing one output and one exit time per PE. This is
// deterministic regardless of goroutine scheduling.
// ---------------------------------------------------------------------

type collIn struct {
	op   string
	t    float64
	data any
}

type collOut struct {
	t    float64
	data any
	net  float64 // network seconds to charge
	msgs int64
	sent int64
	recv int64
}

type rendezvous struct {
	mu      sync.Mutex
	cond    *sync.Cond
	p       int
	m       *Machine
	arrived int
	gen     uint64
	ins     []collIn
	outs    []collOut
}

func newRendezvous(p int, m *Machine) *rendezvous {
	rv := &rendezvous{p: p, m: m, ins: make([]collIn, p), outs: make([]collOut, p)}
	rv.cond = sync.NewCond(&rv.mu)
	return rv
}

// do performs one collective step for rank. compute receives the
// rank-ordered inputs and must fill outs.
func (rv *rendezvous) do(rank int, op string, t float64, data any, compute func(ins []collIn, outs []collOut)) collOut {
	rv.mu.Lock()
	if rv.m.aborted() {
		rv.mu.Unlock()
		panic(abort{})
	}
	rv.ins[rank] = collIn{op: op, t: t, data: data}
	rv.arrived++
	if rv.arrived == rv.p {
		for i := range rv.ins {
			if rv.ins[i].op != op {
				rv.mu.Unlock()
				rv.m.fail(fmt.Errorf("cluster: collective mismatch: PE %d in %q, PE %d in %q",
					i, rv.ins[i].op, rank, op))
				panic(abort{})
			}
		}
		compute(rv.ins, rv.outs)
		rv.arrived = 0
		for i := range rv.ins {
			rv.ins[i] = collIn{}
		}
		rv.gen++
		out := rv.outs[rank]
		rv.cond.Broadcast()
		rv.mu.Unlock()
		return out
	}
	gen := rv.gen
	for rv.gen == gen && !rv.m.aborted() {
		rv.cond.Wait()
	}
	if rv.m.aborted() {
		rv.mu.Unlock()
		panic(abort{})
	}
	out := rv.outs[rank]
	rv.mu.Unlock()
	return out
}

// maxEntry returns the latest entry time among the inputs — collectives
// complete no earlier than the last participant arrives.
func maxEntry(ins []collIn) float64 {
	t := math.Inf(-1)
	for i := range ins {
		if ins[i].t > t {
			t = ins[i].t
		}
	}
	return t
}

// latencyTerm is the per-collective startup cost: a tree of messages.
func (m *Machine) latencyTerm() float64 {
	p := float64(m.cfg.P)
	return m.cfg.Model.NetLatency * math.Ceil(math.Log2(p)+1)
}

// charge applies a collective result to the PE's clock.
func (n *Node) charge(out collOut) {
	n.Clock.AdvanceTo(out.t)
	st := n.Clock.Cur()
	st.NetTime += out.net
	st.Messages += out.msgs
	st.BytesSent += out.sent
	st.BytesRecv += out.recv
}

// Barrier synchronises all PEs (and their clocks).
func (n *Node) Barrier() {
	out := n.m.rv.do(n.Rank, "barrier", n.Clock.Now(), nil, func(ins []collIn, outs []collOut) {
		t := maxEntry(ins) + n.m.latencyTerm()
		for i := range outs {
			outs[i] = collOut{t: t}
		}
	})
	n.charge(out)
}

// AllToAllv sends send[j] to PE j and returns what every PE sent to
// this one (recv[j] = bytes from PE j). nil entries are allowed. The
// self-message send[Rank] is delivered without touching the network
// (and without being copied).
func (n *Node) AllToAllv(send [][]byte) [][]byte {
	if len(send) != n.P {
		panic(fmt.Sprintf("cluster: AllToAllv needs %d destination slots, got %d", n.P, len(send)))
	}
	out := n.m.rv.do(n.Rank, "alltoallv", n.Clock.Now(), send, func(ins []collIn, outs []collOut) {
		p := n.m.cfg.P
		t0 := maxEntry(ins)
		bw := n.m.cfg.Model.EffNetBandwidth(p)
		lat := n.m.latencyTerm()
		// Route and cost per PE: time is governed by the max of bytes
		// in and bytes out on its NIC (full-duplex would be min; we
		// follow the paper's single-rail measurement and use max).
		for i := 0; i < p; i++ {
			recv := make([][]byte, p)
			var bytesIn, bytesOut int64
			var msgs int64
			for j := 0; j < p; j++ {
				sendJ := ins[j].data.([][]byte)
				recv[j] = sendJ[i]
				if i != j && len(sendJ[i]) > 0 {
					bytesIn += int64(len(sendJ[i]))
					msgs++
				}
			}
			sendI := ins[i].data.([][]byte)
			for j := 0; j < p; j++ {
				if j != i {
					bytesOut += int64(len(sendI[j]))
				}
			}
			vol := bytesIn
			if bytesOut > vol {
				vol = bytesOut
			}
			net := float64(vol)/bw + lat
			outs[i] = collOut{
				t:    t0 + net,
				data: recv,
				net:  net,
				msgs: msgs,
				sent: bytesOut,
				recv: bytesIn,
			}
		}
	})
	n.charge(out)
	return out.data.([][]byte)
}

// RecycleRecv returns AllToAllv payload buffers to the shared arena
// once their contents have been decoded. Message buffers have exactly
// one receiver, so the receiver owns them after the collective; the
// sender must not touch its send buffers after AllToAllv returns.
// Never call this on AllGather or Bcast results — those are shared
// structurally between PEs.
func RecycleRecv(bufs [][]byte) {
	for _, b := range bufs {
		bufpool.Put(b)
	}
}

// AllGather collects each PE's byte slice; the result is indexed by
// rank and shared structurally (callers must not mutate it).
func (n *Node) AllGather(data []byte) [][]byte {
	out := n.m.rv.do(n.Rank, "allgather", n.Clock.Now(), data, func(ins []collIn, outs []collOut) {
		p := n.m.cfg.P
		t0 := maxEntry(ins)
		bw := n.m.cfg.Model.EffNetBandwidth(p)
		lat := n.m.latencyTerm()
		all := make([][]byte, p)
		var total int64
		for j := 0; j < p; j++ {
			all[j] = ins[j].data.([]byte)
			total += int64(len(all[j]))
		}
		for i := 0; i < p; i++ {
			in := total - int64(len(all[i]))
			net := float64(in)/bw + lat
			outs[i] = collOut{t: t0 + net, data: all, net: net, msgs: int64(p - 1), sent: int64(len(all[i])) * int64(p-1), recv: in}
		}
	})
	n.charge(out)
	return out.data.([][]byte)
}

// Bcast distributes root's data to every PE.
func (n *Node) Bcast(root int, data []byte) []byte {
	out := n.m.rv.do(n.Rank, "bcast", n.Clock.Now(), data, func(ins []collIn, outs []collOut) {
		p := n.m.cfg.P
		t0 := maxEntry(ins)
		bw := n.m.cfg.Model.EffNetBandwidth(p)
		lat := n.m.latencyTerm()
		payload := ins[root].data.([]byte)
		net := float64(len(payload))/bw + lat
		for i := 0; i < p; i++ {
			o := collOut{t: t0 + net, data: payload, net: net}
			if i != root {
				o.recv = int64(len(payload))
				o.msgs = 1
			} else {
				o.sent = int64(len(payload))
			}
			outs[i] = o
		}
	})
	n.charge(out)
	return out.data.([]byte)
}

// AllReduceInt64 combines every PE's value with op ("sum", "max",
// "min", "or") and returns the result to all.
func (n *Node) AllReduceInt64(v int64, op string) int64 {
	out := n.m.rv.do(n.Rank, "allreduce:"+op, n.Clock.Now(), v, func(ins []collIn, outs []collOut) {
		t := maxEntry(ins) + n.m.latencyTerm()
		acc := ins[0].data.(int64)
		for j := 1; j < len(ins); j++ {
			x := ins[j].data.(int64)
			switch op {
			case "sum":
				acc += x
			case "max":
				if x > acc {
					acc = x
				}
			case "min":
				if x < acc {
					acc = x
				}
			case "or":
				acc |= x
			default:
				panic("cluster: unknown reduce op " + op)
			}
		}
		for i := range outs {
			outs[i] = collOut{t: t, data: acc, net: n.m.latencyTerm(), msgs: 1}
		}
	})
	n.charge(out)
	return out.data.(int64)
}

// ExchangeAny is a generic personalised exchange of small metadata
// values (splitter vectors, probe requests): item j goes to PE j, the
// result holds one item from each PE. Payloads are charged at the
// given nominal byte size per item.
func (n *Node) ExchangeAny(items []any, nominalBytes int) []any {
	if len(items) != n.P {
		panic("cluster: ExchangeAny needs P items")
	}
	out := n.m.rv.do(n.Rank, "exchangeany", n.Clock.Now(), items, func(ins []collIn, outs []collOut) {
		p := n.m.cfg.P
		t0 := maxEntry(ins)
		bw := n.m.cfg.Model.EffNetBandwidth(p)
		lat := n.m.latencyTerm()
		for i := 0; i < p; i++ {
			recv := make([]any, p)
			for j := 0; j < p; j++ {
				recv[j] = ins[j].data.([]any)[i]
			}
			net := float64((p-1)*nominalBytes)/bw + lat
			outs[i] = collOut{t: t0 + net, data: recv, net: net, msgs: int64(p - 1)}
		}
	})
	n.charge(out)
	return out.data.([]any)
}

// Send transmits payload to PE dst with a tag; the NIC cost is charged
// and the arrival time stamped so the receiver's clock synchronises.
func (n *Node) Send(dst, tag int, payload []byte) {
	model := n.m.cfg.Model
	dur := float64(len(payload)) / model.EffNetBandwidth(n.P)
	st := n.Clock.Cur()
	st.NetTime += dur
	st.BytesSent += int64(len(payload))
	arrival := n.Clock.Now() + dur + model.NetLatency
	n.m.p2p[n.Rank*n.P+dst] <- message{tag: tag, payload: payload, arrival: arrival}
}

// Recv blocks for the next message from src with the given tag,
// advancing this PE's clock to its arrival time. Messages from one
// sender arrive in order; a tag mismatch is a protocol bug and fails
// the machine.
func (n *Node) Recv(src, tag int) []byte {
	msg := <-n.m.p2p[src*n.P+n.Rank]
	if msg.tag != tag {
		n.m.fail(fmt.Errorf("cluster: PE %d expected tag %d from %d, got %d", n.Rank, tag, src, msg.tag))
		panic(abort{})
	}
	n.Clock.AdvanceTo(msg.arrival)
	st := n.Clock.Cur()
	st.BytesRecv += int64(len(msg.payload))
	// Count the message on the receive side, matching the collectives
	// (AllToAllv/AllGather/Bcast all count incoming messages only);
	// Send deliberately does not count, or every p2p message would be
	// double-counted relative to collective traffic.
	st.Messages++
	return msg.payload
}
