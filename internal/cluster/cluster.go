// Package cluster defines the transport-agnostic machine abstraction
// the sorting phases program against: P PEs, each with a private
// address space, exchanging data only through MPI-like primitives
// (point-to-point Send/Recv and the collectives Barrier, Bcast,
// AllGather, AllToAllv, Allreduce). The paper's implementation runs
// over MVAPICH/InfiniBand; here the communication surface is the
// Transport interface, with two backends:
//
//   - cluster/sim — the single-process simulator: every PE is a
//     goroutine, collectives rendezvous deterministically, and a
//     virtual-time cost model (calibrated to the paper's testbed)
//     charges network and disk time so phase timings reproduce the
//     shape of the paper's figures;
//   - cluster/tcp — one OS process per PE, length-prefixed framed
//     messages over persistent pairwise TCP connections, collectives
//     built from point-to-point over cluster-shaped schedules (a
//     binomial tree for the rooted collectives, a 1-factorization of
//     K_P for the personalised exchanges); timings are real
//     wall-clock.
//
// Phase code (core, stripesort, baseline, dselect, mselect) sees only
// *Node — a facade over a Transport plus the PE's local volume, memory
// tracker and per-phase Stats — so the same algorithms run unchanged on
// the simulator and on real processes. Like the paper's re-implemented
// MPI_Alltoallv (which broke MPI's 2 GiB counts limit), AllToAllv has
// no message-size limit in either backend.
package cluster

import (
	"errors"
	"fmt"

	"demsort/internal/blockio"
	"demsort/internal/bufpool"
	"demsort/internal/membudget"
	"demsort/internal/vtime"
)

// JobRank is the ErrAborted rank for failures that belong to the job
// rather than to any PE: an external cancellation (context, Abort) or
// a launcher-level decision.
const JobRank = -1

// ErrAborted is the typed failure of an aborted machine run: every
// rank of the machine — the one at fault and every survivor that was
// unwound by the abort propagation — returns it from Machine.Run, with
// Rank naming the PE the failure is attributed to (JobRank for
// external cancellations) and Cause carrying the underlying error.
// Unwrap exposes Cause, so errors.Is/As reach through to injected or
// sentinel errors.
type ErrAborted struct {
	// Rank is the PE at fault: the one that crashed, wedged, returned
	// an error, or hit a protocol bug — as attributed by the rank that
	// detected it (JobRank for job-level cancellation).
	Rank int
	// Cause is the underlying failure.
	Cause error
}

// Error implements error.
func (e *ErrAborted) Error() string {
	if e.Rank == JobRank {
		return fmt.Sprintf("aborted: job: %v", e.Cause)
	}
	return fmt.Sprintf("aborted: rank %d: %v", e.Rank, e.Cause)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *ErrAborted) Unwrap() error { return e.Cause }

// Abortedf builds an *ErrAborted attributed to rank from a format
// string (backend convenience).
func Abortedf(rank int, format string, args ...any) *ErrAborted {
	return &ErrAborted{Rank: rank, Cause: fmt.Errorf(format, args...)}
}

// AsAborted wraps err into an *ErrAborted attributed to rank, unless
// it already is one (the first attribution wins: an error that crossed
// the machine as an abort frame keeps naming the original culprit).
func AsAborted(rank int, err error) *ErrAborted {
	var ae *ErrAborted
	if errors.As(err, &ae) {
		return ae
	}
	return &ErrAborted{Rank: rank, Cause: err}
}

// Transport is the communication surface of one PE: the MPI-like
// collectives and point-to-point primitives the phases are written
// against. Implementations are owned by a single PE "program"
// goroutine; calls are collective (every PE of the machine must make
// matching calls in the same order) except Send/Recv.
//
// Transports do not return errors: a communication failure (protocol
// mismatch, lost peer) aborts the whole machine run, unwinding the PE
// goroutine through a backend-internal panic that Machine.Run recovers
// into the returned error — phase code stays free of transport error
// plumbing, exactly as with MPI's default error handler. An aborted
// run surfaces as *ErrAborted naming the rank at fault: backends
// detect failed peers themselves (lost connections, missed
// heartbeats, per-op deadlines on the tcp backend) and fan the abort
// out peer to peer, so every surviving rank unwinds from the inside
// in bounded time instead of waiting for an external supervisor.
type Transport interface {
	// Rank is this PE's index in 0..P-1; P is the machine size.
	Rank() int
	P() int

	// Barrier synchronises all PEs (and, on the sim backend, their
	// virtual clocks).
	Barrier()
	// AllToAllv sends send[j] to PE j and returns what every PE sent
	// to this one (recv[j] = bytes from PE j). nil entries are
	// allowed. The self-message send[rank] is delivered without
	// touching the network and without being copied. Received buffers
	// are owned by the receiver (see RecycleRecv).
	AllToAllv(send [][]byte) [][]byte
	// AllGather collects each PE's byte slice; the result is indexed
	// by rank and may be shared structurally (callers must not mutate
	// it).
	AllGather(data []byte) [][]byte
	// Bcast distributes root's data to every PE; the result may be
	// shared structurally.
	Bcast(root int, data []byte) []byte
	// AllReduceInt64 combines every PE's value with op ("sum", "max",
	// "min", "or") and returns the result to all.
	AllReduceInt64(v int64, op string) int64
	// ExchangeAny is a generic personalised exchange of small
	// metadata values: item j goes to PE j, the result holds one item
	// from each PE, charged at nominalBytes per item. Backends that
	// cross address spaces (tcp) require gob-encodable items.
	ExchangeAny(items []any, nominalBytes int) []any
	// Send transmits payload to PE dst with a tag; Recv blocks for
	// the next message from src, which must carry the given tag
	// (a mismatch is a protocol bug and fails the machine). Messages
	// from one sender arrive in order.
	Send(dst, tag int, payload []byte)
	Recv(src, tag int) []byte
}

// Stats is the per-phase time/traffic accounting of one PE. The sim
// backend implements it with a virtual clock (*vtime.Clock satisfies
// the interface directly), so AddCPU advances modelled time; the tcp
// backend measures real wall-clock per phase and ignores modelled CPU
// charges (real computation is already on the wall). Byte and message
// counters are real in both backends.
type Stats interface {
	// SetPhase closes the running phase (accumulating its wall time)
	// and switches accounting to name; re-entering accumulates.
	SetPhase(name string)
	// Phase returns the current phase name.
	Phase() string
	// AddCPU charges modelled CPU seconds to the current phase.
	AddCPU(sec float64)
	// Stats finalises the running phase and returns the per-phase
	// statistics in first-use order.
	Stats() (names []string, stats map[string]*vtime.PhaseStats)
}

// Machine is a set of locally hosted PEs over some transport. The sim
// backend hosts all P PEs in one process; the tcp backend hosts
// exactly one (this process's rank) — Nodes() and result aggregation
// therefore cover only the local ranks.
type Machine interface {
	// Run executes fn on every locally hosted PE concurrently and
	// returns the first error; on failure the remaining local PEs are
	// unblocked and unwound.
	Run(fn func(*Node) error) error
	// Nodes returns the locally hosted PE contexts (for post-run
	// stats inspection).
	Nodes() []*Node
	// P returns the machine size (total PEs across all processes).
	P() int
	// Abort fails the machine run from the outside (job cancellation,
	// supervisor decision): every blocked PE unwinds, Run returns
	// *ErrAborted with Rank JobRank and the given cause, and — on
	// multi-process backends — the abort propagates to the peer
	// processes. Safe to call from any goroutine, including when no
	// run is active (the next Run observes it).
	Abort(cause error)
	// Close releases the backend's resources (stores, sockets).
	Close() error
}

// MailboxStats is an optional Transport extension for backends that
// buffer received messages (eager buffering): it reports the peak
// number of bytes that were ever queued undelivered across this PE's
// mailboxes — the receive-side memory that membudget-style tests pin.
type MailboxStats interface {
	MailboxPeakBytes() int64
}

// A2AStream is a pipelined sequence of AllToAllv exchanges: the caller
// posts exchange s+1's send vectors while exchange s's receives are
// still draining, so encode work and the wire overlap (the §IV-E
// double-buffered all-to-all). The discipline is strict FIFO — every
// Post is answered by exactly one Collect, in order — and at most the
// stream's window of exchanges may be posted but not yet collected, so
// receive-side buffering stays O(window · exchange size).
//
// Ownership follows AllToAllv: posted send buffers belong to the stream
// (the backend may hand them to the arena once written — the caller
// must not touch them after Post), collected buffers belong to the
// caller (RecycleRecv). While a stream is open no other collective may
// run on the transport; Close (idempotent, safe during unwinds) must be
// called before the next collective.
type A2AStream interface {
	// Post enqueues one exchange's send vectors (send[j] to PE j, nil
	// entries allowed). It never blocks on the network; posting more
	// than window exchanges ahead of Collect is a protocol bug that
	// fails the machine.
	Post(send [][]byte)
	// Collect blocks for the oldest uncollected exchange's receives
	// (recv[j] = bytes from PE j, self-message uncopied).
	Collect() [][]byte
	// Close releases the stream. Calling it with posted-but-uncollected
	// exchanges pending is only legal during an abort unwind.
	Close()
}

// StreamingTransport is an optional Transport extension for backends
// with a genuinely asynchronous AllToAllv path. Backends without it get
// the synchronous fallback from Node.OpenA2AStream, so phase code can
// target the stream API unconditionally.
type StreamingTransport interface {
	OpenA2AStream(window int) A2AStream
}

// syncA2AStream adapts a plain Transport to the stream API: Post runs
// the blocking AllToAllv immediately and queues the result for Collect.
// Phase code is SPMD, so the collective call order stays identical on
// every PE — which is what the sim backend's rendezvous requires.
type syncA2AStream struct {
	tr      Transport
	pending [][][]byte
}

func (s *syncA2AStream) Post(send [][]byte) {
	s.pending = append(s.pending, s.tr.AllToAllv(send))
}

func (s *syncA2AStream) Collect() [][]byte {
	recv := s.pending[0]
	s.pending = s.pending[1:]
	return recv
}

func (s *syncA2AStream) Close() {
	for _, recv := range s.pending {
		RecycleRecv(recv)
	}
	s.pending = nil
}

// SyncA2AStream wraps a plain Transport in the synchronous stream
// adapter — what Node.OpenA2AStream falls back to. Transport wrappers
// that implement StreamingTransport unconditionally (so their hooks
// stay on the pipelined path) use it when their wrapped backend has no
// asynchronous path of its own.
func SyncA2AStream(tr Transport) A2AStream { return &syncA2AStream{tr: tr} }

// Node is the per-PE context handed to the program run on the machine:
// the facade phase code programs against, delegating communication to
// the backend Transport and time accounting to the backend Stats.
type Node struct {
	// Rank is this PE's index in 0..P-1.
	Rank int
	// P is the machine size.
	P int
	// Vol is the PE's local disk volume.
	Vol *blockio.Volume
	// Mem tracks the PE's internal memory budget.
	Mem *membudget.Tracker

	tr Transport
	st Stats
}

// NewNode assembles a PE context over a backend transport and stats
// implementation; backends call it, phase code only consumes it.
func NewNode(tr Transport, st Stats, vol *blockio.Volume, mem *membudget.Tracker) *Node {
	return &Node{Rank: tr.Rank(), P: tr.P(), Vol: vol, Mem: mem, tr: tr, st: st}
}

// Transport returns the backend transport (backend tests and
// transport wrappers).
func (n *Node) Transport() Transport { return n.tr }

// NodeStats returns the backend stats implementation (transport
// wrappers re-assemble Nodes around a wrapped Transport and need the
// original accounting to ride along).
func (n *Node) NodeStats() Stats { return n.st }

// MailboxPeakBytes reports the peak bytes ever queued undelivered in
// this PE's receive mailboxes, or 0 when the backend does not buffer
// (see MailboxStats).
func (n *Node) MailboxPeakBytes() int64 {
	if ms, ok := n.tr.(MailboxStats); ok {
		return ms.MailboxPeakBytes()
	}
	return 0
}

// SetPhase switches per-phase accounting to name.
func (n *Node) SetPhase(name string) { n.st.SetPhase(name) }

// Phase returns the current accounting phase.
func (n *Node) Phase() string { return n.st.Phase() }

// AddCPU charges modelled CPU seconds to the current phase (a no-op on
// wall-clock backends, where real computation is already measured).
func (n *Node) AddCPU(sec float64) { n.st.AddCPU(sec) }

// PhaseStats finalises and returns the PE's per-phase statistics.
func (n *Node) PhaseStats() (names []string, stats map[string]*vtime.PhaseStats) {
	return n.st.Stats()
}

// Barrier synchronises all PEs.
func (n *Node) Barrier() { n.tr.Barrier() }

// AllToAllv sends send[j] to PE j and returns what every PE sent to
// this one; see Transport.AllToAllv.
func (n *Node) AllToAllv(send [][]byte) [][]byte { return n.tr.AllToAllv(send) }

// OpenA2AStream opens a pipelined all-to-all stream with the given
// in-flight window (see A2AStream). Backends without an asynchronous
// path get a synchronous adapter, so callers need no fallback logic:
// the stream API is always available and always byte-identical to a
// sequence of plain AllToAllv calls.
func (n *Node) OpenA2AStream(window int) A2AStream {
	if st, ok := n.tr.(StreamingTransport); ok {
		return st.OpenA2AStream(window)
	}
	return &syncA2AStream{tr: n.tr}
}

// AllGather collects each PE's byte slice, indexed by rank; the result
// may be shared structurally (callers must not mutate it).
func (n *Node) AllGather(data []byte) [][]byte { return n.tr.AllGather(data) }

// Bcast distributes root's data to every PE.
func (n *Node) Bcast(root int, data []byte) []byte { return n.tr.Bcast(root, data) }

// AllReduceInt64 combines every PE's value with op ("sum", "max",
// "min", "or") and returns the result to all.
func (n *Node) AllReduceInt64(v int64, op string) int64 { return n.tr.AllReduceInt64(v, op) }

// ExchangeAny is a generic personalised exchange of small metadata
// values; see Transport.ExchangeAny.
func (n *Node) ExchangeAny(items []any, nominalBytes int) []any {
	return n.tr.ExchangeAny(items, nominalBytes)
}

// Send transmits payload to PE dst with a tag.
func (n *Node) Send(dst, tag int, payload []byte) { n.tr.Send(dst, tag, payload) }

// Recv blocks for the next message from src with the given tag.
func (n *Node) Recv(src, tag int) []byte { return n.tr.Recv(src, tag) }

// RecycleRecv returns AllToAllv payload buffers to the shared arena
// once their contents have been decoded. Message buffers have exactly
// one receiver, so the receiver owns them after the collective; the
// sender must not touch its send buffers after AllToAllv returns.
// Never call this on AllGather or Bcast results — those may be shared
// structurally between PEs.
func RecycleRecv(bufs [][]byte) {
	for _, b := range bufs {
		bufpool.Put(b)
	}
}
