// Package dselect implements exact distributed multiway selection over
// P node-local sorted in-memory sequences — the splitting step of the
// paper's internal-memory parallel sort (§IV-B: "the internal memory
// variant of the multiway selection algorithm from Section IV-A is used
// to split the P sorted sequences into P pieces of equal size").
//
// All boundary ranks are refined together in synchronous rounds with an
// owner per rank (rank j is coordinated by PE j mod P):
//
//  1. every PE sends the owner its interval middle as a pivot proposal
//     (with the interval width as weight);
//  2. the owner picks the weighted median and publishes it;
//  3. every PE binary-searches its local split for the pivot and sends
//     the count to the owner;
//  4. the owner compares the global count with the target rank and
//     publishes the direction; every PE shrinks its own interval.
//
// Interval mass shrinks geometrically (weighted-median argument; the
// pivot owner's interval shrinks by at least one element every round,
// so termination is unconditional). Small residuals are gathered to
// the owner and finished exactly in memory. Per PE and round the
// traffic is O(#ranks) bytes — independent of P² — which is what keeps
// run formation scalable in the weak-scaling experiments.
//
// Ranks use the (value, PE, position) total order, so the resulting
// partition is exact even when every key is equal.
package dselect

import (
	"encoding/binary"
	"fmt"
	"sort"

	"demsort/internal/cluster"
	"demsort/internal/elem"
	"demsort/internal/mselect"
)

// gatherThreshold is the residual interval mass (elements, summed over
// PEs) below which a rank's remaining candidates are gathered to the
// owner and finished exactly.
const gatherThreshold = 512

// command kinds published by rank owners.
const (
	cmdNone   = 0 // rank not handled this round (already done)
	cmdPivot  = 1 // payload: pivot (elem, q, pos)
	cmdGather = 2 // send residual interval to the owner
	cmdLeft   = 3 // pivot was left of the cut: lo = split (and owner adj)
	cmdRight  = 4 // pivot was right: hi = split
	cmdDone   = 5 // payload: this PE's final cut
)

type interval struct{ lo, hi int64 }

// Cuts computes this PE's exact cut positions for the global ranks:
// out[j] is the number of local elements ordered before global rank
// ranks[j] under the exact total-order partition of the P distributed
// sorted sequences. Summed over the PEs, out[j] equals ranks[j].
//
// Every PE must call Cuts collectively with identical ranks.
func Cuts[T any](c elem.Codec[T], n *cluster.Node, local []T, ranks []int64) []int64 {
	p := n.P
	nRanks := len(ranks)
	out := make([]int64, nRanks)
	if nRanks == 0 {
		return out
	}
	if p == 1 {
		for j, r := range ranks {
			if r < 0 || r > int64(len(local)) {
				panic(fmt.Sprintf("dselect: rank %d outside [0,%d]", r, len(local)))
			}
			out[j] = r
		}
		return out
	}
	sz := c.Size()
	myLen := int64(len(local))
	total := int64(0)
	for _, r := range ranks {
		if r > total {
			total = r
		}
	}
	// Adapt the gather threshold to the instance: on the big run-
	// formation selections the full threshold saves rounds, on the
	// small per-batch selections of the striped merge it would move a
	// large fraction of the data as metadata.
	thr := int64(gatherThreshold)
	if t := total / (8 * int64(p)); t < thr {
		thr = t
	}
	if thr < 16 {
		thr = 16
	}

	iv := make([]interval, nRanks)
	done := make([]bool, nRanks)
	for j := range iv {
		iv[j] = interval{0, myLen}
	}
	owner := func(j int) int { return j % p }

	// Wire sizes.
	propSz := 1 + sz + 8 + 8 + 8 // present, elem, pos, width, lo
	cmdHdr := 1                  // kind
	pivotSz := cmdHdr + sz + 4 + 8

	type pivot struct {
		v   T
		q   int
		pos int64
	}
	pivots := make([]pivot, nRanks) // active pivot per rank (owner-published)
	gathering := make([]bool, nRanks)

	allDone := func() bool {
		for _, d := range done {
			if !d {
				return false
			}
		}
		return true
	}

	for round := 0; !allDone(); round++ {
		// --- A: proposals to owners ---
		send := make([][]byte, p)
		for j := range ranks {
			if done[j] {
				continue
			}
			o := owner(j)
			buf := make([]byte, propSz+4)
			binary.LittleEndian.PutUint32(buf[:4], uint32(j))
			rec := buf[4:]
			if iv[j].hi > iv[j].lo {
				rec[0] = 1
				mid := (iv[j].lo + iv[j].hi) / 2
				c.Encode(rec[1:1+sz], local[mid])
				binary.LittleEndian.PutUint64(rec[1+sz:], uint64(mid))
				binary.LittleEndian.PutUint64(rec[1+sz+8:], uint64(iv[j].hi-iv[j].lo))
			}
			binary.LittleEndian.PutUint64(rec[1+sz+16:], uint64(iv[j].lo))
			send[o] = append(send[o], buf...)
		}
		props := n.AllToAllv(send)

		// --- B: owners decide and publish commands ---
		type prop struct {
			present bool
			v       T
			q       int
			pos     int64
			width   int64
			lo      int64
		}
		owned := map[int][]prop{}
		for q := 0; q < p; q++ {
			buf := props[q]
			for len(buf) > 0 {
				j := int(binary.LittleEndian.Uint32(buf[:4]))
				rec := buf[4 : 4+propSz]
				buf = buf[4+propSz:]
				pr := prop{q: q}
				pr.present = rec[0] == 1
				if pr.present {
					pr.v = c.Decode(rec[1 : 1+sz])
					pr.pos = int64(binary.LittleEndian.Uint64(rec[1+sz:]))
					pr.width = int64(binary.LittleEndian.Uint64(rec[1+sz+8:]))
				}
				pr.lo = int64(binary.LittleEndian.Uint64(rec[1+sz+16:]))
				owned[j] = append(owned[j], pr)
			}
		}
		cluster.RecycleRecv(props)
		var pub []byte
		for j := 0; j < nRanks; j++ {
			if owner(j) != n.Rank {
				continue
			}
			ps, ok := owned[j]
			if !ok {
				continue
			}
			var mass, loSum int64
			var cands []prop
			for _, pr := range ps {
				mass += pr.width
				loSum += pr.lo
				if pr.present {
					cands = append(cands, pr)
				}
			}
			var rec []byte
			switch {
			case mass == 0:
				if loSum != ranks[j] {
					panic(fmt.Sprintf("dselect: rank %d converged to %d, want %d", j, loSum, ranks[j]))
				}
				rec = make([]byte, 4+cmdHdr)
				binary.LittleEndian.PutUint32(rec[:4], uint32(j))
				rec[4] = cmdDone
			case mass <= thr:
				rec = make([]byte, 4+cmdHdr)
				binary.LittleEndian.PutUint32(rec[:4], uint32(j))
				rec[4] = cmdGather
			default:
				// Weighted median of the proposals, keyed like
				// countBefore: normalized keys first, comparator only
				// on equal inexact keys.
				key, exact := elem.KeyFn(c)
				sort.Slice(cands, func(a, b int) bool {
					pa, pb := cands[a], cands[b]
					if ka, kb := key(pa.v), key(pb.v); ka != kb {
						return ka < kb
					}
					if !exact {
						if c.Less(pa.v, pb.v) {
							return true
						}
						if c.Less(pb.v, pa.v) {
							return false
						}
					}
					if pa.q != pb.q {
						return pa.q < pb.q
					}
					return pa.pos < pb.pos
				})
				var wAcc int64
				choice := cands[len(cands)-1]
				for _, pr := range cands {
					wAcc += pr.width
					if 2*wAcc >= mass {
						choice = pr
						break
					}
				}
				rec = make([]byte, 4+pivotSz)
				binary.LittleEndian.PutUint32(rec[:4], uint32(j))
				rec[4] = cmdPivot
				c.Encode(rec[5:5+sz], choice.v)
				binary.LittleEndian.PutUint32(rec[5+sz:], uint32(choice.q))
				binary.LittleEndian.PutUint64(rec[5+sz+4:], uint64(choice.pos))
			}
			pub = append(pub, rec...)
		}
		cmds := n.AllGather(pub)

		// Apply the published commands: note pivots, mark gathers/done.
		var splitRanks []int
		var gatherRanks []int
		for q := 0; q < p; q++ {
			buf := cmds[q]
			for len(buf) > 0 {
				j := int(binary.LittleEndian.Uint32(buf[:4]))
				kind := buf[4]
				switch kind {
				case cmdDone:
					done[j] = true
					out[j] = iv[j].lo
					buf = buf[5:]
				case cmdGather:
					gathering[j] = true
					gatherRanks = append(gatherRanks, j)
					buf = buf[5:]
				case cmdPivot:
					pivots[j] = pivot{
						v:   c.Decode(buf[5 : 5+sz]),
						q:   int(binary.LittleEndian.Uint32(buf[5+sz:])),
						pos: int64(binary.LittleEndian.Uint64(buf[5+sz+4:])),
					}
					splitRanks = append(splitRanks, j)
					buf = buf[5+sz+4+8:]
				default:
					panic("dselect: bad command")
				}
			}
		}
		sort.Ints(splitRanks)
		sort.Ints(gatherRanks)

		if len(splitRanks) == 0 && len(gatherRanks) == 0 {
			continue
		}

		// --- C: splits and gathered residuals to owners ---
		sendC := make([][]byte, p)
		mySplit := make(map[int]int64, len(splitRanks))
		for _, j := range splitRanks {
			pv := pivots[j]
			split := countBefore(c, local, n.Rank, pv.v, pv.q, pv.pos)
			mySplit[j] = split
			rec := make([]byte, 4+8)
			binary.LittleEndian.PutUint32(rec[:4], uint32(j))
			binary.LittleEndian.PutUint64(rec[4:], uint64(split))
			sendC[owner(j)] = append(sendC[owner(j)], rec...)
		}
		for _, j := range gatherRanks {
			// Residual elements plus my lo offset.
			cnt := iv[j].hi - iv[j].lo
			rec := make([]byte, 4+8+8+int(cnt)*sz)
			binary.LittleEndian.PutUint32(rec[:4], uint32(j))
			binary.LittleEndian.PutUint64(rec[4:12], uint64(iv[j].lo))
			binary.LittleEndian.PutUint64(rec[12:20], uint64(cnt))
			for i := int64(0); i < cnt; i++ {
				c.Encode(rec[20+int(i)*sz:], local[iv[j].lo+i])
			}
			sendC[owner(j)] = append(sendC[owner(j)], rec...)
		}
		replies := n.AllToAllv(sendC)

		// --- D: owners aggregate and answer ---
		type residual struct {
			q    int
			lo   int64
			vals []T
		}
		splitSum := map[int]int64{}
		resids := map[int][]residual{}
		for q := 0; q < p; q++ {
			buf := replies[q]
			for len(buf) > 0 {
				j := int(binary.LittleEndian.Uint32(buf[:4]))
				if gathering[j] {
					lo := int64(binary.LittleEndian.Uint64(buf[4:12]))
					cnt := int(binary.LittleEndian.Uint64(buf[12:20]))
					vals := elem.DecodeSlice(c, buf[20:], cnt)
					buf = buf[20+cnt*sz:]
					resids[j] = append(resids[j], residual{q: q, lo: lo, vals: vals})
				} else {
					splitSum[j] += int64(binary.LittleEndian.Uint64(buf[4:12]))
					buf = buf[12:]
				}
			}
		}
		cluster.RecycleRecv(replies)
		sendD := make([][]byte, p)
		for _, j := range splitRanks {
			if owner(j) != n.Rank {
				continue
			}
			kind := byte(cmdRight)
			if splitSum[j] < ranks[j] {
				kind = cmdLeft
			}
			for q := 0; q < p; q++ {
				rec := make([]byte, 4+1)
				binary.LittleEndian.PutUint32(rec[:4], uint32(j))
				rec[4] = kind
				sendD[q] = append(sendD[q], rec...)
			}
		}
		for _, j := range gatherRanks {
			if owner(j) != n.Rank {
				continue
			}
			rs := resids[j]
			sort.Slice(rs, func(a, b int) bool { return rs[a].q < rs[b].q })
			seqs := make([][]T, p)
			var fixed int64
			for _, r := range rs {
				seqs[r.q] = r.vals
				fixed += r.lo
			}
			resRank := ranks[j] - fixed
			var resTotal int64
			for _, s := range seqs {
				resTotal += int64(len(s))
			}
			if resRank < 0 || resRank > resTotal {
				panic(fmt.Sprintf("dselect: rank %d residual target %d outside [0,%d]", j, resRank, resTotal))
			}
			cut := mselect.Select[T](c, mselect.SliceAccessor[T](seqs), resRank)
			for q := 0; q < p; q++ {
				rec := make([]byte, 4+1+8)
				binary.LittleEndian.PutUint32(rec[:4], uint32(j))
				rec[4] = cmdDone
				var fin int64
				for _, r := range rs {
					if r.q == q {
						fin = r.lo + cut[q]
					}
				}
				binary.LittleEndian.PutUint64(rec[5:], uint64(fin))
				sendD[q] = append(sendD[q], rec...)
			}
		}
		answers := n.AllToAllv(sendD)
		for q := 0; q < p; q++ {
			buf := answers[q]
			for len(buf) > 0 {
				j := int(binary.LittleEndian.Uint32(buf[:4]))
				kind := buf[4]
				switch kind {
				case cmdLeft:
					split := mySplit[j]
					if split > iv[j].lo {
						iv[j].lo = split
					}
					pv := pivots[j]
					if pv.q == n.Rank && pv.pos+1 > iv[j].lo {
						iv[j].lo = pv.pos + 1
					}
					if iv[j].hi < iv[j].lo {
						iv[j].hi = iv[j].lo
					}
					buf = buf[5:]
				case cmdRight:
					split := mySplit[j]
					if split < iv[j].hi {
						iv[j].hi = split
					}
					if iv[j].lo > iv[j].hi {
						iv[j].lo = iv[j].hi
					}
					buf = buf[5:]
				case cmdDone:
					done[j] = true
					out[j] = int64(binary.LittleEndian.Uint64(buf[5:]))
					iv[j] = interval{out[j], out[j]}
					buf = buf[13:]
				default:
					panic("dselect: bad answer")
				}
			}
		}
		cluster.RecycleRecv(answers)
	}
	return out
}

// countBefore returns how many elements of local (owned by PE me)
// order before the pivot (pv, pq, ppos) under (value, PE, position).
// The binary search probes the codec's normalized uint64 keys first
// (the pivot's key is computed once per search); the comparator runs
// only on equal inexact keys — never for exact-keyed codecs.
func countBefore[T any](c elem.Codec[T], local []T, me int, pv T, pq int, ppos int64) int64 {
	key, exact := elem.KeyFn(c)
	pk := key(pv)
	return int64(sort.Search(len(local), func(j int) bool {
		v := local[j]
		if vk := key(v); vk != pk {
			return vk > pk
		}
		if !exact {
			if c.Less(v, pv) {
				return false
			}
			if c.Less(pv, v) {
				return true
			}
		}
		if me != pq {
			return me > pq
		}
		return int64(j) >= ppos
	}))
}
