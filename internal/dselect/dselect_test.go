package dselect

import (
	"math/rand/v2"
	"slices"
	"testing"

	"demsort/internal/cluster"
	"demsort/internal/cluster/sim"
	"demsort/internal/elem"
	"demsort/internal/mselect"
	"demsort/internal/vtime"
	"demsort/internal/workload"
)

var kvc = elem.KV16Codec{}

func machine(t *testing.T, p int) *sim.Machine {
	t.Helper()
	model := vtime.Default()
	model.DiskJitter = 0
	m, err := sim.New(sim.Config{P: p, BlockBytes: 4096, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// runCuts sorts per-PE data locally and runs distributed Cuts; the
// result is the assembled matrix column[rankIdx][pe] for comparison
// against the central reference.
func runCuts(t *testing.T, p int, data [][]elem.KV16, ranks []int64) [][]int64 {
	t.Helper()
	m := machine(t, p)
	perPE := make([][]int64, p)
	err := m.Run(func(n *cluster.Node) error {
		local := slices.Clone(data[n.Rank])
		slices.SortStableFunc(local, func(a, b elem.KV16) int {
			switch {
			case a.Key < b.Key:
				return -1
			case a.Key > b.Key:
				return 1
			default:
				return 0
			}
		})
		perPE[n.Rank] = Cuts[elem.KV16](kvc, n, local, ranks)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cols := make([][]int64, len(ranks))
	for ri := range ranks {
		cols[ri] = make([]int64, p)
		for pe := 0; pe < p; pe++ {
			cols[ri][pe] = perPE[pe][ri]
		}
	}
	return cols
}

func sortedLocals(data [][]elem.KV16) [][]elem.KV16 {
	out := make([][]elem.KV16, len(data))
	for i, d := range data {
		out[i] = slices.Clone(d)
		slices.SortStableFunc(out[i], func(a, b elem.KV16) int {
			switch {
			case a.Key < b.Key:
				return -1
			case a.Key > b.Key:
				return 1
			default:
				return 0
			}
		})
	}
	return out
}

func TestCutsMatchCentralSelect(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8} {
		for _, kind := range []workload.Kind{workload.Uniform, workload.AllEqual, workload.NarrowRange} {
			data := workload.Generate(kind, p, 300+17*p, 99)
			locals := sortedLocals(data)
			total := int64(0)
			for _, l := range locals {
				total += int64(len(l))
			}
			var ranks []int64
			for i := 1; i < p; i++ {
				ranks = append(ranks, int64(i)*total/int64(p))
			}
			ranks = append(ranks, 0, total/3, total) // stress extremes too
			cols := runCuts(t, p, data, ranks)
			acc := mselect.SliceAccessor[elem.KV16](locals)
			for ri, rank := range ranks {
				want := mselect.Select[elem.KV16](kvc, acc, rank)
				if !slices.Equal(cols[ri], want) {
					t.Fatalf("p=%d kind=%s rank=%d: got %v want %v", p, kind, rank, cols[ri], want)
				}
			}
		}
	}
}

func TestCutsSumToRank(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	p := 5
	// Unequal local sizes.
	data := make([][]elem.KV16, p)
	var total int64
	for pe := range data {
		n := 100 + int(rng.UintN(900))
		data[pe] = make([]elem.KV16, n)
		for i := range data[pe] {
			data[pe][i] = elem.KV16{Key: rng.Uint64N(1000), Val: uint64(pe*1_000_000 + i)}
		}
		total += int64(n)
	}
	ranks := []int64{0, 1, total / 4, total / 2, total - 1, total}
	cols := runCuts(t, p, data, ranks)
	for ri, rank := range ranks {
		var sum int64
		for q := 0; q < p; q++ {
			sum += cols[ri][q]
		}
		if sum != rank {
			t.Fatalf("rank %d: cuts sum %d", rank, sum)
		}
	}
}

func TestCutsLargeUniform(t *testing.T) {
	// A larger instance exercising many pivot rounds plus the residual
	// gather-finish.
	p := 8
	data := workload.Generate(workload.Uniform, p, 20000, 123)
	locals := sortedLocals(data)
	total := int64(p * 20000)
	ranks := []int64{total / 2}
	cols := runCuts(t, p, data, ranks)
	want := mselect.Select[elem.KV16](kvc, mselect.SliceAccessor[elem.KV16](locals), total/2)
	if !slices.Equal(cols[0], want) {
		t.Fatalf("got %v want %v", cols[0], want)
	}
}

func TestCutsEmptyPE(t *testing.T) {
	// One PE contributes nothing; cuts must still be exact.
	p := 3
	data := [][]elem.KV16{
		{{Key: 1, Val: 0}, {Key: 5, Val: 1}},
		{},
		{{Key: 2, Val: 2}, {Key: 3, Val: 3}, {Key: 4, Val: 4}},
	}
	cols := runCuts(t, p, data, []int64{2, 5})
	locals := sortedLocals(data)
	acc := mselect.SliceAccessor[elem.KV16](locals)
	for ri, rank := range []int64{2, 5} {
		want := mselect.Select[elem.KV16](kvc, acc, rank)
		if !slices.Equal(cols[ri], want) {
			t.Fatalf("rank %d: got %v want %v", rank, cols[ri], want)
		}
	}
}

func TestCutsManyRanksStress(t *testing.T) {
	p := 4
	perPE := 2500
	data := workload.Generate(workload.WorstCaseLocal, p, perPE, 11)
	locals := sortedLocals(data)
	total := int64(p * perPE)
	var ranks []int64
	for i := 0; i <= 16; i++ {
		ranks = append(ranks, int64(i)*total/16)
	}
	cols := runCuts(t, p, data, ranks)
	acc := mselect.SliceAccessor[elem.KV16](locals)
	for ri, rank := range ranks {
		want := mselect.Select[elem.KV16](kvc, acc, rank)
		if !slices.Equal(cols[ri], want) {
			t.Fatalf("rank %d (%d/16): got %v want %v", rank, ri, cols[ri], want)
		}
	}
}

func TestCutsMoreRanksThanPEs(t *testing.T) {
	// Rank ownership wraps around (owner = j mod P).
	p := 3
	data := workload.Generate(workload.Uniform, p, 500, 21)
	locals := sortedLocals(data)
	total := int64(p * 500)
	var ranks []int64
	for i := 0; i <= 10; i++ {
		ranks = append(ranks, int64(i)*total/10)
	}
	cols := runCuts(t, p, data, ranks)
	acc := mselect.SliceAccessor[elem.KV16](locals)
	for ri, rank := range ranks {
		want := mselect.Select[elem.KV16](kvc, acc, rank)
		if !slices.Equal(cols[ri], want) {
			t.Fatalf("rank %d: got %v want %v", rank, cols[ri], want)
		}
	}
}
