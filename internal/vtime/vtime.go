// Package vtime provides the virtual-time machinery that substitutes
// for the paper's physical cluster when reporting running times.
//
// Correctness in this repository is real — data genuinely moves through
// block stores and between per-PE address spaces — but wall-clock time
// on 200 nodes with 780 disks cannot be measured on one host. Instead
// every PE owns a Clock, and its disk array and NIC are Devices with
// busy-until semantics: an asynchronous operation occupies the device
// for a duration derived from *measured* byte counts and the CostModel
// (calibrated to the paper's testbed), and the PE's clock only advances
// to the completion time when the PE actually waits. Overlapping I/O
// with computation and communication — the paper's §IV-E "Overlapping"
// — therefore falls out naturally: work done while a transfer is in
// flight hides the transfer, exactly as on real hardware.
//
// Per-phase accounting (wall, I/O busy time, network time, CPU time,
// byte counters) feeds the reproduction of Figures 2-6.
package vtime

import "math"

// CostModel holds the calibrated machine parameters. The defaults are
// taken from Section VI of the paper (200-node Xeon cluster).
type CostModel struct {
	// DiskBandwidth is the sustained bandwidth of one disk in bytes
	// per second. The paper measured 60-71 MiB/s, 67 MiB/s average.
	DiskBandwidth float64
	// DiskSeek is the per-block-access overhead in seconds (seek +
	// rotational delay + request handling).
	DiskSeek float64
	// DisksPerNode is D/P: the number of disks each PE stripes its
	// blocks over (4 in the paper, RAID-0).
	DisksPerNode int
	// DiskJitter is the relative half-width of the per-node uniform
	// bandwidth spread ("natural spreading of disk performance"); the
	// paper's 60-71 MiB/s range around 67 is about ±8%.
	DiskJitter float64

	// NetLatency is the per-message latency in seconds (InfiniBand
	// 4xDDR with MVAPICH: a few microseconds).
	NetLatency float64
	// NetBandwidth is the point-to-point peak bandwidth in bytes per
	// second ("more than 1300 MB/s").
	NetBandwidth float64
	// CongestionFloor is the fraction of peak bandwidth left when the
	// whole fabric is loaded (the paper measured as low as 400 MB/s,
	// i.e. ~0.31 of peak).
	CongestionFloor float64
	// CongestionNodes is the machine size at which the floor is
	// reached (200 in the paper).
	CongestionNodes int

	// Cores is the number of cores per PE sharing internal work (8).
	Cores int
	// SortRate is the per-core comparison throughput for internal
	// sorting, in element·log2(n) units per second.
	SortRate float64
	// MergeRate is the per-core throughput of multiway merging, in
	// element·log2(k) units per second.
	MergeRate float64
	// ScanRate is the per-core throughput of scanning/copying/codec
	// work in elements per second.
	ScanRate float64
}

// Default returns the cost model calibrated to the paper's testbed.
// Calibration notes: with 100 GiB per PE and 4×67 MiB/s disks, one
// read+write pass takes ~760 s, matching the I/O bars of Figure 3;
// SortRate is chosen so run formation is mildly compute-bound on 8
// cores (the grey gap in Figure 3) while the final merge stays
// I/O-bound.
func Default() CostModel {
	return CostModel{
		DiskBandwidth:   67 * 1024 * 1024,
		DiskSeek:        0.008,
		DisksPerNode:    4,
		DiskJitter:      0.08,
		NetLatency:      4e-6,
		NetBandwidth:    1300e6,
		CongestionFloor: 0.31,
		CongestionNodes: 200,
		Cores:           8,
		SortRate:        36e6,
		MergeRate:       48e6,
		ScanRate:        400e6,
	}
}

// EffNetBandwidth returns the effective per-link bandwidth with p
// active nodes: full at p <= 2, decaying logarithmically to
// CongestionFloor·NetBandwidth at CongestionNodes ("this value
// decreases when most nodes are used because the fabric gets
// overloaded").
func (m CostModel) EffNetBandwidth(p int) float64 {
	if p <= 2 {
		return m.NetBandwidth
	}
	n := m.CongestionNodes
	if n < 4 {
		n = 4
	}
	drop := (1 - m.CongestionFloor) * math.Log2(float64(p)/2) / math.Log2(float64(n)/2)
	f := 1 - drop
	if f < m.CongestionFloor {
		f = m.CongestionFloor
	}
	return m.NetBandwidth * f
}

// NodeDiskBandwidth returns the aggregate striped bandwidth of one
// PE's disk array including that node's deterministic jitter factor
// (rank-seeded), reproducing the per-node spread visible in Figure 3.
func (m CostModel) NodeDiskBandwidth(rank int) float64 {
	j := m.DiskJitter
	if j > 0 {
		// Cheap deterministic hash of the rank into [-1, 1).
		h := uint64(rank)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		u := float64(h>>11) / float64(1<<53) // [0,1)
		return m.DiskBandwidth * float64(m.DisksPerNode) * (1 + j*(2*u-1))
	}
	return m.DiskBandwidth * float64(m.DisksPerNode)
}

// DiskDur returns the device time to transfer one block of the given
// size on node rank's array.
func (m CostModel) DiskDur(rank int, bytes int) float64 {
	return m.DiskSeek + float64(bytes)/m.NodeDiskBandwidth(rank)
}

// SortCPU returns the CPU seconds to sort n elements internally on one
// PE (n·log2(n) compare units over Cores cores).
func (m CostModel) SortCPU(n int64) float64 {
	if n <= 1 {
		return 0
	}
	return float64(n) * math.Log2(float64(n)) / (m.SortRate * float64(m.Cores))
}

// MergeCPU returns the CPU seconds for a k-way merge of n elements.
func (m CostModel) MergeCPU(n int64, k int) float64 {
	if n <= 0 || k <= 1 {
		return m.ScanCPU(n)
	}
	return float64(n) * math.Log2(float64(k)) / (m.MergeRate * float64(m.Cores))
}

// ScanCPU returns the CPU seconds to scan/copy n elements.
func (m CostModel) ScanCPU(n int64) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) / (m.ScanRate * float64(m.Cores))
}

// Device models a resource with busy-until semantics (a PE's striped
// disk array, or one side of its NIC). It is owned by a single PE
// goroutine and must not be shared.
type Device struct {
	busyUntil float64
}

// Acquire schedules an operation of duration dur that cannot start
// before at, and returns its completion time.
func (d *Device) Acquire(at, dur float64) float64 {
	start := d.busyUntil
	if at > start {
		start = at
	}
	d.busyUntil = start + dur
	return d.busyUntil
}

// BusyUntil returns the time the device becomes idle.
func (d *Device) BusyUntil() float64 { return d.busyUntil }

// PhaseStats accumulates per-phase resource usage of one PE.
type PhaseStats struct {
	Wall    float64 // virtual seconds spent in the phase
	IOTime  float64 // disk busy seconds attributed to the phase
	NetTime float64 // network transfer seconds
	CPUTime float64 // internal computation seconds
	// BlockedTime is the share of Wall the PE spent stalled on another
	// resource — waiting in a collective or Recv for data that had not
	// arrived, or for a socket write to drain — as opposed to computing.
	// 1 - BlockedTime/Wall is the phase's overlap ratio: the fraction of
	// the phase during which communication and I/O hid behind compute.
	BlockedTime float64

	BytesRead     int64
	BytesWritten  int64
	BlocksRead    int64
	BlocksWritten int64
	BytesSent     int64
	BytesRecv     int64
	Messages      int64
}

// OverlapRatio returns the fraction of the phase's wall time not spent
// blocked on communication (0 when the phase has no wall time).
func (s *PhaseStats) OverlapRatio() float64 {
	if s.Wall <= 0 {
		return 0
	}
	r := 1 - s.BlockedTime/s.Wall
	if r < 0 {
		return 0
	}
	return r
}

// Add accumulates o into s.
func (s *PhaseStats) Add(o *PhaseStats) {
	s.Wall += o.Wall
	s.IOTime += o.IOTime
	s.NetTime += o.NetTime
	s.CPUTime += o.CPUTime
	s.BlockedTime += o.BlockedTime
	s.BytesRead += o.BytesRead
	s.BytesWritten += o.BytesWritten
	s.BlocksRead += o.BlocksRead
	s.BlocksWritten += o.BlocksWritten
	s.BytesSent += o.BytesSent
	s.BytesRecv += o.BytesRecv
	s.Messages += o.Messages
}

// Clock is one PE's virtual clock with per-phase accounting. It is
// owned by that PE's goroutine; collectives read entry times and
// advance it through AdvanceTo under the cluster's rendezvous, never
// concurrently with the owner.
type Clock struct {
	now        float64
	phase      string
	phaseStart float64
	order      []string
	stats      map[string]*PhaseStats
}

// NewClock returns a clock at time zero in phase "init".
func NewClock() *Clock {
	c := &Clock{stats: map[string]*PhaseStats{}}
	c.phase = "init"
	c.stats["init"] = &PhaseStats{}
	c.order = append(c.order, "init")
	return c
}

// Now returns the current virtual time.
func (c *Clock) Now() float64 { return c.now }

// SetPhase closes the running phase (accumulating its wall time) and
// switches accounting to name. Re-entering a phase accumulates.
func (c *Clock) SetPhase(name string) {
	cur := c.stats[c.phase]
	cur.Wall += c.now - c.phaseStart
	c.phaseStart = c.now
	if _, ok := c.stats[name]; !ok {
		c.stats[name] = &PhaseStats{}
		c.order = append(c.order, name)
	}
	c.phase = name
}

// Phase returns the current phase name.
func (c *Clock) Phase() string { return c.phase }

// Cur returns the stats of the current phase for direct counting.
func (c *Clock) Cur() *PhaseStats { return c.stats[c.phase] }

// AdvanceTo moves the clock forward to t (never backward).
func (c *Clock) AdvanceTo(t float64) {
	if t > c.now {
		c.now = t
	}
}

// AddCPU advances the clock by CPU work of the given duration.
func (c *Clock) AddCPU(sec float64) {
	c.now += sec
	c.Cur().CPUTime += sec
}

// Stats returns the closed per-phase statistics in first-use order.
// It finalises the wall time of the running phase.
func (c *Clock) Stats() (names []string, stats map[string]*PhaseStats) {
	cur := c.stats[c.phase]
	cur.Wall += c.now - c.phaseStart
	c.phaseStart = c.now
	return c.order, c.stats
}
