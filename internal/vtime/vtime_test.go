package vtime

import (
	"math"
	"testing"
)

func TestDeviceBusyUntil(t *testing.T) {
	var d Device
	// Back-to-back ops queue up.
	if got := d.Acquire(0, 2); got != 2 {
		t.Fatalf("first op completes at %v, want 2", got)
	}
	if got := d.Acquire(0, 3); got != 5 {
		t.Fatalf("queued op completes at %v, want 5", got)
	}
	// An op issued after the device went idle starts at its issue time.
	if got := d.Acquire(10, 1); got != 11 {
		t.Fatalf("idle-start op completes at %v, want 11", got)
	}
	if d.BusyUntil() != 11 {
		t.Fatalf("busy until %v", d.BusyUntil())
	}
}

func TestClockPhases(t *testing.T) {
	c := NewClock()
	c.SetPhase("a")
	c.AddCPU(2)
	c.SetPhase("b")
	c.AddCPU(3)
	c.SetPhase("a") // re-enter
	c.AddCPU(1)
	names, stats := c.Stats()
	if len(names) != 3 || names[0] != "init" || names[1] != "a" || names[2] != "b" {
		t.Fatalf("phase order %v", names)
	}
	if stats["a"].Wall != 3 || stats["a"].CPUTime != 3 {
		t.Fatalf("phase a: %+v", stats["a"])
	}
	if stats["b"].Wall != 3 {
		t.Fatalf("phase b: %+v", stats["b"])
	}
}

func TestClockAdvanceToNeverGoesBack(t *testing.T) {
	c := NewClock()
	c.AdvanceTo(5)
	c.AdvanceTo(3)
	if c.Now() != 5 {
		t.Fatalf("clock at %v, want 5", c.Now())
	}
}

func TestEffNetBandwidthDecaysToFloor(t *testing.T) {
	m := Default()
	full := m.EffNetBandwidth(1)
	if full != m.NetBandwidth {
		t.Fatalf("P=1 bandwidth %v", full)
	}
	if m.EffNetBandwidth(2) != m.NetBandwidth {
		t.Fatal("P=2 should be uncongested")
	}
	prev := full
	for _, p := range []int{4, 8, 16, 64, 200} {
		bw := m.EffNetBandwidth(p)
		if bw > prev {
			t.Fatalf("bandwidth should be non-increasing in P (P=%d)", p)
		}
		prev = bw
	}
	// The paper measured ~400 MB/s at full machine load.
	at200 := m.EffNetBandwidth(200)
	if math.Abs(at200-0.31*m.NetBandwidth) > 1e-3*m.NetBandwidth {
		t.Fatalf("bandwidth at P=200 is %v, want congestion floor", at200)
	}
	if m.EffNetBandwidth(4000) < m.CongestionFloor*m.NetBandwidth-1 {
		t.Fatal("bandwidth must not fall below the floor")
	}
}

func TestNodeDiskBandwidthJitterWithinRange(t *testing.T) {
	m := Default()
	base := m.DiskBandwidth * float64(m.DisksPerNode)
	seen := map[float64]bool{}
	for rank := 0; rank < 64; rank++ {
		bw := m.NodeDiskBandwidth(rank)
		if bw < base*(1-m.DiskJitter)-1 || bw > base*(1+m.DiskJitter)+1 {
			t.Fatalf("rank %d bandwidth %v outside jitter range", rank, bw)
		}
		seen[bw] = true
	}
	if len(seen) < 32 {
		t.Errorf("expected diverse per-node disk speeds, got %d distinct", len(seen))
	}
	// Deterministic per rank.
	if m.NodeDiskBandwidth(7) != m.NodeDiskBandwidth(7) {
		t.Error("jitter must be deterministic")
	}
}

func TestCPUCostsScale(t *testing.T) {
	m := Default()
	if m.SortCPU(0) != 0 || m.SortCPU(1) != 0 {
		t.Error("degenerate sorts cost nothing")
	}
	if !(m.SortCPU(1<<20) > m.SortCPU(1<<10)) {
		t.Error("sort cost must grow with n")
	}
	if !(m.MergeCPU(1000, 16) > m.MergeCPU(1000, 2)) {
		t.Error("merge cost must grow with fan-in")
	}
	if m.MergeCPU(1000, 1) != m.ScanCPU(1000) {
		t.Error("1-way merge is a scan")
	}
	// One pass of 100 GiB per PE over 4x67 MiB/s disks is ~380s each
	// way; sanity-check the calibration is in that regime.
	bytes := 100.0 * float64(int64(1)<<30)
	sec := bytes / (m.DiskBandwidth * float64(m.DisksPerNode))
	if sec < 300 || sec > 500 {
		t.Fatalf("one-way pass time %v s, calibration off", sec)
	}
}

func TestPhaseStatsAdd(t *testing.T) {
	a := PhaseStats{Wall: 1, IOTime: 2, BytesRead: 3, Messages: 4}
	b := PhaseStats{Wall: 10, IOTime: 20, BytesRead: 30, Messages: 40}
	a.Add(&b)
	if a.Wall != 11 || a.IOTime != 22 || a.BytesRead != 33 || a.Messages != 44 {
		t.Fatalf("add result %+v", a)
	}
}

func TestDiskDurIncludesSeek(t *testing.T) {
	m := Default()
	m.DiskJitter = 0
	small := m.DiskDur(0, 1)
	if small < m.DiskSeek {
		t.Fatal("block access must pay the seek cost")
	}
	big := m.DiskDur(0, 8<<20)
	if big <= small {
		t.Fatal("larger transfers take longer")
	}
	// Smaller blocks mean proportionally more seek overhead per byte:
	// the effect behind Figure 5's B=2 MiB vs B=8 MiB trade-off.
	perByteSmall := m.DiskDur(0, 2<<20) / float64(2<<20)
	perByteBig := m.DiskDur(0, 8<<20) / float64(8<<20)
	if perByteSmall <= perByteBig {
		t.Fatal("small blocks should cost more per byte")
	}
}
