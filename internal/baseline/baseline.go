// Package baseline implements the comparison algorithms the paper
// positions itself against:
//
//   - SampleSort: a NOW-Sort-style distribution sort (Arpaci-Dusseau
//     et al., SIGMOD 1997). One pass reads the input and routes every
//     record to its destination PE using splitters estimated from a
//     key sample; each PE then sorts what it received externally. Fast
//     for random inputs, but "it only works efficiently for random
//     inputs. In the worst case, it deteriorates to a sequential
//     algorithm since all the data ends up in a single processor"
//     (§II) — the skew experiments measure exactly that.
//
//   - ExternalMergeSortSeq: the classic single-node two-pass external
//     mergesort, the P = 1 reference point.
package baseline

import (
	"fmt"
	"io"
	"math/rand/v2"
	"sort"

	"demsort/internal/blockio"
	"demsort/internal/bufpool"
	"demsort/internal/cluster"
	"demsort/internal/cluster/sim"
	"demsort/internal/core"
	"demsort/internal/elem"
	"demsort/internal/pq"
	"demsort/internal/psort"
	"demsort/internal/vtime"
)

// Phase names of the sample sort.
const (
	PhaseSample     = "sampling"
	PhaseDistribute = "distribute"
	PhaseLocalSort  = "local external sort"
)

// Config parameterises the baselines (a subset of core.Config).
type Config struct {
	P           int
	BlockBytes  int
	MemElems    int64
	Oversample  int // sample keys per PE (default 32)
	Seed        uint64
	RealWorkers int
	KeepOutput  bool
	Model       vtime.CostModel
	// Source/Sink stream each rank's input and sorted output as encoded
	// element bytes, block-at-a-time — the same contract as
	// core.Config.Source/Sink, and the reason the NOW-Sort comparison
	// can run at out-of-core sizes: neither the tile nor the partition
	// is ever resident in RAM. With Source set the input argument of
	// SampleSort must be nil.
	Source func(rank int) (io.Reader, int64, error)
	Sink   func(rank int, encoded []byte) error
	// NewStore optionally overrides the per-PE block store (e.g.
	// file-backed); nil uses RAM-backed stores.
	NewStore func(rank int) (blockio.Store, error)
	// Machine optionally supplies a pre-built transport backend; nil
	// builds a cluster/sim machine (see core.Config.Machine).
	Machine cluster.Machine
}

// DefaultConfig mirrors core.DefaultConfig for the baselines.
func DefaultConfig(p int, memElems int64, blockBytes int) Config {
	return Config{
		P:           p,
		BlockBytes:  blockBytes,
		MemElems:    memElems,
		Oversample:  32,
		Seed:        1,
		RealWorkers: psort.DefaultWorkers(),
		Model:       vtime.Default(),
	}
}

// Result reports a baseline run.
type Result[T any] struct {
	P          int
	N          int64
	ElemSize   int
	PhaseNames []string
	PerPE      []map[string]*vtime.PhaseStats
	// Output[rank] is PE rank's sorted part (KeepOutput only). Unlike
	// CANONICALMERGESORT, part sizes are *not* exact — that is the
	// point of the comparison.
	Output [][]T
	// PartSizes[rank] counts the elements PE rank ended up with; the
	// imbalance ratio max/avg is the skew metric of the experiments.
	PartSizes []int64
}

// MaxWall, TotalWall mirror core.Result.
func (r *Result[T]) MaxWall(phase string) float64 {
	var w float64
	for _, st := range r.PerPE {
		if s, ok := st[phase]; ok && s.Wall > w {
			w = s.Wall
		}
	}
	return w
}

// TotalWall returns the modelled running time.
func (r *Result[T]) TotalWall() float64 {
	var t float64
	for _, ph := range r.PhaseNames {
		t += r.MaxWall(ph)
	}
	return t
}

// Imbalance returns max partition size over the ideal N/P — 1.0 means
// perfectly balanced, P means everything on one PE.
func (r *Result[T]) Imbalance() float64 {
	var maxPart int64
	for _, s := range r.PartSizes {
		if s > maxPart {
			maxPart = s
		}
	}
	if r.N == 0 {
		return 1
	}
	return float64(maxPart) * float64(r.P) / float64(r.N)
}

// SampleSort runs the NOW-Sort-style distribution sort on the
// simulated cluster.
func SampleSort[T any](c elem.Codec[T], cfg Config, input [][]T) (*Result[T], error) {
	if cfg.P < 1 {
		return nil, fmt.Errorf("baseline: bad machine size")
	}
	if cfg.Source == nil && len(input) != cfg.P {
		return nil, fmt.Errorf("baseline: input has %d PE slices, machine has %d PEs", len(input), cfg.P)
	}
	if cfg.Source != nil && input != nil {
		return nil, fmt.Errorf("baseline: Source and input slices are mutually exclusive")
	}
	if cfg.Model == (vtime.CostModel{}) {
		cfg.Model = vtime.Default()
	}
	if cfg.Oversample <= 0 {
		cfg.Oversample = 32
	}
	if cfg.RealWorkers <= 0 {
		cfg.RealWorkers = 1
	}
	sz := c.Size()
	bElem := cfg.BlockBytes / sz
	if bElem < 1 {
		return nil, fmt.Errorf("baseline: block smaller than an element")
	}

	sources, sourceN, err := core.OpenSources(cfg.Source, cfg.Machine, cfg.P)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}

	m := cfg.Machine
	if m == nil {
		sm, err := sim.New(sim.Config{
			P: cfg.P, BlockBytes: cfg.BlockBytes, MemElems: cfg.MemElems, Model: cfg.Model,
			NewStore: cfg.NewStore,
		})
		if err != nil {
			return nil, err
		}
		defer sm.Close()
		m = sm
	} else if m.P() != cfg.P {
		return nil, fmt.Errorf("baseline: machine has %d PEs, config says %d", m.P(), cfg.P)
	}
	if len(m.Nodes()) != cfg.P {
		// PartSizes/N aggregation (the skew metrics) is in-process.
		return nil, fmt.Errorf("baseline: machine hosts %d of %d PEs; the baselines require all PEs in-process (use the sim backend)", len(m.Nodes()), cfg.P)
	}

	res := &Result[T]{
		P:          cfg.P,
		ElemSize:   sz,
		PhaseNames: []string{PhaseSample, PhaseDistribute, PhaseLocalSort},
		PerPE:      make([]map[string]*vtime.PhaseStats, cfg.P),
		PartSizes:  make([]int64, cfg.P),
	}
	if cfg.KeepOutput {
		res.Output = make([][]T, cfg.P)
	}

	err = m.Run(func(n *cluster.Node) error {
		// Load input to disk (unmeasured), block-aligned. A Source
		// streams the encoded tile straight onto the volume through
		// FillFrom's one staging chunk; a slice input is encoded
		// block-at-a-time as before.
		n.SetPhase("load")
		var blocks []blockio.BlockID
		var blockLens []int
		var myN int64
		if cfg.Source != nil {
			myN = sourceN[n.Rank]
			spans, err := n.Vol.FillFrom(sources[n.Rank], myN*int64(sz), cfg.BlockBytes)
			if err != nil {
				return fmt.Errorf("baseline: input source, rank %d: %w", n.Rank, err)
			}
			for _, sp := range spans {
				blocks = append(blocks, sp.ID)
				blockLens = append(blockLens, sp.Bytes/sz)
			}
		} else {
			my := input[n.Rank]
			myN = int64(len(my))
			for off := 0; off < len(my); off += bElem {
				hi := off + bElem
				if hi > len(my) {
					hi = len(my)
				}
				id := n.Vol.Alloc()
				n.Vol.WriteAsync(id, elem.EncodeSlice(c, my[off:hi]))
				blocks = append(blocks, id)
				blockLens = append(blockLens, hi-off)
			}
		}
		n.Vol.Drain()
		n.Barrier()

		// Phase 1: sample keys and agree on splitters. NOW-Sort reads
		// a random subset of keys — cheap, but only approximate.
		n.SetPhase(PhaseSample)
		rng := rand.New(rand.NewPCG(cfg.Seed, uint64(n.Rank)+0xBA5E))
		sample := make([]T, 0, cfg.Oversample)
		raw := make([]byte, cfg.BlockBytes)
		for i := 0; i < cfg.Oversample && myN > 0; i++ {
			b := int(rng.Uint64N(uint64(len(blocks))))
			n.Vol.ReadWait(blocks[b], raw[:blockLens[b]*sz])
			j := int(rng.Uint64N(uint64(blockLens[b])))
			sample = append(sample, c.Decode(raw[j*sz:]))
		}
		all := n.AllGather(elem.EncodeSlice(c, sample))
		var pool []T
		for _, buf := range all {
			pool = elem.AppendDecode(c, pool, buf, len(buf)/sz)
		}
		psort.Sort(c, pool, 1)
		splitters := make([]T, 0, cfg.P-1)
		for i := 1; i < cfg.P; i++ {
			if len(pool) > 0 {
				splitters = append(splitters, pool[len(pool)*i/cfg.P])
			}
		}
		n.AddCPU(cfg.Model.SortCPU(int64(len(pool))))

		// Phase 2: stream the input once, routing each element by
		// binary search over the splitters; memory-sized flushes.
		n.SetPhase(PhaseDistribute)
		dest := func(v T) int {
			if len(splitters) == 0 {
				return 0
			}
			return sort.Search(len(splitters), func(i int) bool {
				return c.Less(v, splitters[i])
			})
		}
		// Received data goes to disk in sorted memory-sized runs.
		var recvRuns [][]blockio.BlockID
		var recvRunLens [][]int
		var recvTotal int64
		pendingRecv := make([]T, 0)
		flushRecv := func() {
			if len(pendingRecv) == 0 {
				return
			}
			psort.Sort(c, pendingRecv, cfg.RealWorkers)
			n.AddCPU(cfg.Model.SortCPU(int64(len(pendingRecv))))
			var ids []blockio.BlockID
			var lens []int
			for off := 0; off < len(pendingRecv); off += bElem {
				hi := off + bElem
				if hi > len(pendingRecv) {
					hi = len(pendingRecv)
				}
				id := n.Vol.Alloc()
				n.Vol.WriteAsync(id, elem.EncodeSlice(c, pendingRecv[off:hi]))
				ids = append(ids, id)
				lens = append(lens, hi-off)
			}
			recvRuns = append(recvRuns, ids)
			recvRunLens = append(recvRunLens, lens)
			pendingRecv = pendingRecv[:0]
		}

		chunkBlocks := 1
		if cfg.MemElems > 0 {
			if cb := int(cfg.MemElems / 4 / int64(bElem)); cb > chunkBlocks {
				chunkBlocks = cb
			}
		} else {
			chunkBlocks = 64
		}
		runCap := int64(chunkBlocks * bElem)
		rounds := (len(blocks) + chunkBlocks - 1) / chunkBlocks
		globalRounds := int(n.AllReduceInt64(int64(rounds), "max"))
		for round := 0; round < globalRounds; round++ {
			send := make([][]byte, cfg.P)
			lo := round * chunkBlocks
			if lo < len(blocks) {
				hi := lo + chunkBlocks
				if hi > len(blocks) {
					hi = len(blocks)
				}
				for b := lo; b < hi; b++ {
					n.Vol.ReadWait(blocks[b], raw[:blockLens[b]*sz])
					for j := 0; j < blockLens[b]; j++ {
						v := c.Decode(raw[j*sz:])
						q := dest(v)
						send[q] = elem.AppendEncode(c, send[q], []T{v})
					}
					n.Vol.Free(blocks[b])
					n.AddCPU(cfg.Model.ScanCPU(int64(blockLens[b])) * 2)
				}
			}
			recv := n.AllToAllv(send)
			for q := 0; q < cfg.P; q++ {
				cnt := len(recv[q]) / sz
				pendingRecv = elem.AppendDecode(c, pendingRecv, recv[q], cnt)
				recvTotal += int64(cnt)
				if int64(len(pendingRecv)) >= runCap {
					flushRecv()
				}
			}
			cluster.RecycleRecv(recv)
		}
		flushRecv()
		n.Vol.Drain()
		n.Barrier()

		// Phase 3: local external merge of the received runs.
		n.SetPhase(PhaseLocalSort)
		out, err := mergeRuns(c, n, cfg, recvRuns, recvRunLens, bElem)
		if err != nil {
			return err
		}
		n.Vol.Drain()
		n.Barrier()

		n.SetPhase("collect")
		res.PartSizes[n.Rank] = recvTotal
		if cfg.KeepOutput {
			res.Output[n.Rank] = out
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, node := range m.Nodes() {
		_, stats := node.PhaseStats()
		res.PerPE[node.Rank] = stats
		res.N += res.PartSizes[node.Rank]
	}
	return res, nil
}

// mergeRuns k-way merges sorted on-disk runs, reading and writing each
// element once, and returns the decoded output when KeepOutput. Like
// the core final merge it runs block-at-a-time on the key-inline
// tournament tree: normalized uint64 keys in the replay loop, the
// comparator only on equal prefix keys.
func mergeRuns[T any](c elem.Codec[T], n *cluster.Node, cfg Config, runs [][]blockio.BlockID, runLens [][]int, bElem int) ([]T, error) {
	sz := c.Size()
	key, exact := elem.KeyFn(c)
	type stream struct {
		ids  []blockio.BlockID
		lens []int
		cur  []T
		pos  int
		next int
	}
	var out []T
	fill := func(s *stream) bool {
		if s.next >= len(s.ids) {
			return false
		}
		raw := bufpool.Get(s.lens[s.next] * sz)
		n.Vol.ReadWait(s.ids[s.next], raw)
		s.cur = elem.AppendDecode(c, s.cur[:0], raw, s.lens[s.next])
		bufpool.Put(raw)
		n.Vol.Free(s.ids[s.next])
		s.pos = 0
		s.next++
		return true
	}
	if len(runs) == 0 {
		return out, nil
	}
	streams := make([]*stream, len(runs))
	keys := make([]uint64, len(runs))
	live := make([]bool, len(runs))
	for i := range runs {
		streams[i] = &stream{ids: runs[i], lens: runLens[i]}
		if fill(streams[i]) {
			keys[i] = key(streams[i].cur[0])
			live[i] = true
		}
	}
	var tie func(a, b int) bool
	if !exact {
		tie = func(a, b int) bool {
			sa, sb := streams[a], streams[b]
			return c.Less(sa.cur[sa.pos], sb.cur[sb.pos])
		}
	}
	lt := pq.NewKeyTree(len(runs), keys, live, tie)
	outBuf := make([]T, 0, bElem)
	flush := func() error {
		if len(outBuf) == 0 {
			return nil
		}
		id := n.Vol.Alloc()
		enc := bufpool.Get(len(outBuf) * sz)
		elem.EncodeInto(c, enc, outBuf)
		// The Sink sees each output block exactly once, in order, before
		// the buffer is handed to the async write (the slice is only
		// valid for the duration of the call — same contract as core).
		var sinkErr error
		if cfg.Sink != nil {
			sinkErr = cfg.Sink(n.Rank, enc)
		}
		n.Vol.WriteAsync(id, enc)
		bufpool.Put(enc)
		if cfg.KeepOutput {
			out = append(out, outBuf...)
		}
		outBuf = outBuf[:0]
		return sinkErr
	}
	for !lt.Empty() {
		i := lt.Win()
		s := streams[i]
		outBuf = append(outBuf, s.cur[s.pos])
		s.pos++
		if len(outBuf) == bElem {
			if err := flush(); err != nil {
				return nil, fmt.Errorf("baseline: output sink, rank %d: %w", n.Rank, err)
			}
			n.AddCPU(cfg.Model.MergeCPU(int64(bElem), len(runs)) + cfg.Model.ScanCPU(int64(bElem)))
		}
		if s.pos < len(s.cur) {
			lt.Replace(key(s.cur[s.pos]))
		} else if fill(s) {
			lt.Replace(key(s.cur[0]))
		} else {
			lt.Retire()
		}
	}
	if err := flush(); err != nil {
		return nil, fmt.Errorf("baseline: output sink, rank %d: %w", n.Rank, err)
	}
	return out, nil
}

// ExternalMergeSortSeq sorts one PE's data with the classic two-pass
// external mergesort (run formation + k-way merge) and returns the
// modelled stats; it reuses the cluster machinery with P = 1.
func ExternalMergeSortSeq[T any](c elem.Codec[T], cfg Config, input []T) (*Result[T], error) {
	cfg.P = 1
	return SampleSort(c, cfg, [][]T{input}) // with P=1 the distribute pass degenerates to run formation
}
