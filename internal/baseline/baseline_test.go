package baseline

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"demsort/internal/elem"
	"demsort/internal/vtime"
	"demsort/internal/workload"
)

var kvc = elem.KV16Codec{}

func testConfig(p int) Config {
	cfg := DefaultConfig(p, 1<<13, 64*16)
	cfg.Model = vtime.Default()
	cfg.KeepOutput = true
	return cfg
}

func checkSorted(t *testing.T, res *Result[elem.KV16], input [][]elem.KV16) {
	t.Helper()
	var all []elem.KV16
	for _, part := range input {
		all = append(all, part...)
	}
	var flat []elem.KV16
	for _, part := range res.Output {
		if !elem.IsSorted[elem.KV16](kvc, part) {
			t.Fatal("a PE's output is not sorted")
		}
		flat = append(flat, part...)
	}
	if !elem.IsSorted[elem.KV16](kvc, flat) {
		t.Fatal("concatenated output not globally sorted")
	}
	if workload.Checksum(all) != workload.Checksum(flat) {
		t.Fatal("output is not a permutation of the input")
	}
}

func TestSampleSortUniform(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		cfg := testConfig(p)
		input := workload.Generate(workload.Uniform, p, 4000, 3)
		res, err := SampleSort[elem.KV16](kvc, cfg, input)
		if err != nil {
			t.Fatal(err)
		}
		checkSorted(t, res, input)
		if p > 1 && res.Imbalance() > 2.5 {
			t.Errorf("p=%d: imbalance %.2f on uniform input", p, res.Imbalance())
		}
	}
}

func TestSampleSortSkewCollapses(t *testing.T) {
	// The paper's §II critique: "In the worst case, it deteriorates to
	// a sequential algorithm since all the data ends up in a single
	// processor." With 90% of elements sharing one key, every hot
	// element routes to the same PE — splitters cannot cut inside a
	// key class.
	cfg := testConfig(8)
	input := workload.Generate(workload.HotKey, 8, 3000, 5)
	res, err := SampleSort[elem.KV16](kvc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, res, input)
	if res.Imbalance() < 4.0 {
		t.Errorf("expected severe imbalance on hot-key input, got %.2f", res.Imbalance())
	}
}

func TestSampleSortAllEqual(t *testing.T) {
	// Degenerate ties: correctness must hold even though balance
	// cannot (all keys equal → one destination).
	cfg := testConfig(4)
	input := workload.Generate(workload.AllEqual, 4, 1000, 7)
	res, err := SampleSort[elem.KV16](kvc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, res, input)
}

func TestSampleSortEmpty(t *testing.T) {
	cfg := testConfig(3)
	res, err := SampleSort[elem.KV16](kvc, cfg, [][]elem.KV16{{}, {}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 0 {
		t.Fatalf("N=%d", res.N)
	}
}

func TestExternalMergeSortSeq(t *testing.T) {
	cfg := testConfig(1)
	input := workload.Generate(workload.Uniform, 1, 9000, 9)
	res, err := ExternalMergeSortSeq[elem.KV16](kvc, cfg, input[0])
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, res, input)
}

func TestSampleSortImbalanceInflatesTime(t *testing.T) {
	// The overloaded PE dominates the modelled running time: hot-key
	// input must be substantially slower than uniform input of the
	// same size (the collapse the paper's §II describes).
	p := 8
	uni := workload.Generate(workload.Uniform, p, 3000, 11)
	hot := workload.Generate(workload.HotKey, p, 3000, 11)
	ures, err := SampleSort[elem.KV16](kvc, testConfig(p), uni)
	if err != nil {
		t.Fatal(err)
	}
	hres, err := SampleSort[elem.KV16](kvc, testConfig(p), hot)
	if err != nil {
		t.Fatal(err)
	}
	if !(hres.TotalWall() > 1.5*ures.TotalWall()) {
		t.Errorf("hot-key %.4fs vs uniform %.4fs — expected skew collapse", hres.TotalWall(), ures.TotalWall())
	}
}

// TestSampleSortSourceSinkMatchesSlices: the streaming plane must be a
// pure transport change — a Source/Sink run produces exactly the bytes
// of the slice-fed run, rank for rank, and reports the same part sizes.
func TestSampleSortSourceSinkMatchesSlices(t *testing.T) {
	const p = 4
	input := workload.Generate(workload.Uniform, p, 4000, 9)

	ref, err := SampleSort[elem.KV16](kvc, testConfig(p), input)
	if err != nil {
		t.Fatal(err)
	}

	cfg := testConfig(p)
	cfg.KeepOutput = false
	cfg.Source = func(rank int) (io.Reader, int64, error) {
		return bytes.NewReader(elem.EncodeSlice(kvc, input[rank])), int64(len(input[rank])), nil
	}
	got := make([][]byte, p)
	var mu sync.Mutex
	cfg.Sink = func(rank int, b []byte) error {
		mu.Lock()
		got[rank] = append(got[rank], b...)
		mu.Unlock()
		return nil
	}
	res, err := SampleSort[elem.KV16](kvc, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < p; rank++ {
		if !bytes.Equal(got[rank], elem.EncodeSlice(kvc, ref.Output[rank])) {
			t.Fatalf("rank %d: streamed output differs from the slice-fed run", rank)
		}
		if res.PartSizes[rank] != ref.PartSizes[rank] {
			t.Fatalf("rank %d: part size %d vs %d", rank, res.PartSizes[rank], ref.PartSizes[rank])
		}
	}

	// The contract is exclusive: Source plus slice input is a config
	// error, not a silent preference.
	bad := testConfig(p)
	bad.Source = cfg.Source
	if _, err := SampleSort[elem.KV16](kvc, bad, input); err == nil {
		t.Fatal("SampleSort accepted both a Source and slice input")
	}
}
