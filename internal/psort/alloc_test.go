//go:build !race

// The allocation pin for the MSD path's headline claim: no n-sized
// element gather buffer. Excluded under -race because the race
// runtime's sync.Pool instrumentation drops pooled buffers at random,
// which makes allocation deltas meaningless there.

package psort

import (
	"math/rand/v2"
	"runtime"
	"testing"

	"demsort/internal/elem"
)

// minAllocBytes returns the smallest single-call TotalAlloc delta
// across reps — the steady-state allocation cost of f once pools are
// warm, immune to a stray pool miss or GC-emptied class.
func minAllocBytes(reps int, f func()) uint64 {
	var m runtime.MemStats
	best := ^uint64(0)
	for i := 0; i < reps; i++ {
		runtime.ReadMemStats(&m)
		before := m.TotalAlloc
		f()
		runtime.ReadMemStats(&m)
		if d := m.TotalAlloc - before; d < best {
			best = d
		}
	}
	return best
}

// TestMSDEliminatesGatherBuffer: with pools warm, a sequential LSD
// sort of n KV16 elements still allocates the n-element gather buffer
// (≈ 16n bytes — []T may hold pointers, so it can never come from the
// byte pool), while the in-place MSD path allocates no element-sized
// scratch at all. This is the allocation half of the halved-scratch
// claim; the membudget half lives in core's TestRunFormScratchCharged.
func TestMSDEliminatesGatherBuffer(t *testing.T) {
	const n = 1 << 16
	rng := rand.New(rand.NewPCG(51, 52))
	base := randKV(rng, n, 1<<62)
	buf := make([]elem.KV16, n)

	// Warm the pair/histogram pool classes.
	copy(buf, base)
	SortPath[elem.KV16](kvc, buf, 1, PathLSD)
	copy(buf, base)
	SortPath[elem.KV16](kvc, buf, 1, PathMSD)

	lsd := minAllocBytes(6, func() {
		copy(buf, base)
		SortPath[elem.KV16](kvc, buf, 1, PathLSD)
	})
	msd := minAllocBytes(6, func() {
		copy(buf, base)
		SortPath[elem.KV16](kvc, buf, 1, PathMSD)
	})
	t.Logf("steady-state bytes/sort: LSD %d, MSD %d", lsd, msd)

	if lsd < n*16 {
		t.Fatalf("LSD path allocated %d bytes, expected at least the %d-byte gather buffer", lsd, n*16)
	}
	if msd >= lsd/4 {
		t.Fatalf("MSD path allocated %d bytes — the gather buffer was not eliminated (LSD: %d)", msd, lsd)
	}
}
