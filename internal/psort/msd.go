package psort

import (
	"slices"
	"sync"

	"demsort/internal/elem"
)

// The MSD engine: one pass builds pairs + per-worker histograms (same
// as LSD), the column sums give a global uniform-digit mask and the
// bucket boundaries of the most significant non-uniform digit, an
// American-flag cycle scatter partitions the pairs in place on that
// digit, and the resulting buckets are sorted independently — in
// parallel through a work queue — by recursive in-place partitioning.
// Because the pairs carry (key, original index), a *distinct* total
// order, fully sorting them by (key, idx) yields exactly the stable
// sort permutation even though the partitioning itself is unstable.
// The elements are then permuted once, in place, by cycle following —
// the n-sized element gather buffer of the LSD path does not exist on
// this path, which is the point: sort scratch is n pairs + histograms
// instead of 2n pairs + n elements.

// flagPartition partitions a in place by byte digit d using the
// American-flag cycle scatter. h holds a's digit-d counts on entry and
// is consumed (turned into cursors). Bucket j ends up occupying
// positions [Σ_{i<j} h_in[i], Σ_{i<=j} h_in[i]).
func flagPartition(a []keyIdx, d int, h *[256]int32) {
	shift := uint(d * 8)
	var cur, end [256]int32
	sum := int32(0)
	for j := 0; j < 256; j++ {
		cur[j] = sum
		sum += h[j]
		end[j] = sum
	}
	for j := 0; j < 256; j++ {
		for cur[j] < end[j] {
			p := a[cur[j]]
			dig := byte(p.key >> shift)
			for dig != byte(j) {
				q := a[cur[dig]]
				a[cur[dig]] = p
				cur[dig]++
				p = q
				dig = byte(p.key >> shift)
			}
			a[cur[j]] = p
			cur[j]++
		}
	}
}

// nextDigit returns the next lower digit position on which the keys
// disagree globally, or -1 when none remains. Digits uniform across
// the whole input are uniform inside every bucket, so the global mask
// computed once in pass 1 is valid at every recursion level.
func nextDigit(d int, uniform *[8]bool) int {
	for d--; d >= 0; d-- {
		if !uniform[d] {
			return d
		}
	}
	return -1
}

// insertionPairs sorts a small bucket by (key, idx) with an insertion
// sort — the recursion's base case. Comparing the full key (not just
// the remaining digits) is correct and lets the recursion cut off
// without descending further.
func insertionPairs(a []keyIdx) {
	for i := 1; i < len(a); i++ {
		p := a[i]
		j := i - 1
		for j >= 0 && (a[j].key > p.key || (a[j].key == p.key && a[j].idx > p.idx)) {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = p
	}
}

// sortPairsByIdx is the all-digits-exhausted base case: every key in a
// is equal, so ordering by original index alone restores stability.
func sortPairsByIdx(a []keyIdx) {
	slices.SortFunc(a, func(x, y keyIdx) int { return int(x.idx) - int(y.idx) })
}

// msdTask is one bucket awaiting recursive sorting: pairs [lo, hi) of
// the shared array, next digit position d.
type msdTask struct {
	lo, hi, d int
}

// msdBucket sorts pairs[lo:hi] by (key, idx) by recursive American-flag
// partitioning on digit d. spawn, when non-nil, offers a large child
// bucket to the work queue; a false return (queue full) recurses
// inline instead, so the queue can never deadlock. spawnMin gates what
// is worth handing off.
func msdBucket(pairs []keyIdx, lo, hi, d int, uniform *[8]bool, spawn func(msdTask) bool, spawnMin int) {
	for {
		n := hi - lo
		if n < 2 {
			return
		}
		if n <= msdInsertion {
			insertionPairs(pairs[lo:hi])
			return
		}
		if d < 0 {
			sortPairsByIdx(pairs[lo:hi])
			return
		}
		shift := uint(d * 8)
		var h [256]int32
		for _, p := range pairs[lo:hi] {
			h[byte(p.key>>shift)]++
		}
		if h[byte(pairs[lo].key>>shift)] == int32(n) {
			// Locally uniform digit: descend without a pass.
			d = nextDigit(d, uniform)
			continue
		}
		flagPartition(pairs[lo:hi], d, &h)
		nd := nextDigit(d, uniform)
		start := lo
		for j := 0; j < 256; j++ {
			c := int(h[j])
			if c > 1 {
				if spawn == nil || c < spawnMin || !spawn(msdTask{lo: start, hi: start + c, d: nd}) {
					msdBucket(pairs, start, start+c, nd, uniform, spawn, spawnMin)
				}
			}
			start += c
		}
		return
	}
}

// msdSortBuckets drains the top-level buckets, in parallel when
// workers > 1. The queue is a buffered channel counted by an
// outstanding-task WaitGroup; producers never block (spawn falls back
// to inline recursion when the buffer is full) so completion is
// guaranteed, and the worker goroutines are joined before return. The
// sorted result is independent of scheduling: buckets are disjoint and
// each is sorted into the unique (key, idx) order.
func msdSortBuckets(pairs []keyIdx, tasks []msdTask, uniform *[8]bool, workers int) {
	spawnMin := len(pairs) / (workers * 8)
	if spawnMin <= msdInsertion {
		spawnMin = msdInsertion + 1
	}
	if workers <= 1 {
		for _, t := range tasks {
			msdBucket(pairs, t.lo, t.hi, t.d, uniform, nil, spawnMin)
		}
		return
	}
	queue := make(chan msdTask, 1024)
	var pending sync.WaitGroup
	spawn := func(t msdTask) bool {
		pending.Add(1)
		select {
		case queue <- t:
			return true
		default:
			pending.Done()
			return false
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range queue {
				msdBucket(pairs, t.lo, t.hi, t.d, uniform, spawn, spawnMin)
				pending.Done()
			}
		}()
	}
	for _, t := range tasks {
		if !spawn(t) {
			// ≤ 256 top-level buckets against a 1024-deep queue: the
			// fallback is unreachable, but keep it total.
			msdBucket(pairs, t.lo, t.hi, t.d, uniform, nil, spawnMin)
		}
	}
	pending.Wait()
	close(queue)
	wg.Wait()
}

// cyclePermute applies the permutation recorded in a (vs_sorted[i] =
// vs[a[i].idx]) to vs in place by following cycles, consuming the idx
// fields as visited markers. One element of temporary space, no
// n-sized buffer. Sequential: cycles span the whole array, so this
// pass does not decompose; it is one linear sweep with random reads.
func cyclePermute[T any](vs []T, a []keyIdx) {
	for i := range a {
		src := a[i].idx
		if src < 0 || int(src) == i {
			a[i].idx = -1
			continue
		}
		tmp := vs[i]
		j := i
		for int(src) != i {
			vs[j] = vs[src]
			a[j].idx = -1
			j = int(src)
			src = a[j].idx
		}
		vs[j] = tmp
		a[j].idx = -1
	}
}

// radixMSD sorts vs by the stable sort order with the in-place
// American-flag MSD engine, using up to `workers` goroutines for the
// bucket recursion. Scratch is one pooled pair buffer plus pooled
// histograms — no element-sized buffer exists on this path.
func radixMSD[T any](kc elem.KeyedCodec[T], vs []T, workers int) {
	n := len(vs)
	checkLen(n)
	var ar arena
	defer ar.release()
	a := ar.pairs(n)
	hists := ar.hists(workers)
	bounds := workerBounds(n, workers)

	runParallel(workers, func(w int) {
		buildPairs(kc, vs, a, bounds[w], bounds[w+1], &hists[w])
	})

	// Global digit column sums → uniform mask + top-digit counts.
	col, uniform := colSums(hists, n)
	dTop := 7
	for dTop >= 0 && uniform[dTop] {
		dTop--
	}

	if dTop >= 0 {
		flagPartition(a, dTop, &col[dTop])
		nd := nextDigit(dTop, &uniform)
		tasks := make([]msdTask, 0, 256)
		start := 0
		var sum int32
		for j := 0; j < 256; j++ {
			// col[dTop] was consumed by flagPartition; recompute bucket
			// sizes from the per-worker counts.
			sum = 0
			for w := range hists {
				sum += hists[w][dTop][j]
			}
			if c := int(sum); c > 1 {
				tasks = append(tasks, msdTask{lo: start, hi: start + c, d: nd})
				start += c
			} else {
				start += c
			}
		}
		msdSortBuckets(a, tasks, &uniform, workers)
		cyclePermute(vs, a)
	}
	// dTop < 0: all 8 digits uniform — every key equal, pairs already
	// in original order, the permutation is the identity. Fall through
	// to the tie fix-up, which then handles the whole slice as one run.

	if !kc.KeyExact() {
		fixupTies(kc, vs, a, bounds, workers)
	}
}
