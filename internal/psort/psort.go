// Package psort is the shared-memory parallel sort used *inside* one
// PE, standing in for the MCSTL/libstdc++ parallel mode the paper uses
// ("To sort and to merge data internally we used the parallel mode of
// the STL implementation of GCC 4.3.1"), per §IV-E "Hierarchical
// Parallelism".
//
// Key-normalized codecs (elem.KeyedCodec) are sorted by a parallel
// radix engine over (key, original index) pairs with two
// interchangeable paths — a shared-histogram LSD scatter (lsd.go) and
// an in-place American-flag MSD (msd.go) that needs roughly half the
// scratch; see Path. Closure-only codecs keep the paper-shaped
// pipeline one level down the hierarchy: sort core-local chunks, split
// them exactly with multiway selection, merge the parts in parallel.
//
// Every path, for every worker count, produces the result of a stable
// sort under the codec order, bit for bit: the radix engines sort the
// pair array into the unique (key, index) order and permute the
// elements once; the closure pipeline uses stable chunk sorts,
// (chunk, position) tie-breaks in selection and chunk-index
// tie-breaks in the merges.
package psort

import (
	"runtime"
	"slices"
	"sync"

	"demsort/internal/elem"
	"demsort/internal/mselect"
	"demsort/internal/xmerge"
)

// DefaultWorkers returns the default in-node sorting parallelism:
// GOMAXPROCS clamped to 8 (the paper's nodes have 8 cores, and every
// simulated PE runs its own sort — an unclamped fan-out of P×cores
// goroutines oversubscribes the host without helping).
func DefaultWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Sort sorts vs in place using up to workers goroutines, letting the
// dispatcher pick the radix path (PathAuto). See SortPath.
func Sort[T any](c elem.Codec[T], vs []T, workers int) {
	SortPath(c, vs, workers, PathAuto)
}

// SortPath sorts vs in place using up to workers goroutines and the
// requested radix path for keyed codecs (PathAuto resolves to the LSD
// scatter; callers that must respect a memory budget pick explicitly —
// see ScratchBytes). Closure-only codecs ignore path and use the
// stable chunk-sort/select/merge pipeline. The result equals a stable
// sort under the codec order for every worker count and every path.
func SortPath[T any](c elem.Codec[T], vs []T, workers int, path Path) {
	n := len(vs)
	if n < 2 {
		return
	}
	kc, keyed := elem.Codec[T](c).(elem.KeyedCodec[T])
	if !keyed {
		sortClosure(c, vs, workers)
		return
	}
	if n < radixMinLen {
		slices.SortStableFunc(vs, cmp[T](c))
		return
	}
	w := radixWorkers(n, workers)
	if path == PathMSD {
		radixMSD(kc, vs, w)
	} else {
		radixLSD(kc, vs, w)
	}
}

// sortClosure is the comparator pipeline for codecs without normalized
// keys: stable-sort `workers` chunks concurrently, split them exactly
// with multiway selection, merge the parts in parallel. One join per
// sort (not per digit), so the old small-n guard still holds.
func sortClosure[T any](c elem.Codec[T], vs []T, workers int) {
	n := len(vs)
	if workers <= 1 || n < 4*workers || n < closureParMin {
		slices.SortStableFunc(vs, cmp(c))
		return
	}
	out := make([]T, n)
	// 1. Sort `workers` chunks concurrently.
	chunks := make([][]T, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		chunks[w] = vs[lo:hi]
		wg.Add(1)
		go func(part []T) {
			defer wg.Done()
			slices.SortStableFunc(part, cmp(c))
		}(chunks[w])
	}
	wg.Wait()

	// 2. Exact equal-size splits of the sorted chunks.
	acc := mselect.SliceAccessor[T](chunks)
	cuts := make([][]int64, workers+1)
	cuts[0] = make([]int64, workers)
	cuts[workers] = make([]int64, workers)
	for w := range chunks {
		cuts[workers][w] = int64(len(chunks[w]))
	}
	for i := 1; i < workers; i++ {
		cuts[i] = mselect.Select[T](c, acc, int64(n)*int64(i)/int64(workers))
	}

	// 3. Merge each output part concurrently into the scratch buffer.
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		pieces := make([][]T, workers)
		for q := 0; q < workers; q++ {
			pieces[q] = chunks[q][cuts[w][q]:cuts[w+1][q]]
		}
		wg.Add(1)
		go func(dst []T, pieces [][]T) {
			defer wg.Done()
			xmerge.AppendMerge[T](c, dst[:0], pieces)
		}(out[lo:hi], pieces)
	}
	wg.Wait()
	copy(vs, out)
}

// cmp converts a codec order into a three-way comparison.
func cmp[T any](c elem.Codec[T]) func(a, b T) int {
	return func(a, b T) int {
		switch {
		case c.Less(a, b):
			return -1
		case c.Less(b, a):
			return 1
		default:
			return 0
		}
	}
}
