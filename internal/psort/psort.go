// Package psort is the shared-memory parallel sort used *inside* one
// PE, standing in for the MCSTL/libstdc++ parallel mode the paper uses
// ("To sort and to merge data internally we used the parallel mode of
// the STL implementation of GCC 4.3.1"). It follows the same design as
// the paper's distributed sort, one level down the hierarchy (§IV-E
// "Hierarchical Parallelism"): sort core-local chunks, split them
// exactly with multiway selection, and merge the parts in parallel.
//
// The result equals a stable sort under the codec order regardless of
// worker count: chunk sorts are stable (LSD radix on normalized keys
// carries the original index; the comparison fallback is a stable
// sort), the multiway selection breaks ties by (chunk, position), and
// the part merges break ties by chunk index — together that reproduces
// the original order of equal elements exactly.
package psort

import (
	"runtime"
	"sync"

	"demsort/internal/elem"
	"demsort/internal/mselect"
	"demsort/internal/xmerge"
)

// DefaultWorkers returns the default in-node sorting parallelism:
// GOMAXPROCS clamped to 8 (the paper's nodes have 8 cores, and every
// simulated PE runs its own sort — an unclamped fan-out of P×cores
// goroutines oversubscribes the host without helping).
func DefaultWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Sort sorts vs in place using up to workers goroutines. workers <= 1
// falls back to a sequential sort. Key-normalized codecs
// (elem.KeyedCodec) take the radix path (radix.go); closure-only
// codecs use a stable comparison sort. Either way the result equals a
// stable sort under the codec order, for every worker count.
func Sort[T any](c elem.Codec[T], vs []T, workers int) {
	n := len(vs)
	if workers <= 1 || n < 4*workers || n < 1024 {
		sortChunk(c, vs, nil)
		return
	}
	// The merge scratch doubles as the radix permute buffer: chunk w
	// sorts vs[lo:hi] with out[lo:hi] as scratch, and after the sorts
	// complete the same buffer receives the merged parts.
	out := make([]T, n)
	// 1. Sort `workers` chunks concurrently.
	chunks := make([][]T, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		chunks[w] = vs[lo:hi]
		wg.Add(1)
		go func(part, tmp []T) {
			defer wg.Done()
			sortChunk(c, part, tmp)
		}(chunks[w], out[lo:hi])
	}
	wg.Wait()

	// 2. Exact equal-size splits of the sorted chunks.
	acc := mselect.SliceAccessor[T](chunks)
	cuts := make([][]int64, workers+1)
	cuts[0] = make([]int64, workers)
	cuts[workers] = make([]int64, workers)
	for w := range chunks {
		cuts[workers][w] = int64(len(chunks[w]))
	}
	for i := 1; i < workers; i++ {
		cuts[i] = mselect.Select[T](c, acc, int64(n)*int64(i)/int64(workers))
	}

	// 3. Merge each output part concurrently into the scratch buffer.
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		pieces := make([][]T, workers)
		for q := 0; q < workers; q++ {
			pieces[q] = chunks[q][cuts[w][q]:cuts[w+1][q]]
		}
		wg.Add(1)
		go func(dst []T, pieces [][]T) {
			defer wg.Done()
			xmerge.AppendMerge[T](c, dst[:0], pieces)
		}(out[lo:hi], pieces)
	}
	wg.Wait()
	copy(vs, out)
}

// cmp converts a codec order into a three-way comparison.
func cmp[T any](c elem.Codec[T]) func(a, b T) int {
	return func(a, b T) int {
		switch {
		case c.Less(a, b):
			return -1
		case c.Less(b, a):
			return 1
		default:
			return 0
		}
	}
}
