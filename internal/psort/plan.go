package psort

// Path selects the radix engine used for key-normalized codecs.
type Path int

const (
	// PathAuto defers the choice to the dispatcher. Inside psort it
	// resolves to PathLSD (the faster engine when scratch is free);
	// core's run formation resolves it against the memory budget —
	// LSD while its scratch fits the headroom, in-place MSD when
	// memory is tight ("scratch charged against M is scratch stolen
	// from run length").
	PathAuto Path = iota
	// PathLSD is the shared-histogram parallel LSD scatter: per-worker
	// digit histograms, a worker×bucket prefix scan assigning disjoint
	// scatter destinations, and a final gather permutation through an
	// n-sized element buffer. Scratch: 2n pairs + histograms + n
	// elements.
	PathLSD
	// PathMSD is the in-place American-flag MSD: cycle-following
	// partition on the top non-uniform digit, bucket recursion over a
	// work queue, and one in-place cycle-following element permute.
	// Scratch: n pairs + histograms — no element buffer.
	PathMSD
)

// String names the path for benchmarks and figures.
func (p Path) String() string {
	switch p {
	case PathLSD:
		return "lsd"
	case PathMSD:
		return "msd"
	default:
		return "auto"
	}
}

// Dispatch constants, re-measured for the parallel-scatter engine on a
// Go 1.24 linux/amd64 host (TestReportDispatchCrossovers in
// plan_test.go is the harness; run with -psort.measure to reproduce):
//
//   - radixMinLen: sequential radix vs slices.SortStableFunc on KV16,
//     best-of-reps µs/sort — n=96: 5.7 cmp / 8.1 lsd / 6.5 msd;
//     n=128: 8.3 / 8.6 / 6.8; n=192: 13.7 / 9.4 / 8.1; n=256:
//     19.7 / 11.3 / 9.6. MSD wins from ~110, LSD from ~140, and by 192
//     both radix engines win outright. 192 is retained: it is past the
//     crossover for both paths with margin for branch-unfriendly key
//     distributions, and dispatch stays byte-compatible with the old
//     engine.
//   - parMinPerWorker: the scatter engine pays ~2+digits goroutine
//     joins per sort (build, one per kept digit, gather, copy-back),
//     so a worker's slice must amortize ~10 barrier rounds. Measured
//     overhead of the parallel machinery (w=2 vs w=1 on a single
//     core, where extra wall time IS the overhead): 2.1× at n=2 Ki,
//     1.7× at 8 Ki, 1.5× at 16 Ki, 1.35× at 128 Ki — the constant
//     term fades past ~8 Ki pairs per worker. The old guard
//     (n < 4*workers || n < 1024) protected a pipeline with one join
//     per sort; the per-digit engine needs the ~8 Ki floor. Worker
//     count derives as min(workers, n/parMinPerWorker), so small
//     inputs degrade smoothly to the sequential engine instead of
//     cliff-edging.
//   - msdInsertion: American-flag recursion hands buckets ≤ 64 pairs
//     to a binary-insertion-style (key, idx) sort; 48–96 measured flat
//     on KV16 1M, 64 picked as the center.
//   - closureParMin: the old 1024 floor, still correct for the
//     closure-codec pipeline (unchanged: chunk sorts + mselect +
//     merge), which pays one join per sort, not one per digit.
const (
	radixMinLen     = 192
	parMinPerWorker = 8 << 10
	msdInsertion    = 64
	closureParMin   = 1024
)

// radixWorkers returns the scatter parallelism actually used for n
// pairs: the requested worker count, clamped so every worker owns at
// least parMinPerWorker pairs (1 otherwise).
func radixWorkers(n, workers int) int {
	if byLoad := n / parMinPerWorker; byLoad < workers {
		workers = byLoad
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// ScratchBytes returns the bytes of sort scratch SortPath will draw
// beyond the element slice itself, for a keyed codec of elemSize-byte
// elements: the pooled pair buffers and histogram blocks plus, on the
// LSD path, the n-element gather buffer. It implements the same
// dispatch rules as SortPath (0 below radixMinLen; worker count
// clamped identically), so a membudget charge computed from it always
// matches what the sort actually acquires. PathAuto prices as PathLSD,
// mirroring its resolution inside psort. Closure-only codecs never
// take the radix engines; callers charge nothing for them.
func ScratchBytes(path Path, elemSize, n, workers int) int64 {
	if n < radixMinLen {
		return 0
	}
	w := radixWorkers(n, workers)
	hist := int64(w) * histBytes
	switch path {
	case PathMSD:
		return int64(n)*pairBytes + hist
	default:
		if w > 1 {
			hist += int64(w) * int64(w) * 256 * 4 // fused next-digit count rows
		}
		return 2*int64(n)*pairBytes + hist + int64(n)*int64(elemSize)
	}
}
