package psort

import (
	"slices"
	"sync"

	"demsort/internal/elem"
)

// The radix path sorts (normalized key, original index) pairs with an
// LSD byte-wise radix sort, then permutes the elements once. Keys are
// order-preserving uint64s (elem.KeyedCodec), so the inner loops are
// counting scans with no comparator calls at all. LSD is stable on the
// original index, which makes the result identical to a stable
// comparison sort for exact-key codecs; prefix-key codecs (Rec100)
// get a comparator fix-up pass over runs of equal truncated keys.

// radixMinLen is the size below which the comparison sort wins (the
// pair build + permute overhead dominates tiny inputs).
const radixMinLen = 192

// keyIdx is one radix element: the normalized key plus the element's
// original position (the payload of the sort).
type keyIdx struct {
	key uint64
	idx int32
}

// pairScratch recycles the two pair buffers; they are element-type
// independent, so one pool serves every codec.
var pairScratch = sync.Pool{New: func() any { return new([2][]keyIdx) }}

// radixSort sorts vs by kc's normalized key order (ties by original
// position, then Less for inexact keys). elemTmp must have capacity
// >= len(vs) when non-nil; nil allocates the permute buffer.
func radixSort[T any](kc elem.KeyedCodec[T], vs []T, elemTmp []T) {
	n := len(vs)
	if n < 2 {
		return
	}
	if n > 1<<31-1 {
		panic("psort: radix sort input exceeds 2^31 elements")
	}
	sp := pairScratch.Get().(*[2][]keyIdx)
	defer pairScratch.Put(sp)
	if cap(sp[0]) < n {
		sp[0] = make([]keyIdx, n)
		sp[1] = make([]keyIdx, n)
	}
	a, b := sp[0][:n], sp[1][:n]

	// Build pairs and histogram all 8 byte positions in one pass.
	var hist [8][256]int32
	for i, v := range vs {
		k := kc.Key(v)
		a[i] = keyIdx{key: k, idx: int32(i)}
		hist[0][byte(k)]++
		hist[1][byte(k>>8)]++
		hist[2][byte(k>>16)]++
		hist[3][byte(k>>24)]++
		hist[4][byte(k>>32)]++
		hist[5][byte(k>>40)]++
		hist[6][byte(k>>48)]++
		hist[7][byte(k>>56)]++
	}

	for d := 0; d < 8; d++ {
		shift := uint(d * 8)
		h := &hist[d]
		// A digit on which every key agrees needs no pass (digit
		// counts are permutation-invariant, so probing any current
		// element is valid).
		if h[byte(a[0].key>>shift)] == int32(n) {
			continue
		}
		var sum int32
		for j := 0; j < 256; j++ {
			cnt := h[j]
			h[j] = sum
			sum += cnt
		}
		for _, p := range a {
			dig := byte(p.key >> shift)
			b[h[dig]] = p
			h[dig]++
		}
		a, b = b, a
	}

	// One gather permutation of the elements.
	if cap(elemTmp) < n {
		elemTmp = make([]T, n)
	}
	out := elemTmp[:n]
	for i, p := range a {
		out[i] = vs[p.idx]
	}
	copy(vs, out)

	// Prefix keys: comparator fix-up over runs of equal truncated
	// keys. Within a run the elements are still in original order
	// (LSD stability), so a stable sort keeps the overall result
	// stable.
	if !kc.KeyExact() {
		for lo := 0; lo < n; {
			hi := lo + 1
			for hi < n && a[hi].key == a[lo].key {
				hi++
			}
			if hi-lo > 1 {
				slices.SortStableFunc(vs[lo:hi], cmp[T](kc))
			}
			lo = hi
		}
	}
}

// sortChunk sorts vs in place: the radix path for key-normalized
// codecs, a stable comparison sort otherwise. elemTmp is an optional
// permute buffer of capacity >= len(vs).
func sortChunk[T any](c elem.Codec[T], vs []T, elemTmp []T) {
	if kc, ok := c.(elem.KeyedCodec[T]); ok && len(vs) >= radixMinLen {
		radixSort(kc, vs, elemTmp)
		return
	}
	slices.SortStableFunc(vs, cmp(c))
}
