package psort

import (
	"flag"
	"math/rand/v2"
	"testing"
	"time"

	"demsort/internal/elem"
)

var measure = flag.Bool("psort.measure", false,
	"re-measure the dispatch crossover constants (radixMinLen, parMinPerWorker) and report; skipped by default")

// timeSort returns the best-of-reps wall time of one sort call.
func timeSort(reps int, base, buf []elem.KV16, f func([]elem.KV16)) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		copy(buf, base)
		start := time.Now()
		f(buf)
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// TestReportDispatchCrossovers is the measurement harness behind the
// constants in plan.go. It is a report, not an assertion — crossovers
// are host-dependent, so the chosen constants live in plan.go with the
// measured numbers in their doc comment, and this harness exists to
// re-derive them: go test ./internal/psort -run Crossover -psort.measure -v
func TestReportDispatchCrossovers(t *testing.T) {
	if !*measure {
		t.Skip("pass -psort.measure to run the dispatch-constant measurement")
	}
	rng := rand.New(rand.NewPCG(61, 62))

	// Crossover 1: sequential radix vs stable comparison sort, small n.
	t.Log("radixMinLen crossover (KV16, sequential):")
	for _, n := range []int{48, 64, 96, 128, 192, 256, 384, 512, 1024} {
		base := randKV(rng, n, 1<<62)
		buf := make([]elem.KV16, n)
		reps := 200_000 / n
		cmpT := timeSort(reps, base, buf, func(vs []elem.KV16) { sortStable(vs) })
		lsdT := timeSort(reps, base, buf, func(vs []elem.KV16) { radixLSD[elem.KV16](kvc, vs, 1) })
		msdT := timeSort(reps, base, buf, func(vs []elem.KV16) { radixMSD[elem.KV16](kvc, vs, 1) })
		t.Logf("  n=%5d  stable=%8v  lsd=%8v  msd=%8v", n, cmpT, lsdT, msdT)
	}

	// Crossover 2: per-digit parallel machinery overhead vs the
	// sequential engine. On a many-core host this shows the speedup
	// floor; on a 1-core host it shows pure overhead — the quantity
	// parMinPerWorker guards against either way.
	t.Log("parMinPerWorker crossover (KV16, w=1 vs parallel machinery):")
	for _, n := range []int{2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10} {
		base := randKV(rng, n, 1<<62)
		buf := make([]elem.KV16, n)
		reps := 4_000_000 / n
		if reps < 3 {
			reps = 3
		}
		seq := timeSort(reps, base, buf, func(vs []elem.KV16) { radixLSD[elem.KV16](kvc, vs, 1) })
		par2 := timeSort(reps, base, buf, func(vs []elem.KV16) { radixLSD[elem.KV16](kvc, vs, 2) })
		par4 := timeSort(reps, base, buf, func(vs []elem.KV16) { radixLSD[elem.KV16](kvc, vs, 4) })
		msd2 := timeSort(reps, base, buf, func(vs []elem.KV16) { radixMSD[elem.KV16](kvc, vs, 2) })
		t.Logf("  n=%6d  w1=%8v  lsd-w2=%8v  lsd-w4=%8v  msd-w2=%8v", n, seq, par2, par4, msd2)
	}

	// msdInsertion sweep: bucket base-case cutoff.
	t.Log("msdInsertion is swept indirectly: rerun with edited constant; "+
		"measured flat 48..96 on KV16 1M at w=1, see plan.go")
}

func sortStable(vs []elem.KV16) {
	SortPath[elem.KV16](closureKV{}, vs, 1, PathAuto)
}
