package psort

import (
	"math/rand/v2"
	"slices"
	"testing"

	"demsort/internal/elem"
)

// closureKV is KV16's order without the KeyedCodec extension: the
// comparator-only fallback path.
type closureKV struct{}

func (closureKV) Size() int                    { return 16 }
func (closureKV) Encode(d []byte, v elem.KV16) { elem.KV16Codec{}.Encode(d, v) }
func (closureKV) Decode(s []byte) elem.KV16    { return elem.KV16Codec{}.Decode(s) }
func (closureKV) Less(a, b elem.KV16) bool     { return a.Key < b.Key }

// adversarialKV builds boundary-pattern keys: top bit set, all-ones,
// runs of equal keys, already/reverse sorted stretches.
func adversarialKV(rng *rand.Rand, n int) []elem.KV16 {
	vs := make([]elem.KV16, n)
	for i := range vs {
		var k uint64
		switch rng.Uint64N(6) {
		case 0:
			k = 1<<63 | rng.Uint64N(16)
		case 1:
			k = ^uint64(0) - rng.Uint64N(4)
		case 2:
			k = rng.Uint64N(8)
		case 3:
			k = uint64(i) // sorted stretch
		case 4:
			k = uint64(n - i) // reverse stretch
		default:
			k = rng.Uint64()
		}
		vs[i] = elem.KV16{Key: k, Val: uint64(i)}
	}
	return vs
}

// TestRadixMatchesStableSort: both radix engines must reproduce a
// stable comparison sort bit-for-bit, payloads included.
func TestRadixMatchesStableSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	for _, n := range []int{radixMinLen, 1000, 1 << 14} {
		vs := adversarialKV(rng, n)
		want := slices.Clone(vs)
		slices.SortStableFunc(want, cmp[elem.KV16](kvc))
		for _, path := range []Path{PathLSD, PathMSD} {
			for _, workers := range []int{1, 4} {
				got := slices.Clone(vs)
				SortPath[elem.KV16](kvc, got, workers, path)
				if !slices.Equal(got, want) {
					t.Fatalf("n=%d path=%v workers=%d: radix differs from stable sort", n, path, workers)
				}
			}
		}
	}
}

// TestRadixRec100TailTies: shared 8-byte prefixes force the truncated
// key to tie so the comparator fix-up must order the 2-byte tails.
func TestRadixRec100TailTies(t *testing.T) {
	rc := elem.Rec100Codec{}
	rng := rand.New(rand.NewPCG(23, 24))
	n := 4096
	vs := make([]elem.Rec100, n)
	for i := range vs {
		var r elem.Rec100
		// Three shared prefixes; tails and payload vary.
		copy(r[:8], []byte{0xAB, 0, 0, 0, 0, 0, 0, byte(rng.Uint64N(3))})
		r[8] = byte(rng.Uint64())
		r[9] = byte(rng.Uint64())
		for j := 10; j < 100; j++ {
			r[j] = byte(i >> (8 * (j % 3)))
		}
		vs[i] = r
	}
	want := slices.Clone(vs)
	slices.SortStableFunc(want, cmp[elem.Rec100](rc))
	for _, path := range []Path{PathLSD, PathMSD} {
		got := slices.Clone(vs)
		SortPath[elem.Rec100](rc, got, 2, path)
		if !slices.Equal(got, want) {
			t.Fatalf("path=%v: radix with tail fix-up differs from stable sort", path)
		}
	}
}

// TestSortClosureCodec: a codec without normalized keys goes down the
// comparator fallback and must still sort correctly at every worker
// count.
func TestSortClosureCodec(t *testing.T) {
	rng := rand.New(rand.NewPCG(25, 26))
	for _, workers := range []int{1, 4} {
		vs := randKV(rng, 1<<13, 1<<40)
		want := sortedRef(vs)
		Sort[elem.KV16](closureKV{}, vs, workers)
		if !keysEqual(vs, want) {
			t.Fatalf("workers=%d: closure codec mis-sorted", workers)
		}
	}
}

// TestSortStableAcrossWorkerCounts: psort output now equals a stable
// sort for any worker count — payloads of equal keys keep their
// original order.
func TestSortStableAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewPCG(27, 28))
	base := randKV(rng, 1<<14, 64) // duplicate-heavy
	want := slices.Clone(base)
	slices.SortStableFunc(want, cmp[elem.KV16](kvc))
	for _, workers := range []int{1, 2, 3, 5, 8} {
		got := slices.Clone(base)
		Sort[elem.KV16](kvc, got, workers)
		if !slices.Equal(got, want) {
			t.Fatalf("workers=%d: not the stable-sort order", workers)
		}
	}
}

func TestDefaultWorkersClamp(t *testing.T) {
	w := DefaultWorkers()
	if w < 1 || w > 8 {
		t.Fatalf("DefaultWorkers() = %d, want 1..8", w)
	}
}

// BenchmarkSortKeyVsComparator is the key-vs-comparator microbench:
// the same KV16 data through the radix path (KV16Codec) and the
// comparator fallback (closureKV).
func BenchmarkSortKeyVsComparator(b *testing.B) {
	rng := rand.New(rand.NewPCG(31, 32))
	base := randKV(rng, 1<<20, 1<<62)
	buf := make([]elem.KV16, len(base))
	b.Run("KV16/key", func(b *testing.B) {
		b.SetBytes(int64(len(base)) * 16)
		for i := 0; i < b.N; i++ {
			copy(buf, base)
			Sort[elem.KV16](kvc, buf, 1)
		}
	})
	b.Run("KV16/comparator", func(b *testing.B) {
		b.SetBytes(int64(len(base)) * 16)
		for i := 0; i < b.N; i++ {
			copy(buf, base)
			Sort[elem.KV16](closureKV{}, buf, 1)
		}
	})
}
