package psort

import (
	"unsafe"

	"demsort/internal/bufpool"
)

// The radix engines sort (normalized key, original index) pairs and
// keep their digit counts in per-worker histogram blocks. Both kinds
// of scratch are plain old data — no pointers — so they are drawn from
// the shared bufpool arena and reinterpreted, exactly like the codec
// bulk paths (elem/pod.go): a sort in steady state allocates no fresh
// pair or histogram memory. The element gather buffer of the LSD path
// is the one piece of scratch that must NOT come from the pool: []T is
// generic and may contain pointers, and pointers living in a pooled
// byte buffer would be invisible to the garbage collector.

// keyIdx is one radix element: the normalized key plus the element's
// original position (the payload of the sort). Pairs are ordered by
// (key, idx) — a total order with no duplicates — which is why even the
// unstable in-place MSD partitions reproduce the stable sort exactly.
type keyIdx struct {
	key uint64
	idx int32
}

// pairBytes is the pooled footprint of one pair; membudget accounting
// (ScratchBytes) and the arena cast both rely on it matching the real
// layout, so the pair of compile-time asserts below pins it.
const pairBytes = 16

var (
	_ [pairBytes - unsafe.Sizeof(keyIdx{})]byte
	_ [unsafe.Sizeof(keyIdx{}) - pairBytes]byte
)

// digitHist is one worker's byte-digit counts for all 8 digit
// positions, built in a single pass over the keys.
type digitHist [8][256]int32

const histBytes = 8 * 256 * 4

var (
	_ [histBytes - unsafe.Sizeof(digitHist{})]byte
	_ [unsafe.Sizeof(digitHist{}) - histBytes]byte
)

// arena owns the pooled scratch of one radix sort call. At most four
// grabs ever happen (pair buffers a and b, histogram block, fused
// count rows), so the registry is a fixed array and the arena itself
// never allocates. Callers arm `defer ar.release()` immediately after
// declaring it: every exit — including a panic unwinding out of a
// user codec's Key — returns the buffers to the pool.
type arena struct {
	bufs [4][]byte
	n    int
}

// grab draws nbytes from bufpool and registers the buffer for
// release, returning the base pointer for reinterpretation.
func (ar *arena) grab(nbytes int) unsafe.Pointer {
	b := bufpool.Get(nbytes)
	ar.bufs[ar.n] = b
	ar.n++
	return unsafe.Pointer(unsafe.SliceData(b))
}

// pairs returns an uninitialized pooled []keyIdx of length n. Contents
// are stale pool bytes; every engine fully overwrites them before
// reading.
func (ar *arena) pairs(n int) []keyIdx {
	p := ar.grab(n * pairBytes)
	if uintptr(p)%unsafe.Alignof(keyIdx{}) != 0 {
		// Unreachable with the gc allocator (≥64 B allocations are
		// 8-byte aligned) but keeps the cast unconditionally sound.
		return make([]keyIdx, n)
	}
	return unsafe.Slice((*keyIdx)(p), n)
}

// hists returns w zeroed per-worker histogram blocks.
func (ar *arena) hists(w int) []digitHist {
	p := ar.grab(w * histBytes)
	var hs []digitHist
	if uintptr(p)%unsafe.Alignof(digitHist{}) != 0 {
		hs = make([]digitHist, w)
	} else {
		hs = unsafe.Slice((*digitHist)(p), w)
	}
	for i := range hs {
		hs[i] = digitHist{} // pooled scratch is dirty; counts start at zero
	}
	return hs
}

// rows returns k pooled bucket-count rows, uninitialized (the scatter
// zeroes each worker's rows before counting into them).
func (ar *arena) rows(k int) []histRow {
	p := ar.grab(k * int(unsafe.Sizeof(histRow{})))
	if uintptr(p)%unsafe.Alignof(histRow{}) != 0 {
		return make([]histRow, k)
	}
	return unsafe.Slice((*histRow)(p), k)
}

// release returns every grabbed buffer to the pool. Safe to call with
// nothing grabbed; meant to be deferred so panic unwind releases too.
func (ar *arena) release() {
	for i := 0; i < ar.n; i++ {
		bufpool.Put(ar.bufs[i])
		ar.bufs[i] = nil
	}
	ar.n = 0
}
