package psort

import (
	"slices"
	"sync"

	"demsort/internal/elem"
)

// The LSD engine: all workers build (key, index) pairs and per-worker
// digit histograms for their slice in one pass; for every digit on
// which the keys disagree, a prefix scan over the worker×bucket count
// matrix (bucket-major, then worker-major within a bucket) assigns
// each worker a disjoint range of scatter destinations, and the
// workers scatter concurrently. Worker w's pairs land before worker
// w+1's inside every bucket and each worker scans its slice in order,
// so the scatter is stable — the parallel result is bit-identical to
// the sequential one for every worker count.
//
// The skip-uniform-digit optimization generalizes to column sums of
// the per-worker counts: global digit counts are permutation-
// invariant, so the mask computed from the build pass stays valid for
// every later pass. Per-worker counts are NOT permutation-invariant —
// each scatter redistributes the pairs across the worker ranges — so
// a naive parallel LSD needs a re-count pass per digit. This engine
// avoids that: while scattering digit d, each worker also counts the
// *next* kept digit of every pair it writes, bucketed by which worker
// range the destination position falls in (writer-major × reader
// rows, reduced into the scan matrix at the next barrier). Scatter
// destinations are monotonic per bucket, so the reader index advances
// by comparison against the next range boundary — no division in the
// inner loop — and the parallel engine does the same number of passes
// over the pairs as the sequential one.

// histRow is one bucket-count row; an alias so digitHist rows and
// fused-count rows assign interchangeably.
type histRow = [256]int32

// runParallel executes f(0..workers-1) concurrently and joins.
// workers == 1 runs inline with no goroutine.
func runParallel(workers int, f func(w int)) {
	if workers <= 1 {
		f(0)
		return
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f(w)
		}()
	}
	f(0)
	wg.Wait()
}

// workerBounds splits [0, n) into `workers` near-equal ranges;
// bounds[w] .. bounds[w+1] is worker w's slice. The floor split means
// position p belongs to worker p·workers/n, which the fused counting
// in the scatter relies on.
func workerBounds(n, workers int) []int {
	b := make([]int, workers+1)
	for w := 0; w <= workers; w++ {
		b[w] = n * w / workers
	}
	return b
}

// checkLen guards the int32 index representation.
func checkLen(n int) {
	if n > 1<<31-1 {
		panic("psort: radix sort input exceeds 2^31 elements")
	}
}

// buildPairs fills a[lo:hi] with (key, original index) pairs for
// vs[lo:hi] and counts all 8 byte digits into h. Keys are extracted in
// blocks through elem.KeysInto so codecs with a bulk keyer avoid the
// per-element interface call.
func buildPairs[T any](kc elem.KeyedCodec[T], vs []T, a []keyIdx, lo, hi int, h *digitHist) {
	var kbuf [512]uint64
	for base := lo; base < hi; base += len(kbuf) {
		end := base + len(kbuf)
		if end > hi {
			end = hi
		}
		elem.KeysInto[T](kc, kbuf[:end-base], vs[base:end])
		for i := base; i < end; i++ {
			k := kbuf[i-base]
			a[i] = keyIdx{key: k, idx: int32(i)}
			h[0][byte(k)]++
			h[1][byte(k>>8)]++
			h[2][byte(k>>16)]++
			h[3][byte(k>>24)]++
			h[4][byte(k>>32)]++
			h[5][byte(k>>40)]++
			h[6][byte(k>>48)]++
			h[7][byte(k>>56)]++
		}
	}
}

// colSums sums the per-worker build-pass histograms into the global
// digit-count matrix and derives the uniform-digit mask (any bucket
// holding all n keys). Global counts are permutation-invariant, so
// both stay valid across every scatter pass.
func colSums(hists []digitHist, n int) (col digitHist, uniform [8]bool) {
	for w := range hists {
		h := &hists[w]
		for d := 0; d < 8; d++ {
			for j := 0; j < 256; j++ {
				col[d][j] += h[d][j]
			}
		}
	}
	for d := 0; d < 8; d++ {
		for j := 0; j < 256; j++ {
			if col[d][j] == int32(n) {
				uniform[d] = true
				break
			}
		}
	}
	return col, uniform
}

// scatterOffsets turns digit d's per-worker counts into per-worker
// scatter cursors in place: hists[w][d][j] becomes the first output
// index for worker w's pairs with digit j. The scan order is
// bucket-major, then worker-major, which is exactly the stability
// order: worker w's pairs precede worker w+1's within every bucket.
func scatterOffsets(hists []digitHist, d int) {
	var sum int32
	for j := 0; j < 256; j++ {
		for w := range hists {
			c := hists[w][d][j]
			hists[w][d][j] = sum
			sum += c
		}
	}
}

// radixLSD sorts vs by (normalized key, original position) — i.e. the
// stable sort order — with the shared-histogram parallel LSD scatter,
// using up to `workers` goroutines. Pair and histogram scratch is
// pooled; the element gather buffer is a fresh allocation (generic []T
// may hold pointers — see arena.go).
func radixLSD[T any](kc elem.KeyedCodec[T], vs []T, workers int) {
	n, W := len(vs), workers
	checkLen(n)
	var ar arena
	defer ar.release()
	a := ar.pairs(n)
	b := ar.pairs(n)
	hists := ar.hists(W)
	bounds := workerBounds(n, W)

	runParallel(W, func(w int) {
		buildPairs(kc, vs, a, bounds[w], bounds[w+1], &hists[w])
	})
	_, uniform := colSums(hists, n)

	digits := make([]int, 0, 8)
	for d := 0; d < 8; d++ {
		if !uniform[d] {
			digits = append(digits, d)
		}
	}
	// Fused next-digit counts: writer-major rows, nextHist[w*W+r] is
	// worker w's counts of pairs it scattered into reader r's range.
	var nextHist []histRow
	if W > 1 && len(digits) > 1 {
		nextHist = ar.rows(W * W)
	}

	for i, d := range digits {
		if i > 0 && W > 1 {
			// This digit's per-reader counts were accumulated during
			// the previous scatter; reduce them into the scan matrix.
			for r := 0; r < W; r++ {
				row := &hists[r][d]
				*row = histRow{}
				for w := 0; w < W; w++ {
					src := &nextHist[w*W+r]
					for j := 0; j < 256; j++ {
						row[j] += src[j]
					}
				}
			}
		}
		scatterOffsets(hists, d)
		shift := uint(d * 8)
		fuse := W > 1 && i+1 < len(digits)
		var shift2 uint
		if fuse {
			shift2 = uint(digits[i+1] * 8)
		}
		runParallel(W, func(w int) {
			cur := &hists[w][d]
			part := a[bounds[w]:bounds[w+1]]
			if !fuse {
				for _, p := range part {
					dig := byte(p.key >> shift)
					b[cur[dig]] = p
					cur[dig]++
				}
				return
			}
			nh := nextHist[w*W : (w+1)*W]
			for k := range nh {
				nh[k] = histRow{}
			}
			// Destination positions are strictly increasing per
			// bucket, so the reader range of each bucket's cursor only
			// ever advances: track it with a boundary compare instead
			// of dividing per element.
			var rcur, rbound [256]int32
			for _, p := range part {
				dig := byte(p.key >> shift)
				pos := cur[dig]
				cur[dig] = pos + 1
				b[pos] = p
				r := rcur[dig]
				if pos >= rbound[dig] {
					for int(pos) >= bounds[r+1] {
						r++
					}
					rcur[dig] = r
					rbound[dig] = int32(bounds[r+1])
				}
				nh[r][byte(p.key>>shift2)]++
			}
		})
		a, b = b, a
	}

	// One gather permutation of the elements, then a parallel copy
	// back. The two barriers are load-bearing: copying vs while
	// another worker still gathers from it would race.
	out := make([]T, n)
	runParallel(W, func(w int) {
		for i := bounds[w]; i < bounds[w+1]; i++ {
			out[i] = vs[a[i].idx]
		}
	})
	runParallel(W, func(w int) {
		copy(vs[bounds[w]:bounds[w+1]], out[bounds[w]:bounds[w+1]])
	})

	if !kc.KeyExact() {
		fixupTies(kc, vs, a, bounds, W)
	}
}

// fixupTies re-sorts runs of equal truncated keys with the comparator
// for inexact-key codecs (Rec100). Within a run the elements are in
// original order (the pair order is the stable order), so a stable
// sort keeps the overall result stable. Each worker owns the runs that
// *start* in its range — a run crossing a boundary belongs wholly to
// the worker it starts in, and the right-hand worker skips past it —
// so the runs processed are disjoint and the pass is race-free.
func fixupTies[T any](kc elem.KeyedCodec[T], vs []T, a []keyIdx, bounds []int, workers int) {
	n := len(vs)
	runParallel(workers, func(w int) {
		lo, hi := bounds[w], bounds[w+1]
		i := lo
		if w > 0 {
			for i < hi && a[i].key == a[i-1].key {
				i++
			}
		}
		for i < hi {
			j := i + 1
			for j < n && a[j].key == a[i].key {
				j++
			}
			if j-i > 1 {
				slices.SortStableFunc(vs[i:j], cmp[T](kc))
			}
			i = j
		}
	})
}
