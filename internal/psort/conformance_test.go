package psort

import (
	"fmt"
	"math/rand/v2"
	"slices"
	"testing"

	"demsort/internal/elem"
)

// The conformance matrix: every adversarial key distribution × every
// worker count 1..8 × both radix engines must be byte-identical to a
// stable sequential sort under the codec order. n is chosen large
// enough that radixWorkers does not clamp the higher worker counts
// away (n/parMinPerWorker >= 8), so the full parallel machinery is
// exercised, including the per-digit re-count pass and the MSD work
// queue — and the whole matrix runs under -race in CI.

const confN = 8 * parMinPerWorker

func kvDistributions(rng *rand.Rand) map[string][]elem.KV16 {
	mk := func(f func(i int) uint64) []elem.KV16 {
		vs := make([]elem.KV16, confN)
		for i := range vs {
			vs[i] = elem.KV16{Key: f(i), Val: uint64(i)}
		}
		return vs
	}
	return map[string][]elem.KV16{
		"random":    mk(func(int) uint64 { return rng.Uint64() }),
		"all-equal": mk(func(int) uint64 { return 0xDEAD }),
		// One hot byte: every digit uniform except one in the middle —
		// exercises the skip mask on both engines and a 256-way fan-out
		// with nothing below it on the MSD path.
		"one-hot-byte": mk(func(int) uint64 { return 0x11_00_00_00_00_00_00_22 | rng.Uint64N(256)<<32 }),
		"pre-sorted":   mk(func(i int) uint64 { return uint64(i) }),
		"reverse":      mk(func(i int) uint64 { return uint64(confN - i) }),
		// Few distinct keys: long equal runs stress stability and the
		// MSD sort-by-index base case.
		"dup-heavy": mk(func(int) uint64 { return rng.Uint64N(7) }),
	}
}

func TestConformanceMatrixKV16(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	for name, base := range kvDistributions(rng) {
		want := slices.Clone(base)
		slices.SortStableFunc(want, cmp[elem.KV16](kvc))
		for _, path := range []Path{PathLSD, PathMSD} {
			for workers := 1; workers <= 8; workers++ {
				t.Run(fmt.Sprintf("%s/%v/w%d", name, path, workers), func(t *testing.T) {
					got := slices.Clone(base)
					SortPath[elem.KV16](kvc, got, workers, path)
					if !slices.Equal(got, want) {
						t.Fatal("output differs from the stable sequential sort")
					}
				})
			}
		}
	}
}

// TestConformanceMatrixRec100: inexact keys — shared 8-byte prefixes
// tie on the truncated key and force the comparator fix-up to order
// the 2-byte tails, on both engines, at every worker count.
func TestConformanceMatrixRec100(t *testing.T) {
	rc := elem.Rec100Codec{}
	rng := rand.New(rand.NewPCG(43, 44))
	base := make([]elem.Rec100, confN)
	for i := range base {
		var r elem.Rec100
		// Four shared prefixes, random tails, payload identifies origin.
		r[7] = byte(rng.Uint64N(4))
		r[8] = byte(rng.Uint64())
		r[9] = byte(rng.Uint64())
		for j := 10; j < 14; j++ {
			r[j] = byte(i >> (8 * (j - 10)))
		}
		base[i] = r
	}
	want := slices.Clone(base)
	slices.SortStableFunc(want, cmp[elem.Rec100](rc))
	for _, path := range []Path{PathLSD, PathMSD} {
		for workers := 1; workers <= 8; workers++ {
			t.Run(fmt.Sprintf("%v/w%d", path, workers), func(t *testing.T) {
				got := slices.Clone(base)
				SortPath[elem.Rec100](rc, got, workers, path)
				if !slices.Equal(got, want) {
					t.Fatal("output differs from the stable sequential sort")
				}
			})
		}
	}
}

// TestScratchBytesMatchesDispatch pins the accounting contract: the
// charge core computes via ScratchBytes must reflect the dispatch
// rules (zero below the radix cutoff, MSD roughly half of LSD, worker
// clamp applied identically).
func TestScratchBytesMatchesDispatch(t *testing.T) {
	if got := ScratchBytes(PathLSD, 16, radixMinLen-1, 8); got != 0 {
		t.Fatalf("below cutoff: ScratchBytes = %d, want 0", got)
	}
	n := 1 << 20
	lsd := ScratchBytes(PathLSD, 16, n, 8)
	msd := ScratchBytes(PathMSD, 16, n, 8)
	if wantLSD := int64(2*n*pairBytes) + 8*histBytes + 8*8*256*4 + int64(n*16); lsd != wantLSD {
		t.Fatalf("LSD scratch = %d, want %d", lsd, wantLSD)
	}
	if wantMSD := int64(n*pairBytes) + 8*histBytes; msd != wantMSD {
		t.Fatalf("MSD scratch = %d, want %d", msd, wantMSD)
	}
	if msd*2 > lsd {
		t.Fatalf("MSD scratch %d not ≤ half of LSD scratch %d", msd, lsd)
	}
	// Auto prices as LSD (its resolution inside psort).
	if auto := ScratchBytes(PathAuto, 16, n, 8); auto != lsd {
		t.Fatalf("Auto scratch = %d, want LSD's %d", auto, lsd)
	}
	// Worker clamp: a small input cannot be charged 8 histogram blocks.
	small := radixMinLen
	if got, want := ScratchBytes(PathMSD, 16, small, 8), int64(small*pairBytes)+histBytes; got != want {
		t.Fatalf("clamped scratch = %d, want %d", got, want)
	}
}
