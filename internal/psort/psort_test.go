package psort

import (
	"math/rand/v2"
	"slices"
	"testing"

	"demsort/internal/elem"
)

var kvc = elem.KV16Codec{}

func randKV(rng *rand.Rand, n int, keyRange uint64) []elem.KV16 {
	vs := make([]elem.KV16, n)
	for i := range vs {
		vs[i] = elem.KV16{Key: rng.Uint64N(keyRange), Val: uint64(i)}
	}
	return vs
}

func sortedRef(vs []elem.KV16) []elem.KV16 {
	ref := slices.Clone(vs)
	slices.SortStableFunc(ref, func(a, b elem.KV16) int {
		switch {
		case a.Key < b.Key:
			return -1
		case a.Key > b.Key:
			return 1
		default:
			return 0
		}
	})
	return ref
}

func keysEqual(a, b []elem.KV16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key != b[i].Key {
			return false
		}
	}
	return true
}

func TestSortMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, n := range []int{0, 1, 2, 100, 1023, 1024, 5000, 1 << 15} {
		for _, workers := range []int{1, 2, 3, 4, 8} {
			vs := randKV(rng, n, 1<<40)
			want := sortedRef(vs)
			Sort[elem.KV16](kvc, vs, workers)
			if !keysEqual(vs, want) {
				t.Fatalf("n=%d workers=%d: wrong key order", n, workers)
			}
		}
	}
}

func TestSortIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	vs := randKV(rng, 1<<14, 100) // heavy duplicates
	var sumBefore uint64
	for _, v := range vs {
		sumBefore += v.Key*31 + v.Val
	}
	Sort[elem.KV16](kvc, vs, 4)
	var sumAfter uint64
	for _, v := range vs {
		sumAfter += v.Key*31 + v.Val
	}
	if sumBefore != sumAfter {
		t.Fatal("sort lost or duplicated elements")
	}
	if !elem.IsSorted[elem.KV16](kvc, vs) {
		t.Fatal("output not sorted")
	}
}

func TestSortDeterministicPerWorkerCount(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	base := randKV(rng, 1<<14, 50)
	a := slices.Clone(base)
	b := slices.Clone(base)
	Sort[elem.KV16](kvc, a, 4)
	Sort[elem.KV16](kvc, b, 4)
	if !slices.Equal(a, b) {
		t.Fatal("same input, same workers: different outputs")
	}
}

func TestSortAllEqualKeys(t *testing.T) {
	vs := make([]elem.KV16, 1<<13)
	for i := range vs {
		vs[i] = elem.KV16{Key: 7, Val: uint64(i)}
	}
	Sort[elem.KV16](kvc, vs, 4)
	if !elem.IsSorted[elem.KV16](kvc, vs) {
		t.Fatal("not sorted")
	}
	seen := make([]bool, len(vs))
	for _, v := range vs {
		if seen[v.Val] {
			t.Fatal("duplicate payload — element lost")
		}
		seen[v.Val] = true
	}
}

func BenchmarkSort1M(b *testing.B) {
	rng := rand.New(rand.NewPCG(4, 4))
	base := randKV(rng, 1<<20, 1<<62)
	buf := make([]elem.KV16, len(base))
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "seq", 4: "par4"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(buf, base)
				Sort[elem.KV16](kvc, buf, workers)
			}
		})
	}
}
