// Package sortbench provides the SortBenchmark tooling the paper's
// evaluation relies on (§VI: "we made experiments on the
// well-established SortBenchmark, initiated by Jim Gray in 1984"):
// a gensort-style deterministic generator of 100-byte records with
// 10-byte keys, and a valsort-style validator checking order, record
// count and a duplicate-insensitive checksum.
package sortbench

import (
	"bytes"
	"fmt"
	"io"
	"math/rand/v2"

	"demsort/internal/elem"
)

// Generate produces n records starting at record index start,
// deterministically from seed (matching runs of Generate with
// different start/n values tile the same global sequence, like
// gensort's -b flag).
func Generate(seed uint64, start, n int64) []elem.Rec100 {
	out := make([]elem.Rec100, n)
	for i := int64(0); i < n; i++ {
		out[i] = Record(seed, start+i)
	}
	return out
}

// Record produces the idx-th record of the seed's sequence: a
// pseudo-random 10-byte key followed by a 90-byte payload carrying the
// record index (so provenance survives sorting).
func Record(seed uint64, idx int64) elem.Rec100 {
	var r elem.Rec100
	rng := rand.New(rand.NewPCG(seed, uint64(idx)*0x9e3779b97f4a7c15+0xABCD))
	for b := 0; b < 10; b++ {
		// Printable ASCII keys, as in gensort's default mode.
		r[b] = byte(' ' + rng.Uint64N(95))
	}
	copy(r[10:], fmt.Sprintf("%020d", idx))
	for b := 30; b < 100; b++ {
		r[b] = byte('A' + (idx+int64(b))%26)
	}
	return r
}

// Skewed produces n records whose keys all share a hot 9-byte prefix
// with probability p10 in ten (duplicate-heavy SortBenchmark variant
// used in the skew experiments).
func Skewed(seed uint64, start, n int64, hotIn10 int) []elem.Rec100 {
	out := make([]elem.Rec100, n)
	for i := int64(0); i < n; i++ {
		r := Record(seed, start+i)
		rng := rand.New(rand.NewPCG(seed^0x55AA, uint64(start+i)))
		if int(rng.Uint64N(10)) < hotIn10 {
			copy(r[:9], "HOTHOTHOT")
		}
		out[i] = r
	}
	return out
}

// Reader streams the records of Generate(seed, start, n) as raw bytes
// without ever materializing the tile — the generator-backed
// core.Config.Source. Records are produced in small batches into an
// internal buffer, so memory stays O(1) regardless of n.
type Reader struct {
	seed    uint64
	next    int64 // next record index to generate
	end     int64
	pending []byte
	buf     [100 * 64]byte
}

// NewReader returns a Reader over records [start, start+n) of seed's
// sequence.
func NewReader(seed uint64, start, n int64) *Reader {
	return &Reader{seed: seed, next: start, end: start + n}
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if len(r.pending) == 0 {
		if r.next == r.end {
			return 0, io.EOF
		}
		batch := int64(len(r.buf) / 100)
		if rem := r.end - r.next; rem < batch {
			batch = rem
		}
		for i := int64(0); i < batch; i++ {
			rec := Record(r.seed, r.next+i)
			copy(r.buf[i*100:], rec[:])
		}
		r.next += batch
		r.pending = r.buf[:batch*100]
	}
	n := copy(p, r.pending)
	r.pending = r.pending[n:]
	return n, nil
}

// Summary is valsort's digest of one record stream.
type Summary struct {
	Records   int64
	Unsorted  int64  // order violations (adjacent inversions)
	Checksum  uint64 // order-independent sum over record hashes
	FirstKey  []byte
	LastKey   []byte
	Duplicate int64 // adjacent duplicate keys (informational)
}

// Validate scans records and produces a Summary; a sorted stream has
// Unsorted == 0, and matching Checksum/Records against the generator's
// Summary proves the output is a permutation of the input.
func Validate(recs []elem.Rec100) Summary {
	var a Accum
	for i := range recs {
		a.AddRecord(&recs[i])
	}
	return a.Summary()
}

// Accum builds a Summary incrementally from record-aligned raw chunks
// — the streaming valsort that Sink callbacks and part-file readers
// feed without ever materializing a partition.
type Accum struct {
	sum  Summary
	prev elem.Rec100
	has  bool
}

// AddRecord folds one record into the digest.
func (a *Accum) AddRecord(rec *elem.Rec100) {
	a.sum.Records++
	a.sum.Checksum += hashRec(rec)
	if a.has {
		switch bytes.Compare(a.prev[:10], rec[:10]) {
		case 1:
			a.sum.Unsorted++
		case 0:
			a.sum.Duplicate++
		}
	} else {
		a.sum.FirstKey = append([]byte(nil), rec[:10]...)
	}
	a.prev = *rec
	a.has = true
}

// Add folds a chunk of raw records; len(raw) must be a multiple of 100
// (Sink chunks are element-aligned by construction).
func (a *Accum) Add(raw []byte) {
	var rec elem.Rec100
	for off := 0; off+100 <= len(raw); off += 100 {
		copy(rec[:], raw[off:])
		a.AddRecord(&rec)
	}
}

// Summary returns the digest folded so far.
func (a *Accum) Summary() Summary {
	s := a.sum
	if a.has {
		s.LastKey = append([]byte(nil), a.prev[:10]...)
	}
	return s
}

// SummarizeReader digests a raw record byte stream to EOF — the
// O(1)-memory way to valsort a part file or an input tile.
func SummarizeReader(r io.Reader) (Summary, error) {
	var a Accum
	buf := make([]byte, 100*512)
	for {
		n, err := io.ReadFull(r, buf)
		if n%100 != 0 {
			return a.Summary(), fmt.Errorf("sortbench: stream not record-aligned (%d trailing bytes)", n%100)
		}
		a.Add(buf[:n])
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return a.Summary(), nil
		}
		if err != nil {
			return a.Summary(), err
		}
	}
}

// Merge combines per-partition summaries in partition order, adding
// cross-boundary order checks — validating a distributed sorted output
// without materialising it in one place.
func Merge(parts []Summary) Summary {
	var s Summary
	var prevLast []byte
	for _, p := range parts {
		s.Records += p.Records
		s.Unsorted += p.Unsorted
		s.Checksum += p.Checksum
		s.Duplicate += p.Duplicate
		if p.Records == 0 {
			continue
		}
		if prevLast != nil && bytes.Compare(prevLast, p.FirstKey) > 0 {
			s.Unsorted++
		}
		if s.FirstKey == nil {
			s.FirstKey = p.FirstKey
		}
		prevLast = p.LastKey
		s.LastKey = p.LastKey
	}
	return s
}

// hashRec hashes all 100 bytes, so payload corruption is detected too.
func hashRec(r *elem.Rec100) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for _, b := range r {
		h ^= uint64(b)
		h *= 0x100000001b3
	}
	return h
}
