package sortbench

import (
	"bytes"
	"io"
	"slices"
	"testing"

	"demsort/internal/elem"
	"demsort/internal/psort"
)

func TestGenerateDeterministicAndTiled(t *testing.T) {
	a := Generate(1, 0, 100)
	b := Generate(1, 0, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generator not deterministic")
		}
	}
	// Tiling: [0,50) + [50,100) must equal [0,100).
	lo := Generate(1, 0, 50)
	hi := Generate(1, 50, 50)
	both := append(lo, hi...)
	for i := range a {
		if a[i] != both[i] {
			t.Fatal("tiled generation differs")
		}
	}
	// Different seeds differ.
	c := Generate(2, 0, 100)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seed ignored")
	}
}

func TestRecordFormat(t *testing.T) {
	r := Record(3, 12345)
	for b := 0; b < 10; b++ {
		if r[b] < ' ' || r[b] > ' '+94 {
			t.Fatal("key byte outside printable range")
		}
	}
	if !bytes.Contains(r[10:30], []byte("12345")) {
		t.Fatal("payload lost the record index")
	}
}

func TestValidateDetectsSorted(t *testing.T) {
	recs := Generate(5, 0, 500)
	psort.Sort[elem.Rec100](elem.Rec100Codec{}, recs, 2)
	s := Validate(recs)
	if s.Unsorted != 0 {
		t.Fatalf("sorted stream reported %d inversions", s.Unsorted)
	}
	if s.Records != 500 {
		t.Fatalf("records %d", s.Records)
	}
}

func TestValidateDetectsUnsorted(t *testing.T) {
	recs := Generate(5, 0, 500) // raw generator order is unsorted
	s := Validate(recs)
	if s.Unsorted == 0 {
		t.Fatal("unsorted stream reported clean")
	}
}

func TestChecksumCatchesCorruption(t *testing.T) {
	recs := Generate(7, 0, 200)
	want := Validate(recs).Checksum
	recs[100][50] ^= 1 // payload corruption, key untouched
	if got := Validate(recs).Checksum; got == want {
		t.Fatal("checksum missed payload corruption")
	}
}

func TestChecksumOrderIndependent(t *testing.T) {
	recs := Generate(9, 0, 300)
	want := Validate(recs).Checksum
	rev := slices.Clone(recs)
	slices.Reverse(rev)
	if Validate(rev).Checksum != want {
		t.Fatal("checksum depends on order")
	}
}

func TestMergeSummariesDetectsBoundaryInversion(t *testing.T) {
	recs := Generate(11, 0, 400)
	psort.Sort[elem.Rec100](elem.Rec100Codec{}, recs, 2)
	ok := Merge([]Summary{Validate(recs[:200]), Validate(recs[200:])})
	if ok.Unsorted != 0 || ok.Records != 400 {
		t.Fatalf("clean split misreported: %+v", ok)
	}
	// Swap the halves: boundary inversion must be flagged.
	bad := Merge([]Summary{Validate(recs[200:]), Validate(recs[:200])})
	if bad.Unsorted == 0 {
		t.Fatal("boundary inversion missed")
	}
	// Checksums still match (same multiset).
	if bad.Checksum != ok.Checksum {
		t.Fatal("checksum should be order independent")
	}
}

func TestSkewedSharesHotPrefix(t *testing.T) {
	recs := Skewed(13, 0, 1000, 9)
	hot := 0
	for i := range recs {
		if bytes.HasPrefix(recs[i][:], []byte("HOTHOTHOT")) {
			hot++
		}
	}
	if hot < 800 || hot == len(recs) {
		t.Fatalf("hot fraction %d/1000, want ~900", hot)
	}
}

// The streaming generator must produce exactly the bytes of the
// materialized tile, at awkward read sizes and tile offsets.
func TestReaderMatchesGenerate(t *testing.T) {
	const start, n = 3210, 999
	want := Generate(17, start, n)
	var wantBytes []byte
	for i := range want {
		wantBytes = append(wantBytes, want[i][:]...)
	}
	r := NewReader(17, start, n)
	got := make([]byte, 0, len(wantBytes))
	buf := make([]byte, 777) // deliberately not record-aligned
	for {
		k, err := r.Read(buf)
		got = append(got, buf[:k]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, wantBytes) {
		t.Fatalf("streamed %d bytes differ from Generate's %d", len(got), len(wantBytes))
	}
}

// The incremental valsort (Accum fed record-aligned chunks, and
// SummarizeReader over a raw stream) must agree with the slice-based
// Validate on every field.
func TestAccumAndSummarizeReaderMatchValidate(t *testing.T) {
	recs := Generate(23, 0, 500)
	psort.Sort[elem.Rec100](elem.Rec100Codec{}, recs[:250], 1) // half sorted, half not
	want := Validate(recs)

	var raw []byte
	for i := range recs {
		raw = append(raw, recs[i][:]...)
	}
	var a Accum
	for off := 0; off < len(raw); off += 300 { // 3-record chunks
		hi := off + 300
		if hi > len(raw) {
			hi = len(raw)
		}
		a.Add(raw[off:hi])
	}
	check := func(name string, got Summary) {
		t.Helper()
		if got.Records != want.Records || got.Unsorted != want.Unsorted ||
			got.Checksum != want.Checksum || got.Duplicate != want.Duplicate ||
			!bytes.Equal(got.FirstKey, want.FirstKey) || !bytes.Equal(got.LastKey, want.LastKey) {
			t.Fatalf("%s summary %+v != Validate %+v", name, got, want)
		}
	}
	check("Accum", a.Summary())

	got, err := SummarizeReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	check("SummarizeReader", got)

	if _, err := SummarizeReader(bytes.NewReader(raw[:150])); err == nil {
		t.Fatal("non-record-aligned stream must be rejected")
	}
}
