package sortbench

import (
	"bytes"
	"slices"
	"testing"

	"demsort/internal/elem"
	"demsort/internal/psort"
)

func TestGenerateDeterministicAndTiled(t *testing.T) {
	a := Generate(1, 0, 100)
	b := Generate(1, 0, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generator not deterministic")
		}
	}
	// Tiling: [0,50) + [50,100) must equal [0,100).
	lo := Generate(1, 0, 50)
	hi := Generate(1, 50, 50)
	both := append(lo, hi...)
	for i := range a {
		if a[i] != both[i] {
			t.Fatal("tiled generation differs")
		}
	}
	// Different seeds differ.
	c := Generate(2, 0, 100)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seed ignored")
	}
}

func TestRecordFormat(t *testing.T) {
	r := Record(3, 12345)
	for b := 0; b < 10; b++ {
		if r[b] < ' ' || r[b] > ' '+94 {
			t.Fatal("key byte outside printable range")
		}
	}
	if !bytes.Contains(r[10:30], []byte("12345")) {
		t.Fatal("payload lost the record index")
	}
}

func TestValidateDetectsSorted(t *testing.T) {
	recs := Generate(5, 0, 500)
	psort.Sort[elem.Rec100](elem.Rec100Codec{}, recs, 2)
	s := Validate(recs)
	if s.Unsorted != 0 {
		t.Fatalf("sorted stream reported %d inversions", s.Unsorted)
	}
	if s.Records != 500 {
		t.Fatalf("records %d", s.Records)
	}
}

func TestValidateDetectsUnsorted(t *testing.T) {
	recs := Generate(5, 0, 500) // raw generator order is unsorted
	s := Validate(recs)
	if s.Unsorted == 0 {
		t.Fatal("unsorted stream reported clean")
	}
}

func TestChecksumCatchesCorruption(t *testing.T) {
	recs := Generate(7, 0, 200)
	want := Validate(recs).Checksum
	recs[100][50] ^= 1 // payload corruption, key untouched
	if got := Validate(recs).Checksum; got == want {
		t.Fatal("checksum missed payload corruption")
	}
}

func TestChecksumOrderIndependent(t *testing.T) {
	recs := Generate(9, 0, 300)
	want := Validate(recs).Checksum
	rev := slices.Clone(recs)
	slices.Reverse(rev)
	if Validate(rev).Checksum != want {
		t.Fatal("checksum depends on order")
	}
}

func TestMergeSummariesDetectsBoundaryInversion(t *testing.T) {
	recs := Generate(11, 0, 400)
	psort.Sort[elem.Rec100](elem.Rec100Codec{}, recs, 2)
	ok := Merge([]Summary{Validate(recs[:200]), Validate(recs[200:])})
	if ok.Unsorted != 0 || ok.Records != 400 {
		t.Fatalf("clean split misreported: %+v", ok)
	}
	// Swap the halves: boundary inversion must be flagged.
	bad := Merge([]Summary{Validate(recs[200:]), Validate(recs[:200])})
	if bad.Unsorted == 0 {
		t.Fatal("boundary inversion missed")
	}
	// Checksums still match (same multiset).
	if bad.Checksum != ok.Checksum {
		t.Fatal("checksum should be order independent")
	}
}

func TestSkewedSharesHotPrefix(t *testing.T) {
	recs := Skewed(13, 0, 1000, 9)
	hot := 0
	for i := range recs {
		if bytes.HasPrefix(recs[i][:], []byte("HOTHOTHOT")) {
			hot++
		}
	}
	if hot < 800 || hot == len(recs) {
		t.Fatalf("hot fraction %d/1000, want ~900", hot)
	}
}
