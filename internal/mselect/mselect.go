// Package mselect implements exact multi-sequence selection: given R
// sorted sequences and a target rank t, find splitter positions pos[0..R)
// with sum(pos) = t such that every element left of a splitter orders
// before every element right of a splitter.
//
// This is the engine of the paper's exact partitioning (Section IV-A):
// the run-formation internal sort uses it to split P node-local sorted
// arrays into P exactly equal parts, and phase two uses it (through a
// sampled, block-fetching accessor) to compute the global splitters of
// the R external runs.
//
// Exactness requires a *total* order, so ties between equal elements are
// broken by (sequence index, position). This makes the answer unique and
// identical on every PE, which is what turns "approximately equal parts"
// (NOW-Sort) into the exact partition the paper advertises.
//
// Two independent algorithms are provided and cross-checked in tests:
//
//   - Select: deterministic pivot bisection (binary searches against a
//     pivot chosen from the widest remaining interval),
//   - StepHalving: the paper's splitter-walking algorithm, which probes
//     only O(R log M) elements near the final positions and is therefore
//     the one used against external (disk-resident) sequences.
package mselect

import (
	"fmt"
	"sort"

	"demsort/internal/elem"
)

// Accessor is a read-only view of R sorted sequences. Implementations
// may serve At from memory, from a sample, or by fetching remote disk
// blocks; the algorithms only ever probe positions near the splitters.
type Accessor[T any] interface {
	// Seqs returns the number of sequences R.
	Seqs() int
	// Len returns the length of sequence s in elements.
	Len(s int) int64
	// At returns the element at position i of sequence s, 0 <= i < Len(s).
	At(s int, i int64) T
}

// SliceAccessor adapts in-memory slices to the Accessor interface.
type SliceAccessor[T any] [][]T

// Seqs implements Accessor.
func (a SliceAccessor[T]) Seqs() int { return len(a) }

// Len implements Accessor.
func (a SliceAccessor[T]) Len(s int) int64 { return int64(len(a[s])) }

// At implements Accessor.
func (a SliceAccessor[T]) At(s int, i int64) T { return a[s][i] }

// CountingAccessor wraps an Accessor and counts At calls; tests and the
// external prober use it to verify the "negligible probing" claims.
type CountingAccessor[T any] struct {
	Inner  Accessor[T]
	Probes int64
}

// Seqs implements Accessor.
func (a *CountingAccessor[T]) Seqs() int { return a.Inner.Seqs() }

// Len implements Accessor.
func (a *CountingAccessor[T]) Len(s int) int64 { return a.Inner.Len(s) }

// At implements Accessor.
func (a *CountingAccessor[T]) At(s int, i int64) T {
	a.Probes++
	return a.Inner.At(s, i)
}

// Total returns the combined length of all sequences of acc.
func Total[T any](acc Accessor[T]) int64 {
	var n int64
	for s := 0; s < acc.Seqs(); s++ {
		n += acc.Len(s)
	}
	return n
}

// totOrder is the strict total order on (element, sequence, position),
// probing the codec's normalized uint64 keys first: for exact-keyed
// codecs (U64, KV16) the comparator never runs, and for inexact ones
// (Rec100) it runs only on shared 8-byte prefixes. Non-keyed codecs
// get a constant-zero key and always fall through to the comparator.
type totOrder[T any] struct {
	c     elem.Codec[T]
	key   func(T) uint64
	exact bool
}

func orderOf[T any](c elem.Codec[T]) totOrder[T] {
	key, exact := elem.KeyFn(c)
	return totOrder[T]{c: c, key: key, exact: exact}
}

// lessK compares with the keys already computed — the binary searches
// precompute the pivot's key once per search instead of per probe.
func (o totOrder[T]) lessK(ak uint64, a T, sa int, ia int64, bk uint64, b T, sb int, ib int64) bool {
	if ak != bk {
		return ak < bk
	}
	if !o.exact {
		if o.c.Less(a, b) {
			return true
		}
		if o.c.Less(b, a) {
			return false
		}
	}
	if sa != sb {
		return sa < sb
	}
	return ia < ib
}

func (o totOrder[T]) less(a T, sa int, ia int64, b T, sb int, ib int64) bool {
	return o.lessK(o.key(a), a, sa, ia, o.key(b), b, sb, ib)
}

// Select returns the unique splitter positions for rank using pivot
// bisection. It probes O(R · log²(max length)) elements and is intended
// for in-memory sequences. rank must be in [0, Total(acc)].
func Select[T any](c elem.Codec[T], acc Accessor[T], rank int64) []int64 {
	r := acc.Seqs()
	total := Total(acc)
	if rank < 0 || rank > total {
		panic(fmt.Sprintf("mselect: rank %d out of range [0,%d]", rank, total))
	}
	ord := orderOf(c)
	lo := make([]int64, r)
	hi := make([]int64, r)
	for q := 0; q < r; q++ {
		hi[q] = acc.Len(q)
	}
	for {
		// Choose the pivot from the widest remaining interval.
		best, width := -1, int64(0)
		for q := 0; q < r; q++ {
			if w := hi[q] - lo[q]; w > width {
				best, width = q, w
			}
		}
		if best == -1 {
			break
		}
		pi := (lo[best] + hi[best]) / 2
		pv := acc.At(best, pi)
		pk := ord.key(pv)
		// split[q] = number of elements of q totally ordered before
		// (pv, best, pi). Within a sequence the total order equals
		// index order, so split[best] = pi and the others are found by
		// binary search.
		var cnt int64
		split := make([]int64, r)
		for q := 0; q < r; q++ {
			if q == best {
				split[q] = pi
			} else {
				n := acc.Len(q)
				qq := q
				j := sort.Search(int(n), func(j int) bool {
					v := acc.At(qq, int64(j))
					return !ord.lessK(ord.key(v), v, qq, int64(j), pk, pv, best, pi)
				})
				split[q] = int64(j)
			}
			cnt += split[q]
		}
		if cnt < rank {
			// Pivot and everything before it belong to the left set.
			for q := 0; q < r; q++ {
				if split[q] > lo[q] {
					lo[q] = split[q]
				}
			}
			if pi+1 > lo[best] {
				lo[best] = pi + 1
			}
		} else {
			// Pivot and everything after it stay right.
			for q := 0; q < r; q++ {
				if split[q] < hi[q] {
					hi[q] = split[q]
				}
			}
		}
	}
	var sum int64
	for q := 0; q < r; q++ {
		sum += lo[q]
	}
	if sum != rank {
		panic(fmt.Sprintf("mselect: internal error, positions sum %d != rank %d", sum, rank))
	}
	return lo
}

// StepHalving runs the paper's splitter-walking selection. init gives
// starting positions (nil means all zero) and step the starting step
// size; pass the sequence length (rounded up) when starting cold, or
// the sample distance K when bootstrapped from a sample (§IV-A: "this
// sample is used to find initial values for the approximate splitters").
//
// The result is exact: after the walk converges a fixup loop enforces
// the unique total-order partition, so correctness never depends on the
// quality of init.
func StepHalving[T any](c elem.Codec[T], acc Accessor[T], rank int64, init []int64, step int64) []int64 {
	r := acc.Seqs()
	total := Total(acc)
	if rank < 0 || rank > total {
		panic(fmt.Sprintf("mselect: rank %d out of range [0,%d]", rank, total))
	}
	ord := orderOf(c)
	pos := make([]int64, r)
	var count int64
	for q := 0; q < r; q++ {
		if init != nil {
			pos[q] = init[q]
			if pos[q] < 0 {
				pos[q] = 0
			}
			if n := acc.Len(q); pos[q] > n {
				pos[q] = n
			}
		}
		count += pos[q]
	}
	s := int64(1)
	for s < step {
		s *= 2
	}

	// argMinRight returns the sequence whose first element right of the
	// splitter is smallest (total order), or -1 if all are exhausted.
	argMinRight := func() int {
		best := -1
		var bv T
		for q := 0; q < r; q++ {
			if pos[q] >= acc.Len(q) {
				continue
			}
			v := acc.At(q, pos[q])
			if best == -1 || ord.less(v, q, pos[q], bv, best, pos[best]) {
				best, bv = q, v
			}
		}
		return best
	}
	// argMaxLeft returns the sequence whose last element left of the
	// splitter is largest, or -1 if all splitters are at zero.
	argMaxLeft := func() int {
		best := -1
		var bv T
		for q := 0; q < r; q++ {
			if pos[q] == 0 {
				continue
			}
			v := acc.At(q, pos[q]-1)
			if best == -1 || ord.less(bv, best, pos[best]-1, v, q, pos[q]-1) {
				best, bv = q, v
			}
		}
		return best
	}

	for {
		// Increase the splitter with the smallest right element by s
		// until more than rank elements lie left of the splitters.
		for count <= rank {
			q := argMinRight()
			if q == -1 {
				break // every element is left already; count == total <= rank
			}
			d := min64(s, acc.Len(q)-pos[q])
			pos[q] += d
			count += d
		}
		if s == 1 {
			break
		}
		s /= 2
		// Decrease the splitter with the largest left element by s
		// while the left set is still too large.
		for count > rank {
			q := argMaxLeft()
			if q == -1 {
				break
			}
			d := min64(s, pos[q])
			pos[q] -= d
			count -= d
		}
		if s == 1 {
			break
		}
		s /= 2
	}
	// Exact landing: single steps to sum == rank.
	for count < rank {
		q := argMinRight()
		pos[q]++
		count++
	}
	for count > rank {
		q := argMaxLeft()
		pos[q]--
		count--
	}
	// Fixup: enforce the downward-closed (total order) left set. Each
	// swap replaces the largest left element by a strictly smaller right
	// element, so the loop terminates at the unique answer.
	for {
		qmax := argMaxLeft()
		qmin := argMinRight()
		if qmax == -1 || qmin == -1 {
			break
		}
		lv := acc.At(qmax, pos[qmax]-1)
		rv := acc.At(qmin, pos[qmin])
		if !ord.less(rv, qmin, pos[qmin], lv, qmax, pos[qmax]-1) {
			break
		}
		pos[qmax]--
		pos[qmin]++
	}
	return pos
}

// Sample is the in-memory sample of one sorted sequence kept during run
// formation (§IV-A: "during run formation, we store every K-th element
// of the sorted run as a sample"). Vals[j] is the element at position
// j·K of the full sequence.
type Sample[T any] struct {
	K    int64
	Vals []T
}

// BootstrapIntervals computes, from the per-sequence samples, intervals
// [lo[q], hi[q]] guaranteed to contain the exact splitter positions for
// rank. The derivation: the sample rank of the target element differs
// from rank/K by at most R+1, and sample splitter positions shift by at
// most one per unit of rank, so the true position of sequence q lies
// within (R+2)·K of sampleCut[q]·K. Intervals are clamped to [0, len].
//
// All samples must share the same K. lens give the full sequence
// lengths.
func BootstrapIntervals[T any](c elem.Codec[T], samples []Sample[T], lens []int64, rank int64) (lo, hi []int64) {
	cuts := SampleCuts(c, samples, lens, rank)
	if cuts == nil {
		return nil, nil
	}
	margin := (int64(len(samples)) + 2) * samples[0].K
	return IntervalsAround(cuts, lens, margin)
}

// SampleCuts runs the exact selection on the samples only and returns
// the estimated full-sequence positions scut[q]·K (clamped to the
// sequence lengths). The true splitters deviate from these estimates by
// at most (R+2)·K per sequence in the worst case, and typically by far
// less than K.
func SampleCuts[T any](c elem.Codec[T], samples []Sample[T], lens []int64, rank int64) []int64 {
	r := len(samples)
	if r == 0 {
		return nil
	}
	k := samples[0].K
	sseqs := make([][]T, r)
	for q := range samples {
		if samples[q].K != k {
			panic("mselect: samples must share one K")
		}
		sseqs[q] = samples[q].Vals
	}
	sacc := SliceAccessor[T](sseqs)
	stotal := Total[T](sacc)
	srank := rank / k
	if srank > stotal {
		srank = stotal
	}
	scut := Select[T](c, sacc, srank)
	cuts := make([]int64, r)
	for q := 0; q < r; q++ {
		cuts[q] = scut[q] * k
		if cuts[q] > lens[q] {
			cuts[q] = lens[q]
		}
	}
	return cuts
}

// IntervalsAround widens the estimated cut positions into intervals of
// the given one-sided margin, clamped to [0, len].
func IntervalsAround(cuts, lens []int64, margin int64) (lo, hi []int64) {
	lo = make([]int64, len(cuts))
	hi = make([]int64, len(cuts))
	for q := range cuts {
		lo[q] = cuts[q] - margin
		if lo[q] < 0 {
			lo[q] = 0
		}
		hi[q] = cuts[q] + margin
		if hi[q] > lens[q] {
			hi[q] = lens[q]
		}
	}
	return lo, hi
}

// SelectInterval is Select restricted to start from the intervals
// [lo0[q], hi0[q]]: pivots are only drawn from inside the intervals and
// binary searches probe (almost) only inside them, so against an
// external accessor only the few blocks covering the intervals are ever
// fetched. The counts it computes are exact, so a wrong interval is
// detected — ok=false means the true splitters lie outside lo0/hi0 and
// the caller must fall back to a full-range Select.
func SelectInterval[T any](c elem.Codec[T], acc Accessor[T], rank int64, lo0, hi0 []int64) (pos []int64, ok bool) {
	r := acc.Seqs()
	ord := orderOf(c)
	lo := make([]int64, r)
	hi := make([]int64, r)
	copy(lo, lo0)
	copy(hi, hi0)
	for q := 0; q < r; q++ {
		if lo[q] < 0 {
			lo[q] = 0
		}
		if n := acc.Len(q); hi[q] > n {
			hi[q] = n
		}
		if hi[q] < lo[q] {
			hi[q] = lo[q]
		}
	}
	for {
		best, width := -1, int64(0)
		for q := 0; q < r; q++ {
			if w := hi[q] - lo[q]; w > width {
				best, width = q, w
			}
		}
		if best == -1 {
			break
		}
		pi := (lo[best] + hi[best]) / 2
		pv := acc.At(best, pi)
		pk := ord.key(pv)
		var cnt int64
		split := make([]int64, r)
		for q := 0; q < r; q++ {
			if q == best {
				split[q] = pi
			} else {
				split[q] = searchBefore(ord, acc, q, pk, pv, best, pi, lo[q], hi[q])
			}
			cnt += split[q]
		}
		if cnt < rank {
			for q := 0; q < r; q++ {
				if split[q] > lo[q] {
					lo[q] = split[q]
				}
				if lo[q] > hi[q] {
					hi[q] = lo[q] // interval assumption violated; detected below
				}
			}
			if pi+1 > lo[best] {
				lo[best] = pi + 1
			}
			if lo[best] > hi[best] {
				hi[best] = lo[best]
			}
		} else {
			for q := 0; q < r; q++ {
				if split[q] < hi[q] {
					hi[q] = split[q]
				}
				if hi[q] < lo[q] {
					lo[q] = hi[q]
				}
			}
		}
	}
	var sum int64
	for q := 0; q < r; q++ {
		if lo[q] < 0 || lo[q] > acc.Len(q) {
			return nil, false
		}
		sum += lo[q]
	}
	if sum != rank {
		return nil, false
	}
	return lo, true
}

// searchBefore returns the exact number of elements of sequence q that
// order (totally) before the pivot (pk, pv, ps, pi), i.e. the first
// index j where the monotone predicate "element j before pivot" turns
// false. The search is seeded with [glo, ghi]; two boundary probes
// detect the (rare) case that the answer lies outside and redirect the
// search, so exactness never depends on the seed.
func searchBefore[T any](ord totOrder[T], acc Accessor[T], q int, pk uint64, pv T, ps int, pi int64, glo, ghi int64) int64 {
	n := acc.Len(q)
	before := func(j int64) bool {
		v := acc.At(q, j)
		return ord.lessK(ord.key(v), v, q, j, pk, pv, ps, pi)
	}
	a, b := glo, ghi // answer assumed in [a, b]
	if a > 0 && !before(a-1) {
		a, b = 0, a-1
	} else if b < n && before(b) {
		a, b = b+1, n
	}
	// Binary search the first j in [a, b] with j == n || !before(j);
	// invariant: everything below a is "before", everything >= b is not.
	j := a + int64(sort.Search(int(b-a), func(d int) bool {
		return !before(a + int64(d))
	}))
	return j
}

// Partition splits every sequence of in-memory seqs at the positions
// for the given ranks (ascending, each in [0,total]) and returns, for
// each sequence, the list of cut positions. ranks typically are
// i·total/P for i = 1..P-1.
func Partition[T any](c elem.Codec[T], seqs [][]T, ranks []int64) [][]int64 {
	acc := SliceAccessor[T](seqs)
	cuts := make([][]int64, len(ranks))
	for i, t := range ranks {
		cuts[i] = Select[T](c, acc, t)
	}
	return cuts
}

// CheckPartition verifies the selection invariant for positions pos on
// acc at rank: positions sum to rank and max-left orders before
// min-right. It returns an error describing the first violation.
func CheckPartition[T any](c elem.Codec[T], acc Accessor[T], rank int64, pos []int64) error {
	ord := orderOf(c)
	var sum int64
	for q := range pos {
		if pos[q] < 0 || pos[q] > acc.Len(q) {
			return fmt.Errorf("mselect: position %d of seq %d outside [0,%d]", pos[q], q, acc.Len(q))
		}
		sum += pos[q]
	}
	if sum != rank {
		return fmt.Errorf("mselect: positions sum %d, want rank %d", sum, rank)
	}
	maxQ := -1
	var maxV T
	for q := range pos {
		if pos[q] == 0 {
			continue
		}
		v := acc.At(q, pos[q]-1)
		if maxQ == -1 || ord.less(maxV, maxQ, pos[maxQ]-1, v, q, pos[q]-1) {
			maxQ, maxV = q, v
		}
	}
	minQ := -1
	var minV T
	for q := range pos {
		if pos[q] >= acc.Len(q) {
			continue
		}
		v := acc.At(q, pos[q])
		if minQ == -1 || ord.less(v, q, pos[q], minV, minQ, pos[minQ]) {
			minQ, minV = q, v
		}
	}
	if maxQ != -1 && minQ != -1 &&
		ord.less(minV, minQ, pos[minQ], maxV, maxQ, pos[maxQ]-1) {
		return fmt.Errorf("mselect: left element (seq %d pos %d) orders after right element (seq %d pos %d)",
			maxQ, pos[maxQ]-1, minQ, pos[minQ])
	}
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
