package mselect

import (
	"math/rand/v2"
	"slices"
	"testing"
	"testing/quick"

	"demsort/internal/elem"
)

var u64c = elem.U64Codec{}

func randSeqs(rng *rand.Rand, k, maxLen, keyRange int) [][]elem.U64 {
	seqs := make([][]elem.U64, k)
	for i := range seqs {
		n := int(rng.Uint64N(uint64(maxLen + 1)))
		seqs[i] = make([]elem.U64, n)
		for j := range seqs[i] {
			seqs[i][j] = elem.U64(rng.Uint64N(uint64(keyRange)))
		}
		slices.Sort(seqs[i])
	}
	return seqs
}

// refLeftSet computes the reference left multiset: the rank smallest
// elements under the (value, seq, pos) total order, by brute force.
func refLeftSet(seqs [][]elem.U64, rank int64) []int64 {
	type tagged struct {
		v elem.U64
		s int
		i int64
	}
	var all []tagged
	for s, seq := range seqs {
		for i, v := range seq {
			all = append(all, tagged{v, s, int64(i)})
		}
	}
	slices.SortFunc(all, func(a, b tagged) int {
		switch {
		case a.v < b.v:
			return -1
		case a.v > b.v:
			return 1
		case a.s != b.s:
			return a.s - b.s
		default:
			return int(a.i - b.i)
		}
	})
	pos := make([]int64, len(seqs))
	for _, t := range all[:rank] {
		pos[t.s]++
	}
	return pos
}

func TestSelectMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for iter := 0; iter < 200; iter++ {
		k := 1 + int(rng.UintN(6))
		seqs := randSeqs(rng, k, 30, 10) // heavy duplicates
		acc := SliceAccessor[elem.U64](seqs)
		total := Total[elem.U64](acc)
		rank := int64(rng.Uint64N(uint64(total + 1)))
		got := Select[elem.U64](u64c, acc, rank)
		want := refLeftSet(seqs, rank)
		if !slices.Equal(got, want) {
			t.Fatalf("iter %d: Select=%v brute=%v (rank %d, seqs %v)", iter, got, want, rank, seqs)
		}
		if err := CheckPartition[elem.U64](u64c, acc, rank, got); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}

func TestStepHalvingMatchesSelect(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for iter := 0; iter < 200; iter++ {
		k := 1 + int(rng.UintN(6))
		seqs := randSeqs(rng, k, 40, 8)
		acc := SliceAccessor[elem.U64](seqs)
		total := Total[elem.U64](acc)
		rank := int64(rng.Uint64N(uint64(total + 1)))
		want := Select[elem.U64](u64c, acc, rank)

		maxLen := int64(1)
		for s := 0; s < k; s++ {
			if acc.Len(s) > maxLen {
				maxLen = acc.Len(s)
			}
		}
		got := StepHalving[elem.U64](u64c, acc, rank, nil, maxLen)
		if !slices.Equal(got, want) {
			t.Fatalf("iter %d: StepHalving=%v Select=%v (rank %d)", iter, got, want, rank)
		}
	}
}

func TestStepHalvingWithBadInit(t *testing.T) {
	// Correctness must never depend on init quality: start from wildly
	// wrong positions with a small step and still land on the answer.
	rng := rand.New(rand.NewPCG(5, 6))
	for iter := 0; iter < 100; iter++ {
		k := 2 + int(rng.UintN(4))
		seqs := randSeqs(rng, k, 40, 1000)
		acc := SliceAccessor[elem.U64](seqs)
		total := Total[elem.U64](acc)
		if total == 0 {
			continue
		}
		rank := int64(rng.Uint64N(uint64(total + 1)))
		want := Select[elem.U64](u64c, acc, rank)
		init := make([]int64, k)
		for q := range init {
			init[q] = int64(rng.Uint64N(uint64(acc.Len(q) + 1)))
		}
		got := StepHalving[elem.U64](u64c, acc, rank, init, 4)
		if !slices.Equal(got, want) {
			t.Fatalf("iter %d: got %v want %v", iter, got, want)
		}
	}
}

func TestSelectExtremes(t *testing.T) {
	seqs := [][]elem.U64{{1, 2, 3}, {}, {2, 2}}
	acc := SliceAccessor[elem.U64](seqs)
	if got := Select[elem.U64](u64c, acc, 0); !slices.Equal(got, []int64{0, 0, 0}) {
		t.Fatalf("rank 0: %v", got)
	}
	if got := Select[elem.U64](u64c, acc, 5); !slices.Equal(got, []int64{3, 0, 2}) {
		t.Fatalf("rank total: %v", got)
	}
}

func TestSelectAllEqualKeys(t *testing.T) {
	// With all-equal keys, exactness is entirely down to tie-breaking.
	seqs := [][]elem.U64{{7, 7, 7}, {7, 7}, {7, 7, 7, 7}}
	acc := SliceAccessor[elem.U64](seqs)
	for rank := int64(0); rank <= 9; rank++ {
		got := Select[elem.U64](u64c, acc, rank)
		want := refLeftSet(seqs, rank)
		if !slices.Equal(got, want) {
			t.Fatalf("rank %d: got %v want %v", rank, got, want)
		}
	}
}

func TestSelectQuickProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	f := func(seed uint64, rankSel uint16) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0x9e37))
		seqs := randSeqs(rng, 1+int(seed%5), 25, 6)
		acc := SliceAccessor[elem.U64](seqs)
		total := Total[elem.U64](acc)
		rank := int64(0)
		if total > 0 {
			rank = int64(rankSel) % (total + 1)
		}
		pos := Select[elem.U64](u64c, acc, rank)
		return CheckPartition[elem.U64](u64c, acc, rank, pos) == nil
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// buildSamples extracts every K-th element, as run formation does.
func buildSamples(seqs [][]elem.U64, k int64) ([]Sample[elem.U64], []int64) {
	samples := make([]Sample[elem.U64], len(seqs))
	lens := make([]int64, len(seqs))
	for q, s := range seqs {
		lens[q] = int64(len(s))
		var vals []elem.U64
		for j := int64(0); j < int64(len(s)); j += k {
			vals = append(vals, s[j])
		}
		samples[q] = Sample[elem.U64]{K: k, Vals: vals}
	}
	return samples, lens
}

func TestBootstrapIntervalsContainAnswer(t *testing.T) {
	rng := rand.New(rand.NewPCG(40, 41))
	for iter := 0; iter < 100; iter++ {
		nSeq := 1 + int(rng.UintN(6))
		seqs := randSeqs(rng, nSeq, 200, 50)
		acc := SliceAccessor[elem.U64](seqs)
		total := Total[elem.U64](acc)
		rank := int64(rng.Uint64N(uint64(total + 1)))
		want := Select[elem.U64](u64c, acc, rank)
		for _, k := range []int64{1, 4, 16} {
			samples, lens := buildSamples(seqs, k)
			lo, hi := BootstrapIntervals[elem.U64](u64c, samples, lens, rank)
			for q := range want {
				if want[q] < lo[q] || want[q] > hi[q] {
					t.Fatalf("iter %d K=%d seq %d: answer %d outside [%d,%d]",
						iter, k, q, want[q], lo[q], hi[q])
				}
			}
		}
	}
}

func TestSelectIntervalMatchesSelect(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 43))
	for iter := 0; iter < 100; iter++ {
		nSeq := 1 + int(rng.UintN(6))
		seqs := randSeqs(rng, nSeq, 150, 30)
		acc := SliceAccessor[elem.U64](seqs)
		total := Total[elem.U64](acc)
		rank := int64(rng.Uint64N(uint64(total + 1)))
		want := Select[elem.U64](u64c, acc, rank)
		samples, lens := buildSamples(seqs, 8)
		lo, hi := BootstrapIntervals[elem.U64](u64c, samples, lens, rank)
		got, ok := SelectInterval[elem.U64](u64c, acc, rank, lo, hi)
		if !ok {
			t.Fatalf("iter %d: bootstrap intervals rejected", iter)
		}
		if !slices.Equal(got, want) {
			t.Fatalf("iter %d: got %v want %v", iter, got, want)
		}
	}
}

func TestSelectIntervalDetectsBadBounds(t *testing.T) {
	seqs := [][]elem.U64{{1, 2, 3, 4, 5, 6, 7, 8}, {10, 11, 12, 13}}
	acc := SliceAccessor[elem.U64](seqs)
	// True cut for rank 6 is {6, 0}; force intervals that exclude it.
	lo := []int64{0, 2}
	hi := []int64{2, 4}
	if _, ok := SelectInterval[elem.U64](u64c, acc, 6, lo, hi); ok {
		t.Fatal("expected bad intervals to be detected")
	}
	// A caller falling back to the full range must succeed.
	want := Select[elem.U64](u64c, acc, 6)
	if !slices.Equal(want, []int64{6, 0}) {
		t.Fatalf("full select got %v", want)
	}
}

func TestSelectIntervalProbeBudget(t *testing.T) {
	// The sampled external selection must probe far fewer elements than
	// the input (the paper's "negligible time" claim); every probe is
	// also confined to the bootstrap intervals, i.e. a handful of
	// blocks per run.
	rng := rand.New(rand.NewPCG(9, 9))
	k := 8
	seqs := make([][]elem.U64, k)
	for i := range seqs {
		seqs[i] = make([]elem.U64, 1<<12)
		for j := range seqs[i] {
			seqs[i][j] = elem.U64(rng.Uint64())
		}
		slices.Sort(seqs[i])
	}
	const sampleK = 64
	samples, lens := buildSamples(seqs, sampleK)
	ca := &CountingAccessor[elem.U64]{Inner: SliceAccessor[elem.U64](seqs)}
	total := Total[elem.U64](ca)
	lo, hi := BootstrapIntervals[elem.U64](u64c, samples, lens, total/2)
	pos, ok := SelectInterval[elem.U64](u64c, ca, total/2, lo, hi)
	if !ok {
		t.Fatal("bootstrap intervals rejected")
	}
	if err := CheckPartition[elem.U64](u64c, ca, total/2, pos); err != nil {
		t.Fatal(err)
	}
	if ca.Probes > total/8 {
		t.Errorf("selection probed %d of %d elements", ca.Probes, total)
	}
	// Probes must stay inside the bootstrap intervals (no far fetches).
	for q := range lo {
		width := hi[q] - lo[q]
		if width > int64((k+2)*sampleK*2+2) {
			t.Errorf("seq %d interval width %d larger than bound", q, width)
		}
	}
}

func TestPartitionMultipleRanks(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 13))
	seqs := randSeqs(rng, 4, 50, 20)
	acc := SliceAccessor[elem.U64](seqs)
	total := Total[elem.U64](acc)
	p := 5
	ranks := make([]int64, 0, p-1)
	for i := 1; i < p; i++ {
		ranks = append(ranks, int64(i)*total/int64(p))
	}
	cuts := Partition[elem.U64](u64c, seqs, ranks)
	// Cut positions must be monotone per sequence across ranks.
	for i := 1; i < len(cuts); i++ {
		for q := range cuts[i] {
			if cuts[i][q] < cuts[i-1][q] {
				t.Fatalf("cuts not monotone: rank %d seq %d", i, q)
			}
		}
	}
	for i, rank := range ranks {
		if err := CheckPartition[elem.U64](u64c, acc, rank, cuts[i]); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSelectRec100(t *testing.T) {
	// Exercise selection on SortBenchmark records too.
	c := elem.Rec100Codec{}
	rng := rand.New(rand.NewPCG(21, 22))
	seqs := make([][]elem.Rec100, 3)
	for i := range seqs {
		seqs[i] = make([]elem.Rec100, 64)
		for j := range seqs[i] {
			for b := 0; b < 10; b++ {
				seqs[i][j][b] = byte(rng.UintN(4)) // many duplicate keys
			}
		}
		slices.SortFunc(seqs[i], func(a, b elem.Rec100) int {
			if c.Less(a, b) {
				return -1
			}
			if c.Less(b, a) {
				return 1
			}
			return 0
		})
	}
	acc := SliceAccessor[elem.Rec100](seqs)
	total := Total[elem.Rec100](acc)
	for _, rank := range []int64{0, 1, total / 3, total / 2, total - 1, total} {
		pos := Select[elem.Rec100](c, acc, rank)
		if err := CheckPartition[elem.Rec100](c, acc, rank, pos); err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func BenchmarkSelect8x64k(b *testing.B) {
	rng := rand.New(rand.NewPCG(31, 32))
	seqs := make([][]elem.U64, 8)
	for i := range seqs {
		seqs[i] = make([]elem.U64, 1<<16)
		for j := range seqs[i] {
			seqs[i][j] = elem.U64(rng.Uint64())
		}
		slices.Sort(seqs[i])
	}
	acc := SliceAccessor[elem.U64](seqs)
	total := Total[elem.U64](acc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Select[elem.U64](u64c, acc, total/2)
	}
}

func BenchmarkStepHalving8x64k(b *testing.B) {
	rng := rand.New(rand.NewPCG(33, 34))
	seqs := make([][]elem.U64, 8)
	for i := range seqs {
		seqs[i] = make([]elem.U64, 1<<16)
		for j := range seqs[i] {
			seqs[i][j] = elem.U64(rng.Uint64())
		}
		slices.Sort(seqs[i])
	}
	acc := SliceAccessor[elem.U64](seqs)
	total := Total[elem.U64](acc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StepHalving[elem.U64](u64c, acc, total/2, nil, 1<<16)
	}
}
