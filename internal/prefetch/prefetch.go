// Package prefetch implements the prefetching machinery of Appendix A
// (and its background from Barve/Grove/Vitter and
// Hutchinson/Sanders/Vitter): given the prediction sequence — the
// order in which data blocks will be consumed by multiway merging —
// and the disk each block resides on, compute a schedule of parallel
// fetch steps (at most one block per disk per step) using a bounded
// prefetch buffer pool.
//
// Two schedulers are provided:
//
//   - Naive: fetch greedily in prediction order — simple, and good for
//     random block placements, but provably suboptimal in the worst
//     case unless Ω(D log D) buffers are available;
//   - Duality: the optimal algorithm of Hutchinson, Sanders and
//     Vitter, obtained by simulating *buffered writing* of the
//     reversed sequence (prefetching and queued writing are dual) —
//     optimal with any number of buffers ≥ D.
//
// The step counts of the two schedules are compared in the Appendix-A
// ablation benchmark.
package prefetch

// Schedule is a sequence of parallel I/O steps; Steps[t] lists the
// indices (into the prediction sequence) fetched at step t. Within a
// step all blocks reside on distinct disks.
type Schedule struct {
	Steps [][]int
}

// NumSteps returns the schedule length in parallel I/O steps.
func (s *Schedule) NumSteps() int { return len(s.Steps) }

// Naive computes the greedy prediction-order schedule: blocks are
// fetched in consumption order as soon as (a) their disk is free this
// step and (b) a buffer is available — where every block fetched but
// not yet consumed occupies one of the w buffers. Consumption happens
// in prediction order: block i is consumed once fetched and all blocks
// before it are consumed.
//
// disks[i] is the disk of prediction-sequence block i; d is the disk
// count and w >= 1 the number of prefetch buffers.
func Naive(disks []int, d, w int) Schedule {
	n := len(disks)
	fetched := make([]bool, n)
	consumed := 0 // blocks 0..consumed-1 are out of the buffer
	inBuf := 0
	var steps [][]int
	busy := make([]bool, d) // reused across steps: one allocation, cleared per round
	for consumed < n {
		clear(busy)
		var step []int
		// Greedy in prediction order over unfetched blocks.
		for i := consumed; i < n && inBuf+len(step) < w; i++ {
			if fetched[i] || busy[disks[i]] {
				continue
			}
			busy[disks[i]] = true
			step = append(step, i)
		}
		for _, i := range step {
			fetched[i] = true
		}
		inBuf += len(step)
		// Consume the maximal fetched prefix.
		for consumed < n && fetched[consumed] {
			consumed++
			inBuf--
		}
		steps = append(steps, step)
		if len(step) == 0 && consumed < n {
			// Buffer full but the head block is unfetched: this cannot
			// happen with w >= 1, since the head is always fetchable
			// next round — guard against schedule bugs.
			head := consumed
			steps[len(steps)-1] = []int{head}
			fetched[head] = true
			for consumed < n && fetched[consumed] {
				consumed++
			}
		}
	}
	return Schedule{Steps: steps}
}

// Duality computes the optimal prefetching schedule by simulating
// buffered writing of the reversed prediction sequence with w buffers
// and one queue per disk, then reversing the result (the
// prefetching/queued-writing duality of Hutchinson, Sanders and
// Vitter, SIAM J. Comput. 34(6)).
//
// In the (reversed) writing simulation, blocks enter a shared write
// buffer of size w in sequence order; whenever any queue is non-empty,
// one step outputs one block from every non-empty disk queue. The
// reversal of those output steps is an optimal prefetch schedule.
func Duality(disks []int, d, w int) Schedule {
	n := len(disks)
	var steps [][]int
	queued := make([][]int, d) // per-disk FIFO of block indices
	inBuf := 0
	next := n - 1 // next block (in reversed order) to admit
	for next >= 0 || inBuf > 0 {
		// Admit blocks into the write buffer while space remains.
		for next >= 0 && inBuf < w {
			q := disks[next]
			queued[q] = append(queued[q], next)
			inBuf++
			next--
		}
		// One output step: one block per non-empty queue.
		var step []int
		for q := 0; q < d; q++ {
			if len(queued[q]) > 0 {
				step = append(step, queued[q][0])
				queued[q] = queued[q][1:]
				inBuf--
			}
		}
		steps = append(steps, step)
	}
	// Reverse the steps to obtain the prefetch schedule.
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	return Schedule{Steps: steps}
}

// Valid checks that a schedule fetches every block exactly once, never
// two blocks of one disk in a step, never exceeds w live buffers, and
// never consumes a block before it is fetched (consumption is in
// prediction order as soon as the prefix is fetched). It returns false
// with a reason string for diagnostics.
func Valid(s Schedule, disks []int, d, w int) (bool, string) {
	n := len(disks)
	fetchStep := make([]int, n)
	for i := range fetchStep {
		fetchStep[i] = -1
	}
	busy := make([]bool, d) // reused across steps
	for t, step := range s.Steps {
		clear(busy)
		for _, i := range step {
			if i < 0 || i >= n {
				return false, "block index out of range"
			}
			if fetchStep[i] != -1 {
				return false, "block fetched twice"
			}
			if busy[disks[i]] {
				return false, "disk conflict within a step"
			}
			busy[disks[i]] = true
			fetchStep[i] = t
		}
	}
	for i, t := range fetchStep {
		if t == -1 {
			return false, "block never fetched"
		}
		_ = i
	}
	// Buffer occupancy: block i occupies a buffer from its fetch step
	// until the step at which the prefix 0..i is entirely fetched.
	consumeStep := make([]int, n)
	maxSoFar := -1
	for i := 0; i < n; i++ {
		if fetchStep[i] > maxSoFar {
			maxSoFar = fetchStep[i]
		}
		consumeStep[i] = maxSoFar
	}
	occ := make([]int, len(s.Steps)+1)
	for i := 0; i < n; i++ {
		occ[fetchStep[i]]++
		if consumeStep[i]+1 <= len(s.Steps) {
			occ[consumeStep[i]+1]--
		}
	}
	live := 0
	for t := range occ {
		live += occ[t]
		if live > w {
			return false, "buffer pool exceeded"
		}
	}
	return true, ""
}
