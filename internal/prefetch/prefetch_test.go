package prefetch

import (
	"math/rand/v2"
	"testing"
)

func randomDisks(rng *rand.Rand, n, d int) []int {
	disks := make([]int, n)
	for i := range disks {
		disks[i] = int(rng.Uint64N(uint64(d)))
	}
	return disks
}

func TestNaiveValid(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for iter := 0; iter < 50; iter++ {
		d := 2 + int(rng.Uint64N(6))
		w := d + int(rng.Uint64N(uint64(3*d)))
		disks := randomDisks(rng, 50+int(rng.Uint64N(200)), d)
		s := Naive(disks, d, w)
		if ok, why := Valid(s, disks, d, w); !ok {
			t.Fatalf("iter %d: naive schedule invalid: %s", iter, why)
		}
	}
}

func TestDualityValid(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for iter := 0; iter < 50; iter++ {
		d := 2 + int(rng.Uint64N(6))
		w := d + int(rng.Uint64N(uint64(3*d)))
		disks := randomDisks(rng, 50+int(rng.Uint64N(200)), d)
		s := Duality(disks, d, w)
		if ok, why := Valid(s, disks, d, w); !ok {
			t.Fatalf("iter %d: duality schedule invalid: %s", iter, why)
		}
	}
}

func TestDualityNeverWorseOnAdversarial(t *testing.T) {
	// A bursty placement (long same-disk stretches) is the classic
	// case where greedy prefetching wastes steps; the optimal duality
	// schedule must not be longer than naive on any input.
	rng := rand.New(rand.NewPCG(3, 3))
	for iter := 0; iter < 30; iter++ {
		d := 4
		w := 8
		n := 200
		disks := make([]int, n)
		// Bursts of length up to 10 on one disk.
		for i := 0; i < n; {
			disk := int(rng.Uint64N(uint64(d)))
			l := 1 + int(rng.Uint64N(10))
			for j := 0; j < l && i < n; j++ {
				disks[i] = disk
				i++
			}
		}
		ns := Naive(disks, d, w)
		ds := Duality(disks, d, w)
		if ok, why := Valid(ds, disks, d, w); !ok {
			t.Fatalf("duality invalid: %s", why)
		}
		if ds.NumSteps() > ns.NumSteps() {
			t.Fatalf("iter %d: duality %d steps > naive %d", iter, ds.NumSteps(), ns.NumSteps())
		}
	}
}

func TestLowerBoundPerDisk(t *testing.T) {
	// No schedule can beat the per-disk block count; duality should be
	// close to it with ample buffers.
	rng := rand.New(rand.NewPCG(4, 4))
	d := 4
	disks := randomDisks(rng, 400, d)
	perDisk := make([]int, d)
	for _, q := range disks {
		perDisk[q]++
	}
	lb := 0
	for _, c := range perDisk {
		if c > lb {
			lb = c
		}
	}
	s := Duality(disks, d, 4*d)
	if s.NumSteps() < lb {
		t.Fatalf("schedule of %d steps beats the %d-step lower bound", s.NumSteps(), lb)
	}
	if s.NumSteps() > lb+4*d {
		t.Errorf("duality took %d steps, lower bound %d — too far off", s.NumSteps(), lb)
	}
}

func TestSingleDiskDegenerates(t *testing.T) {
	disks := make([]int, 20)
	s := Duality(disks, 1, 4)
	if s.NumSteps() != 20 {
		t.Fatalf("single disk needs exactly n steps, got %d", s.NumSteps())
	}
	n := Naive(disks, 1, 4)
	if got, why := Valid(n, disks, 1, 4); !got {
		t.Fatal(why)
	}
}

func TestEmptySequence(t *testing.T) {
	s := Duality(nil, 4, 8)
	if s.NumSteps() != 0 {
		t.Fatal("empty sequence needs no steps")
	}
	s = Naive(nil, 4, 8)
	if s.NumSteps() != 0 {
		t.Fatal("empty sequence needs no steps")
	}
}
