package core

import (
	"bytes"
	"fmt"
	"sort"

	"demsort/internal/elem"
	"demsort/internal/psort"
)

// Validate checks a kept output against the original input: every PE's
// part is sorted, the parts concatenate to a globally sorted sequence,
// the partition is the exact canonical one (PE i holds ranks
// i·N/P … (i+1)·N/P), and the output is a permutation of the input
// (byte-exact multiset equality, so payloads survive too).
func (r *Result[T]) Validate(c elem.Codec[T], input [][]T) error {
	if r.Output == nil {
		return fmt.Errorf("core: Validate needs Config.KeepOutput")
	}
	var total int64
	for _, part := range input {
		total += int64(len(part))
	}
	if r.N != total {
		return fmt.Errorf("core: output has %d elements, input %d", r.N, total)
	}
	bounds := rankBounds(total, r.P)
	var flat []T
	for i, part := range r.Output {
		if int64(len(part)) != bounds[i+1]-bounds[i] {
			return fmt.Errorf("core: PE %d holds %d elements, canonical partition wants %d",
				i, len(part), bounds[i+1]-bounds[i])
		}
		if !elem.IsSorted(c, part) {
			return fmt.Errorf("core: PE %d output not sorted", i)
		}
		flat = append(flat, part...)
	}
	if !elem.IsSorted(c, flat) {
		return fmt.Errorf("core: concatenated output not globally sorted")
	}
	// Permutation check: sort a copy of the input and compare the
	// encodings as multisets per key. Equal keys may be permuted among
	// themselves (payload order within a key class is not specified),
	// so compare sorted encodings of each key class.
	var ref []T
	for _, part := range input {
		ref = append(ref, part...)
	}
	psort.Sort(c, ref, 4)
	if len(ref) != len(flat) {
		return fmt.Errorf("core: element count mismatch")
	}
	i := 0
	for i < len(ref) {
		j := i + 1
		for j < len(ref) && !c.Less(ref[i], ref[j]) && !c.Less(ref[j], ref[i]) {
			j++
		}
		if err := sameClass(c, ref[i:j], flat[i:j]); err != nil {
			return fmt.Errorf("core: key class at rank %d: %w", i, err)
		}
		i = j
	}
	return nil
}

// sameClass verifies two equal-key element sets are equal as multisets
// of encoded bytes.
func sameClass[T any](c elem.Codec[T], a, b []T) error {
	if len(a) != len(b) {
		return fmt.Errorf("class sizes differ: %d vs %d", len(a), len(b))
	}
	ea := encodeSorted(c, a)
	eb := encodeSorted(c, b)
	if !bytes.Equal(ea, eb) {
		return fmt.Errorf("element multisets differ")
	}
	return nil
}

func encodeSorted[T any](c elem.Codec[T], vs []T) []byte {
	sz := c.Size()
	rows := make([][]byte, len(vs))
	for i, v := range vs {
		rows[i] = make([]byte, sz)
		c.Encode(rows[i], v)
	}
	sort.Slice(rows, func(i, j int) bool { return bytes.Compare(rows[i], rows[j]) < 0 })
	out := make([]byte, 0, len(vs)*sz)
	for _, row := range rows {
		out = append(out, row...)
	}
	return out
}
