package core

import (
	"fmt"
	"io"

	"demsort/internal/blockio"
	"demsort/internal/cluster"
	"demsort/internal/cluster/sim"
	"demsort/internal/elem"
	"demsort/internal/vtime"
)

// Result reports a completed sort: per-PE per-phase resource usage
// (the raw material of every figure), derived global metrics, and —
// when requested — the sorted output.
type Result[T any] struct {
	// P is the machine size, N the total element count.
	P int
	N int64
	// ElemSize is the element size in bytes; BlockElems the block
	// size B in elements; Runs the number of global runs R.
	ElemSize   int
	BlockElems int
	Runs       int
	// SubOps is the number k of external all-to-all sub-operations.
	SubOps int
	// PhaseNames lists the accounted phases in order.
	PhaseNames []string
	// PerPE[rank][phase] is the measured per-phase resource usage.
	PerPE []map[string]*vtime.PhaseStats
	// Output[rank] is the sorted data of PE rank (only with
	// Config.KeepOutput).
	Output [][]T
	// OutputLens[rank] is the element count per PE (always set).
	OutputLens []int64
	// PeakMemElems and PeakDiskBlocks are per-PE high-water marks.
	PeakMemElems   []int64
	PeakDiskBlocks []int64
	// LoadPeakMemElems[rank] is the budget high-water mark at the end
	// of the load phase. A Source-fed load charges only its block-sized
	// staging buffer, so this stays O(B) no matter how large the tile
	// is (the membudget test pins it).
	LoadPeakMemElems []int64
	// RunFormPeakMemElems[rank] is the budget high-water mark at the
	// end of run formation, which now includes the in-node radix sort
	// scratch (pair buffers, histograms, and the LSD gather buffer —
	// the in-place MSD path has no gather buffer, which the membudget
	// test pins as roughly halved scratch). Zero when run formation
	// was restored from a checkpoint instead of executed.
	RunFormPeakMemElems []int64
	// EndMemElems[rank] is the memory budget still reserved when the
	// sort finished — always zero unless a phase leaks reservations
	// (tests assert this).
	EndMemElems []int64
}

// MaxWall returns the slowest PE's wall time for one phase — the
// quantity plotted in Figures 2, 4 and 6 (a phase ends at a barrier,
// so the machine moves at the pace of its slowest PE).
func (r *Result[T]) MaxWall(phase string) float64 {
	var w float64
	for _, st := range r.PerPE {
		if s, ok := st[phase]; ok && s.Wall > w {
			w = s.Wall
		}
	}
	return w
}

// TotalWall returns the sum of the per-phase maxima — the modelled
// running time of the sort.
func (r *Result[T]) TotalWall() float64 {
	var t float64
	for _, ph := range r.PhaseNames {
		t += r.MaxWall(ph)
	}
	return t
}

// PhaseBytes returns machine-wide (read, written) disk bytes in a
// phase; PhaseBytes(PhaseExchange) over N·ElemSize is Figure 5's
// y-axis.
func (r *Result[T]) PhaseBytes(phase string) (read, written int64) {
	for _, st := range r.PerPE {
		if s, ok := st[phase]; ok {
			read += s.BytesRead
			written += s.BytesWritten
		}
	}
	return read, written
}

// OverlapRatio returns the machine-wide overlap ratio of one phase:
// 1 − (summed blocked time)/(summed wall time) across the PEs, the
// share of the phase spent computing rather than stalled on the
// network or a peer. Zero when the phase recorded no wall time.
func (r *Result[T]) OverlapRatio(phase string) float64 {
	var wall, blocked float64
	for _, st := range r.PerPE {
		if s, ok := st[phase]; ok {
			wall += s.Wall
			blocked += s.BlockedTime
		}
	}
	if wall <= 0 {
		return 0
	}
	ratio := 1 - blocked/wall
	if ratio < 0 {
		return 0
	}
	return ratio
}

// NetBytes returns machine-wide bytes sent over the network in a
// phase (self-messages excluded): the communication-volume metric of
// the paper's "communicate the data only once" claim.
func (r *Result[T]) NetBytes(phase string) int64 {
	var b int64
	for _, st := range r.PerPE {
		if s, ok := st[phase]; ok {
			b += s.BytesSent
		}
	}
	return b
}

// releaseSamples returns the sample reservations of run formation
// (per-run local samples) and of gatherRunsMeta (the gathered global
// sample) once the splitters are exact — the samples are dead weight
// from here on, and holding them would leak a per-run budget share.
func releaseSamples[T any](n *cluster.Node, meta *runsMeta[T], locals []localRun[T]) {
	var sampleElems int64
	for i := range locals {
		sampleElems += int64(len(locals[i].sample))
		locals[i].sample = nil
	}
	for i := range meta.samples {
		sampleElems += int64(len(meta.samples[i].Vals))
		meta.samples[i].Vals = nil
	}
	n.Mem.Release(sampleElems)
}

// OpenSources opens the streaming input of every locally hosted rank
// up front (all P ranks when machine is nil, i.e. before a sim machine
// exists), so the per-rank element counts can drive the same
// sample/capacity sizing the slice lengths do; the readers themselves
// are only consumed inside the load phase. Shared by the canonical and
// striped sorters — the single place the Source contract is enforced.
func OpenSources(source func(rank int) (io.Reader, int64, error), machine cluster.Machine, p int) (map[int]io.Reader, map[int]int64, error) {
	readers := make(map[int]io.Reader)
	counts := make(map[int]int64)
	if source == nil {
		return readers, counts, nil
	}
	localRanks := make([]int, 0, p)
	if machine != nil {
		for _, node := range machine.Nodes() {
			localRanks = append(localRanks, node.Rank)
		}
	} else {
		for rank := 0; rank < p; rank++ {
			localRanks = append(localRanks, rank)
		}
	}
	for _, rank := range localRanks {
		r, cnt, err := source(rank)
		if err != nil {
			return nil, nil, fmt.Errorf("input source, rank %d: %w", rank, err)
		}
		if cnt < 0 {
			return nil, nil, fmt.Errorf("input source, rank %d: negative count %d", rank, cnt)
		}
		readers[rank] = r
		counts[rank] = cnt
	}
	return readers, counts, nil
}

// Sort runs CANONICALMERGESORT on the simulated cluster: input[i] is
// loaded onto PE i's local disks, and afterwards PE i holds the
// elements of global ranks (i·N/P, (i+1)·N/P] sorted on its local
// disks. The returned Result carries the per-phase measurements.
func Sort[T any](c elem.Codec[T], cfg Config, input [][]T) (*Result[T], error) {
	d, err := cfg.derive(c.Size())
	if err != nil {
		return nil, err
	}
	if cfg.Source == nil && len(input) != cfg.P {
		return nil, fmt.Errorf("core: input has %d PE slices, machine has %d PEs", len(input), cfg.P)
	}
	if cfg.Source != nil && input != nil {
		return nil, fmt.Errorf("core: Source and input slices are mutually exclusive")
	}
	if cfg.RealWorkers <= 0 {
		cfg.RealWorkers = 1
	}
	if cfg.Model == (vtime.CostModel{}) {
		cfg.Model = vtime.Default()
	}
	sources, sourceN, err := OpenSources(cfg.Source, cfg.Machine, cfg.P)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	var nPerPE int64
	for _, part := range input {
		if int64(len(part)) > nPerPE {
			nPerPE = int64(len(part))
		}
	}
	for _, cnt := range sourceN {
		if cnt > nPerPE {
			nPerPE = cnt
		}
	}
	if cfg.SampleK == 0 && cfg.MemElems > 0 {
		// Auto-size the sampling distance so the in-memory sample
		// (N/K elements on every PE) fits its budget share: K = B
		// when possible, coarser for large machines (the footnote-12
		// pressure).
		runs := (nPerPE + d.runLocal - 1) / d.runLocal
		if runs < 1 {
			runs = 1
		}
		k := int64(d.bElem)
		sample := func(k int64) int64 {
			return runs * ((d.runLocal*int64(cfg.P) + k - 1) / k)
		}
		for sample(k) > cfg.MemElems/8 {
			k = k*5/4 + 1
		}
		cfg.SampleK = k
		d.sampleK = k
	}
	if err := cfg.CheckCapacity(c.Size(), nPerPE); err != nil {
		return nil, err
	}
	if cfg.Checkpoint.Dir != "" && cfg.Checkpoint.JobID == "" {
		cfg.Checkpoint.JobID = "job"
	}

	m := cfg.Machine
	if m == nil {
		sm, err := sim.New(sim.Config{
			P:          cfg.P,
			BlockBytes: cfg.BlockBytes,
			MemElems:   cfg.MemElems,
			Model:      cfg.Model,
			NewStore:   cfg.NewStore,
		})
		if err != nil {
			return nil, err
		}
		defer sm.Close()
		m = sm
	} else if m.P() != cfg.P {
		return nil, fmt.Errorf("core: machine has %d PEs, config says %d", m.P(), cfg.P)
	}

	res := &Result[T]{
		P:          cfg.P,
		ElemSize:   c.Size(),
		BlockElems: d.bElem,
		PhaseNames: Phases(),
		PerPE:      make([]map[string]*vtime.PhaseStats, cfg.P),
		OutputLens: make([]int64, cfg.P),
	}
	if cfg.KeepOutput {
		res.Output = make([][]T, cfg.P)
	}
	res.PeakMemElems = make([]int64, cfg.P)
	res.PeakDiskBlocks = make([]int64, cfg.P)
	res.EndMemElems = make([]int64, cfg.P)
	res.LoadPeakMemElems = make([]int64, cfg.P)
	res.RunFormPeakMemElems = make([]int64, cfg.P)
	runsSeen := make([]int, cfg.P)
	subOps := make([]int, cfg.P)
	totalN := make([]int64, cfg.P)

	err = m.Run(func(n *cluster.Node) error {
		n.SetPhase(PhaseLoad)

		// Resume negotiation: each rank reads its own committed phase,
		// and the fleet agrees on the minimum with one collective — a
		// rank whose commit raced ahead of the crash downgrades, a rank
		// with no manifest downgrades everyone to a fresh start. A
		// fresh durable run instead clears any stale manifest so a
		// crash before the first commit cannot adopt a dead
		// incarnation's checkpoint.
		durable := cfg.Checkpoint.Dir != ""
		var man *blockio.Manifest
		resumeLvl := ckptNone
		if durable {
			if cfg.Checkpoint.Resume {
				var lvl int64
				var err error
				man, lvl, err = loadCkpt(cfg.Checkpoint, n.Rank, cfg.P, c.Size(), cfg.BlockBytes)
				if err != nil {
					return err
				}
				resumeLvl = n.AllReduceInt64(lvl, "min")
				if resumeLvl < ckptRunform {
					man = nil
				}
			} else if err := blockio.RemoveManifest(cfg.Checkpoint.Dir, n.Rank); err != nil {
				return fmt.Errorf("core: clearing stale manifest, rank %d: %w", n.Rank, err)
			}
		}

		var locals []localRun[T]
		var meta *runsMeta[T]
		if resumeLvl >= ckptRunform {
			// The runs are already on disk: rebuild the directory from
			// the manifest without touching the input source.
			var err error
			locals, meta, err = restoreRunform(c, n, d, man)
			if err != nil {
				return err
			}
			res.LoadPeakMemElems[n.Rank] = n.Mem.Peak()
			n.Barrier()
			n.Vol.ResetPeak()
		} else {
			// Load the input onto the local disks (outside the measured
			// sort: the paper's inputs pre-exist on disk). A Source streams
			// the encoded tile block-at-a-time straight onto the volume —
			// the only load-phase memory is the staging block it charges.
			var in File
			if cfg.Source != nil {
				// Overlapped loading stages up to three chunks (two in
				// the reader goroutine's bounded channel, one being
				// written) instead of one.
				stage := int64(d.bElem)
				if cfg.Overlap {
					stage = 3 * int64(d.bElem)
				}
				n.Mem.MustAcquire(stage)
				var err error
				in, err = loadStream(c, n.Vol, sources[n.Rank], sourceN[n.Rank], cfg.Overlap)
				n.Mem.Release(stage)
				if err != nil {
					return fmt.Errorf("core: input source, rank %d: %w", n.Rank, err)
				}
			} else {
				lw := newWriter(c, n.Vol)
				lw.addSlice(input[n.Rank])
				in = lw.finish()
			}
			n.Vol.Drain()
			res.LoadPeakMemElems[n.Rank] = n.Mem.Peak()
			n.Barrier()
			n.Vol.ResetPeak()

			var err error
			locals, err = runFormation(c, n, &cfg, d, in)
			if err != nil {
				return err
			}
			res.RunFormPeakMemElems[n.Rank] = n.Mem.Peak()
			meta = gatherRunsMeta(c, n, d, locals)
			if durable {
				man, err = commitRunform(c, n, &cfg, d, meta, locals)
				if err != nil {
					return err
				}
				// No rank enters selection until every rank's commit is
				// on disk — without this, a crash early in selection can
				// abort a straggler mid-commit and downgrade the whole
				// fleet's resume to a full re-read.
				n.Barrier()
			}
		}
		runsSeen[n.Rank] = len(locals)

		var split [][]int64
		if resumeLvl >= ckptSelection {
			// The splitter matrix is identical on every rank and tiny —
			// reuse the committed copy instead of re-running selection.
			split = man.Splitters
		} else {
			var err error
			split, err = multiwaySelection(c, n, &cfg, d, meta, locals)
			if err != nil {
				return err
			}
			if durable {
				if err := commitSelection(&cfg, n, man, split); err != nil {
					return err
				}
				// Same fencing as the run-formation commit: a crash in
				// the exchange must find every selection commit durable.
				n.Barrier()
			}
		}
		releaseSamples(n, meta, locals)

		pieces, k, err := exchange(c, n, &cfg, d, meta, locals, split)
		if err != nil {
			return err
		}
		subOps[n.Rank] = k

		out, err := mergeLocal(c, n, &cfg, d, pieces)
		if err != nil {
			return err
		}

		// Post-sort bookkeeping, outside the measured phases.
		n.SetPhase("collect")
		totalN[n.Rank] = n.AllReduceInt64(out.N, "sum")
		res.OutputLens[n.Rank] = out.N
		if cfg.KeepOutput || cfg.Sink != nil {
			// One pass over the store feeds both consumers: the Sink
			// gets each encoded extent, KeepOutput decodes the same
			// buffer — the output is never read twice.
			var kept []T
			if cfg.KeepOutput {
				kept = make([]T, 0, out.N)
			}
			err := streamRaw(c, n.Vol, out, cfg.Overlap, func(b []byte) error {
				if cfg.KeepOutput {
					kept = elem.AppendDecode(c, kept, b, len(b)/c.Size())
				}
				if cfg.Sink != nil {
					return cfg.Sink(n.Rank, b)
				}
				return nil
			})
			if err != nil {
				return fmt.Errorf("core: output sink, rank %d: %w", n.Rank, err)
			}
			if cfg.KeepOutput {
				res.Output[n.Rank] = kept
			}
		}
		res.PeakMemElems[n.Rank] = n.Mem.Peak()
		res.PeakDiskBlocks[n.Rank] = n.Vol.PeakUsed()
		res.EndMemElems[n.Rank] = n.Mem.Used()
		return nil
	})
	if err != nil {
		return nil, err
	}

	for _, node := range m.Nodes() {
		_, stats := node.PhaseStats()
		res.PerPE[node.Rank] = stats
	}
	local0 := m.Nodes()[0].Rank
	res.N = totalN[local0]
	res.Runs = runsSeen[local0]
	res.SubOps = subOps[local0]
	return res, nil
}
