package core

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"

	"demsort/internal/bufpool"
	"demsort/internal/cluster"
	"demsort/internal/elem"
	"demsort/internal/mselect"
)

// runsMeta is the per-PE view of the global run directory after phase
// 1: for every run, the segment boundaries of all PEs and the full
// in-memory sample (every K-th run position), gathered once.
type runsMeta[T any] struct {
	runLens   []int64   // length of each run
	segStarts [][]int64 // [run][pe] global start of pe's segment
	segLens   [][]int64 // [run][pe]
	samples   []mselect.Sample[T]
	totalN    int64
}

// gatherRunsMeta exchanges segment lengths and samples so every PE can
// bootstrap selections locally. The sample lives in main memory, as in
// the paper ("In our implementation, we keep the sample in main
// memory").
func gatherRunsMeta[T any](c elem.Codec[T], n *cluster.Node, d derived, locals []localRun[T]) *runsMeta[T] {
	r := len(locals)
	sz := c.Size()
	// Wire format: for each run, 8B segLen, 4B sample count, samples.
	var buf []byte
	for _, lr := range locals {
		var tmp [12]byte
		binary.LittleEndian.PutUint64(tmp[:8], uint64(lr.segLen))
		binary.LittleEndian.PutUint32(tmp[8:], uint32(len(lr.sample)))
		buf = append(buf, tmp[:]...)
		buf = elem.AppendEncode(c, buf, lr.sample)
	}
	all := n.AllGather(buf)

	m := &runsMeta[T]{
		runLens:   make([]int64, r),
		segStarts: make([][]int64, r),
		segLens:   make([][]int64, r),
		samples:   make([]mselect.Sample[T], r),
	}
	offs := make([]int, n.P)
	for ri := 0; ri < r; ri++ {
		m.segStarts[ri] = make([]int64, n.P)
		m.segLens[ri] = make([]int64, n.P)
		var pos int64
		var sample []T
		for pe := 0; pe < n.P; pe++ {
			b := all[pe][offs[pe]:]
			segLen := int64(binary.LittleEndian.Uint64(b[:8]))
			cnt := int(binary.LittleEndian.Uint32(b[8:12]))
			sample = elem.AppendDecode(c, sample, b[12:], cnt)
			offs[pe] += 12 + cnt*sz
			m.segStarts[ri][pe] = pos
			m.segLens[ri][pe] = segLen
			pos += segLen
		}
		m.runLens[ri] = pos
		m.samples[ri] = mselect.Sample[T]{K: d.sampleK, Vals: sample}
		m.totalN += pos
		n.Mem.MustAcquire(int64(len(sample)))
	}
	return m
}

// fetchKey identifies one remote block probe: block index blk of PE
// owner's segment of run r.
type fetchKey struct {
	run   int
	owner int
	blk   int64
}

// probeAccessor serves mselect element probes against the distributed
// runs: sample positions are free (in memory), everything else reads
// the block containing the position — locally, or from the owner
// through the synchronous request rounds — with an owner-block cache
// (§IV-A: "we cache the most recently accessed disk blocks").
type probeAccessor[T any] struct {
	c      elem.Codec[T]
	n      *cluster.Node
	d      derived
	meta   *runsMeta[T]
	locals []localRun[T]
	// fetch and fetchBatch retrieve remote blocks through the
	// synchronous round loop.
	fetch      func(fetchKey) []T
	fetchBatch func([]fetchKey) [][]T

	cache    map[fetchKey][]T
	cacheSeq []fetchKey
	cacheCap int
	// Counters for tests and reports.
	localReads  int64
	remoteReads int64
	sampleHits  int64
}

func (a *probeAccessor[T]) Seqs() int       { return len(a.meta.runLens) }
func (a *probeAccessor[T]) Len(s int) int64 { return a.meta.runLens[s] }

func (a *probeAccessor[T]) At(s int, i int64) T {
	// Sample positions are free.
	if i%a.d.sampleK == 0 {
		idx := i / a.d.sampleK
		if idx < int64(len(a.meta.samples[s].Vals)) {
			a.sampleHits++
			return a.meta.samples[s].Vals[idx]
		}
	}
	// Locate the owning PE and block.
	pe := sort.Search(a.n.P, func(p int) bool {
		return a.meta.segStarts[s][p]+a.meta.segLens[s][p] > i
	})
	local := i - a.meta.segStarts[s][pe]
	blk := local / int64(a.d.bElem)
	key := fetchKey{run: s, owner: pe, blk: blk}
	vals, ok := a.cache[key]
	if !ok {
		if pe == a.n.Rank {
			vals = a.readLocalBlock(s, blk)
			a.localReads++
		} else {
			vals = a.fetch(key)
			a.remoteReads++
		}
		a.cachePut(key, vals)
	}
	return vals[local-blk*int64(a.d.bElem)]
}

func (a *probeAccessor[T]) readLocalBlock(run int, blk int64) []T {
	e := a.locals[run].file.Extents[blk]
	raw := bufpool.Get(e.Len * a.c.Size())
	a.n.Vol.ReadWait(e.ID, raw)
	vals := elem.DecodeSlice(a.c, raw, e.Len)
	bufpool.Put(raw)
	return vals
}

// prefetchAround fetches, in one batched round, the block containing
// each run's estimated cut position plus its neighbours, warming the
// cache before the selection walk.
func (a *probeAccessor[T]) prefetchAround(cuts []int64) {
	var keys []fetchKey
	seen := map[fetchKey]bool{}
	fetched := 0
	// Center blocks first, then neighbours, and never more than the
	// cache can hold (tight memory budgets shrink the warm-up, not
	// correctness).
	for ring := 0; ring < 2; ring++ {
		for s, cut := range cuts {
			var poss []int64
			if ring == 0 {
				poss = []int64{cut}
			} else {
				poss = []int64{cut - int64(a.d.bElem), cut + int64(a.d.bElem)}
			}
			for _, pos := range poss {
				if pos < 0 || pos >= a.meta.runLens[s] || fetched >= a.cacheCap {
					continue
				}
				pe := sort.Search(a.n.P, func(p int) bool {
					return a.meta.segStarts[s][p]+a.meta.segLens[s][p] > pos
				})
				local := pos - a.meta.segStarts[s][pe]
				key := fetchKey{run: s, owner: pe, blk: local / int64(a.d.bElem)}
				if seen[key] || a.cache[key] != nil {
					continue
				}
				seen[key] = true
				fetched++
				if pe == a.n.Rank {
					a.cachePut(key, a.readLocalBlock(s, key.blk))
					a.localReads++
					continue
				}
				keys = append(keys, key)
			}
		}
	}
	if len(keys) == 0 {
		return
	}
	blocks := a.fetchBatch(keys) // one batched round through the node loop
	for i, k := range keys {
		a.cachePut(k, blocks[i])
		a.remoteReads++
	}
}

func (a *probeAccessor[T]) cachePut(key fetchKey, vals []T) {
	if len(a.cacheSeq) >= a.cacheCap {
		old := a.cacheSeq[0]
		a.cacheSeq = a.cacheSeq[1:]
		delete(a.cache, old)
	}
	a.cache[key] = vals
	a.cacheSeq = append(a.cacheSeq, key)
}

// multiwaySelection is phase 2a: PE i computes the exact splitter
// positions of rank i·N/P in every run, bootstrapped from the sample;
// the handful of disk probes run in synchronous request/serve rounds
// so every PE both refines its own splitters and serves blocks to the
// others. The returned matrix (identical on every PE) has P+1 rows:
// splitters[i][r] is the first run-r position belonging to PE i.
func multiwaySelection[T any](c elem.Codec[T], n *cluster.Node, cfg *Config, d derived, meta *runsMeta[T], locals []localRun[T]) ([][]int64, error) {
	n.SetPhase(PhaseSelection)
	r := len(meta.runLens)
	bounds := rankBounds(meta.totalN, n.P)

	reqCh := make(chan []fetchKey)
	resCh := make(chan [][]T)
	doneCh := make(chan []int64, 1)
	// quitCh unblocks the selector goroutine if this PE unwinds with a
	// panic (e.g. a peer-failure abort) while the selector is parked in
	// fetchBatch — otherwise it would leak, pinned to reqCh/resCh.
	quitCh := make(chan struct{})
	defer close(quitCh)

	cacheCap := 6*r + 6
	if cfg.MemElems > 0 {
		if byBudget := int(cfg.MemElems / 4 / int64(d.bElem)); byBudget < cacheCap {
			cacheCap = byBudget
		}
		if cacheCap < 2 {
			cacheCap = 2
		}
	}
	acc := &probeAccessor[T]{
		c:        c,
		n:        n,
		d:        d,
		meta:     meta,
		locals:   locals,
		cache:    map[fetchKey][]T{},
		cacheCap: cacheCap,
	}
	acc.fetchBatch = func(ks []fetchKey) [][]T {
		select {
		case reqCh <- ks:
		case <-quitCh:
			runtime.Goexit()
		}
		select {
		case res := <-resCh:
			return res
		case <-quitCh:
			runtime.Goexit()
		}
		panic("unreachable")
	}
	acc.fetch = func(k fetchKey) []T {
		return acc.fetchBatch([]fetchKey{k})[0]
	}
	n.Mem.MustAcquire(int64(acc.cacheCap) * int64(d.bElem))
	defer n.Mem.Release(int64(acc.cacheCap) * int64(d.bElem))

	active := n.Rank != 0
	if active {
		go func() {
			myRank := bounds[n.Rank]
			lens := make([]int64, r)
			copy(lens, meta.runLens)
			// Bootstrap from the sample (§IV-A: "this sample is used to
			// find initial values for the approximate splitters"),
			// prefetch the blocks around each estimated cut in one
			// batched round, then run the paper's step-halving walk
			// with step size K. The walk only probes near the final
			// positions, so it works out of the warm cache; its fixup
			// stage makes the result exact unconditionally.
			cuts := mselect.SampleCuts(c, meta.samples, lens, myRank)
			acc.prefetchAround(cuts)
			doneCh <- mselect.StepHalving[T](c, acc, myRank, cuts, d.sampleK)
		}()
	}

	var myCuts []int64
	var pending []fetchKey
	done := !active
	awaitSelector := func() {
		select {
		case ks := <-reqCh:
			pending = ks
		case pos := <-doneCh:
			myCuts = pos
			done = true
		}
	}
	if active {
		awaitSelector()
	}
	for {
		flag := int64(0)
		if len(pending) > 0 {
			flag = 1
		}
		if n.AllReduceInt64(flag, "or") == 0 {
			break
		}
		// Request round: a batch of block requests per PE.
		reqs := make([][]byte, n.P)
		for _, k := range pending {
			var b [12]byte
			binary.LittleEndian.PutUint32(b[:4], uint32(k.run))
			binary.LittleEndian.PutUint64(b[4:], uint64(k.blk))
			reqs[k.owner] = append(reqs[k.owner], b[:]...)
		}
		got := n.AllToAllv(reqs)
		// Serve round: read the requested local blocks; replies are
		// length-prefixed because block sizes vary at run tails.
		reps := make([][]byte, n.P)
		var serveRaw []byte // reused serve-side read buffer
		for q := 0; q < n.P; q++ {
			buf := got[q]
			for len(buf) >= 12 {
				run := int(binary.LittleEndian.Uint32(buf[:4]))
				blk := int64(binary.LittleEndian.Uint64(buf[4:12]))
				buf = buf[12:]
				e := locals[run].file.Extents[blk]
				need := e.Len * c.Size()
				if cap(serveRaw) < need {
					bufpool.Put(serveRaw)
					serveRaw = bufpool.Get(need)
				}
				serveRaw = serveRaw[:need]
				n.Vol.ReadWait(e.ID, serveRaw)
				var hdr [4]byte
				binary.LittleEndian.PutUint32(hdr[:], uint32(e.Len))
				reps[q] = append(reps[q], hdr[:]...)
				reps[q] = append(reps[q], serveRaw...)
			}
		}
		bufpool.Put(serveRaw)
		back := n.AllToAllv(reps)
		if len(pending) > 0 {
			// Replies arrive grouped per owner in request order.
			offs := make(map[int]int)
			blocks := make([][]T, len(pending))
			for i, k := range pending {
				buf := back[k.owner][offs[k.owner]:]
				cnt := int(binary.LittleEndian.Uint32(buf[:4]))
				blocks[i] = elem.DecodeSlice(c, buf[4:], cnt)
				offs[k.owner] += 4 + cnt*c.Size()
			}
			resCh <- blocks
			pending = nil
			awaitSelector()
		}
		cluster.RecycleRecv(got)
		cluster.RecycleRecv(back)
	}
	if active && !done {
		return nil, fmt.Errorf("core: selection protocol ended with selector still pending on PE %d", n.Rank)
	}

	// Share the splitters: "After communicating the splitter positions
	// ... every PE knows the elements it has to merge."
	buf := make([]byte, 0, 8*r)
	if active {
		for _, p := range myCuts {
			buf = appendU64(buf, uint64(p))
		}
	}
	all := n.AllGather(buf)
	split := make([][]int64, n.P+1)
	split[0] = make([]int64, r)
	split[n.P] = make([]int64, r)
	copy(split[n.P], meta.runLens)
	for i := 1; i < n.P; i++ {
		split[i] = make([]int64, r)
		for ri := 0; ri < r; ri++ {
			split[i][ri] = int64(binary.LittleEndian.Uint64(all[i][ri*8:]))
		}
	}
	return split, nil
}

func appendU64(b []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(b, tmp[:]...)
}
