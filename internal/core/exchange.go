package core

import (
	"fmt"

	"demsort/internal/bufpool"
	"demsort/internal/cluster"
	"demsort/internal/elem"
)

// streamSeg is one contiguous piece of a (sender → receiver) data
// stream: elements [lo, hi) of the sender's local segment of run r.
// Streams are assembled run-major ("consuming all the participating
// data of run i before switching to run i+1", §IV-C).
type streamSeg struct {
	run    int
	lo, hi int64 // local positions within the sender's segment (send side)
}

// exchange is phase 2b, the external all-to-all (§IV-C): every PE
// sends each other PE the parts of its run segments that belong there
// under the splitters, in k memory-sized sub-operations. Data destined
// for the PE itself is relabelled in place — whole blocks move with
// zero I/O, which is why the all-to-all is nearly free for random
// inputs (Figure 5). The result is, per run, this PE's sorted
// destination range as a local file.
func exchange[T any](c elem.Codec[T], n *cluster.Node, cfg *Config, d derived, meta *runsMeta[T], locals []localRun[T], split [][]int64) ([]File, int, error) {
	n.SetPhase(PhaseExchange)
	me := n.Rank
	r := len(locals)
	sz := c.Size()
	bElem := int64(d.bElem)
	// Durable mode keeps the run blocks intact so a resumed fleet can
	// re-run the exchange from the run-formation checkpoint: fully-sent
	// blocks are not freed and kept extents never take ownership (the
	// merge would recycle owned blocks). The price is that the sort is
	// no longer in-place on disk.
	durable := cfg.Checkpoint.Dir != ""

	// ----- Plan -----
	// Send streams: for dest q, the run-major list of my segment
	// pieces that belong to q (excluding q == me, which is kept).
	sendSegs := make([][]streamSeg, n.P)
	sendTotal := make([]int64, n.P)
	// Kept ranges per run (local positions within my segment).
	keptLo := make([]int64, r)
	keptHi := make([]int64, r)
	for ri := 0; ri < r; ri++ {
		segStart := locals[ri].segStart
		segEnd := segStart + locals[ri].segLen
		for q := 0; q < n.P; q++ {
			lo := max64(split[q][ri], segStart)
			hi := min64(split[q+1][ri], segEnd)
			if lo >= hi {
				if q == me {
					keptLo[ri], keptHi[ri] = 0, 0
				}
				continue
			}
			if q == me {
				keptLo[ri], keptHi[ri] = lo-segStart, hi-segStart
				continue
			}
			sendSegs[q] = append(sendSegs[q], streamSeg{run: ri, lo: lo - segStart, hi: hi - segStart})
			sendTotal[q] += hi - lo
		}
	}
	// Receive streams: from src p, the run-major piece lengths.
	recvSegs := make([][]streamSeg, n.P)
	recvTotal := make([]int64, n.P)
	for p := 0; p < n.P; p++ {
		if p == me {
			continue
		}
		for ri := 0; ri < r; ri++ {
			segStart := meta.segStarts[ri][p]
			segEnd := segStart + meta.segLens[ri][p]
			lo := max64(split[me][ri], segStart)
			hi := min64(split[me+1][ri], segEnd)
			if lo < hi {
				recvSegs[p] = append(recvSegs[p], streamSeg{run: ri, lo: 0, hi: hi - lo})
				recvTotal[p] += hi - lo
			}
		}
	}

	// Sub-operation count k from the memory budget: each sub-operation
	// stages at most quota elements on each side.
	var sendSum, recvSum int64
	for q := 0; q < n.P; q++ {
		sendSum += sendTotal[q]
		recvSum += recvTotal[q]
	}
	myMove := max64(sendSum, recvSum)
	maxMove := n.AllReduceInt64(myMove, "max")
	quota := int64(1) << 62
	if cfg.MemElems > 0 {
		quota = cfg.MemElems / 4
	}
	k := int((maxMove + quota - 1) / quota)
	if k < 1 {
		k = 1
	}

	// In-place block recycling: per (run, block), how many elements
	// will be sent away; blocks with no kept overlap are freed once
	// fully consumed.
	sendLeft := make([][]int32, r)
	keptTouch := make([][]bool, r)
	for ri := 0; ri < r; ri++ {
		nb := len(locals[ri].file.Extents)
		sendLeft[ri] = make([]int32, nb)
		keptTouch[ri] = make([]bool, nb)
		segLen := locals[ri].segLen
		for b := 0; b < nb; b++ {
			bLo := int64(b) * bElem
			bHi := min64(bLo+bElem, segLen)
			kOv := max64(0, min64(keptHi[ri], bHi)-max64(keptLo[ri], bLo))
			sendLeft[ri][b] = int32(bHi - bLo - kOv)
			keptTouch[ri][b] = kOv > 0
		}
	}

	// Per-(run, src) receive writers; resumed/suspended around
	// sub-operations so only actively-filled partial blocks occupy
	// memory — the flush/reload is the paper's "partially filled
	// blocks" overhead (temporary disk overhead R·P′ blocks).
	writers := make([]map[int]*writer[T], r)
	for ri := range writers {
		writers[ri] = map[int]*writer[T]{}
	}

	// One-block read cache for assembling send windows (adjacent
	// windows share boundary blocks).
	type cacheKey struct {
		run int
		blk int64
	}
	lastKey := cacheKey{-1, -1}
	var lastVals []T // reused decode buffer; valid until the next readBlock
	readBlock := func(ri int, blk int64) []T {
		key := cacheKey{ri, blk}
		if key == lastKey {
			return lastVals
		}
		e := locals[ri].file.Extents[blk]
		raw := bufpool.Get(e.Len * sz)
		n.Vol.ReadWait(e.ID, raw)
		lastKey = key
		lastVals = elem.AppendDecode(c, lastVals[:0], raw, e.Len)
		bufpool.Put(raw)
		return lastVals
	}

	// Overlapped mode pipelines the sub-operations over an A2AStream
	// with a 2-exchange window: sub-op s+1's send windows are read off
	// disk and encoded while sub-op s is still on the wire, so encode
	// and transfer overlap (§IV-E). The budget grows from two staged
	// sub-op quotas (send + recv) to three (send in flight, next send,
	// recv); k = 1 has nothing to pipeline.
	overlap := cfg.Overlap && n.P > 1 && k > 1
	budget := 2 * quota
	if overlap {
		budget = 3 * quota
	}
	if cfg.MemElems > 0 {
		n.Mem.MustAcquire(budget)
		defer n.Mem.Release(budget)
	}

	// ----- Execute k sub-operations -----
	// buildSend assembles sub-op s's send vectors (sequentially, in
	// sub-op order: it advances the per-block send accounting and the
	// read cache); process consumes sub-op s's receives. The overlapped
	// and synchronous paths below run exactly the same calls in the same
	// per-PE order, so their output is byte-identical.
	buildSend := func(s int) [][]byte {
		send := make([][]byte, n.P)
		for q := 0; q < n.P; q++ {
			if q == me || sendTotal[q] == 0 {
				continue
			}
			wLo := sendTotal[q] * int64(s) / int64(k)
			wHi := sendTotal[q] * int64(s+1) / int64(k)
			if wLo >= wHi {
				continue
			}
			buf := bufpool.Get(int(wHi-wLo) * sz)[:0]
			pos := int64(0)
			for _, seg := range sendSegs[q] {
				segN := seg.hi - seg.lo
				a := max64(wLo-pos, 0)
				b := min64(wHi-pos, segN)
				pos += segN
				if a >= b {
					continue
				}
				// Read the covering blocks of [seg.lo+a, seg.lo+b).
				from, to := seg.lo+a, seg.lo+b
				for blk := from / bElem; blk*bElem < to; blk++ {
					vals := readBlock(seg.run, blk)
					bLo := blk * bElem
					l := max64(from, bLo) - bLo
					h := min64(to, bLo+int64(len(vals))) - bLo
					buf = elem.AppendEncode(c, buf, vals[l:h])
					sendLeft[seg.run][blk] -= int32(h - l)
					if sendLeft[seg.run][blk] == 0 && !keptTouch[seg.run][blk] && !durable {
						ext := locals[seg.run].file.Extents[blk]
						n.Vol.Free(ext.ID)
						if key := (cacheKey{seg.run, blk}); key == lastKey {
							lastKey = cacheKey{-1, -1}
						}
					}
				}
			}
			send[q] = buf
			n.AddCPU(cfg.Model.ScanCPU((wHi - wLo)))
		}
		return send
	}
	var decScratch []T // reused staging buffer for received pieces
	process := func(s int, recv [][]byte) error {
		for p := 0; p < n.P; p++ {
			if p == me || len(recv[p]) == 0 {
				continue
			}
			wLo := recvTotal[p] * int64(s) / int64(k)
			wHi := recvTotal[p] * int64(s+1) / int64(k)
			if int64(len(recv[p])/sz) != wHi-wLo {
				return fmt.Errorf("core: PE %d sub-op %d: got %d elements from %d, want %d",
					me, s, len(recv[p])/sz, p, wHi-wLo)
			}
			data := recv[p]
			pos := int64(0)
			off := int64(0)
			for _, seg := range recvSegs[p] {
				segN := seg.hi - seg.lo
				a := max64(wLo-pos, 0)
				b := min64(wHi-pos, segN)
				pos += segN
				if a >= b {
					continue
				}
				w := writers[seg.run][p]
				if w == nil {
					w = newWriter(c, n.Vol)
					writers[seg.run][p] = w
				}
				w.resume()
				cnt := int(b - a)
				decScratch = elem.AppendDecode(c, decScratch[:0], data[off*int64(sz):(off+int64(cnt))*int64(sz)], cnt)
				w.addSlice(decScratch)
				off += int64(cnt)
			}
			n.AddCPU(cfg.Model.ScanCPU(wHi - wLo))
		}
		cluster.RecycleRecv(recv)
		// Sub-operation boundary: flush all partial receive blocks.
		for ri := range writers {
			for _, w := range writers[ri] {
				w.suspend()
			}
		}
		return nil
	}
	if overlap {
		st := n.OpenA2AStream(2)
		defer st.Close() // idempotent; releases the sender on error unwinds
		st.Post(buildSend(0))
		for s := 0; s < k; s++ {
			if s+1 < k {
				st.Post(buildSend(s + 1))
			}
			if err := process(s, st.Collect()); err != nil {
				return nil, 0, err
			}
		}
		st.Close()
	} else {
		for s := 0; s < k; s++ {
			if err := process(s, n.AllToAllv(buildSend(s))); err != nil {
				return nil, 0, err
			}
		}
	}

	// ----- Assemble per-run output files -----
	out := make([]File, r)
	for ri := 0; ri < r; ri++ {
		var f File
		appendRecv := func(p int) {
			if w := writers[ri][p]; w != nil {
				rf := w.finish()
				for _, e := range rf.Extents {
					f.Append(e)
				}
			}
		}
		for p := 0; p < me; p++ {
			appendRecv(p)
		}
		// Kept range: relabel the covering extents in place, trimmed at
		// the boundaries. Blocks fully inside the kept range transfer
		// ownership; boundary blocks shared with sent data are not
		// freeable (the bounded space overhead of in-place operation).
		lo, hi := keptLo[ri], keptHi[ri]
		for blk := lo / bElem; blk*bElem < hi; blk++ {
			ext := locals[ri].file.Extents[blk]
			bLo := blk * bElem
			l := max64(lo, bLo) - bLo
			h := min64(hi, bLo+int64(ext.Len)) - bLo
			if l >= h {
				continue
			}
			full := l == 0 && h == int64(ext.Len)
			f.Append(Extent{ID: ext.ID, Off: int(l), Len: int(h - l), Own: full && !durable})
		}
		for p := me + 1; p < n.P; p++ {
			appendRecv(p)
		}
		want := split[me+1][ri] - split[me][ri]
		if f.N != want {
			return nil, 0, fmt.Errorf("core: run %d: PE %d assembled %d elements, want %d", ri, me, f.N, want)
		}
		out[ri] = f
	}
	n.Vol.Drain()
	n.Barrier()
	return out, k, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
