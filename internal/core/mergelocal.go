package core

import (
	"demsort/internal/cluster"
	"demsort/internal/elem"
	"demsort/internal/pq"
)

// mergeLocal is phase 3 (§IV third phase): every PE merges its R
// sorted run pieces into the final output file, reading and writing
// each element exactly once with no communication. Input blocks are
// prefetched one extent ahead per run (overlapping I/O with merging)
// and deallocated as soon as they are consumed, so the output can
// recycle them — the (nearly) in-place operation of §IV-E.
//
// With a single run the piece already is the sorted output and the
// phase costs no I/O at all; together with run formation that gives
// the "only 2 I/Os per block" behaviour the paper notes for N < M
// (the MinuteSort regime).
func mergeLocal[T any](c elem.Codec[T], n *cluster.Node, cfg *Config, d derived, files []File) (File, error) {
	n.Clock.SetPhase(PhaseMerge)
	if len(files) == 1 {
		n.Barrier()
		return files[0], nil
	}

	r := len(files)
	// 2 blocks per run (current + prefetch) plus the output buffer.
	if cfg.MemElems > 0 {
		n.Mem.MustAcquire(int64(2*r+1) * int64(d.bElem))
		defer n.Mem.Release(int64(2*r+1) * int64(d.bElem))
	}

	readers := make([]*reader[T], r)
	heads := make([]T, r)
	live := make([]bool, r)
	for i, f := range files {
		readers[i] = newReader(c, n.Vol, f, true, cfg.Overlap)
		if v, ok := readers[i].next(); ok {
			heads[i], live[i] = v, true
		}
	}
	lt := pq.NewLoserTree(r, heads, live, c.Less)
	w := newWriter(c, n.Vol)
	var sinceCPU int64
	for !lt.Empty() {
		v, i := lt.Min()
		w.add(v)
		sinceCPU++
		if sinceCPU == int64(d.bElem) {
			n.Clock.AddCPU(cfg.Model.MergeCPU(sinceCPU, r) + cfg.Model.ScanCPU(sinceCPU))
			sinceCPU = 0
		}
		if nv, ok := readers[i].next(); ok {
			lt.Replace(nv)
		} else {
			lt.Retire()
		}
	}
	if sinceCPU > 0 {
		n.Clock.AddCPU(cfg.Model.MergeCPU(sinceCPU, r) + cfg.Model.ScanCPU(sinceCPU))
	}
	out := w.finish()
	n.Vol.Drain()
	n.Barrier()
	return out, nil
}
