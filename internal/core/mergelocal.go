package core

import (
	"demsort/internal/cluster"
	"demsort/internal/elem"
	"demsort/internal/pq"
)

// mergeLocal is phase 3 (§IV third phase): every PE merges its R
// sorted run pieces into the final output file, reading and writing
// each element exactly once with no communication. Input blocks are
// prefetched one extent ahead per run (overlapping I/O with merging)
// and deallocated as soon as they are consumed, so the output can
// recycle them — the (nearly) in-place operation of §IV-E.
//
// The merge runs block-at-a-time on the key-inline tournament tree:
// each stream exposes its current decoded extent as a slice, the tree
// replays on normalized uint64 keys (comparator fallback only on equal
// prefix keys), and output accumulates in a block-sized buffer that is
// bulk-encoded per flush — decode → merge → encode over slices, never
// element-at-a-time through reader/writer calls.
//
// With a single run the piece already is the sorted output and the
// phase costs no I/O at all; together with run formation that gives
// the "only 2 I/Os per block" behaviour the paper notes for N < M
// (the MinuteSort regime).
func mergeLocal[T any](c elem.Codec[T], n *cluster.Node, cfg *Config, d derived, files []File) (File, error) {
	n.SetPhase(PhaseMerge)
	if len(files) == 1 {
		n.Barrier()
		return files[0], nil
	}

	r := len(files)
	// 2 blocks per run (current + prefetch) plus the output buffer.
	if cfg.MemElems > 0 {
		n.Mem.MustAcquire(int64(2*r+1) * int64(d.bElem))
		defer n.Mem.Release(int64(2*r+1) * int64(d.bElem))
	}

	key, exact := elem.KeyFn(c)
	type stream struct {
		cur []T
		pos int
	}
	readers := make([]*reader[T], r)
	srcs := make([]stream, r)
	keys := make([]uint64, r)
	live := make([]bool, r)
	for i, f := range files {
		readers[i] = newReader(c, n.Vol, f, true, cfg.Overlap)
		if blk := readers[i].nextBlock(); len(blk) > 0 {
			srcs[i].cur = blk
			keys[i] = key(blk[0])
			live[i] = true
		}
	}
	var tie func(a, b int) bool
	if !exact {
		tie = func(a, b int) bool {
			return c.Less(srcs[a].cur[srcs[a].pos], srcs[b].cur[srcs[b].pos])
		}
	}
	lt := pq.NewKeyTree(r, keys, live, tie)
	w := newWriter(c, n.Vol)
	out := make([]T, 0, d.bElem)
	flush := func() {
		if len(out) == 0 {
			return
		}
		w.addSlice(out)
		n.AddCPU(cfg.Model.MergeCPU(int64(len(out)), r) + cfg.Model.ScanCPU(int64(len(out))))
		out = out[:0]
	}
	for !lt.Empty() {
		i := lt.Win()
		s := &srcs[i]
		out = append(out, s.cur[s.pos])
		s.pos++
		if len(out) == d.bElem {
			flush()
		}
		if s.pos < len(s.cur) {
			lt.Replace(key(s.cur[s.pos]))
		} else if blk := readers[i].nextBlock(); len(blk) > 0 {
			s.cur, s.pos = blk, 0
			lt.Replace(key(blk[0]))
		} else {
			lt.Retire()
		}
	}
	flush()
	outFile := w.finish()
	n.Vol.Drain()
	n.Barrier()
	return outFile, nil
}
