package core

import (
	"fmt"
	"path/filepath"
	"testing"
	"testing/quick"

	"demsort/internal/blockio"
	"demsort/internal/elem"
	"demsort/internal/workload"
)

// TestSortOnFileBackedStores runs the whole sort against real files:
// every block genuinely round-trips through the filesystem, proving
// the external-memory path end to end (not just the RAM-backed store).
func TestSortOnFileBackedStores(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(4)
	cfg.NewStore = func(rank int) (blockio.Store, error) {
		return blockio.NewFileStore(filepath.Join(dir, fmt.Sprintf("pe%d.vol", rank)), cfg.BlockBytes)
	}
	input := inputFor(cfg, workload.Uniform, 6000, 77)
	res, err := Sort[elem.KV16](kvc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(kvc, input); err != nil {
		t.Fatal(err)
	}
	if res.Runs < 2 {
		t.Fatalf("expected external regime, R=%d", res.Runs)
	}
}

// TestSortQuickProperty drives the full distributed sort with
// quick-generated shapes: arbitrary machine sizes, block sizes,
// workload kinds and randomization flags must all produce the exact
// canonical partition.
func TestSortQuickProperty(t *testing.T) {
	kinds := workload.Kinds()
	f := func(pSel, kindSel, blockSel uint8, randomize bool, seed uint64) bool {
		p := 1 + int(pSel%6)
		kind := kinds[int(kindSel)%len(kinds)]
		blockBytes := []int{256, 512, 1024}[int(blockSel)%3]
		cfg := DefaultConfig(p, 1<<13, blockBytes)
		cfg.Randomize = randomize
		cfg.Seed = seed
		cfg.KeepOutput = true
		perPE := 2000 + int(seed%4000)
		input := workload.Generate(kind, p, perPE, seed)
		res, err := Sort[elem.KV16](kvc, cfg, input)
		if err != nil {
			t.Logf("config p=%d kind=%s block=%d: %v", p, kind, blockBytes, err)
			return false
		}
		return res.Validate(kvc, input) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
