package core

import (
	"fmt"
	"math/rand/v2"

	"demsort/internal/blockio"
	"demsort/internal/bufpool"
	"demsort/internal/cluster"
	"demsort/internal/dselect"
	"demsort/internal/elem"
	"demsort/internal/psort"
	"demsort/internal/xmerge"
)

// localRun is this PE's piece of one global run after phase 1: the
// elements of global run positions [SegStart, SegStart+SegLen) sorted
// on local disk, plus the in-memory sample (every K-th run position).
type localRun[T any] struct {
	file     File
	segStart int64
	segLen   int64
	runLen   int64
	sample   []T // elements at global run positions ≡ 0 (mod K)
}

// runFormation executes phase 1 (§IV, first phase): R = N/M global
// runs, each assembled from (randomly chosen) local blocks on every
// PE, sorted across the machine with the distributed internal sort
// (§IV-B), written back to local disks, and sampled. I/O is overlapped
// with sorting and communication: while run i is processed, run i+1's
// blocks are already being fetched and run i−1's output is still
// draining (§IV-E "Overlapping").
func runFormation[T any](c elem.Codec[T], n *cluster.Node, cfg *Config, d derived, input File) ([]localRun[T], error) {
	n.SetPhase(PhaseRunForm)

	// Work on whole blocks: the input file is block-aligned by
	// construction (LoadInput).
	exts := input.Extents
	if cfg.Randomize {
		rng := rand.New(rand.NewPCG(cfg.Seed, uint64(n.Rank)+0xD1CE))
		rng.Shuffle(len(exts), func(i, j int) { exts[i], exts[j] = exts[j], exts[i] })
	}
	bpr := d.blocksPerRun
	myRuns := (len(exts) + bpr - 1) / bpr
	runs := int(n.AllReduceInt64(int64(myRuns), "max"))
	if runs == 0 {
		runs = 1 // degenerate empty input still runs the protocol once
	}

	singleRun := runs == 1 && cfg.SingleRunOpt

	// Asynchronous block fetches for one run ahead.
	type pending struct {
		ext    Extent
		raw    []byte
		handle blockio.Handle
	}
	fetchRun := func(r int) []pending {
		lo := r * bpr
		if lo >= len(exts) {
			return nil
		}
		hi := lo + bpr
		if hi > len(exts) {
			hi = len(exts)
		}
		ps := make([]pending, 0, hi-lo)
		for _, e := range exts[lo:hi] {
			raw := bufpool.Get(e.Len * c.Size())
			h := n.Vol.ReadAsync(e.ID, raw)
			if !cfg.Overlap {
				n.Vol.Wait(h)
			}
			ps = append(ps, pending{ext: e, raw: raw, handle: h})
		}
		return ps
	}

	out := make([]localRun[T], 0, runs)
	cur := fetchRun(0)
	for r := 0; r < runs; r++ {
		next := fetchRun(r + 1) // overlap: prefetch while we sort

		// Collect run r's local chunk.
		var chunkLen int
		for _, p := range cur {
			chunkLen += p.ext.Len
		}
		n.Mem.MustAcquire(int64(chunkLen))
		chunk := make([]T, 0, chunkLen)
		if singleRun {
			// §IV-E: "Immediately after a block is read from disk, it
			// is sorted, while the disk is busy with subsequent
			// blocks"; the chunk is then merged, not sorted.
			blocks := make([][]T, 0, len(cur))
			for _, p := range cur {
				n.Vol.Wait(p.handle)
				blk := elem.DecodeSlice(c, p.raw, p.ext.Len)
				bufpool.Put(p.raw)
				sortChunkBudgeted(c, n, cfg, blk)
				n.AddCPU(cfg.Model.SortCPU(int64(len(blk))) + cfg.Model.ScanCPU(int64(len(blk))))
				blocks = append(blocks, blk)
				n.Vol.Free(p.ext.ID)
			}
			chunk = xmerge.AppendMerge(c, chunk, blocks)
			n.AddCPU(cfg.Model.MergeCPU(int64(len(chunk)), len(blocks)))
		} else {
			for _, p := range cur {
				n.Vol.Wait(p.handle)
				chunk = elem.AppendDecode(c, chunk, p.raw, p.ext.Len)
				bufpool.Put(p.raw)
				n.Vol.Free(p.ext.ID)
			}
			n.AddCPU(cfg.Model.ScanCPU(int64(len(chunk))))
			sortChunkBudgeted(c, n, cfg, chunk)
			n.AddCPU(cfg.Model.SortCPU(int64(len(chunk))))
		}
		cur = next

		// Distributed sort of the run: exact splits, all-to-all, merge.
		runLen := n.AllReduceInt64(int64(len(chunk)), "sum")
		bounds := rankBounds(runLen, n.P)
		cuts := dselect.Cuts(c, n, chunk, bounds[1:n.P])

		send := make([][]byte, n.P)
		for q := 0; q < n.P; q++ {
			lo, hi := cutAt(cuts, q, int64(len(chunk)), n.P)
			sb := bufpool.Get(int(hi-lo) * c.Size())
			elem.EncodeInto(c, sb, chunk[lo:hi])
			send[q] = sb
		}
		n.Mem.MustAcquire(int64(chunkLen)) // encoded send copies
		n.AddCPU(cfg.Model.ScanCPU(int64(len(chunk))))
		chunk = nil
		n.Mem.Release(int64(chunkLen)) // decoded chunk dropped

		recv := n.AllToAllv(send)
		n.Mem.Release(int64(chunkLen)) // send copies handed off to receivers
		segLen := bounds[n.Rank+1] - bounds[n.Rank]
		n.Mem.MustAcquire(segLen)     // received encodings
		n.Mem.MustAcquire(2 * segLen) // decoded pieces + merged output
		pieces := make([][]T, n.P)
		var got int64
		for q := 0; q < n.P; q++ {
			cnt := len(recv[q]) / c.Size()
			pieces[q] = elem.DecodeSlice(c, recv[q], cnt)
			got += int64(cnt)
		}
		cluster.RecycleRecv(recv)
		n.Mem.Release(segLen) // received encodings recycled
		if got != segLen {
			return nil, fmt.Errorf("core: run %d: PE %d received %d elements, expected segment of %d", r, n.Rank, got, segLen)
		}
		merged := xmerge.Merge(c, pieces)
		n.AddCPU(cfg.Model.MergeCPU(segLen, n.P) + cfg.Model.ScanCPU(segLen))

		// Sample every K-th global run position (§IV-A) and persist
		// the segment to local disk.
		lr := localRun[T]{segStart: bounds[n.Rank], segLen: segLen, runLen: runLen}
		for j := firstMultiple(lr.segStart, d.sampleK) - lr.segStart; j < segLen; j += d.sampleK {
			lr.sample = append(lr.sample, merged[j])
		}
		// Held until the splitters are known; released by Sort after
		// multiwaySelection (releaseSamples).
		n.Mem.MustAcquire(int64(len(lr.sample)))

		w := newWriter(c, n.Vol)
		w.addSlice(merged)
		lr.file = w.finish()
		if !cfg.Overlap {
			n.Vol.Drain()
		}
		n.Mem.Release(2 * segLen)
		out = append(out, lr)
	}
	n.Vol.Drain()
	n.Barrier()
	return out, nil
}

// sortChunkBudgeted runs one of run formation's in-node sorts with
// the radix scratch charged against the memory budget — historically a
// blind spot: the keyIdx pair buffers and the LSD gather buffer were
// invisible to the tracker. A PathAuto config resolves per chunk
// against the live headroom: the LSD scatter while its scratch fits,
// the in-place MSD when memory is tight (about half the scratch — one
// pair buffer, no element gather buffer). Closure-only codecs bypass
// the radix engines and charge nothing, as before.
func sortChunkBudgeted[T any](c elem.Codec[T], n *cluster.Node, cfg *Config, chunk []T) {
	if _, keyed := elem.Codec[T](c).(elem.KeyedCodec[T]); !keyed {
		psort.Sort(c, chunk, cfg.RealWorkers)
		return
	}
	path := cfg.RadixPath
	if path == psort.PathAuto {
		path = psort.PathLSD
		need := scratchElems(psort.PathLSD, c.Size(), len(chunk), cfg.RealWorkers)
		if lim := n.Mem.Limit(); lim > 0 && n.Mem.Used()+need > lim {
			path = psort.PathMSD
		}
	}
	scratch := scratchElems(path, c.Size(), len(chunk), cfg.RealWorkers)
	n.Mem.MustAcquire(scratch)
	psort.SortPath(c, chunk, cfg.RealWorkers, path)
	n.Mem.Release(scratch)
}

// scratchElems converts psort's scratch bytes into budget elements
// (rounded up) — the tracker's unit.
func scratchElems(path psort.Path, elemSize, n, workers int) int64 {
	b := psort.ScratchBytes(path, elemSize, n, workers)
	return (b + int64(elemSize) - 1) / int64(elemSize)
}

// rankBounds returns the P+1 exact boundary ranks 0, N/P, 2N/P, …, N.
func rankBounds(total int64, p int) []int64 {
	b := make([]int64, p+1)
	for i := 0; i <= p; i++ {
		b[i] = total * int64(i) / int64(p)
	}
	return b
}

// cutAt returns this PE's slice [lo, hi) of its local chunk destined
// for PE q, given this PE's local cut positions for ranks 1..P-1.
func cutAt(cuts []int64, q int, chunkLen int64, p int) (int64, int64) {
	lo := int64(0)
	if q > 0 {
		lo = cuts[q-1]
	}
	hi := chunkLen
	if q < p-1 {
		hi = cuts[q]
	}
	return lo, hi
}

// firstMultiple returns the smallest multiple of k that is >= x.
func firstMultiple(x, k int64) int64 {
	return (x + k - 1) / k * k
}
