package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"demsort/internal/blockio"
	"demsort/internal/elem"
	"demsort/internal/sortbench"
	"demsort/internal/workload"
)

// TestSortSourceMatchesSliceInput is the streaming-input property:
// feeding the same bytes through Config.Source must produce output
// byte-identical to the slice-input path, at P ∈ {1, 4}, on RAM and
// file-backed stores.
func TestSortSourceMatchesSliceInput(t *testing.T) {
	for _, p := range []int{1, 4} {
		for _, store := range []string{"ram", "file"} {
			t.Run(fmt.Sprintf("p%d_%s", p, store), func(t *testing.T) {
				input := inputFor(testConfig(p), workload.Uniform, 5200, 19)

				ref, err := Sort[elem.KV16](kvc, testConfig(p), input)
				if err != nil {
					t.Fatal(err)
				}

				cfg := testConfig(p)
				if store == "file" {
					cfg.NewStore = blockio.FileStoreFactory(t.TempDir(), cfg.BlockBytes)
				}
				cfg.Source = func(rank int) (io.Reader, int64, error) {
					return bytes.NewReader(elem.EncodeSlice(kvc, input[rank])), int64(len(input[rank])), nil
				}
				res, err := Sort[elem.KV16](kvc, cfg, nil)
				if err != nil {
					t.Fatal(err)
				}
				for rank := 0; rank < p; rank++ {
					if len(res.Output[rank]) != len(ref.Output[rank]) {
						t.Fatalf("rank %d: source path output %d elements, slice path %d",
							rank, len(res.Output[rank]), len(ref.Output[rank]))
					}
					for i := range res.Output[rank] {
						if res.Output[rank][i] != ref.Output[rank][i] {
							t.Fatalf("rank %d: source and slice outputs differ at %d", rank, i)
						}
					}
				}
			})
		}
	}
}

// failingReader delivers limit bytes from r, then fails.
type failingReader struct {
	r     io.Reader
	limit int64
	err   error
}

func (f *failingReader) Read(p []byte) (int, error) {
	if f.limit <= 0 {
		return 0, f.err
	}
	if int64(len(p)) > f.limit {
		p = p[:f.limit]
	}
	n, err := f.r.Read(p)
	f.limit -= int64(n)
	return n, err
}

// A Source that fails mid-stream must abort the sort with its error —
// and must not leave the machine wedged.
func TestSortSourceErrorAborts(t *testing.T) {
	srcErr := errors.New("input device vanished")
	cfg := testConfig(2)
	cfg.KeepOutput = false
	input := inputFor(cfg, workload.Uniform, 5000, 23)
	cfg.Source = func(rank int) (io.Reader, int64, error) {
		r := bytes.NewReader(elem.EncodeSlice(kvc, input[rank]))
		if rank == 1 {
			return &failingReader{r: r, limit: 4096, err: srcErr}, int64(len(input[rank])), nil
		}
		return r, int64(len(input[rank])), nil
	}
	_, err := Sort[elem.KV16](kvc, cfg, nil)
	if err == nil || !errors.Is(err, srcErr) {
		t.Fatalf("source error must abort the sort, got %v", err)
	}
}

// A Source reporting fewer bytes than its count is a short read, not a
// hang or a silent truncation.
func TestSortSourceShortStream(t *testing.T) {
	cfg := testConfig(2)
	cfg.KeepOutput = false
	input := inputFor(cfg, workload.Uniform, 5000, 29)
	cfg.Source = func(rank int) (io.Reader, int64, error) {
		enc := elem.EncodeSlice(kvc, input[rank])
		return bytes.NewReader(enc[:len(enc)/2]), int64(len(input[rank])), nil
	}
	if _, err := Sort[elem.KV16](kvc, cfg, nil); err == nil {
		t.Fatal("short source stream must fail the sort")
	}
}

func TestSortSourceRejectsBothInputs(t *testing.T) {
	cfg := testConfig(1)
	cfg.Source = func(rank int) (io.Reader, int64, error) { return bytes.NewReader(nil), 0, nil }
	if _, err := Sort[elem.KV16](kvc, cfg, [][]elem.KV16{{}}); err == nil {
		t.Fatal("Source plus input slices must be rejected")
	}
}

// TestSortSourceLoadPeakIsBlockSized pins the O(m) claim of the
// streaming loader: an -infile-style run (gensort records streamed
// from a Source onto a file-backed store) charges the load phase only
// its bounded staging — one block synchronously, three with the
// overlapped reader pipeline — never the tile, which is three orders
// of magnitude larger.
func TestSortSourceLoadPeakIsBlockSized(t *testing.T) {
	const p = 2
	const nPer = 20000 // records per rank; tile = 2,000,000 bytes
	for _, overlap := range []bool{false, true} {
		rc := elem.Rec100Codec{}
		cfg := DefaultConfig(p, 1<<13, 10*100)
		cfg.Seed = 5
		cfg.Overlap = overlap
		cfg.NewStore = blockio.FileStoreFactory(t.TempDir(), cfg.BlockBytes)
		cfg.Source = func(rank int) (io.Reader, int64, error) {
			return sortbench.NewReader(77, int64(rank)*nPer, nPer), nPer, nil
		}
		cfg.Sink = func(rank int, b []byte) error { return nil }
		res, err := Sort[elem.Rec100](rc, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		bElem := int64(res.BlockElems)
		stage := bElem
		if overlap {
			stage = 3 * bElem
		}
		for rank, peak := range res.LoadPeakMemElems {
			if peak > stage {
				t.Errorf("overlap=%v rank %d: load phase held %d elements, want <= staging bound (%d)", overlap, rank, peak, stage)
			}
			if peak == 0 {
				t.Errorf("overlap=%v rank %d: load phase charged nothing — the staging buffer is untracked", overlap, rank)
			}
		}
		if bElem*100 > nPer {
			t.Fatalf("test degenerate: block (%d elems) not far below the tile (%d)", bElem, nPer)
		}
		if res.N != int64(p)*nPer {
			t.Fatalf("overlap=%v: N = %d, want %d", overlap, res.N, int64(p)*nPer)
		}
	}
}
