// Package core implements CANONICALMERGESORT (Section IV of the
// paper), the primary contribution: a distributed-memory external
// mergesort whose output is the canonical partition — PE i ends up with
// the elements of global ranks (i·N/P, (i+1)·N/P] striped over its
// local disks — while communicating the data only once in the best
// case and needing 4N + o(N) I/O volume.
//
// The four phases, each accounted separately (Figures 2-4, 6):
//
//  1. run formation (runform.go): R global runs are formed from
//     randomly chosen local blocks, sorted with the distributed
//     internal sort, written to local disks, and sampled;
//  2. multiway selection (selection.go): exact global splitters for
//     the ranks i·N/P over all R runs, bootstrapped from the in-memory
//     sample and finished on a few remotely fetched blocks;
//  3. external all-to-all (exchange.go): data redistribution in
//     memory-sized sub-operations, with the self-destined majority
//     relabelled in place with zero I/O;
//  4. final merge (mergelocal.go): every PE merges its R local run
//     pieces with prefetching, entirely without communication.
package core

import (
	"fmt"
	"io"

	"demsort/internal/blockio"
	"demsort/internal/cluster"
	"demsort/internal/psort"
	"demsort/internal/vtime"
)

// Phase names used in per-phase statistics and the figures.
const (
	PhaseLoad      = "load"
	PhaseRunForm   = "run formation"
	PhaseSelection = "multiway selection"
	PhaseExchange  = "all-to-all"
	PhaseMerge     = "final merge"
)

// Phases lists the accounted sort phases in algorithm order.
func Phases() []string {
	return []string{PhaseRunForm, PhaseSelection, PhaseExchange, PhaseMerge}
}

// Config parameterises a sort on the simulated cluster.
type Config struct {
	// P is the number of PEs (cluster nodes).
	P int
	// BlockBytes is the block size B in bytes (paper default 8 MiB).
	BlockBytes int
	// MemElems is the per-PE internal memory budget m in elements.
	MemElems int64
	// RunFraction sizes the per-PE share of one run as a fraction of
	// MemElems. Run formation holds the unsorted chunk, the merged
	// result and the next run's prefetch at once, so 0.25 is the
	// default (the paper's footnote 1: runs can be "a factor around
	// two smaller" than M).
	RunFraction float64
	// SampleK is the sampling distance K in elements (0 = one block,
	// the Appendix B choice K = B).
	SampleK int64
	// Randomize enables the random shuffling of local input block IDs
	// before run formation (§IV: "each PE chooses its participating
	// blocks for the run randomly"). Figures 4 vs 6 are this switch.
	Randomize bool
	// Seed drives all randomization.
	Seed uint64
	// Overlap enables asynchronous I/O overlap (§IV-E); switching it
	// off is the ablation knob.
	Overlap bool
	// SingleRunOpt enables the §IV-E special case for inputs that fit
	// into one run: blocks are sorted as they arrive and merged,
	// instead of sorted monolithically.
	SingleRunOpt bool
	// RealWorkers is the number of goroutines used for genuine
	// in-node sorting work (virtual CPU time always models
	// Model.Cores cores). DefaultConfig sets it to GOMAXPROCS clamped
	// to 8; set 1 explicitly for runs that must be byte-reproducible
	// across machines with different core counts (psort output is
	// stable for any worker count, but pinning removes all doubt in
	// determinism-sensitive tests).
	RealWorkers int
	// RadixPath selects the radix engine for run formation's in-node
	// sorts of keyed codecs (psort.SortPath). The zero value
	// (psort.PathAuto) resolves per chunk against the live memory
	// budget: the LSD scatter while its scratch fits the remaining
	// headroom, the in-place American-flag MSD when memory is tight —
	// scratch charged against m is scratch stolen from run length.
	// Forcing a path is a test/benchmark knob.
	RadixPath psort.Path
	// KeepOutput retains the sorted output so Result.Output can read
	// it back (tests); production callers stream it from the volumes.
	KeepOutput bool
	// Source, when non-nil, streams each locally hosted rank's input as
	// encoded element bytes — the streaming dual of Sink, and the
	// scalable alternative to the input slices. It returns the rank's
	// byte stream and its element count; the load phase reads it
	// block-at-a-time straight onto the rank's volume through one
	// pooled staging buffer, so loading never holds more than one block
	// of the tile in RAM (demsort's -infile path). With Source set the
	// input argument of Sort must be nil. Reader lifecycle belongs to
	// the caller (Sort consumes exactly count·elemSize bytes and does
	// not Close). With a remote backend Source is only called for the
	// locally hosted ranks, and every process must report the same
	// per-rank counts.
	Source func(rank int) (io.Reader, int64, error)
	// Sink, when non-nil, streams each locally hosted rank's sorted
	// output as encoded element bytes — in order, block-at-a-time,
	// straight off the rank's block store — during the collect step.
	// It is the scalable alternative to KeepOutput: the output never
	// has to be materialized in RAM (demsort's tcp workers write their
	// part files through it). The byte slice is only valid for the
	// duration of the call. Calls for one rank are sequential; on the
	// sim backend different ranks stream concurrently, so a Sink
	// shared across ranks must be safe for concurrent calls with
	// distinct rank arguments. A Sink error aborts the sort.
	Sink func(rank int, encoded []byte) error
	// Checkpoint enables the durable checkpoint/restart plane: after
	// run formation and after selection each rank commits a phase
	// manifest under Checkpoint.Dir, and with Resume set a restarted
	// rank rebuilds its state from the manifest instead of re-reading
	// input. Requires a durable block store (see checkpoint.go).
	Checkpoint CheckpointConfig
	// Model is the virtual-time cost model (zero value: vtime.Default).
	Model vtime.CostModel
	// NewStore optionally overrides the per-PE block store (e.g.
	// file-backed); nil uses RAM-backed stores.
	NewStore func(rank int) (blockio.Store, error)
	// Machine optionally supplies a pre-built transport backend (e.g.
	// a cluster/tcp machine hosting this process's rank). nil builds a
	// cluster/sim machine from the fields above and closes it after
	// the sort; a supplied Machine is left open — its lifecycle
	// belongs to the caller. With a remote backend only the locally
	// hosted ranks appear in input/Result slots, and every process
	// must pass the same per-PE input size (SampleK auto-sizing and
	// capacity checks are derived from the local part).
	Machine cluster.Machine
}

// DefaultConfig returns a ready-to-use configuration for p PEs with a
// per-PE memory budget of memElems elements and the given block size.
func DefaultConfig(p int, memElems int64, blockBytes int) Config {
	return Config{
		P:            p,
		BlockBytes:   blockBytes,
		MemElems:     memElems,
		RunFraction:  0.25,
		Randomize:    true,
		Seed:         1,
		Overlap:      true,
		SingleRunOpt: true,
		RealWorkers:  psort.DefaultWorkers(),
		Model:        vtime.Default(),
	}
}

// derived holds the parameters computed from a validated config for a
// particular element size.
type derived struct {
	bElem        int   // B in elements
	runLocal     int64 // per-PE elements contributed to one run
	blocksPerRun int
	sampleK      int64
}

// derive validates cfg against an element size and computes the
// derived parameters, enforcing the paper's memory constraints.
func (cfg *Config) derive(elemSize int) (derived, error) {
	var d derived
	if cfg.P < 1 {
		return d, fmt.Errorf("core: P must be >= 1, got %d", cfg.P)
	}
	if cfg.BlockBytes < elemSize {
		return d, fmt.Errorf("core: block size %d smaller than one element (%d)", cfg.BlockBytes, elemSize)
	}
	d.bElem = cfg.BlockBytes / elemSize
	if cfg.MemElems > 0 && int64(d.bElem)*4 > cfg.MemElems {
		return d, fmt.Errorf("core: memory budget %d elements cannot hold 4 blocks of %d", cfg.MemElems, d.bElem)
	}
	rf := cfg.RunFraction
	if rf <= 0 || rf > 0.5 {
		rf = 0.25
	}
	if cfg.MemElems > 0 {
		d.runLocal = int64(float64(cfg.MemElems) * rf)
	} else {
		d.runLocal = int64(d.bElem) * 64
	}
	d.blocksPerRun = int(d.runLocal / int64(d.bElem))
	if d.blocksPerRun < 1 {
		d.blocksPerRun = 1
	}
	d.runLocal = int64(d.blocksPerRun) * int64(d.bElem)
	d.sampleK = cfg.SampleK
	if d.sampleK <= 0 {
		d.sampleK = int64(d.bElem)
	}
	return d, nil
}

// CheckCapacity verifies that nPerPE elements per PE can be sorted in
// two passes under cfg: the final merge needs two prefetch buffers and
// an output buffer per run within the memory budget, and the sample
// must fit in memory. This is the practical form of the paper's
// O(P·m²/B) capacity bound (§IV-D).
func (cfg *Config) CheckCapacity(elemSize int, nPerPE int64) error {
	d, err := cfg.derive(elemSize)
	if err != nil {
		return err
	}
	if cfg.MemElems <= 0 {
		return nil
	}
	runs := (nPerPE + d.runLocal - 1) / d.runLocal
	if runs < 1 {
		runs = 1
	}
	// Merge memory: 2 input blocks per run (double buffering) plus an
	// output block, within half the budget.
	if need := (2*runs + 1) * int64(d.bElem); need > cfg.MemElems/2 {
		return fmt.Errorf("core: %d runs of %d-element blocks need %d elements of merge buffers, budget allows %d — input too large for two passes (capacity %d elements/PE)",
			runs, d.bElem, need, cfg.MemElems/2, cfg.MaxElemsPerPE(elemSize))
	}
	// Sample memory: N/K elements on every PE, within an eighth.
	sample := runs * ((d.runLocal*int64(cfg.P) + d.sampleK - 1) / d.sampleK)
	if sample > cfg.MemElems/8 {
		return fmt.Errorf("core: sample of %d elements exceeds budget share %d; increase SampleK", sample, cfg.MemElems/8)
	}
	return nil
}

// MaxElemsPerPE returns the largest two-pass-sortable input per PE
// under cfg: the merge-buffer constraint caps the number of runs at
// m/(4B)-ish, each contributing RunFraction·m elements. Multiplying by
// P gives the machine capacity Θ(P·m²/B) from §IV-D.
func (cfg *Config) MaxElemsPerPE(elemSize int) int64 {
	d, err := cfg.derive(elemSize)
	if err != nil || cfg.MemElems <= 0 {
		return 0
	}
	maxRuns := (cfg.MemElems/2 - int64(d.bElem)) / (2 * int64(d.bElem))
	if maxRuns < 1 {
		return 0
	}
	return maxRuns * d.runLocal
}
