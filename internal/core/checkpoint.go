package core

// The checkpoint/restart plane of CANONICALMERGESORT. Two phase
// boundaries are worth committing: after run formation (the expensive
// input pass — runs on disk, segment matrices and the gathered sample
// in the manifest) and after multiway selection (the splitter matrix,
// tiny and identical on every rank). From the selection checkpoint a
// restarted fleet re-does only the exchange and merge; from the
// run-formation checkpoint it additionally re-runs selection; with no
// checkpoint it starts from scratch. Either way the input is never
// re-read once run formation has committed.
//
// Durable mode changes one thing about the data plane: the exchange no
// longer frees or relabels-as-owned the run blocks it has consumed
// (exchange.go), and so the merge cannot recycle them either — the run
// directory stays intact on disk until the job finishes, at the price
// of the sort no longer being in-place (disk high-water roughly 3N/P
// per rank instead of ~N/P). That is the classic checkpoint tradeoff:
// space for restartability.
//
// Resume is fleet-uniform and crash-consistent: every rank loads its
// own manifest and the fleet agrees on min(committed phase) with one
// AllReduce, so a crash that left some ranks one commit ahead (between
// a collective and the commits after it) downgrades them to the
// phase everyone reached. A rank whose manifest is missing (crashed
// before its first commit) downgrades the whole fleet to a fresh
// start.

import (
	"fmt"
	"os"

	"demsort/internal/blockio"
	"demsort/internal/cluster"
	"demsort/internal/elem"
	"demsort/internal/mselect"
)

// CheckpointConfig parameterises the durable checkpoint plane.
type CheckpointConfig struct {
	// Dir is where the per-rank manifests live (usually the spill
	// directory, next to the durable block files). Empty disables
	// checkpointing entirely.
	Dir string
	// JobID names the job across restarts; manifests from a different
	// job are rejected. Empty defaults to "job".
	JobID string
	// Epoch is the fleet incarnation number; a restarted job resumes
	// with a higher epoch than the one that crashed.
	Epoch int
	// Resume makes Sort rebuild state from the committed manifests and
	// skip the committed phases. It must be set uniformly across the
	// fleet (the ranks agree on the minimum committed phase with a
	// collective). With no manifests on disk, Resume degrades to a
	// normal fresh run.
	Resume bool
}

// Committed phase levels, ordered by progress.
const (
	ckptNone      = int64(0)
	ckptRunform   = int64(1)
	ckptSelection = int64(2)
)

func ckptLevel(phase string) int64 {
	switch phase {
	case PhaseRunForm:
		return ckptRunform
	case PhaseSelection:
		return ckptSelection
	}
	return ckptNone
}

// The optional durable-store surface a checkpointed volume must have
// (blockio.FileStore in durable mode implements all of it).
type lensStore interface {
	BlockLens() []blockio.BlockLen
	SetBlockLens([]blockio.BlockLen)
}

// loadCkpt reads and validates one rank's manifest, returning its
// committed phase level; a missing manifest is level ckptNone.
func loadCkpt(ck CheckpointConfig, rank, p, elemSize, blockBytes int) (*blockio.Manifest, int64, error) {
	man, err := blockio.LoadManifest(ck.Dir, rank)
	if os.IsNotExist(err) {
		return nil, ckptNone, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("core: resume: %w", err)
	}
	if err := man.Validate(ck.JobID, rank, p, ck.Epoch, elemSize, blockBytes); err != nil {
		return nil, 0, fmt.Errorf("core: resume: %w", err)
	}
	return man, ckptLevel(man.Phase), nil
}

// commitRunform writes the run-formation checkpoint: store contents
// fsync'd first, then the manifest describing them — run directory,
// gathered segment matrices, the whole-run samples, allocator state
// and block layout.
func commitRunform[T any](c elem.Codec[T], n *cluster.Node, cfg *Config, d derived, meta *runsMeta[T], locals []localRun[T]) (*blockio.Manifest, error) {
	ls, ok := n.Vol.Store().(lensStore)
	if !ok {
		return nil, fmt.Errorf("core: Checkpoint.Dir is set but rank %d's block store is not durable (use blockio.DurableFileStoreFactory)", n.Rank)
	}
	if err := n.Vol.SyncStore(); err != nil {
		return nil, fmt.Errorf("core: checkpoint sync, rank %d: %w", n.Rank, err)
	}
	next, free := n.Vol.AllocState()
	man := &blockio.Manifest{
		JobID:      cfg.Checkpoint.JobID,
		Rank:       n.Rank,
		P:          cfg.P,
		Epoch:      cfg.Checkpoint.Epoch,
		ElemSize:   c.Size(),
		BlockBytes: cfg.BlockBytes,
		SampleK:    d.sampleK,
		Phase:      PhaseRunForm,
		NextBlock:  next,
		FreeList:   free,
		Blocks:     ls.BlockLens(),
		SegStarts:  meta.segStarts,
		SegLens:    meta.segLens,
		TotalN:     meta.totalN,
	}
	man.Runs = make([]blockio.RunMeta, len(locals))
	for ri := range locals {
		lr := &locals[ri]
		rm := blockio.RunMeta{SegStart: lr.segStart, SegLen: lr.segLen, RunLen: lr.runLen}
		rm.Extents = make([]blockio.ExtentMeta, len(lr.file.Extents))
		for i, e := range lr.file.Extents {
			rm.Extents[i] = blockio.ExtentMeta{ID: int64(e.ID), Off: e.Off, Len: e.Len, Own: e.Own}
		}
		// The gathered whole-run sample (not just this rank's share):
		// it re-bootstraps selection on resume without a fresh gather.
		rm.Sample = elem.AppendEncode(c, nil, meta.samples[ri].Vals)
		man.Runs[ri] = rm
	}
	if err := man.WriteFile(cfg.Checkpoint.Dir); err != nil {
		return nil, fmt.Errorf("core: checkpoint commit, rank %d: %w", n.Rank, err)
	}
	return man, nil
}

// commitSelection advances an existing manifest to the selection
// checkpoint: only the phase and the splitter matrix change (selection
// reads blocks but allocates none, so the store state still holds).
func commitSelection(cfg *Config, n *cluster.Node, man *blockio.Manifest, split [][]int64) error {
	man.Phase = PhaseSelection
	man.Splitters = split
	if err := man.WriteFile(cfg.Checkpoint.Dir); err != nil {
		return fmt.Errorf("core: checkpoint commit, rank %d: %w", n.Rank, err)
	}
	return nil
}

// restoreRunform rebuilds the post-run-formation state from a
// manifest: the volume allocator and store block layout, the local run
// directory, and the gathered run metadata (including the in-memory
// samples, charged to the budget exactly as gatherRunsMeta would).
func restoreRunform[T any](c elem.Codec[T], n *cluster.Node, d derived, man *blockio.Manifest) ([]localRun[T], *runsMeta[T], error) {
	ls, ok := n.Vol.Store().(lensStore)
	if !ok {
		return nil, nil, fmt.Errorf("core: resume requires a durable block store on rank %d (use blockio.DurableFileStoreFactory)", n.Rank)
	}
	if man.SampleK != d.sampleK {
		return nil, nil, fmt.Errorf("core: resume: manifest SampleK %d differs from configured %d — resume with the same flags as the original job", man.SampleK, d.sampleK)
	}
	ls.SetBlockLens(man.Blocks)
	n.Vol.RestoreAlloc(man.NextBlock, man.FreeList)

	locals := make([]localRun[T], len(man.Runs))
	meta := &runsMeta[T]{
		runLens:   make([]int64, len(man.Runs)),
		segStarts: man.SegStarts,
		segLens:   man.SegLens,
		samples:   make([]mselect.Sample[T], len(man.Runs)),
		totalN:    man.TotalN,
	}
	for ri, rm := range man.Runs {
		lr := localRun[T]{segStart: rm.SegStart, segLen: rm.SegLen, runLen: rm.RunLen}
		for _, e := range rm.Extents {
			lr.file.Append(Extent{ID: blockio.BlockID(e.ID), Off: e.Off, Len: e.Len, Own: e.Own})
		}
		locals[ri] = lr
		meta.runLens[ri] = rm.RunLen
		sample := elem.AppendDecode(c, nil, rm.Sample, len(rm.Sample)/c.Size())
		meta.samples[ri] = mselect.Sample[T]{K: man.SampleK, Vals: sample}
		// Mirror gatherRunsMeta's budget charge so releaseSamples
		// balances (the locals' own sample share was never rebuilt and
		// charges nothing).
		n.Mem.MustAcquire(int64(len(sample)))
	}
	return locals, meta, nil
}
