package core

import (
	"bytes"
	"errors"
	"sync"

	"demsort/internal/blockio"
	"fmt"
	"testing"

	"demsort/internal/elem"
	"demsort/internal/vtime"
	"demsort/internal/workload"
)

var kvc = elem.KV16Codec{}

// testConfig builds a small but fully external configuration: several
// runs, several blocks per run.
func testConfig(p int) Config {
	model := vtime.Default()
	cfg := DefaultConfig(p, 1<<13 /* 8 Ki elements per PE */, 64*16 /* 64-element blocks */)
	cfg.Model = model
	cfg.KeepOutput = true
	return cfg
}

func inputFor(cfg Config, kind workload.Kind, perPE int, seed uint64) [][]elem.KV16 {
	return workload.Generate(kind, cfg.P, perPE, seed)
}

func TestSortEndToEndMatrix(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8} {
		for _, kind := range []workload.Kind{workload.Uniform, workload.WorstCaseLocal, workload.AllEqual} {
			for _, randomize := range []bool{true, false} {
				name := fmt.Sprintf("p%d_%s_rand%v", p, kind, randomize)
				t.Run(name, func(t *testing.T) {
					cfg := testConfig(p)
					cfg.Randomize = randomize
					perPE := 5000 + 137*p
					input := inputFor(cfg, kind, perPE, 42)
					res, err := Sort[elem.KV16](kvc, cfg, input)
					if err != nil {
						t.Fatal(err)
					}
					if err := res.Validate(kvc, input); err != nil {
						t.Fatal(err)
					}
					if res.Runs < 2 {
						t.Fatalf("expected an external sort (R >= 2), got R=%d", res.Runs)
					}
				})
			}
		}
	}
}

func TestSortAllWorkloads(t *testing.T) {
	for _, kind := range workload.Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			cfg := testConfig(4)
			input := inputFor(cfg, kind, 5500, 7)
			res, err := Sort[elem.KV16](kvc, cfg, input)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Validate(kvc, input); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSortUnevenInputs(t *testing.T) {
	cfg := testConfig(4)
	input := inputFor(cfg, workload.Uniform, 5500, 1)
	input[1] = input[1][:2700] // one PE has less data
	input[3] = input[3][:0]    // one PE has none
	res, err := Sort[elem.KV16](kvc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(kvc, input); err != nil {
		t.Fatal(err)
	}
}

func TestSortEmptyInput(t *testing.T) {
	cfg := testConfig(3)
	input := [][]elem.KV16{{}, {}, {}}
	res, err := Sort[elem.KV16](kvc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 0 {
		t.Fatalf("N = %d", res.N)
	}
}

func TestSortSingleElement(t *testing.T) {
	cfg := testConfig(2)
	input := [][]elem.KV16{{{Key: 9, Val: 1}}, {}}
	res, err := Sort[elem.KV16](kvc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(kvc, input); err != nil {
		t.Fatal(err)
	}
}

func TestSortSingleRunRegime(t *testing.T) {
	// Input fits into one run: the §IV-E single-run optimization path.
	for _, opt := range []bool{true, false} {
		cfg := testConfig(4)
		cfg.SingleRunOpt = opt
		input := inputFor(cfg, workload.Uniform, 900, 3) // < runLocal
		res, err := Sort[elem.KV16](kvc, cfg, input)
		if err != nil {
			t.Fatal(err)
		}
		if res.Runs != 1 {
			t.Fatalf("expected single run, got %d", res.Runs)
		}
		if err := res.Validate(kvc, input); err != nil {
			t.Fatal(err)
		}
		// Single-run final merge must cost no disk traffic at all.
		read, written := res.PhaseBytes(PhaseMerge)
		if read != 0 || written != 0 {
			t.Fatalf("single-run merge did I/O: read %d written %d", read, written)
		}
	}
}

// closureKV16 is KV16's order without the KeyedCodec extension: the
// whole pipeline must work through the comparator fallback alone.
type closureKV16 struct{}

func (closureKV16) Size() int                    { return 16 }
func (closureKV16) Encode(d []byte, v elem.KV16) { elem.KV16Codec{}.Encode(d, v) }
func (closureKV16) Decode(s []byte) elem.KV16    { return elem.KV16Codec{}.Decode(s) }
func (closureKV16) Less(a, b elem.KV16) bool     { return a.Key < b.Key }

// TestSortClosureOnlyCodec runs the full sort with a codec that has no
// normalized key: run formation, selection, exchange and the final
// merge all take the comparator fallback and must still produce the
// canonical sorted output.
func TestSortClosureOnlyCodec(t *testing.T) {
	cfg := testConfig(4)
	input := inputFor(cfg, workload.Uniform, 5500, 3)
	res, err := Sort[elem.KV16](closureKV16{}, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(closureKV16{}, input); err != nil {
		t.Fatal(err)
	}
	// The fallback must agree with the keyed plane element-for-element.
	keyed, err := Sort[elem.KV16](kvc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	for pe := range res.Output {
		if len(res.Output[pe]) != len(keyed.Output[pe]) {
			t.Fatalf("PE %d: fallback and keyed output sizes differ", pe)
		}
		for i := range res.Output[pe] {
			if res.Output[pe][i] != keyed.Output[pe][i] {
				t.Fatalf("PE %d index %d: fallback and keyed outputs differ", pe, i)
			}
		}
	}
}

func TestSortDeterministic(t *testing.T) {
	cfg := testConfig(4)
	cfg.RealWorkers = 1 // pin: byte-reproducibility must not depend on the host
	input := inputFor(cfg, workload.Uniform, 6000, 5)
	a, err := Sort[elem.KV16](kvc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sort[elem.KV16](kvc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	for pe := range a.Output {
		if len(a.Output[pe]) != len(b.Output[pe]) {
			t.Fatal("output sizes differ between runs")
		}
		for i := range a.Output[pe] {
			if a.Output[pe][i] != b.Output[pe][i] {
				t.Fatalf("outputs differ at PE %d index %d", pe, i)
			}
		}
	}
	// Virtual time must be deterministic too.
	for _, ph := range a.PhaseNames {
		if a.MaxWall(ph) != b.MaxWall(ph) {
			t.Fatalf("phase %q wall differs between identical runs", ph)
		}
	}
}

func TestSortMemoryBudgetRespected(t *testing.T) {
	cfg := testConfig(4)
	input := inputFor(cfg, workload.Uniform, 6000, 9)
	res, err := Sort[elem.KV16](kvc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	for pe, peak := range res.PeakMemElems {
		if peak > cfg.MemElems {
			t.Errorf("PE %d peak memory %d exceeds budget %d", pe, peak, cfg.MemElems)
		}
	}
}

func TestSortInPlaceDiskBound(t *testing.T) {
	// §IV-E: the sort is nearly in place — peak disk usage stays within
	// input size plus a bounded overhead (partial blocks, R·P′ pieces).
	cfg := testConfig(4)
	perPE := 6000
	input := inputFor(cfg, workload.WorstCaseLocal, perPE, 13)
	cfg.Randomize = false // worst case: everything moves
	res, err := Sort[elem.KV16](kvc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	inputBlocks := int64((perPE + res.BlockElems - 1) / res.BlockElems)
	slack := int64(res.Runs*(cfg.P+2)) + int64(cfg.P) + 8
	for pe, peak := range res.PeakDiskBlocks {
		if peak > inputBlocks+slack {
			t.Errorf("PE %d peak disk %d blocks, input %d + slack %d", pe, peak, inputBlocks, slack)
		}
	}
}

func TestSortIOVolumeTwoPasses(t *testing.T) {
	// The paper's headline: 4N + o(N) I/O volume (two read/write passes)
	// for random input with randomization.
	cfg := testConfig(4)
	input := inputFor(cfg, workload.Uniform, 6000, 21)
	res, err := Sort[elem.KV16](kvc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	nBytes := res.N * int64(res.ElemSize)
	var read, written int64
	for _, ph := range res.PhaseNames {
		r, w := res.PhaseBytes(ph)
		read += r
		written += w
	}
	total := read + written
	if total < 4*nBytes {
		t.Fatalf("impossible: total I/O %d below 4N bytes %d", total, 4*nBytes)
	}
	if float64(total) > 4.35*float64(nBytes) {
		t.Errorf("total I/O %d bytes = %.2fx N, want ~4x + o(N)", total, float64(total)/float64(nBytes))
	}
	// Communication: data crosses the network about once (§IV-D).
	var net int64
	for _, ph := range res.PhaseNames {
		net += res.NetBytes(ph)
	}
	if float64(net) > 1.3*float64(nBytes) {
		t.Errorf("network volume %.2fx N, want ~1x", float64(net)/float64(nBytes))
	}
}

func TestSortWorstCaseMovesEverything(t *testing.T) {
	// Without randomization, locally sorted input forces the all-to-all
	// to move nearly all data (Figure 5's top curve)...
	cfg := testConfig(8)
	cfg.Randomize = false
	input := inputFor(cfg, workload.WorstCaseLocal, 6000, 17)
	res, err := Sort[elem.KV16](kvc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	nBytes := res.N * int64(res.ElemSize)
	read, written := res.PhaseBytes(PhaseExchange)
	ratioBad := float64(read+written) / float64(nBytes)

	// ...and with randomization the same input exchanges a small
	// fraction (Figure 5's randomized curves).
	cfg2 := testConfig(8)
	cfg2.Randomize = true
	res2, err := Sort[elem.KV16](kvc, cfg2, input)
	if err != nil {
		t.Fatal(err)
	}
	read2, written2 := res2.PhaseBytes(PhaseExchange)
	ratioGood := float64(read2+written2) / float64(nBytes)

	if ratioBad < 1.0 {
		t.Errorf("worst case non-randomized exchange ratio %.3f, want ~2", ratioBad)
	}
	if ratioGood > ratioBad/2 {
		t.Errorf("randomization did not help: %.3f vs %.3f", ratioGood, ratioBad)
	}
	if err := res.Validate(kvc, input); err != nil {
		t.Fatal(err)
	}
	if err := res2.Validate(kvc, input); err != nil {
		t.Fatal(err)
	}
}

func TestSortSelectionNegligible(t *testing.T) {
	// "Multiway selection takes in fact only negligible time" (§VI).
	cfg := testConfig(8)
	input := inputFor(cfg, workload.Uniform, 6000, 23)
	res, err := Sort[elem.KV16](kvc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	sel := res.MaxWall(PhaseSelection)
	rf := res.MaxWall(PhaseRunForm)
	if sel > rf/5 {
		t.Errorf("selection wall %.4fs vs run formation %.4fs — not negligible", sel, rf)
	}
}

func TestSortRejectsOversizedInput(t *testing.T) {
	cfg := testConfig(2)
	cfg.MemElems = 1 << 10
	perPE := int(cfg.MaxElemsPerPE(16)) + 10000
	input := [][]elem.KV16{make([]elem.KV16, perPE), make([]elem.KV16, perPE)}
	if _, err := Sort[elem.KV16](kvc, cfg, input); err == nil {
		t.Fatal("expected capacity error for input beyond two-pass bound")
	}
}

func TestSortConfigErrors(t *testing.T) {
	cfg := testConfig(2)
	cfg.P = 0
	if _, err := Sort[elem.KV16](kvc, cfg, nil); err == nil {
		t.Fatal("P=0 must fail")
	}
	cfg = testConfig(2)
	cfg.BlockBytes = 8 // smaller than an element
	if _, err := Sort[elem.KV16](kvc, cfg, [][]elem.KV16{{}, {}}); err == nil {
		t.Fatal("tiny blocks must fail")
	}
	cfg = testConfig(2)
	if _, err := Sort[elem.KV16](kvc, cfg, [][]elem.KV16{{}}); err == nil {
		t.Fatal("input/PE mismatch must fail")
	}
}

func TestSortOverlapAblation(t *testing.T) {
	// Overlapping I/O with computation must not change the output but
	// must reduce the modelled run-formation wall time.
	cfg := testConfig(4)
	input := inputFor(cfg, workload.Uniform, 6000, 29)
	cfg.Overlap = true
	a, err := Sort[elem.KV16](kvc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Overlap = false
	b, err := Sort[elem.KV16](kvc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(kvc, input); err != nil {
		t.Fatal(err)
	}
	if !(a.TotalWall() < b.TotalWall()) {
		t.Errorf("overlap did not reduce modelled time: %.4f vs %.4f", a.TotalWall(), b.TotalWall())
	}
}

func TestSortRec100(t *testing.T) {
	// SortBenchmark elements: 100-byte records, 10-byte keys.
	rc := elem.Rec100Codec{}
	cfg := Config{
		P:           3,
		BlockBytes:  100 * 32,
		MemElems:    1 << 12,
		RunFraction: 0.25,
		Randomize:   true,
		Seed:        4,
		Overlap:     true,
		RealWorkers: 1,
		KeepOutput:  true,
		Model:       vtime.Default(),
	}
	input := make([][]elem.Rec100, cfg.P)
	rngKeys := workload.Generate(workload.Uniform, cfg.P, 700, 31)
	for pe := range input {
		input[pe] = make([]elem.Rec100, len(rngKeys[pe]))
		for i, kv := range rngKeys[pe] {
			var rec elem.Rec100
			for b := 0; b < 8; b++ {
				rec[b] = byte(kv.Key >> (8 * (7 - b)))
			}
			rec[8] = byte(pe)
			rec[9] = byte(i)
			copy(rec[10:], fmt.Sprintf("payload-%d-%d", pe, i))
			input[pe][i] = rec
		}
	}
	res, err := Sort[elem.Rec100](rc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(rc, input); err != nil {
		t.Fatal(err)
	}
}

func TestSortSinkStreamsOutput(t *testing.T) {
	// Config.Sink must deliver exactly the sorted output bytes, in
	// order, without requiring KeepOutput's in-RAM materialization —
	// on the RAM store and on a file-backed store (the -store=file
	// path of the tcp workers).
	for _, store := range []string{"ram", "file"} {
		t.Run(store, func(t *testing.T) {
			cfg := testConfig(4)
			if store == "file" {
				cfg.NewStore = blockio.FileStoreFactory(t.TempDir(), cfg.BlockBytes)
			}
			var mu sync.Mutex
			streamed := make([][]byte, cfg.P)
			cfg.Sink = func(rank int, b []byte) error {
				mu.Lock()
				streamed[rank] = append(streamed[rank], b...)
				mu.Unlock()
				return nil
			}
			input := inputFor(cfg, workload.Uniform, 5200, 11)
			res, err := Sort[elem.KV16](kvc, cfg, input)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Validate(kvc, input); err != nil {
				t.Fatal(err)
			}
			for rank := 0; rank < cfg.P; rank++ {
				want := elem.EncodeSlice(kvc, res.Output[rank])
				if !bytes.Equal(streamed[rank], want) {
					t.Fatalf("rank %d: sink streamed %d bytes, KeepOutput has %d; contents differ",
						rank, len(streamed[rank]), len(want))
				}
			}
		})
	}
}

func TestSortSinkErrorAborts(t *testing.T) {
	cfg := testConfig(2)
	cfg.KeepOutput = false
	sinkErr := errors.New("disk full")
	cfg.Sink = func(rank int, b []byte) error { return sinkErr }
	input := inputFor(cfg, workload.Uniform, 5000, 3)
	_, err := Sort[elem.KV16](kvc, cfg, input)
	if err == nil || !errors.Is(err, sinkErr) {
		t.Fatalf("sink error must abort the sort, got %v", err)
	}
}
