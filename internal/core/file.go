package core

import (
	"io"

	"demsort/internal/blockio"
	"demsort/internal/bufpool"
	"demsort/internal/elem"
)

// Extent is a contiguous range of elements inside one disk block:
// elements [Off, Off+Len) of block ID. Own marks whether the file is
// the block's unique owner (and may free it after consumption); the
// all-to-all relabels kept data into output files by trimming extents,
// and a block whose other part was sent away is not freeable.
type Extent struct {
	ID  blockio.BlockID
	Off int
	Len int
	Own bool
}

// File is an ordered sequence of elements stored as extents on one
// PE's volume. Freshly written files have block-aligned extents; the
// in-place all-to-all introduces trimmed ones.
type File struct {
	Extents []Extent
	N       int64
}

// Append adds an extent, merging the element count.
func (f *File) Append(e Extent) {
	if e.Len == 0 {
		return
	}
	f.Extents = append(f.Extents, e)
	f.N += int64(e.Len)
}

// FreeOwned returns every owned block of f to the volume's free list.
func (f *File) FreeOwned(vol *blockio.Volume) {
	for _, e := range f.Extents {
		if e.Own {
			vol.Free(e.ID)
		}
	}
	f.Extents = nil
	f.N = 0
}

// writer buffers elements and writes full blocks asynchronously,
// producing an aligned File. The partial tail buffer can be flushed
// (creating a partial block) and refilled later — that flush/reload
// pair is exactly the "partially filled blocks" overhead of the
// external all-to-all (§IV-E).
type writer[T any] struct {
	c     elem.Codec[T]
	vol   *blockio.Volume
	bElem int
	buf   []T
	file  File
	enc   []byte
}

func newWriter[T any](c elem.Codec[T], vol *blockio.Volume) *writer[T] {
	bElem := vol.BlockBytes() / c.Size()
	return &writer[T]{
		c:     c,
		vol:   vol,
		bElem: bElem,
		buf:   make([]T, 0, bElem),
		enc:   bufpool.Get(vol.BlockBytes())[:0],
	}
}

// add appends one element, writing a block when full.
func (w *writer[T]) add(v T) {
	w.buf = append(w.buf, v)
	if len(w.buf) == w.bElem {
		w.flushFull()
	}
}

// addSlice appends many elements. Whole blocks arriving on an empty
// tail buffer are encoded straight from vs — the block-at-a-time merge
// loop hits this path for every full output block, paying no staging
// copy.
func (w *writer[T]) addSlice(vs []T) {
	for len(vs) > 0 {
		if len(w.buf) == 0 && len(vs) >= w.bElem {
			id := w.vol.Alloc()
			w.enc = elem.AppendEncode(w.c, w.enc[:0], vs[:w.bElem])
			w.vol.WriteAsync(id, w.enc)
			w.file.Append(Extent{ID: id, Off: 0, Len: w.bElem, Own: true})
			vs = vs[w.bElem:]
			continue
		}
		space := w.bElem - len(w.buf)
		take := len(vs)
		if take > space {
			take = space
		}
		w.buf = append(w.buf, vs[:take]...)
		vs = vs[take:]
		if len(w.buf) == w.bElem {
			w.flushFull()
		}
	}
}

func (w *writer[T]) flushFull() {
	id := w.vol.Alloc()
	w.enc = elem.AppendEncode(w.c, w.enc[:0], w.buf)
	w.vol.WriteAsync(id, w.enc)
	w.file.Append(Extent{ID: id, Off: 0, Len: len(w.buf), Own: true})
	w.buf = w.buf[:0]
}

// finish flushes any partial tail, releases the encode buffer to the
// arena and returns the file. The writer must not be reused after.
func (w *writer[T]) finish() File {
	if len(w.buf) > 0 {
		id := w.vol.Alloc()
		w.enc = elem.AppendEncode(w.c, w.enc[:0], w.buf)
		w.vol.WriteAsync(id, w.enc)
		w.file.Append(Extent{ID: id, Off: 0, Len: len(w.buf), Own: true})
		w.buf = w.buf[:0]
	}
	bufpool.Put(w.enc)
	w.enc = nil
	f := w.file
	w.file = File{}
	return f
}

// suspend writes the partial tail out as a partial block (counted I/O)
// so the writer holds no element state between all-to-all
// sub-operations; resume reads it back. Both are no-ops for an empty
// or block-aligned tail.
func (w *writer[T]) suspend() {
	if len(w.buf) == 0 {
		return
	}
	id := w.vol.Alloc()
	w.enc = elem.AppendEncode(w.c, w.enc[:0], w.buf)
	w.vol.WriteAsync(id, w.enc)
	w.file.Append(Extent{ID: id, Off: 0, Len: len(w.buf), Own: true})
	w.buf = w.buf[:0]
}

// resume reloads a trailing partial block into the tail buffer so
// appending continues seamlessly.
func (w *writer[T]) resume() {
	n := len(w.file.Extents)
	if n == 0 {
		return
	}
	last := w.file.Extents[n-1]
	if last.Len == w.bElem || !last.Own || last.Off != 0 {
		return
	}
	raw := bufpool.Get(last.Len * w.c.Size())
	w.vol.ReadWait(last.ID, raw)
	w.buf = elem.AppendDecode(w.c, w.buf[:0], raw, last.Len)
	bufpool.Put(raw)
	w.vol.Free(last.ID)
	w.file.Extents = w.file.Extents[:n-1]
	w.file.N -= int64(last.Len)
}

// reader streams a File's elements with double-buffered asynchronous
// prefetching: while one extent is being consumed the next is already
// in flight, the element-level analogue of the paper's prefetch
// buffers. When free is true, owned blocks are returned to the volume
// as soon as they are fully consumed (in-place operation).
type reader[T any] struct {
	c    elem.Codec[T]
	vol  *blockio.Volume
	file File
	free bool

	idx  int // next extent to hand out
	cur  []T
	pos  int
	curE Extent

	nextRaw []byte
	nextH   blockio.Handle
	nextOK  bool
	nextE   Extent
	overlap bool
}

func newReader[T any](c elem.Codec[T], vol *blockio.Volume, f File, free, overlap bool) *reader[T] {
	r := &reader[T]{c: c, vol: vol, file: f, free: free, overlap: overlap}
	r.prefetch()
	r.advance()
	return r
}

// prefetch issues the read of the next extent.
func (r *reader[T]) prefetch() {
	r.nextOK = false
	if r.idx >= len(r.file.Extents) {
		return
	}
	e := r.file.Extents[r.idx]
	r.idx++
	need := (e.Off + e.Len) * r.c.Size()
	if cap(r.nextRaw) < need {
		bufpool.Put(r.nextRaw)
		r.nextRaw = bufpool.Get(need)
	}
	r.nextRaw = r.nextRaw[:need]
	h := r.vol.ReadAsync(e.ID, r.nextRaw)
	if !r.overlap {
		r.vol.Wait(h)
	}
	r.nextH = h
	r.nextE = e
	r.nextOK = true
}

// advance makes the prefetched extent current and prefetches another.
func (r *reader[T]) advance() {
	if r.free && r.curE.Own && r.curE.Len > 0 {
		r.vol.Free(r.curE.ID)
	}
	if !r.nextOK {
		r.cur = nil
		r.curE = Extent{}
		bufpool.Put(r.nextRaw)
		r.nextRaw = nil
		return
	}
	r.vol.Wait(r.nextH)
	e := r.nextE
	raw := r.nextRaw[e.Off*r.c.Size():]
	r.cur = elem.AppendDecode(r.c, r.cur[:0], raw, e.Len)
	r.pos = 0
	r.curE = e
	// Swap buffers so the next prefetch does not overwrite cur...
	// cur was decoded already, so the raw buffer is reusable.
	r.prefetch()
}

// nextBlock returns the unconsumed remainder of the current decoded
// extent, advancing to the next extent when the current one is used
// up; nil at end of file. The returned slice is only valid until the
// following nextBlock call (the decode buffer is reused), so callers
// must consume it fully before asking again — the contract of the
// block-at-a-time merge loops.
func (r *reader[T]) nextBlock() []T {
	for r.pos >= len(r.cur) {
		if r.cur == nil {
			return nil
		}
		r.advance()
	}
	blk := r.cur[r.pos:]
	r.pos = len(r.cur)
	return blk
}

// next returns the next element; ok=false at end of file.
func (r *reader[T]) next() (T, bool) {
	for r.pos >= len(r.cur) {
		if r.cur == nil {
			var zero T
			return zero, false
		}
		r.advance()
	}
	v := r.cur[r.pos]
	r.pos++
	return v, true
}

// streamRaw feeds a File's encoded bytes to fn in element order — the
// zero-RAM-footprint way to drain a sorted output file (Config.Sink).
// The slice passed to fn is only valid for the duration of the call.
// With overlap the extents flow through two pooled buffers and extent
// i+1's read is issued before fn consumes extent i, hiding the store
// reads behind the sink writes; without it a single buffer is read
// synchronously per extent.
func streamRaw[T any](c elem.Codec[T], vol *blockio.Volume, f File, overlap bool, fn func([]byte) error) error {
	if !overlap {
		raw := bufpool.Get(vol.BlockBytes())
		defer func() { bufpool.Put(raw) }()
		for _, e := range f.Extents {
			need := (e.Off + e.Len) * c.Size()
			if cap(raw) < need {
				bufpool.Put(raw)
				raw = bufpool.Get(need)
			}
			vol.ReadWait(e.ID, raw[:need])
			if err := fn(raw[e.Off*c.Size() : need]); err != nil {
				return err
			}
		}
		return nil
	}
	var bufs [2][]byte
	var hs [2]blockio.Handle
	bufs[0] = bufpool.Get(vol.BlockBytes())
	bufs[1] = bufpool.Get(vol.BlockBytes())
	defer func() { bufpool.Put(bufs[0]); bufpool.Put(bufs[1]) }()
	issue := func(i int) {
		e := f.Extents[i]
		need := (e.Off + e.Len) * c.Size()
		b := i & 1
		if cap(bufs[b]) < need {
			bufpool.Put(bufs[b])
			bufs[b] = bufpool.Get(need)
		}
		bufs[b] = bufs[b][:need]
		hs[b] = vol.ReadAsync(e.ID, bufs[b])
	}
	if len(f.Extents) > 0 {
		issue(0)
	}
	for i, e := range f.Extents {
		b := i & 1
		vol.Wait(hs[b])
		if i+1 < len(f.Extents) {
			issue(i + 1)
		}
		if err := fn(bufs[b][e.Off*c.Size():]); err != nil {
			return err
		}
	}
	return nil
}

// loadStream fills a block-aligned File straight from an encoded byte
// stream via blockio.FillFrom: no decode, no element slice — the load
// phase's entire footprint is FillFrom's staging buffers, which is
// what keeps an -infile run at O(m) end-to-end memory. The caller
// charges the staging block(s) to the memory budget around the call.
// With overlap the source reads run on a stage goroutine ahead of the
// store writes (blockio.FillFromOverlap).
func loadStream[T any](c elem.Codec[T], vol *blockio.Volume, r io.Reader, n int64, overlap bool) (File, error) {
	bElem := vol.BlockBytes() / c.Size()
	fill := vol.FillFrom
	if overlap {
		fill = vol.FillFromOverlap
	}
	spans, err := fill(r, n*int64(c.Size()), bElem*c.Size())
	var f File
	for _, sp := range spans {
		f.Append(Extent{ID: sp.ID, Off: 0, Len: sp.Bytes / c.Size(), Own: true})
	}
	if err != nil {
		f.FreeOwned(vol)
		return File{}, err
	}
	return f, nil
}
