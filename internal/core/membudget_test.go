package core

import (
	"fmt"
	"testing"

	"demsort/internal/elem"
	"demsort/internal/psort"
	"demsort/internal/workload"
)

// Every phase must return its memory reservations: the budget tracker
// of each PE ends a sort at exactly zero live elements. This pins the
// acquire/release pairing of run formation (chunk, send copies,
// received encodings, pieces+merged, and — the historical leak — the
// per-run samples, which are only released after multiway selection).
func TestSortMemBudgetReturnsToZero(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		for _, kind := range []workload.Kind{workload.Uniform, workload.WorstCaseLocal, workload.AllEqual} {
			t.Run(fmt.Sprintf("p%d_%s", p, kind), func(t *testing.T) {
				cfg := testConfig(p)
				input := inputFor(cfg, kind, 5200, 77)
				res, err := Sort[elem.KV16](kvc, cfg, input)
				if err != nil {
					t.Fatal(err)
				}
				if res.Runs < 2 {
					t.Fatalf("want an external sort (R >= 2), got R=%d", res.Runs)
				}
				for rank, live := range res.EndMemElems {
					if live != 0 {
						t.Errorf("PE %d finished with %d elements of budget still reserved", rank, live)
					}
				}
			})
		}
	}
}

// Run formation's radix sort scratch is charged against the budget
// (it used to be invisible), and the in-place MSD path needs roughly
// half the LSD path's scratch: no second pair buffer, no n-element
// gather buffer. Two identical sorts differing only in the forced
// path must show that in the run-formation high-water mark.
func TestRunFormScratchCharged(t *testing.T) {
	const runLocal = 2048 // same run size as testConfig, more headroom
	mkCfg := func(path psort.Path) Config {
		cfg := DefaultConfig(4, 1<<15, 64*16)
		cfg.RunFraction = float64(runLocal) / float64(1<<15)
		cfg.RadixPath = path
		cfg.RealWorkers = 1
		return cfg
	}
	peak := func(path psort.Path) int64 {
		cfg := mkCfg(path)
		res, err := Sort[elem.KV16](kvc, cfg, inputFor(cfg, workload.Uniform, 5200, 77))
		if err != nil {
			t.Fatal(err)
		}
		if res.Runs < 2 {
			t.Fatalf("want an external sort (R >= 2), got R=%d", res.Runs)
		}
		var p int64
		for _, v := range res.RunFormPeakMemElems {
			if v > p {
				p = v
			}
		}
		return p
	}
	scratch := func(path psort.Path) int64 {
		b := psort.ScratchBytes(path, 16, runLocal, 1)
		return (b + 15) / 16
	}
	lsdPeak, msdPeak := peak(psort.PathLSD), peak(psort.PathMSD)
	t.Logf("run-formation peak: LSD %d elems, MSD %d elems (chunk %d, scratch LSD %d / MSD %d)",
		lsdPeak, msdPeak, runLocal, scratch(psort.PathLSD), scratch(psort.PathMSD))

	// The LSD sort moment must be visible in the peak: chunk + full
	// scratch (pairs ×2, histograms, gather buffer).
	if want := runLocal + scratch(psort.PathLSD); lsdPeak < want {
		t.Fatalf("LSD run-formation peak %d < chunk+scratch %d — radix scratch not charged", lsdPeak, want)
	}
	// The in-place path must show the reduction. Its sort moment is
	// chunk + half the scratch, so low that the run-exchange phase
	// (~3·segLen) becomes the high-water mark instead — the peak must
	// sit strictly below the LSD sort moment, by at least a full chunk.
	if msdPeak > lsdPeak-runLocal {
		t.Fatalf("MSD run-formation peak %d not ≥ %d elements below LSD peak %d — in-place scratch saving not visible",
			msdPeak, runLocal, lsdPeak)
	}
	if want := runLocal + scratch(psort.PathLSD); msdPeak >= int64(want) {
		t.Fatalf("MSD run-formation peak %d reaches the LSD sort moment %d — gather buffer not eliminated", msdPeak, want)
	}
}

// Under the regular tight test budget, PathAuto must resolve to the
// in-place MSD engine (LSD scratch does not fit the headroom) and
// complete within the budget — the "scratch stolen from run length"
// guard in action.
func TestRunFormAutoPathRespectsBudget(t *testing.T) {
	cfg := testConfig(4)
	cfg.RealWorkers = 1
	input := inputFor(cfg, workload.Uniform, 5200, 77)
	res, err := Sort[elem.KV16](kvc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	lsdNeed := (psort.ScratchBytes(psort.PathLSD, 16, 2048, 1) + 15) / 16
	for rank, p := range res.RunFormPeakMemElems {
		if p > cfg.MemElems {
			t.Fatalf("PE %d: run-formation peak %d exceeds budget %d", rank, p, cfg.MemElems)
		}
		if p >= 2048+lsdNeed {
			t.Fatalf("PE %d: peak %d implies the LSD path ran despite insufficient headroom (chunk+LSD scratch = %d)",
				rank, p, 2048+lsdNeed)
		}
	}
}

// The single-run (MinuteSort) regime takes a different code path
// through run formation; its pairing must balance too.
func TestSortMemBudgetReturnsToZeroSingleRun(t *testing.T) {
	cfg := testConfig(4)
	input := inputFor(cfg, workload.Uniform, 900, 5) // < runLocal: one run
	res, err := Sort[elem.KV16](kvc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 1 {
		t.Fatalf("want the single-run regime, got R=%d", res.Runs)
	}
	for rank, live := range res.EndMemElems {
		if live != 0 {
			t.Errorf("PE %d finished with %d elements of budget still reserved", rank, live)
		}
	}
}
