package core

import (
	"fmt"
	"testing"

	"demsort/internal/elem"
	"demsort/internal/workload"
)

// Every phase must return its memory reservations: the budget tracker
// of each PE ends a sort at exactly zero live elements. This pins the
// acquire/release pairing of run formation (chunk, send copies,
// received encodings, pieces+merged, and — the historical leak — the
// per-run samples, which are only released after multiway selection).
func TestSortMemBudgetReturnsToZero(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		for _, kind := range []workload.Kind{workload.Uniform, workload.WorstCaseLocal, workload.AllEqual} {
			t.Run(fmt.Sprintf("p%d_%s", p, kind), func(t *testing.T) {
				cfg := testConfig(p)
				input := inputFor(cfg, kind, 5200, 77)
				res, err := Sort[elem.KV16](kvc, cfg, input)
				if err != nil {
					t.Fatal(err)
				}
				if res.Runs < 2 {
					t.Fatalf("want an external sort (R >= 2), got R=%d", res.Runs)
				}
				for rank, live := range res.EndMemElems {
					if live != 0 {
						t.Errorf("PE %d finished with %d elements of budget still reserved", rank, live)
					}
				}
			})
		}
	}
}

// The single-run (MinuteSort) regime takes a different code path
// through run formation; its pairing must balance too.
func TestSortMemBudgetReturnsToZeroSingleRun(t *testing.T) {
	cfg := testConfig(4)
	input := inputFor(cfg, workload.Uniform, 900, 5) // < runLocal: one run
	res, err := Sort[elem.KV16](kvc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 1 {
		t.Fatalf("want the single-run regime, got R=%d", res.Runs)
	}
	for rank, live := range res.EndMemElems {
		if live != 0 {
			t.Errorf("PE %d finished with %d elements of budget still reserved", rank, live)
		}
	}
}
