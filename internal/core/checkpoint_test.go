package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"demsort/internal/blockio"
	"demsort/internal/cluster"
	"demsort/internal/cluster/faulty"
	"demsort/internal/cluster/sim"
	"demsort/internal/elem"
	"demsort/internal/workload"
)

// tallySource wraps a slice-backed Source so the test can prove how
// many input bytes the sort actually pulled (the "zero re-read"
// evidence of the resume contract). One shared counter — sim ranks
// stream concurrently.
func tallySource(input [][]elem.KV16) (func(rank int) (io.Reader, int64, error), *atomic.Int64) {
	var n atomic.Int64
	return func(rank int) (io.Reader, int64, error) {
		enc := elem.EncodeSlice(kvc, input[rank])
		return &tallyReader{r: bytes.NewReader(enc), n: &n}, int64(len(input[rank])), nil
	}, &n
}

type tallyReader struct {
	r io.Reader
	n *atomic.Int64
}

func (t *tallyReader) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	t.n.Add(int64(n))
	return n, err
}

// sinkCapture collects each rank's sorted output bytes (ranks stream
// concurrently on the sim backend).
func sinkCapture(p int) (func(rank int, b []byte) error, [][]byte) {
	out := make([][]byte, p)
	var mu sync.Mutex
	return func(rank int, b []byte) error {
		mu.Lock()
		out[rank] = append(out[rank], b...)
		mu.Unlock()
		return nil
	}, out
}

func ckptConfig(p int, dir string, resume bool, epoch int) Config {
	cfg := testConfig(p)
	cfg.KeepOutput = false
	cfg.NewStore = blockio.DurableFileStoreFactory(dir, cfg.BlockBytes)
	cfg.Checkpoint = CheckpointConfig{Dir: dir, JobID: "ckpt-test", Epoch: epoch, Resume: resume}
	return cfg
}

// TestResumeSkipsCommittedPhases is the heart of the checkpoint plane:
// a durable run commits after run formation and selection; a resumed
// run on the same workdir produces byte-identical output while reading
// ZERO input bytes and never entering the committed phases.
func TestResumeSkipsCommittedPhases(t *testing.T) {
	const p = 4
	input := inputFor(testConfig(p), workload.Uniform, 5200, 23)

	// Reference: the plain, non-durable streaming run.
	refCfg := testConfig(p)
	refCfg.KeepOutput = false
	refCfg.Source, _ = tallySource(input)
	refSink, refOut := sinkCapture(p)
	refCfg.Sink = refSink
	if _, err := Sort[elem.KV16](kvc, refCfg, nil); err != nil {
		t.Fatal(err)
	}

	// Durable fresh run: same output, manifests committed.
	dir := t.TempDir()
	cfg := ckptConfig(p, dir, false, 0)
	src, readBytes := tallySource(input)
	cfg.Source = src
	sink, out := sinkCapture(p)
	cfg.Sink = sink
	if _, err := Sort[elem.KV16](kvc, cfg, nil); err != nil {
		t.Fatal(err)
	}
	if readBytes.Load() == 0 {
		t.Fatal("fresh run read no input?")
	}
	for r := 0; r < p; r++ {
		if !bytes.Equal(out[r], refOut[r]) {
			t.Fatalf("rank %d: durable mode changed the output", r)
		}
		man, err := blockio.LoadManifest(dir, r)
		if err != nil {
			t.Fatalf("rank %d committed no manifest: %v", r, err)
		}
		if man.Phase != PhaseSelection {
			t.Fatalf("rank %d manifest at phase %q, want %q", r, man.Phase, PhaseSelection)
		}
		if len(man.Splitters) != p+1 {
			t.Fatalf("rank %d manifest has %d splitter rows, want %d", r, len(man.Splitters), p+1)
		}
	}

	// Resume: byte-identical, zero input bytes, committed phases never
	// entered (they have no stats entries).
	rcfg := ckptConfig(p, dir, true, 1)
	rsrc, reread := tallySource(input)
	rcfg.Source = rsrc
	rsink, rout := sinkCapture(p)
	rcfg.Sink = rsink
	res, err := Sort[elem.KV16](kvc, rcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := reread.Load(); got != 0 {
		t.Fatalf("resume re-read %d input bytes, want 0", got)
	}
	for r := 0; r < p; r++ {
		if !bytes.Equal(rout[r], refOut[r]) {
			t.Fatalf("rank %d: resumed output differs from the reference", r)
		}
		if res.PerPE[r][PhaseRunForm] != nil || res.PerPE[r][PhaseSelection] != nil {
			t.Fatalf("rank %d re-entered a committed phase on resume", r)
		}
		if res.PerPE[r][PhaseExchange] == nil || res.PerPE[r][PhaseMerge] == nil {
			t.Fatalf("rank %d skipped an uncommitted phase on resume", r)
		}
	}
	if res.EndMemElems[0] != 0 {
		t.Fatalf("resume leaked %d memory reservations", res.EndMemElems[0])
	}
}

// TestResumeDowngradesToMinPhase: a crash can land between the
// selection commits of different ranks. The fleet must agree on the
// MINIMUM committed phase — a rank whose manifest is ahead downgrades
// and re-runs selection with everyone else, bit-identically.
func TestResumeDowngradesToMinPhase(t *testing.T) {
	const p = 2
	input := inputFor(testConfig(p), workload.Uniform, 5200, 29)
	dir := t.TempDir()

	cfg := ckptConfig(p, dir, false, 0)
	cfg.Source, _ = tallySource(input)
	sink, out := sinkCapture(p)
	cfg.Sink = sink
	if _, err := Sort[elem.KV16](kvc, cfg, nil); err != nil {
		t.Fatal(err)
	}

	// Rewind rank 1's manifest to the run-formation commit, as if the
	// crash hit before its selection commit landed.
	man, err := blockio.LoadManifest(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	man.Phase = PhaseRunForm
	man.Splitters = nil
	if err := man.WriteFile(dir); err != nil {
		t.Fatal(err)
	}

	rcfg := ckptConfig(p, dir, true, 1)
	rsrc, reread := tallySource(input)
	rcfg.Source = rsrc
	rsink, rout := sinkCapture(p)
	rcfg.Sink = rsink
	res, err := Sort[elem.KV16](kvc, rcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := reread.Load(); got != 0 {
		t.Fatalf("downgraded resume re-read %d input bytes, want 0 (runs are still committed)", got)
	}
	for r := 0; r < p; r++ {
		if !bytes.Equal(rout[r], out[r]) {
			t.Fatalf("rank %d: downgraded resume changed the output", r)
		}
		// BOTH ranks re-ran selection — including rank 0, whose own
		// manifest was still at the selection commit.
		if res.PerPE[r][PhaseSelection] == nil {
			t.Fatalf("rank %d did not re-run selection after the fleet downgrade", r)
		}
		if res.PerPE[r][PhaseRunForm] != nil {
			t.Fatalf("rank %d re-ran run formation despite its commit", r)
		}
	}
}

// Resume must refuse manifests that describe a different job or a
// non-durable store rather than quietly sorting garbage.
func TestCheckpointValidation(t *testing.T) {
	const p = 2
	input := inputFor(testConfig(p), workload.Uniform, 5200, 31)
	dir := t.TempDir()

	cfg := ckptConfig(p, dir, false, 0)
	cfg.Source, _ = tallySource(input)
	cfg.Sink = func(int, []byte) error { return nil }
	if _, err := Sort[elem.KV16](kvc, cfg, nil); err != nil {
		t.Fatal(err)
	}

	// Wrong job ID.
	bad := ckptConfig(p, dir, true, 1)
	bad.Checkpoint.JobID = "someone-elses-job"
	bad.Source, _ = tallySource(input)
	bad.Sink = func(int, []byte) error { return nil }
	if _, err := Sort[elem.KV16](kvc, bad, nil); err == nil {
		t.Fatal("resume accepted a foreign job's manifests")
	}

	// Checkpointing onto a non-durable (RAM) store must fail loudly at
	// the first commit, not lose the checkpoint silently.
	ram := testConfig(p)
	ram.KeepOutput = false
	ram.Checkpoint = CheckpointConfig{Dir: t.TempDir(), JobID: "x"}
	ram.Source, _ = tallySource(input)
	ram.Sink = func(int, []byte) error { return nil }
	if _, err := Sort[elem.KV16](kvc, ram, nil); err == nil {
		t.Fatal("checkpointing accepted a RAM store that cannot survive a restart")
	}
}

// TestChaosRestartMatrix is the recovery half of PR 6's chaos plane:
// kill one rank in each phase of the sort, then restart the job the
// way the launcher would — from scratch for a RAM-backed fleet, via
// manifest resume for a durable file-backed one — and require output
// byte-identical to the unfaulted run, with no goroutine leaks.
func TestChaosRestartMatrix(t *testing.T) {
	phases := []string{PhaseRunForm, PhaseSelection, PhaseExchange, PhaseMerge}
	before := runtime.NumGoroutine()
	for _, p := range []int{2, 4} {
		input := inputFor(testConfig(p), workload.Uniform, 5200+37*p, 41)

		refCfg := testConfig(p)
		refCfg.KeepOutput = false
		refCfg.Source, _ = tallySource(input)
		refSink, refOut := sinkCapture(p)
		refCfg.Sink = refSink
		if _, err := Sort[elem.KV16](kvc, refCfg, nil); err != nil {
			t.Fatal(err)
		}

		for _, mode := range []string{"ram-fresh-restart", "file-resume"} {
			for _, phase := range phases {
				t.Run(fmt.Sprintf("P%d_%s_crash-in-%s", p, mode, phase), func(t *testing.T) {
					victim := p / 2
					dir := t.TempDir()

					// Incarnation 1: durable when resuming, and killed
					// by the deterministic injector in the target phase.
					var cfg1 Config
					if mode == "file-resume" {
						cfg1 = ckptConfig(p, dir, false, 0)
					} else {
						cfg1 = testConfig(p)
						cfg1.KeepOutput = false
					}
					sm, err := sim.New(sim.Config{
						P: p, BlockBytes: cfg1.BlockBytes, MemElems: cfg1.MemElems,
						Model: cfg1.Model, NewStore: cfg1.NewStore,
					})
					if err != nil {
						t.Fatal(err)
					}
					fm := faulty.Wrap(sm, 7, faulty.Fault{Rank: victim, Action: faulty.Crash, Phase: phase})
					cfg1.Machine = fm
					cfg1.NewStore = nil
					cfg1.Source, _ = tallySource(input)
					cfg1.Sink = func(int, []byte) error { return nil }
					_, err = Sort[elem.KV16](kvc, cfg1, nil)
					fm.Close()
					var ae *cluster.ErrAborted
					if !errors.As(err, &ae) || ae.Rank != victim {
						t.Fatalf("crash in %q returned %v, want abort naming rank %d", phase, err, victim)
					}

					// Incarnation 2: restart the job. Fresh for RAM,
					// manifest resume at the next epoch for file.
					var cfg2 Config
					if mode == "file-resume" {
						cfg2 = ckptConfig(p, dir, true, 1)
					} else {
						cfg2 = testConfig(p)
						cfg2.KeepOutput = false
					}
					src, reread := tallySource(input)
					cfg2.Source = src
					sink, out := sinkCapture(p)
					cfg2.Sink = sink
					if _, err := Sort[elem.KV16](kvc, cfg2, nil); err != nil {
						t.Fatalf("restart after crash in %q: %v", phase, err)
					}
					for r := 0; r < p; r++ {
						if !bytes.Equal(out[r], refOut[r]) {
							t.Fatalf("rank %d: restarted output differs from the unfaulted run", r)
						}
					}
					// Once run formation has committed, resume re-reads
					// nothing; a crash before the first commit degrades
					// to a fresh run, which must re-read everything.
					if mode == "file-resume" && phase != PhaseRunForm {
						if got := reread.Load(); got != 0 {
							t.Fatalf("resume after crash in %q re-read %d input bytes, want 0", phase, got)
						}
					} else if reread.Load() == 0 {
						t.Fatal("a from-scratch restart claims it read no input")
					}
				})
			}
		}
	}
	// Every machine (faulted and restarted) must be fully torn down.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
