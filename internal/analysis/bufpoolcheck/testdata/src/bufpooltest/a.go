// Fixture for bufpoolcheck: the PR-4 stranding patterns (leaked,
// discarded and API-escaping arena buffers; stranded receive vectors)
// and the clean ownership idioms the real tree uses.
package fixture

import (
	"demsort/internal/bufpool"
	"demsort/internal/cluster"
)

// leak: acquired, never released, never handed off.
func leak(n int) int {
	buf := bufpool.Get(n) // want `neither released`
	total := 0
	for _, b := range buf {
		total += int(b)
	}
	return total
}

// drop: the result can never be released.
func drop(n int) {
	bufpool.Get(n) // want `discarded`
}

// Gather is the PR-4 stranding bug minimized: an exported helper
// returning a slice that aliases the arena.
func Gather(n int) []byte {
	buf := bufpool.Get(n)
	fill(buf)
	return buf // want `exported API boundary`
}

// GatherDirect returns the arena buffer without even a binding.
func GatherDirect(n int) []byte {
	return bufpool.Get(n) // want `exported API boundary`
}

// gather is the same shape unexported: an intra-package ownership
// hand-off, which is legal.
func gather(n int) []byte {
	buf := bufpool.Get(n)
	fill(buf)
	return buf
}

func fill(b []byte) {}

// useAfter: the arena may already have re-issued the backing array.
func useAfter(n int) {
	buf := bufpool.Get(n)
	bufpool.Put(buf)
	bufpool.Put(buf) // want `after bufpool.Put`
}

func readAfter(n int) byte {
	buf := bufpool.Get(n)
	v := buf[0]
	bufpool.Put(buf)
	fill(buf) // want `after bufpool.Put`
	return v
}

// strand: a receive vector decoded and dropped (the dselect class).
func strand(n *cluster.Node, send [][]byte) int {
	recv := n.AllToAllv(send) // want `neither released`
	total := 0
	for _, b := range recv {
		total += len(b)
	}
	return total
}

// --- clean idioms ---

func okDefer(n int) {
	buf := bufpool.Get(n)
	defer bufpool.Put(buf)
	fill(buf)
}

func okStraight(n int) {
	buf := bufpool.Get(n)
	fill(buf)
	bufpool.Put(buf)
}

// okGrow: Put-then-rebind inside a branch, the selection.go idiom.
func okGrow(buf []byte, need int) []byte {
	if need > cap(buf) {
		bufpool.Put(buf)
		buf = bufpool.Get(need)
	}
	fill(buf)
	return buf
}

type sink struct{ b []byte }

// okStore: ownership handed to a longer-lived struct.
func okStore(s *sink, n int) {
	s.b = bufpool.Get(n)
}

// okRecv: receive vector recycled after decoding.
func okRecv(n *cluster.Node, send [][]byte) int {
	recv := n.AllToAllv(send)
	total := 0
	for _, b := range recv {
		total += len(b)
	}
	cluster.RecycleRecv(recv)
	return total
}

// okStream: Collect results recycled, the A2AStream discipline.
func okStream(n *cluster.Node, send [][]byte) {
	st := n.OpenA2AStream(2)
	st.Post(send)
	recv := st.Collect()
	cluster.RecycleRecv(recv)
	st.Close()
}

// allowed: a deliberate, argued exception.
func allowed(n int) int {
	//lint:allow bufpoolcheck fixture: ownership documented out of band
	buf := bufpool.Get(n)
	return len(buf)
}
