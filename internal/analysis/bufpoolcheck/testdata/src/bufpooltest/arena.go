// Fixture for the PR-10 sort-arena idiom: a fixed-slot struct that
// acquires several pooled buffers up front and releases them all on
// one deferred path (covering panic unwind). Storing the Get result
// into a struct slot is an ownership hand-off — the arena is clean by
// construction — while a buffer kept in a local and never stored nor
// released is still a leak.
package fixture

import "demsort/internal/bufpool"

// sortArena mirrors psort's arena: every Get lands in a fixed slot so
// release can return exactly what was acquired, on success and on
// panic unwind alike.
type sortArena struct {
	bufs [4][]byte
	n    int
}

func (ar *sortArena) grab(nbytes int) []byte {
	b := bufpool.Get(nbytes)
	ar.bufs[ar.n] = b // hand-off: slot store transfers ownership
	ar.n++
	return b
}

func (ar *sortArena) release() {
	for i := 0; i < ar.n; i++ {
		bufpool.Put(ar.bufs[i])
		ar.bufs[i] = nil
	}
	ar.n = 0
}

// okArena: the real run-formation shape — acquire everything through
// the arena, deferred release covers every exit including panics from
// the sort body.
func okArena(n int) {
	var ar sortArena
	defer ar.release()
	a := ar.grab(n * 16)
	b := ar.grab(n * 16)
	fill(a)
	fill(b)
	mayPanic(a)
}

// okArenaEarlyReturn: conditional early return still releases via the
// same defer.
func okArenaEarlyReturn(n int) {
	var ar sortArena
	defer ar.release()
	a := ar.grab(n)
	if len(a) == 0 {
		return
	}
	fill(a)
}

// leakArenaBypass: a buffer acquired beside the arena, kept in a
// local, never stored into a slot and never released — the bug the
// arena exists to prevent.
func leakArenaBypass(n int) int {
	var ar sortArena
	defer ar.release()
	a := ar.grab(n)
	scratch := bufpool.Get(n) // want `neither released`
	fill(a)
	total := 0
	for _, v := range scratch {
		total += int(v)
	}
	return total
}

func mayPanic(b []byte) {
	if len(b) == 1 {
		panic("boom")
	}
}
