// A package claiming the arena's own import path: exempt from the
// checker even where it would otherwise report (Get discarded).
package bufpool

import "demsort/internal/bufpool"

func churn(n int) {
	bufpool.Get(n)
}
