// Package bufpoolcheck enforces the arena ownership contract of the
// data plane. Every buffer drawn from the shared arena — bufpool.Get,
// or a receive vector from AllToAllv / A2AStream.Collect — has exactly
// one owner, and the owner must either return it (bufpool.Put /
// cluster.RecycleRecv) or hand it off (pass it to a callee, store it,
// send it). PR 4 burned a debugging cycle on exactly the violations
// this analyzer encodes: collective results aliasing never-recycled
// arena buffers across an exported API boundary, and buffers stranded
// on early-return paths.
//
// The analysis is intra-procedural and deliberately conservative:
//
//   - a Get/recv result that is neither released nor handed off
//     anywhere in its function is a leak;
//   - a buffer returned from an *exported* function or method is an
//     escape across the API boundary — callers cannot know the slice
//     aliases the arena (the PR-4 stranding class);
//   - within one statement list, using a buffer after bufpool.Put —
//     including a second Put — is a use-after-release.
//
// Handing a buffer to any call or store counts as a transfer, so
// cross-function ownership (writer structs, send queues) never false-
// positives; the cost is that only locally-obvious violations are
// caught, which is the right trade for a blocking CI gate.
package bufpoolcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"demsort/internal/analysis"
)

const (
	bufpoolPath = "demsort/internal/bufpool"
	clusterPath = "demsort/internal/cluster"
)

// Analyzer is the arena ownership checker.
var Analyzer = &analysis.Analyzer{
	Name: "bufpoolcheck",
	Doc: "pooled buffers (bufpool.Get, AllToAllv/Collect receives) must be " +
		"released or handed off on every path, never used after Put, and " +
		"never returned across exported API boundaries",
	Run: run,
}

// use classification results, from weakest to strongest claim.
const (
	useSafe = iota
	useReleased
	useEscaped
	useReturned
)

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == bufpoolPath {
		return nil // the arena itself manages raw pointers by design
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// acquisition is one arena/recv buffer binding in a function.
type acquisition struct {
	obj  types.Object // the local variable bound to the buffer
	pos  token.Pos    // the Get/recv call position
	kind string       // "bufpool.Get" or the receiving op's name
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	parents := buildParents(fd)

	// Collect acquisitions and flag Get results that are discarded
	// outright (an ExprStmt'd or blank-assigned Get can never be
	// released).
	acquired := map[types.Object]*acquisition{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, isAcq := acquisitionKind(info, call)
		if !isAcq {
			return true
		}
		switch obj := boundObject(info, parents, call); {
		case obj != nil:
			if _, seen := acquired[obj]; !seen {
				acquired[obj] = &acquisition{obj: obj, pos: call.Pos(), kind: kind}
			}
		case discarded(parents, call):
			pass.Reportf(call.Pos(),
				"result of %s is discarded: the pooled buffer can never be released", kind)
		}
		return true
	})

	// Classify every use of every acquired object.
	released := map[types.Object]bool{}
	escaped := map[types.Object]bool{}
	exported := analysis.Exported(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		acq := acquired[obj]
		if acq == nil {
			return true
		}
		switch classifyUse(info, parents, id) {
		case useReleased:
			released[obj] = true
		case useEscaped:
			escaped[obj] = true
		case useReturned:
			escaped[obj] = true
			if exported && acq.kind == "bufpool.Get" {
				pass.Reportf(id.Pos(),
					"pooled buffer %s (from %s) returned across exported API boundary %s: callers cannot know the slice aliases the arena",
					id.Name, acq.kind, fd.Name.Name)
			}
		}
		return true
	})
	for obj, acq := range acquired {
		if !released[obj] && !escaped[obj] {
			pass.Reportf(acq.pos,
				"pooled buffer %s (from %s) is neither released (bufpool.Put/cluster.RecycleRecv) nor handed off in %s",
				obj.Name(), acq.kind, fd.Name.Name)
		}
	}

	// Direct `return bufpool.Get(...)` from an exported function.
	if exported {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				if call, ok := peelToCall(res); ok {
					if kind, isAcq := acquisitionKind(info, call); isAcq && kind == "bufpool.Get" {
						pass.Reportf(res.Pos(),
							"pooled buffer from bufpool.Get returned across exported API boundary %s", fd.Name.Name)
					}
				}
			}
			return true
		})
	}

	// Sequential use-after-Put / double-Put within each statement list.
	ast.Inspect(fd, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		checkBlockLiveness(pass, info, block)
		return true
	})
}

// peelToCall unwraps parens and reslices down to a call expression.
func peelToCall(e ast.Expr) (*ast.CallExpr, bool) {
	for {
		switch ee := e.(type) {
		case *ast.ParenExpr:
			e = ee.X
		case *ast.SliceExpr:
			e = ee.X
		case *ast.CallExpr:
			return ee, true
		default:
			return nil, false
		}
	}
}

// acquisitionKind reports whether call acquires an arena-owned buffer
// and, if so, how.
func acquisitionKind(info *types.Info, call *ast.CallExpr) (string, bool) {
	if analysis.IsPkgFunc(info, call, bufpoolPath, "Get") {
		return "bufpool.Get", true
	}
	for _, op := range []string{"AllToAllv", "Collect"} {
		if analysis.IsMethodOf(info, call, clusterPath, op) {
			return op, true
		}
	}
	return "", false
}

// boundObject returns the local variable an acquisition call is bound
// to via `x := call` / `x = call` (possibly through parens or an
// immediate reslice), or nil when the result flows elsewhere.
func boundObject(info *types.Info, parents map[ast.Node]ast.Node, call *ast.CallExpr) types.Object {
	// Climb through value-preserving wrappers.
	var node ast.Node = call
	for {
		p := parents[node]
		switch pp := p.(type) {
		case *ast.ParenExpr:
			node = pp
			continue
		case *ast.SliceExpr:
			if pp.X == node {
				node = pp
				continue
			}
			return nil
		case *ast.AssignStmt:
			for i, rhs := range pp.Rhs {
				if rhs == node && i < len(pp.Lhs) {
					if id, ok := pp.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
						if obj := info.Defs[id]; obj != nil {
							return obj
						}
						return info.Uses[id]
					}
				}
			}
			return nil
		default:
			return nil
		}
	}
}

// discarded reports whether the acquisition call's value is dropped on
// the floor: an expression statement, or assignment to blank.
func discarded(parents map[ast.Node]ast.Node, call *ast.CallExpr) bool {
	switch p := parents[call].(type) {
	case *ast.ExprStmt:
		return true
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if rhs == call && i < len(p.Lhs) {
				id, ok := p.Lhs[i].(*ast.Ident)
				return ok && id.Name == "_"
			}
		}
	}
	return false
}

// classifyUse decides what one mention of an acquired buffer does with
// it. Unknown contexts classify as escaped — the analyzer only reports
// what it can locally prove.
func classifyUse(info *types.Info, parents map[ast.Node]ast.Node, id *ast.Ident) int {
	var node ast.Node = id
	for {
		switch p := parents[node].(type) {
		case *ast.ParenExpr:
			node = p
		case *ast.SliceExpr:
			if p.X == node {
				node = p // an alias of the buffer: classify by its context
				continue
			}
			return useSafe // used as a bound inside another slice expr
		case *ast.IndexExpr:
			return useSafe // element access, or used as an index
		case *ast.CallExpr:
			fn := analysis.CalleeFunc(info, p)
			if fn != nil && fn.Pkg() != nil {
				path, name := fn.Pkg().Path(), fn.Name()
				if (path == bufpoolPath && name == "Put") ||
					(path == clusterPath && name == "RecycleRecv") {
					return useReleased
				}
			}
			if bid, ok := ast.Unparen(p.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[bid].(*types.Builtin); ok {
					switch b.Name() {
					case "len", "cap", "copy", "clear", "min", "max":
						return useSafe
					}
				}
			}
			return useEscaped // handed to a callee: ownership transferred
		case *ast.BinaryExpr:
			return useSafe // comparisons (buf == nil) observe, not own
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if l == node {
					return useSafe // rebinding the variable itself
				}
			}
			return useEscaped // stored into another variable/field/slot
		case *ast.ReturnStmt:
			return useReturned
		case *ast.RangeStmt:
			if p.X == node {
				return useSafe
			}
			return useEscaped
		case *ast.IfStmt, *ast.ExprStmt, *ast.ForStmt, *ast.SwitchStmt:
			return useSafe
		default:
			return useEscaped
		}
	}
}

// checkBlockLiveness walks one statement list in order, tracking
// variables whose buffer has been returned to the arena by a
// non-deferred bufpool.Put / cluster.RecycleRecv; any later mention
// before rebinding is a use-after-release (a second Put doubly so:
// the arena would hand the same backing array to two owners).
func checkBlockLiveness(pass *analysis.Pass, info *types.Info, block *ast.BlockStmt) {
	dead := map[types.Object]string{}
	for _, stmt := range block.List {
		if len(dead) > 0 {
			reportDeadUses(pass, info, stmt, dead)
		}
		// Any rebinding anywhere inside the statement (including branch
		// arms) resurrects the variable for the following siblings; a
		// direct top-level Put/RecycleRecv kills it.
		ast.Inspect(stmt, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, l := range asg.Lhs {
				if id, ok := l.(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						delete(dead, obj)
					} else if obj := info.Uses[id]; obj != nil {
						delete(dead, obj)
					}
				}
			}
			return true
		})
		if s, ok := stmt.(*ast.ExprStmt); ok {
			if call, ok := s.X.(*ast.CallExpr); ok {
				if obj, how := releasedObject(info, call); obj != nil {
					dead[obj] = how
				}
			}
		}
	}
}

// releasedObject returns the variable a direct release call frees, and
// the call's name.
func releasedObject(info *types.Info, call *ast.CallExpr) (types.Object, string) {
	how := ""
	switch {
	case analysis.IsPkgFunc(info, call, bufpoolPath, "Put"):
		how = "bufpool.Put"
	case analysis.IsPkgFunc(info, call, clusterPath, "RecycleRecv"):
		how = "cluster.RecycleRecv"
	default:
		return nil, ""
	}
	if len(call.Args) != 1 {
		return nil, ""
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil, ""
	}
	if obj := info.Uses[id]; obj != nil {
		return obj, how
	}
	return nil, ""
}

// reportDeadUses flags mentions of already-released buffers inside
// stmt, without descending into function literals (a deferred closure
// referencing the variable runs later, when it may be rebound).
func reportDeadUses(pass *analysis.Pass, info *types.Info, stmt ast.Stmt, dead map[types.Object]string) {
	// A rebinding inside this statement resurrects the variable from
	// its own position on: only mentions strictly before it are uses of
	// the released buffer, and the rebinding ident itself is a write.
	rebound := map[types.Object]token.Pos{}
	lhs := map[*ast.Ident]bool{}
	ast.Inspect(stmt, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, l := range asg.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok {
				continue
			}
			lhs[id] = true
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if _, isDead := dead[obj]; isDead {
				if p, seen := rebound[obj]; !seen || id.Pos() < p {
					rebound[obj] = id.Pos()
				}
			}
		}
		return true
	})
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // deferred closures run later, possibly after rebinding
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		how, isDead := dead[obj]
		if !isDead || lhs[id] {
			return true
		}
		if p, seen := rebound[obj]; seen && id.Pos() >= p {
			return true
		}
		pass.Reportf(id.Pos(),
			"use of pooled buffer %s after %s: the arena may already have handed its backing array to another owner",
			id.Name, how)
		return true
	})
}

// buildParents maps every node under root to its parent.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
