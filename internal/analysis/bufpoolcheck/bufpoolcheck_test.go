package bufpoolcheck_test

import (
	"testing"

	"demsort/internal/analysis/atest"
	"demsort/internal/analysis/bufpoolcheck"
)

func TestBufpoolcheck(t *testing.T) {
	atest.Run(t, bufpoolcheck.Analyzer, "testdata/src/bufpooltest", "demsort/internal/fixture")
}

// TestBufpoolPackageExempt pins that the arena's own implementation
// (raw pointer plumbing by design) is not analyzed.
func TestBufpoolPackageExempt(t *testing.T) {
	atest.Run(t, bufpoolcheck.Analyzer, "testdata/src/bufpoolself", "demsort/internal/bufpool")
}
