// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis framework: just enough structure to
// host the demsortvet invariant suite (see cmd/demsortvet) without
// pulling x/tools into the module. An Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics; the
// framework owns position bookkeeping and the `//lint:allow`
// suppression protocol shared by every checker.
//
// The suite exists because the repo's tier-1 property — byte-identical
// output across every execution mode — rests on contracts the compiler
// cannot see: pooled buffers must return to the arena, backend-neutral
// phase code must never read the wall clock, blocking transport time
// must land in the right phase, failures crossing the cluster boundary
// must carry typed blame, and background goroutines must be joined.
// Each contract has burned a real debugging cycle (PRs 4, 6, 8);
// here they are machine-checked.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Run inspects the Pass's package
// and reports violations via Pass.Reportf; returning an error aborts
// the whole vet run (reserved for internal failures, not findings).
type Analyzer struct {
	// Name identifies the analyzer in reports and in
	// `//lint:allow <name> <reason>` suppression comments.
	Name string
	// Doc is the one-paragraph contract statement shown by
	// `demsortvet -help`.
	Doc string
	// Run performs the check.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	// Analyzer is the reporting checker's name.
	Analyzer string
	// Pos locates the violation.
	Pos token.Position
	// Message states the violation.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowRe matches the suppression protocol: `//lint:allow <analyzer>
// <reason>`, the reason mandatory so every exception is argued in the
// source, next to the code it excuses.
var allowRe = regexp.MustCompile(`^//\s*lint:allow\s+(\S+)\s+(\S.*)$`)

// allowedLines collects, per analyzer name, the set of "file:line"
// keys a suppression comment covers: its own line and the line below
// it (so the comment reads naturally above the excused statement).
func allowedLines(fset *token.FileSet, files []*ast.File) map[string]map[string]bool {
	allowed := map[string]map[string]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				name := m[1]
				if allowed[name] == nil {
					allowed[name] = map[string]bool{}
				}
				pos := fset.Position(c.Pos())
				allowed[name][fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = true
				allowed[name][fmt.Sprintf("%s:%d", pos.Filename, pos.Line+1)] = true
			}
		}
	}
	return allowed
}

// Unit is one type-checked package ready for analysis.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Run applies every analyzer to the unit and returns the surviving
// diagnostics (suppressions applied, position-sorted).
func Run(u *Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, u.Pkg.Path(), err)
		}
	}
	allowed := allowedLines(u.Fset, u.Files)
	kept := diags[:0]
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		if allowed[d.Analyzer][key] {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}

// ---- shared type-resolution helpers ----

// CalleeFunc resolves the function or method a call invokes, or nil
// when the callee is not a named function (function-typed variable,
// builtin, type conversion).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgPath.name.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := CalleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// IsMethodOf reports whether call invokes a method with the given name
// whose declaring package is pkgPath (interface methods resolve to the
// interface's package, concrete methods to the receiver type's).
func IsMethodOf(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := CalleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() != nil
}

// IsWaitGroup reports whether t is sync.WaitGroup or *sync.WaitGroup.
func IsWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// Exported reports whether decl is part of the package's exported
// surface: an exported function, or an exported method on an exported
// receiver type.
func Exported(decl *ast.FuncDecl) bool {
	if !decl.Name.IsExported() {
		return false
	}
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return true
	}
	t := decl.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true // unrecognised receiver shape: assume exported
		}
	}
}

// NeutralPkg is the default backend-neutral package predicate: every
// package of the module except the wall-clock backends (cluster/tcp),
// the chaos injector (cluster/faulty, which sleeps by design) and the
// commands (launcher and bench tooling are allowed real time). The
// root package and every other internal package must route all timing
// through cluster.Stats / vtime so sim and tcp stay byte-identical.
func NeutralPkg(path string) bool {
	switch {
	case strings.HasPrefix(path, "demsort/internal/cluster/tcp"),
		strings.HasPrefix(path, "demsort/internal/cluster/faulty"),
		strings.HasPrefix(path, "demsort/cmd/"),
		strings.HasPrefix(path, "demsort/internal/analysis"):
		// The analysis packages shell out to the go tool and may
		// legitimately time it; they are not part of the data plane.
		return false
	}
	return path == "demsort" || strings.HasPrefix(path, "demsort/internal/")
}
