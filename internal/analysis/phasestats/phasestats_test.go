package phasestats_test

import (
	"testing"

	"demsort/internal/analysis/atest"
	"demsort/internal/analysis/phasestats"
)

func TestPhasestats(t *testing.T) {
	atest.Run(t, phasestats.Analyzer, "testdata/src/phases", "demsort/internal/core")
}

// TestPhasestatsBackendExempt pins that backends (which implement the
// ops rather than consume them) are out of scope.
func TestPhasestatsBackendExempt(t *testing.T) {
	atest.Run(t, phasestats.Analyzer, "testdata/src/phasesexempt", "demsort/internal/cluster/tcp")
}
