// The bad pattern with no want comments: under a backend package path
// the analyzer must stay silent.
package tcp

import "demsort/internal/cluster"

func wouldBeBad(n *cluster.Node) {
	n.Barrier()
	n.SetPhase("exchange")
}
