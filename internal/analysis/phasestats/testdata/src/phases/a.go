// Fixture for phasestats: a blocking transport op ahead of the
// function's first SetPhase charges its wait to the previous phase.
package core

import "demsort/internal/cluster"

// badPhase is the mis-attribution bug: the barrier's wait lands in
// whatever phase the caller left running.
func badPhase(n *cluster.Node, send [][]byte) {
	n.Barrier() // want `blocking transport op Barrier before this function's first SetPhase`
	n.SetPhase("exchange")
	recv := n.AllToAllv(send)
	cluster.RecycleRecv(recv)
}

func badRecv(n *cluster.Node) {
	payload := n.Recv(0, 7) // want `blocking transport op Recv before`
	_ = payload
	n.SetPhase("collect")
}

// goodPhase switches accounting first.
func goodPhase(n *cluster.Node, send [][]byte) {
	n.SetPhase("exchange")
	n.Barrier()
	recv := n.AllToAllv(send)
	cluster.RecycleRecv(recv)
}

// helper has no SetPhase: it runs inside the caller's phase and is
// not judged.
func helper(n *cluster.Node) {
	n.Barrier()
}

// allowed is a deliberate exception: a fence that genuinely belongs
// to the predecessor phase.
func allowed(n *cluster.Node) {
	//lint:allow phasestats fixture: fence belongs to the previous phase
	n.Barrier()
	n.SetPhase("next")
}
