// Package phasestats enforces the phase-attribution contract: a
// blocking transport operation (Barrier, AllToAllv, Recv, …) charges
// its wait time to whatever phase is current, so phase code must
// switch accounting with SetPhase *before* its first blocking op —
// otherwise one phase's communication silently inflates its
// predecessor's timing, and the BENCH.json trajectory (the figures the
// paper reproduction stands on) mis-attributes where time goes.
//
// The check is intra-procedural: within any function that calls
// SetPhase, no blocking transport op may appear textually before the
// first SetPhase. Functions that never call SetPhase are helpers
// running inside their caller's phase and are not judged.
package phasestats

import (
	"go/ast"
	"go/token"
	"strings"

	"demsort/internal/analysis"
)

const clusterPath = "demsort/internal/cluster"

// blockingOps are the cluster.Node / Transport / A2AStream operations
// that can wait on peers (and therefore accumulate phase time).
// OpenA2AStream itself is non-blocking; Post never blocks by contract.
var blockingOps = map[string]bool{
	"Barrier":        true,
	"AllToAllv":      true,
	"AllGather":      true,
	"Bcast":          true,
	"AllReduceInt64": true,
	"ExchangeAny":    true,
	"Send":           true,
	"Recv":           true,
	"Collect":        true,
}

// Analyzer is the phase-attribution checker.
var Analyzer = &analysis.Analyzer{
	Name: "phasestats",
	Doc: "in phase code, SetPhase must precede the first blocking transport " +
		"op of the function, so no phase's wait time is attributed to its " +
		"predecessor",
	Run: run,
}

// targetPkg limits the check to the phase-driving packages; backends
// implement the ops rather than consume them.
func targetPkg(path string) bool {
	for _, p := range []string{"core", "stripesort", "baseline", "dselect", "mselect"} {
		if path == "demsort/internal/"+p || strings.HasPrefix(path, "demsort/internal/"+p+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !targetPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	firstSet := token.NoPos
	type blockCall struct {
		pos  token.Pos
		name string
	}
	var blocking []blockCall
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if analysis.IsMethodOf(pass.TypesInfo, call, clusterPath, "SetPhase") {
			if !firstSet.IsValid() || call.Pos() < firstSet {
				firstSet = call.Pos()
			}
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == clusterPath && blockingOps[fn.Name()] {
			blocking = append(blocking, blockCall{call.Pos(), fn.Name()})
		}
		return true
	})
	if !firstSet.IsValid() {
		return // helper running inside the caller's phase
	}
	for _, b := range blocking {
		if b.pos < firstSet {
			pass.Reportf(b.pos,
				"blocking transport op %s before this function's first SetPhase: its wait time is charged to the previous phase",
				b.name)
		}
	}
}
