// Package load type-checks module packages for the demsortvet
// analyzers without golang.org/x/tools: `go list -export -deps -json`
// enumerates the build list and compiles export data for every
// dependency (stdlib included), the target packages are parsed from
// source, and the stock gc importer resolves their imports straight
// from the export files the go command reported. Everything is stdlib;
// nothing needs the network.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
)

// Package is one parsed, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors holds non-fatal type-checking errors (the analyzers
	// still run on what was resolved).
	TypeErrors []error
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` on the patterns and
// decodes the package stream.
func goList(dir string, patterns []string) (map[string]*listedPkg, []string, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	pkgs := map[string]*listedPkg{}
	var targets []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list %v: decoding: %v", patterns, err)
		}
		pkgs[p.ImportPath] = &p
		if !p.DepOnly {
			targets = append(targets, p.ImportPath)
		}
	}
	return pkgs, targets, nil
}

// exportLookup builds the gc importer's lookup function over the
// Export files go list reported.
func exportLookup(pkgs map[string]*listedPkg) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		p := pkgs[path]
		if p == nil || p.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(p.Export)
	}
}

// newInfo allocates the fact maps the analyzers consume.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Load lists patterns (relative to dir, a directory inside the
// module), parses every matched package from source and type-checks it
// against compiler export data. Test files are not analyzed: the
// invariants demsortvet enforces are production data-plane contracts,
// and tests legitimately reach for wall clocks and raw errors.
func Load(dir string, patterns ...string) ([]*Package, error) {
	pkgs, targets, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(pkgs))
	var out []*Package
	for _, path := range targets {
		lp := pkgs[path]
		if lp.Error != nil {
			return nil, fmt.Errorf("package %s: %s", path, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("package %s: %v", path, err)
			}
			files = append(files, f)
		}
		p := &Package{ImportPath: path, Dir: lp.Dir, Fset: fset, Files: files, Info: newInfo()}
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
			Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
		}
		p.Types, _ = conf.Check(path, fset, files, p.Info)
		out = append(out, p)
	}
	return out, nil
}

// LoadFiles parses the given files as a single package with the given
// import path and type-checks it, resolving its imports (and theirs)
// through export data built from moduleDir. The fixture harness uses
// it to type-check testdata packages that import real module packages
// under a path of the harness's choosing, so path-sensitive analyzers
// see the package they would in the real tree.
func LoadFiles(moduleDir, pkgPath string, filenames []string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return nil, fmt.Errorf("%s: bad import %s", name, spec.Path.Value)
			}
			if p != "unsafe" { // no export data; the importer resolves it itself
				importSet[p] = true
			}
		}
	}
	var imports []string
	for p := range importSet {
		imports = append(imports, p)
	}
	pkgs := map[string]*listedPkg{}
	if len(imports) > 0 {
		var err error
		pkgs, _, err = goList(moduleDir, imports)
		if err != nil {
			return nil, err
		}
	}
	p := &Package{ImportPath: pkgPath, Fset: fset, Files: files, Info: newInfo()}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", exportLookup(pkgs)),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	p.Types, _ = conf.Check(pkgPath, fset, files, p.Info)
	return p, nil
}
