// Package atest is the fixture harness for the demsortvet analyzers —
// a miniature of golang.org/x/tools/go/analysis/analysistest. A
// testdata package is parsed and type-checked under an import path the
// test chooses (so path-gated analyzers behave as they would in the
// real tree), the analyzer runs, and its diagnostics are matched
// against `// want "regexp"` comments: every want must be satisfied by
// a diagnostic on its line, and every diagnostic must be wanted.
package atest

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"demsort/internal/analysis"
	"demsort/internal/analysis/load"
)

// wantRe pulls the expectation strings off a `// want "a" "b"` comment.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// moduleDir locates the module root from the test's working directory
// (tests run in their package directory).
func moduleDir(t *testing.T) string {
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// parseWants extracts the expectations from every fixture file.
func parseWants(t *testing.T, filenames []string) []*expectation {
	var wants []*expectation
	for _, name := range filenames {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, lineText := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(lineText)
			if m == nil {
				continue
			}
			rest := m[1]
			for {
				rest = strings.TrimSpace(rest)
				if rest == "" {
					break
				}
				quote := rest[0]
				if quote != '"' && quote != '`' {
					t.Fatalf("%s:%d: malformed want clause %q", name, i+1, rest)
				}
				end := strings.IndexByte(rest[1:], quote)
				if end < 0 {
					t.Fatalf("%s:%d: unterminated want pattern", name, i+1)
				}
				pat := rest[1 : 1+end]
				rest = rest[end+2:]
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, pat, err)
				}
				wants = append(wants, &expectation{file: name, line: i + 1, re: re})
			}
		}
	}
	return wants
}

// Run type-checks the fixture package rooted at dir under pkgPath,
// runs the analyzer, and reports any mismatch between produced and
// wanted diagnostics on t.
func Run(t *testing.T, a *analysis.Analyzer, dir, pkgPath string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var filenames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(filenames)
	if len(filenames) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	pkg, err := load.LoadFiles(moduleDir(t), pkgPath, filenames)
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture type error: %v", terr)
	}
	diags, err := analysis.Run(unitOf(pkg), []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	wants := parseWants(t, filenames)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.met && sameFile(w.file, d.Pos.Filename) && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: want %q: no matching diagnostic", w.file, w.line, w.re)
		}
	}
}

func sameFile(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	if err1 != nil || err2 != nil {
		return a == b
	}
	return aa == bb
}

func unitOf(p *load.Package) *analysis.Unit {
	return &analysis.Unit{Fset: p.Fset, Files: p.Files, Pkg: p.Types, Info: p.Info}
}
