// Package gojoin enforces goroutine hygiene in the failure-domain
// packages (cluster/tcp and cluster/faulty): every goroutine launched
// there — per-peer readers, liveness prober, background senders,
// chaos timers — must be registered with a sync.WaitGroup before it
// starts and must `defer wg.Done()`, so Close can join it. PR 6 spent
// a debugging cycle on exactly this class: a leaked reader goroutine
// outliving its machine, caught only by a goroutine-leak assertion at
// test shutdown. Here the pattern is structural:
//
//   - the launching function must call WaitGroup.Add textually before
//     the go statement;
//   - the goroutine body (a function literal, or a same-package
//     function/method) must contain a top-level `defer wg.Done()`.
//
// Fire-and-forget goroutines that are genuinely joined another way
// need a `//lint:allow gojoin <reason>`.
package gojoin

import (
	"go/ast"
	"go/types"
	"strings"

	"demsort/internal/analysis"
)

// Analyzer is the goroutine-join checker.
var Analyzer = &analysis.Analyzer{
	Name: "gojoin",
	Doc: "every goroutine launched in cluster/tcp and cluster/faulty must be " +
		"WaitGroup-registered before launch and defer Done, so Close joins it",
	Run: run,
}

func targetPkg(path string) bool {
	return strings.HasPrefix(path, "demsort/internal/cluster/tcp") ||
		strings.HasPrefix(path, "demsort/internal/cluster/faulty")
}

func run(pass *analysis.Pass) error {
	if !targetPkg(pass.Pkg.Path()) {
		return nil
	}
	// Index this package's function and method declarations by object,
	// so `go m.readLoop(...)` can be resolved to its body.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGo(pass, fd, gs, decls)
				return true
			})
		}
	}
	return nil
}

func checkGo(pass *analysis.Pass, enclosing *ast.FuncDecl, gs *ast.GoStmt, decls map[types.Object]*ast.FuncDecl) {
	info := pass.TypesInfo

	// 1. A WaitGroup.Add must precede the launch in the same function.
	addSeen := false
	ast.Inspect(enclosing.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= gs.Pos() {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" {
			if tv, ok := info.Types[sel.X]; ok && analysis.IsWaitGroup(tv.Type) {
				addSeen = true
			}
		}
		return true
	})
	if !addSeen {
		pass.Reportf(gs.Pos(),
			"goroutine launched without a preceding WaitGroup.Add in %s: Close cannot know to wait for it",
			enclosing.Name.Name)
	}

	// 2. The goroutine body must defer WaitGroup.Done.
	var body *ast.BlockStmt
	var bodyName string
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		body, bodyName = fun.Body, "the function literal"
	default:
		if fn := analysis.CalleeFunc(info, gs.Call); fn != nil {
			if fd := decls[fn]; fd != nil {
				body, bodyName = fd.Body, fn.Name()
			}
		}
	}
	if body == nil {
		pass.Reportf(gs.Pos(),
			"goroutine body is not a function literal or same-package function: cannot verify it defers WaitGroup.Done")
		return
	}
	if !defersDone(info, body) {
		pass.Reportf(gs.Pos(),
			"goroutine %s does not `defer wg.Done()`: it will leak past Close (the PR-6 reader-leak class)",
			bodyName)
	}
}

// defersDone reports whether body contains a top-level
// `defer wg.Done()` on a sync.WaitGroup (possibly wrapped in a defer'd
// closure whose first statements include the Done).
func defersDone(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		// Do not descend into nested go statements: their bodies join
		// their own goroutines.
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if isWaitGroupDone(info, ds.Call) {
			found = true
			return false
		}
		// `defer func() { ...; wg.Done() }()` counts too.
		if lit, ok := ast.Unparen(ds.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && isWaitGroupDone(info, call) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

func isWaitGroupDone(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	tv, ok := info.Types[sel.X]
	return ok && analysis.IsWaitGroup(tv.Type)
}
