package gojoin_test

import (
	"testing"

	"demsort/internal/analysis/atest"
	"demsort/internal/analysis/gojoin"
)

func TestGojoin(t *testing.T) {
	atest.Run(t, gojoin.Analyzer, "testdata/src/gojoin", "demsort/internal/cluster/tcp")
}

// TestGojoinScopedToFailureDomain pins that packages outside
// cluster/tcp and cluster/faulty (where goroutine lifetimes follow
// other disciplines, e.g. the sim backend's rendezvous) are exempt.
func TestGojoinScopedToFailureDomain(t *testing.T) {
	atest.Run(t, gojoin.Analyzer, "testdata/src/gojoinexempt", "demsort/internal/cluster/sim")
}
