// The leak pattern with no want comments: outside the failure-domain
// packages the analyzer must stay silent.
package sim

func spawn() {
	go func() {
	}()
}
