// Fixture for gojoin: the PR-6 goroutine-leak class — backend
// goroutines that Close cannot join because they were never
// WaitGroup-registered or never signal Done.
package tcp

import "sync"

type machine struct {
	bg sync.WaitGroup
}

// leak is the historical bug minimized: a per-peer reader launched
// with no registration and no Done.
func (m *machine) leak() {
	go func() { // want `without a preceding WaitGroup.Add` `does not .defer wg.Done`
		for {
		}
	}()
}

// noDone is registered but never signals, so Close waits forever.
func (m *machine) noDone() {
	m.bg.Add(1)
	go func() { // want `does not .defer wg.Done`
	}()
}

// unverifiable launches a function value the analyzer cannot see into.
func (m *machine) unverifiable(f func()) {
	m.bg.Add(1)
	go f() // want `cannot verify`
}

// --- clean idioms ---

func (m *machine) okLit() {
	m.bg.Add(1)
	go func() {
		defer m.bg.Done()
	}()
}

func (m *machine) readLoop() {
	defer m.bg.Done()
	for {
	}
}

func (m *machine) okMethod() {
	m.bg.Add(1)
	go m.readLoop()
}

// okClosureDone: Done inside a deferred cleanup closure counts.
func (m *machine) okClosureDone() {
	m.bg.Add(1)
	go func() {
		defer func() {
			m.bg.Done()
		}()
	}()
}

// okLocal: a function-scoped WaitGroup joins before returning.
func (m *machine) okLocal() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// allowed is a deliberate, argued exception.
func (m *machine) allowed() {
	//lint:allow gojoin fixture: joined via channel handshake instead
	go func() {
	}()
}
