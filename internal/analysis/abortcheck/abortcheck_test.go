package abortcheck_test

import (
	"testing"

	"demsort/internal/analysis/abortcheck"
	"demsort/internal/analysis/atest"
)

func TestAbortcheck(t *testing.T) {
	atest.Run(t, abortcheck.Analyzer, "testdata/src/abort", "demsort/internal/cluster/tcp")
}
