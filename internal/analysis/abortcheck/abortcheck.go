// Package abortcheck enforces the failure-plane blame contract: every
// error that crosses the cluster boundary out of a backend's
// Machine.Run must be a typed *cluster.ErrAborted (built with
// cluster.Abortedf / cluster.AsAborted or the struct literal), never a
// bare fmt.Errorf / errors.New. The fleet-wide invariant from PR 6 is
// that every rank of an aborted run reports the same blame — "aborted:
// rank 2: …" on every survivor — and one untyped return from one
// backend breaks it for the whole fleet (the PR-8 background-sender
// bug was exactly a mis-attributed failure escaping a backend).
//
// The check applies to methods named Run on types implementing
// cluster.Machine, in any package: a return statement (or an
// assignment to a named error result) whose error operand is a direct
// fmt.Errorf or errors.New call is flagged.
package abortcheck

import (
	"go/ast"
	"go/types"

	"demsort/internal/analysis"
)

const clusterPath = "demsort/internal/cluster"

// Analyzer is the blame-typing checker.
var Analyzer = &analysis.Analyzer{
	Name: "abortcheck",
	Doc: "Machine.Run implementations must return *cluster.ErrAborted " +
		"(Abortedf/AsAborted), never bare fmt.Errorf/errors.New, so every " +
		"rank reports consistent blame",
	Run: run,
}

func run(pass *analysis.Pass) error {
	iface := machineInterface(pass.Pkg)
	if iface == nil {
		return nil // package doesn't see cluster.Machine at all
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || fd.Name.Name != "Run" {
				continue
			}
			if !receiverImplementsMachine(pass.TypesInfo, fd, iface) {
				continue
			}
			checkRun(pass, fd)
		}
	}
	return nil
}

// machineInterface digs the cluster.Machine interface type out of the
// package's imports (directly, or through the cluster package itself).
func machineInterface(pkg *types.Package) *types.Interface {
	var find func(p *types.Package) *types.Interface
	seen := map[*types.Package]bool{}
	find = func(p *types.Package) *types.Interface {
		if seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == clusterPath {
			if obj, ok := p.Scope().Lookup("Machine").(*types.TypeName); ok {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					return iface
				}
			}
			return nil
		}
		for _, imp := range p.Imports() {
			if iface := find(imp); iface != nil {
				return iface
			}
		}
		return nil
	}
	if pkg.Path() == clusterPath {
		return find(pkg)
	}
	return find(pkg)
}

func receiverImplementsMachine(info *types.Info, fd *ast.FuncDecl, iface *types.Interface) bool {
	if len(fd.Recv.List) == 0 {
		return false
	}
	tv, ok := info.Types[fd.Recv.List[0].Type]
	if !ok {
		return false
	}
	t := tv.Type
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

// checkRun flags untyped error constructions escaping the Run method:
// in return statements and in assignments to the named error result.
func checkRun(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Named error results, so `err = fmt.Errorf(...); return` is caught.
	namedErr := map[types.Object]bool{}
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil && isErrorType(obj.Type()) {
					namedErr[obj] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if bad, what := untypedErrorCall(pass.TypesInfo, res); bad {
					pass.Reportf(res.Pos(),
						"%s returned from %s.Run: wrap with cluster.Abortedf/AsAborted so every rank reports typed blame",
						what, pass.Pkg.Name())
				}
			}
		case *ast.AssignStmt:
			for i, l := range s.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok || !namedErr[pass.TypesInfo.Uses[id]] || i >= len(s.Rhs) {
					continue
				}
				if bad, what := untypedErrorCall(pass.TypesInfo, s.Rhs[i]); bad {
					pass.Reportf(s.Rhs[i].Pos(),
						"%s assigned to %s.Run's error result: wrap with cluster.Abortedf/AsAborted so every rank reports typed blame",
						what, pass.Pkg.Name())
				}
			}
		}
		return true
	})
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// untypedErrorCall reports whether expr is a direct fmt.Errorf or
// errors.New construction.
func untypedErrorCall(info *types.Info, expr ast.Expr) (bool, string) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false, ""
	}
	if analysis.IsPkgFunc(info, call, "fmt", "Errorf") {
		return true, "bare fmt.Errorf"
	}
	if analysis.IsPkgFunc(info, call, "errors", "New") {
		return true, "bare errors.New"
	}
	return false, ""
}
