// Fixture for abortcheck: untyped errors escaping a Machine.Run break
// the fleet-wide blame invariant (every rank of an aborted run prints
// the same `aborted: rank N: …`), the PR-8 mis-blame class.
package tcp

import (
	"errors"
	"fmt"

	"demsort/internal/cluster"
)

// machine implements cluster.Machine and leaks untyped errors.
type machine struct{}

func (m *machine) Run(fn func(*cluster.Node) error) error {
	if fn == nil {
		return fmt.Errorf("tcp: no program") // want `bare fmt.Errorf returned`
	}
	return nil
}

func (m *machine) Nodes() []*cluster.Node { return nil }
func (m *machine) P() int                 { return 1 }
func (m *machine) Abort(cause error)      {}
func (m *machine) Close() error           { return nil }

// named implements cluster.Machine with a named error result: the
// assignment path must be caught too.
type named struct{ machine }

func (m *named) Run(fn func(*cluster.Node) error) (err error) {
	if fn == nil {
		err = errors.New("tcp: no program") // want `bare errors.New assigned`
		return err
	}
	return cluster.Abortedf(0, "typed failure")
}

// typed implements cluster.Machine correctly: constructor helpers and
// pass-through identifiers are fine.
type typed struct{ machine }

func (m *typed) Run(fn func(*cluster.Node) error) error {
	err := fn(nil)
	if err != nil {
		return cluster.AsAborted(0, err)
	}
	return &cluster.ErrAborted{Rank: cluster.JobRank, Cause: nil}
}

// notMachine does not implement cluster.Machine: its Run is out of
// scope regardless of what it returns.
type notMachine struct{}

func (n *notMachine) Run() error {
	return fmt.Errorf("plain error from a plain type")
}

// allowed is a deliberate exception on a Machine implementation.
type allowed struct{ machine }

func (m *allowed) Run(fn func(*cluster.Node) error) error {
	//lint:allow abortcheck fixture: pre-run config validation, no blame yet
	return fmt.Errorf("config invalid before any rank ran")
}
