// Fixture for wallclock, type-checked under the tcp backend's package
// path: wall-clock access is the backend's job, nothing is reported.
package tcp

import "time"

func heartbeat() int64 {
	return time.Now().UnixNano()
}

func backoff(d time.Duration) {
	time.Sleep(d)
}
