// Fixture for wallclock, type-checked under a backend-neutral package
// path: every clock observation and real-time wait is a violation;
// duration arithmetic and type references are not.
package core

import "time"

func now() int64 {
	return time.Now().UnixNano() // want `wall-clock access \(time.Now\)`
}

func nap() {
	time.Sleep(time.Millisecond) // want `wall-clock access \(time.Sleep\)`
}

func elapsed(t0 time.Time) float64 {
	return time.Since(t0).Seconds() // want `wall-clock access \(time.Since\)`
}

func tick() <-chan time.Time {
	return time.After(time.Second) // want `wall-clock access \(time.After\)`
}

// durations and time values are data, not clock access.
func okData(d time.Duration, t time.Time) time.Duration {
	return d + 3*time.Second + time.Duration(t.Unix())
}

func okAllowed() int64 {
	//lint:allow wallclock fixture: deliberate exception with a reason
	return time.Now().UnixNano()
}
