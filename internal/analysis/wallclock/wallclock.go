// Package wallclock forbids wall-clock access in backend-neutral
// packages. The repo's tier-1 property — sim and tcp byte-identical,
// virtual phase timings reproducible — holds only because phase code
// (core, stripesort, baseline, the selection algorithms, blockio, the
// cluster facade) never reads real time: all timing flows through
// cluster.Stats / vtime, so the sim backend can run the same code on a
// virtual clock. A stray time.Now in neutral code silently turns a
// deterministic simulation into a wall-clock measurement (and a
// time.Sleep turns it into a real stall). The tcp backend, the chaos
// injector and the commands are exempt by package path; anything else
// needs a `//lint:allow wallclock <reason>`.
package wallclock

import (
	"go/ast"
	"go/types"

	"demsort/internal/analysis"
)

// forbidden lists the time functions that constitute wall-clock access
// or real-time waiting. Pure data constructors (time.Date, time.Unix)
// and formatting are fine — they do not observe the clock.
var forbidden = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Analyzer is the wallclock checker. Target decides which package
// paths are backend-neutral; it defaults to analysis.NeutralPkg.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/Sleep/Since/... in backend-neutral packages; " +
		"timing must flow through cluster.Stats / vtime so sim and tcp " +
		"stay byte-identical",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.NeutralPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if forbidden[fn.Name()] {
				pass.Reportf(sel.Pos(),
					"wall-clock access (time.%s) in backend-neutral package %s: use cluster.Stats/vtime accounting instead",
					fn.Name(), pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
