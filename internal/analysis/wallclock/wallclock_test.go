package wallclock_test

import (
	"testing"

	"demsort/internal/analysis/atest"
	"demsort/internal/analysis/wallclock"
)

func TestWallclockNeutralPackage(t *testing.T) {
	atest.Run(t, wallclock.Analyzer, "testdata/src/neutral", "demsort/internal/core")
}

// TestWallclockBackendExempt pins the allowlist: the same calls in the
// tcp backend (real wall-clock by definition) report nothing.
func TestWallclockBackendExempt(t *testing.T) {
	atest.Run(t, wallclock.Analyzer, "testdata/src/backend", "demsort/internal/cluster/tcp")
}
