// Package workload generates the input distributions of the paper's
// evaluation: uniformly random data (Figures 2, 3, 5), the worst-case
// input that defeats non-randomized run formation (Figures 4, 5, 6),
// and several additional adversarial distributions used to stress the
// exactness of the partitioning (baselines with inexact splitters
// degrade on them; CANONICALMERGESORT must not).
//
// Every element carries a unique provenance payload (origin PE and
// index), so tests can verify that sorting produced an exact
// permutation — not just sorted keys — via an order-independent
// checksum.
package workload

import (
	"math/rand/v2"
	"slices"

	"demsort/internal/elem"
)

// Kind names an input distribution.
type Kind string

const (
	// Uniform is i.i.d. random keys — the "random input" of Figures
	// 2, 3 and 5.
	Uniform Kind = "uniform"
	// WorstCaseLocal is uniformly random keys, locally sorted on each
	// PE. Without block randomization, every run then covers a narrow
	// band of the key space and nearly all data must move in the
	// all-to-all — the "worst-case input" of Figures 4-6.
	WorstCaseLocal Kind = "worstcase"
	// ReversedBands places band P-1-i of the key space on PE i
	// (sorted): all data is on the wrong PE, so even perfect runs
	// cannot avoid communication in run formation.
	ReversedBands Kind = "reversed"
	// NarrowRange squeezes all keys into a tiny range. Sample-sort
	// style algorithms with inexact splitters collapse onto one PE;
	// exact multiway selection must still produce equal parts.
	NarrowRange Kind = "narrow"
	// AllEqual makes every key identical — the pure tie-breaking
	// torture test.
	AllEqual Kind = "allequal"
	// HotKey gives 90% of the elements one shared key. Splitter-based
	// algorithms route the whole hot class to one PE (NOW-Sort's
	// worst-case collapse, §II); exact selection splits the class by
	// position and stays perfectly balanced.
	HotKey Kind = "hotkey"
	// GloballySorted is already sorted input in rank order, a common
	// easy-looking case that is adversarial for run formation without
	// randomization.
	GloballySorted Kind = "sorted"
)

// Kinds lists all generator kinds.
func Kinds() []Kind {
	return []Kind{Uniform, WorstCaseLocal, ReversedBands, NarrowRange, AllEqual, HotKey, GloballySorted}
}

// Generate produces per-PE input slices: p slices of perPE elements,
// deterministically from seed. Payloads encode (PE, index) provenance.
func Generate(kind Kind, p int, perPE int, seed uint64) [][]elem.KV16 {
	out := make([][]elem.KV16, p)
	for pe := 0; pe < p; pe++ {
		rng := rand.New(rand.NewPCG(seed, uint64(pe)*0x9e3779b97f4a7c15+1))
		data := make([]elem.KV16, perPE)
		for i := range data {
			data[i] = elem.KV16{
				Key: genKey(kind, rng, p, pe, perPE, i),
				Val: uint64(pe)<<40 | uint64(i),
			}
		}
		if kind == WorstCaseLocal || kind == ReversedBands || kind == GloballySorted {
			slices.SortFunc(data, func(a, b elem.KV16) int {
				switch {
				case a.Key < b.Key:
					return -1
				case a.Key > b.Key:
					return 1
				default:
					return 0
				}
			})
		}
		out[pe] = data
	}
	return out
}

func genKey(kind Kind, rng *rand.Rand, p, pe, perPE, i int) uint64 {
	switch kind {
	case Uniform, WorstCaseLocal:
		return rng.Uint64()
	case ReversedBands:
		// PE pe draws from band p-1-pe of the key space.
		band := uint64(p - 1 - pe)
		width := ^uint64(0) / uint64(p)
		return band*width + rng.Uint64N(width)
	case NarrowRange:
		return 1<<20 + rng.Uint64N(1024)
	case AllEqual:
		return 42
	case HotKey:
		if rng.Uint64N(10) < 9 {
			return 1 << 30
		}
		return rng.Uint64()
	case GloballySorted:
		// Strictly increasing across (pe, i).
		return (uint64(pe)*uint64(perPE) + uint64(i)) * 16
	default:
		panic("workload: unknown kind " + string(kind))
	}
}

// Checksum returns an order-independent multiset checksum of data, so
// input and output can be compared without sorting the reference.
func Checksum(data []elem.KV16) uint64 {
	var sum uint64
	for _, v := range data {
		h := v.Key*0x9e3779b97f4a7c15 ^ v.Val*0xc2b2ae3d27d4eb4f
		h ^= h >> 29
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 32
		sum += h
	}
	return sum
}

// Total flattens per-PE inputs into one slice (reference/validation).
func Total(parts [][]elem.KV16) []elem.KV16 {
	var n int
	for _, p := range parts {
		n += len(p)
	}
	out := make([]elem.KV16, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
