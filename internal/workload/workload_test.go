package workload

import (
	"slices"
	"testing"

	"demsort/internal/elem"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, kind := range Kinds() {
		a := Generate(kind, 3, 100, 7)
		b := Generate(kind, 3, 100, 7)
		for pe := range a {
			if !slices.Equal(a[pe], b[pe]) {
				t.Fatalf("%s: nondeterministic for PE %d", kind, pe)
			}
		}
		c := Generate(kind, 3, 100, 8)
		if kind != AllEqual && kind != GloballySorted {
			same := true
			for pe := range a {
				if !slices.Equal(a[pe], c[pe]) {
					same = false
				}
			}
			if same {
				t.Fatalf("%s: seed ignored", kind)
			}
		}
	}
}

func TestGenerateShapes(t *testing.T) {
	const p, n = 4, 250
	for _, kind := range Kinds() {
		parts := Generate(kind, p, n, 1)
		if len(parts) != p {
			t.Fatalf("%s: %d parts", kind, len(parts))
		}
		for pe, part := range parts {
			if len(part) != n {
				t.Fatalf("%s PE %d: %d elements", kind, pe, len(part))
			}
		}
	}
}

func TestPayloadsUniqueProvenance(t *testing.T) {
	parts := Generate(Uniform, 3, 500, 3)
	seen := map[uint64]bool{}
	for _, part := range parts {
		for _, v := range part {
			if seen[v.Val] {
				t.Fatal("duplicate provenance payload")
			}
			seen[v.Val] = true
		}
	}
}

func TestWorstCaseLocallySorted(t *testing.T) {
	parts := Generate(WorstCaseLocal, 4, 300, 9)
	c := elem.KV16Codec{}
	for pe, part := range parts {
		if !elem.IsSorted[elem.KV16](c, part) {
			t.Fatalf("PE %d input not locally sorted", pe)
		}
	}
}

func TestReversedBandsPlacement(t *testing.T) {
	p := 4
	parts := Generate(ReversedBands, p, 200, 2)
	width := ^uint64(0) / uint64(p)
	for pe, part := range parts {
		band := uint64(p - 1 - pe)
		for _, v := range part {
			if v.Key < band*width || (band < uint64(p-1) && v.Key >= (band+1)*width) {
				t.Fatalf("PE %d key %x outside its band", pe, v.Key)
			}
		}
	}
}

func TestAllEqualKeys(t *testing.T) {
	parts := Generate(AllEqual, 2, 50, 5)
	for _, part := range parts {
		for _, v := range part {
			if v.Key != parts[0][0].Key {
				t.Fatal("AllEqual produced differing keys")
			}
		}
	}
}

func TestGloballySortedIsSorted(t *testing.T) {
	parts := Generate(GloballySorted, 3, 100, 1)
	all := Total(parts)
	if !elem.IsSorted[elem.KV16](elem.KV16Codec{}, all) {
		t.Fatal("concatenation not globally sorted")
	}
}

func TestChecksumOrderIndependent(t *testing.T) {
	parts := Generate(Uniform, 2, 300, 11)
	all := Total(parts)
	sum := Checksum(all)
	rev := slices.Clone(all)
	slices.Reverse(rev)
	if Checksum(rev) != sum {
		t.Fatal("checksum depends on order")
	}
	rev[0].Key++
	if Checksum(rev) == sum {
		t.Fatal("checksum missed a mutation")
	}
}
