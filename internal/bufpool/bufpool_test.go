package bufpool

import (
	"sync"
	"testing"
)

func TestGetLengthAndClassCapacity(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 1024, 1 << 20} {
		b := Get(n)
		if len(b) != max(n, 0) {
			t.Fatalf("Get(%d) returned len %d", n, len(b))
		}
		if n > 0 && cap(b) < n {
			t.Fatalf("Get(%d) returned cap %d", n, cap(b))
		}
		Put(b)
	}
}

func TestRoundTripReusesBuffer(t *testing.T) {
	// A put buffer of an exact class size must be reusable at any
	// length the class covers. (sync.Pool may drop entries under GC
	// pressure, so reuse is asserted only as "no corruption", not
	// identity.)
	b := Get(1024)
	for i := range b {
		b[i] = 0xEE
	}
	Put(b)
	c := Get(700)
	if len(c) != 700 {
		t.Fatalf("got len %d", len(c))
	}
	for i := range c {
		c[i] = 0x11 // must be writable without touching b's old view
	}
	Put(c)
}

func TestAppendGrownBufferFloorClass(t *testing.T) {
	// Append-grown buffers with non-power-of-two capacity must still be
	// safely pooled: a later Get never receives less capacity than its
	// class promises.
	b := make([]byte, 0, 100) // floor class 64
	Put(b)
	g := Get(64)
	if cap(g) < 64 {
		t.Fatalf("class capacity violated: cap %d", cap(g))
	}
	Put(g)
}

func TestPutGetAllocFree(t *testing.T) {
	b := Get(4096)
	if n := testing.AllocsPerRun(100, func() {
		Put(b)
		b = Get(4096)
	}); n > 0 {
		t.Errorf("Put+Get allocates %.1f/op, want 0", n)
	}
}

func TestConcurrentUse(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				b := Get(512 + i%512)
				for j := range b {
					b[j] = seed
				}
				for j := range b {
					if b[j] != seed {
						t.Errorf("buffer shared while owned")
						return
					}
				}
				Put(b)
			}
		}(byte(g))
	}
	wg.Wait()
}
