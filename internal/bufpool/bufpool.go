// Package bufpool is the shared byte-buffer arena of the data plane:
// a size-classed sync.Pool that block I/O, the all-to-all send/receive
// paths and the phase writers draw their staging buffers from, so the
// steady state of a sort allocates no fresh memory per block or per
// message. Buffers cross goroutine (PE) boundaries freely — a message
// buffer is typically acquired by the sender and recycled by the
// receiver after decoding — which is safe because sync.Pool is
// concurrency-safe and ownership is handed off at the collective.
package bufpool

import (
	"math/bits"
	"sync"
	"unsafe"
)

const (
	// minBits is the smallest pooled size class (64 B): tinier buffers
	// are cheaper to allocate than to pool.
	minBits = 6
	// maxBits is the largest pooled size class (64 MiB): anything
	// larger is a configuration outlier not worth retaining.
	maxBits = 26
)

var classes [maxBits + 1]sync.Pool

// class returns the smallest size class that holds n bytes.
func class(n int) int {
	c := bits.Len(uint(n - 1))
	if c < minBits {
		c = minBits
	}
	return c
}

// Pooled buffers are stored as the raw pointer to their backing array,
// not as *[]byte: converting a pointer to an interface does not
// allocate, so Get/Put are themselves allocation-free — pooling a
// slice header would cost one heap allocation per Put and defeat the
// point. The class index reconstructs the capacity on Get.

// Get returns a buffer of length n (capacity rounded up to the size
// class), reusing a pooled one when available. Get(0) returns nil.
func Get(n int) []byte {
	if n <= 0 {
		return nil
	}
	c := class(n)
	if c > maxBits {
		return make([]byte, n)
	}
	if p, _ := classes[c].Get().(unsafe.Pointer); p != nil {
		return unsafe.Slice((*byte)(p), 1<<c)[:n]
	}
	return make([]byte, n, 1<<c)
}

// Put returns a buffer to the arena. The buffer must not be used after
// the call. Buffers below the minimum class or above the maximum are
// dropped; append-grown buffers are filed under the largest class
// their capacity fully backs.
func Put(b []byte) {
	c := bits.Len(uint(cap(b))) - 1 // floor: cap(b) >= 1<<c
	if c < minBits || c > maxBits {
		return
	}
	classes[c].Put(unsafe.Pointer(unsafe.SliceData(b[:cap(b)])))
}
