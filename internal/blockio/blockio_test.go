package blockio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"demsort/internal/vtime"
)

func testModel() vtime.CostModel {
	m := vtime.Default()
	m.DiskJitter = 0
	return m
}

func TestMemStoreRoundTrip(t *testing.T) {
	s := NewMemStore()
	defer s.Close()
	data := []byte("hello block")
	if err := s.WriteAt(3, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := s.ReadAt(3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
	// Writes must copy: mutating the source must not change the store.
	data[0] = 'X'
	if err := s.ReadAt(3, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 'h' {
		t.Fatal("store aliased caller buffer")
	}
}

func TestMemStoreReadUnwritten(t *testing.T) {
	s := NewMemStore()
	defer s.Close()
	if err := s.ReadAt(9, make([]byte, 1)); err == nil {
		t.Fatal("expected error reading unwritten block")
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.dat")
	s, err := NewFileStore(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a := bytes.Repeat([]byte{0xAA}, 64)
	b := bytes.Repeat([]byte{0xBB}, 17) // partial block
	if err := s.WriteAt(0, a); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(5, b); err != nil {
		t.Fatal(err)
	}
	gotA := make([]byte, 64)
	if err := s.ReadAt(0, gotA); err != nil {
		t.Fatal(err)
	}
	gotB := make([]byte, 17)
	if err := s.ReadAt(5, gotB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotA, a) || !bytes.Equal(gotB, b) {
		t.Fatal("file store roundtrip mismatch")
	}
	if err := s.WriteAt(1, make([]byte, 65)); err == nil {
		t.Fatal("oversized write must fail")
	}
}

func newTestVolume() *Volume {
	clock := vtime.NewClock()
	return NewVolume(NewMemStore(), 1024, 0, testModel(), clock)
}

func TestVolumeAllocFreeReuse(t *testing.T) {
	v := newTestVolume()
	a := v.Alloc()
	b := v.Alloc()
	if a == b {
		t.Fatal("distinct allocations must differ")
	}
	if v.Used() != 2 {
		t.Fatalf("used %d", v.Used())
	}
	v.Free(a)
	c := v.Alloc()
	if c != a {
		t.Fatalf("freed block should be reused: got %d want %d", c, a)
	}
	if v.PeakUsed() != 2 {
		t.Fatalf("peak %d", v.PeakUsed())
	}
}

func TestVolumeReadWriteCountsAndClock(t *testing.T) {
	v := newTestVolume()
	id := v.Alloc()
	data := bytes.Repeat([]byte{7}, 1024)
	v.WriteAsync(id, data)
	if v.Clock().Now() != 0 {
		t.Fatal("async write must not advance the clock")
	}
	got := make([]byte, 1024)
	h := v.ReadAsync(id, got)
	v.Wait(h)
	if v.Clock().Now() <= 0 {
		t.Fatal("waiting for a read must advance the clock")
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch")
	}
	_, stats := v.Clock().Stats()
	st := stats["init"]
	if st.BlocksWritten != 1 || st.BlocksRead != 1 || st.BytesRead != 1024 || st.BytesWritten != 1024 {
		t.Fatalf("counters %+v", st)
	}
	if st.IOTime <= 0 {
		t.Fatal("io time not accounted")
	}
}

func TestVolumeOverlapHidesIO(t *testing.T) {
	// Issue a read, do CPU work longer than the transfer, then wait:
	// the clock must show the CPU time only (I/O fully hidden).
	v := newTestVolume()
	id := v.Alloc()
	v.WriteAsync(id, make([]byte, 1024))
	v.Drain()
	start := v.Clock().Now()
	h := v.ReadAsync(id, make([]byte, 1024))
	dur := float64(h) - start
	v.Clock().AddCPU(10 * dur)
	v.Wait(h)
	if got := v.Clock().Now() - start; got != 10*dur {
		t.Fatalf("wall %v, want %v (I/O hidden by CPU)", got, 10*dur)
	}
}

func TestVolumeDrain(t *testing.T) {
	v := newTestVolume()
	id := v.Alloc()
	v.WriteAsync(id, make([]byte, 1024))
	v.WriteAsync(id, make([]byte, 1024))
	v.Drain()
	if v.Clock().Now() <= 0 {
		t.Fatal("drain must advance to device idle time")
	}
}

func TestFileStoreFactoryPerRankSpill(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spill") // factory must create it
	factory := FileStoreFactory(dir, 64)
	stores := make([]Store, 3)
	for rank := range stores {
		s, err := factory(rank)
		if err != nil {
			t.Fatal(err)
		}
		stores[rank] = s
		if err := s.WriteAt(0, []byte{byte(rank), byte(rank + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("spill dir holds %d files, want one per rank (3)", len(files))
	}
	for rank, s := range stores {
		got := make([]byte, 2)
		if err := s.ReadAt(0, got); err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(rank) || got[1] != byte(rank+1) {
			t.Fatalf("rank %d read back %v", rank, got)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	files, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Fatalf("Close must remove the block files; %d left", len(files))
	}
}

// FillFrom must lay the stream out as chunk-sized blocks (short tail),
// read back byte-identical, and surface short streams as errors while
// still returning the spans already written so they can be freed.
func TestVolumeFillFrom(t *testing.T) {
	clock := vtime.NewClock()
	vol := NewVolume(NewMemStore(), 256, 0, vtime.Default(), clock)
	data := make([]byte, 1000) // chunk 240 -> 4 full spans + one 40-byte tail
	for i := range data {
		data[i] = byte(i * 31)
	}
	spans, err := vol.FillFrom(bytes.NewReader(data), int64(len(data)), 240)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 5 || spans[4].Bytes != 40 {
		t.Fatalf("spans %+v, want 4x240 + 40", spans)
	}
	var got []byte
	buf := make([]byte, 240)
	for _, sp := range spans {
		vol.ReadWait(sp.ID, buf[:sp.Bytes])
		got = append(got, buf[:sp.Bytes]...)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read-back differs from the streamed input")
	}

	// Short stream: error plus the spans written so far.
	spans, err = vol.FillFrom(bytes.NewReader(data[:500]), int64(len(data)), 240)
	if err == nil {
		t.Fatal("short stream must fail")
	}
	if len(spans) != 2 {
		t.Fatalf("short stream returned %d spans, want the 2 complete ones", len(spans))
	}

	// Oversized chunk is rejected up front.
	if _, err := vol.FillFrom(bytes.NewReader(data), 10, 4096); err == nil {
		t.Fatal("chunk larger than the block size must be rejected")
	}
}
