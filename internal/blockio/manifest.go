package blockio

// The durable half of the checkpoint/restart plane: a per-rank
// manifest.json describing everything a restarted rank needs to adopt
// its spill file and resume the sort from the last committed phase —
// job identity, phase epoch, the block layout and allocator state of
// the store, the run directory (segment boundaries plus the encoded
// sample), and, once selection has committed, the splitter matrix.
// Manifests are tiny (the run directory and splitters are O(R·P)
// numbers; the sample is bounded by the memory budget's sample share),
// which is what makes checkpointing after run formation and selection
// nearly free compared to re-reading the input.
//
// Writes are crash-atomic, the same discipline as part files:
// rank-%03d.manifest.json.tmp is written, fsync'd and renamed over the
// live name, then the directory is fsync'd — a reader sees either the
// previous manifest or the new one, never a torn mix.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// BlockLen records the stored byte length of one block — the block
// layout entry of a manifest.
type BlockLen struct {
	ID    int64 `json:"id"`
	Bytes int   `json:"bytes"`
}

// ExtentMeta mirrors a core file extent: elements [Off, Off+Len) of
// block ID, with Own marking unique ownership.
type ExtentMeta struct {
	ID  int64 `json:"id"`
	Off int   `json:"off"`
	Len int   `json:"len"`
	Own bool  `json:"own"`
}

// RunMeta is one run's entry in the run directory: this rank's segment
// boundaries within the run, the extents holding the segment, and the
// gathered whole-run sample (encoded elements, every K-th run
// position) that re-bootstraps selection on resume.
type RunMeta struct {
	SegStart int64        `json:"segStart"`
	SegLen   int64        `json:"segLen"`
	RunLen   int64        `json:"runLen"`
	Extents  []ExtentMeta `json:"extents"`
	Sample   []byte       `json:"sample,omitempty"`
}

// Manifest is one rank's durable phase checkpoint.
type Manifest struct {
	// Job identity and incarnation: a resumed rank must present the
	// same JobID and an Epoch no older than the manifest's.
	JobID string `json:"jobID"`
	Rank  int    `json:"rank"`
	P     int    `json:"p"`
	Epoch int    `json:"epoch"`

	// Geometry guards: a manifest written under different parameters
	// describes different blocks and must not be resumed from.
	ElemSize   int   `json:"elemSize"`
	BlockBytes int   `json:"blockBytes"`
	SampleK    int64 `json:"sampleK"`

	// Phase is the last committed phase ("run formation" or "multiway
	// selection" in core's naming).
	Phase string `json:"phase"`

	// Store state: allocator position, free list and block layout at
	// commit time.
	NextBlock int64      `json:"nextBlock"`
	FreeList  []int64    `json:"freeList,omitempty"`
	Blocks    []BlockLen `json:"blocks"`

	// Run directory (set from the run-formation checkpoint onward),
	// including the gathered per-run segment matrices so a resumed
	// rank skips the meta AllGather too.
	Runs      []RunMeta `json:"runs,omitempty"`
	SegStarts [][]int64 `json:"segStarts,omitempty"` // [run][pe]
	SegLens   [][]int64 `json:"segLens,omitempty"`   // [run][pe]
	TotalN    int64     `json:"totalN"`

	// Splitters is the exact splitter matrix (P+1 rows of R positions,
	// identical on every rank), set by the selection checkpoint.
	Splitters [][]int64 `json:"splitters,omitempty"`
}

// ManifestPath returns dir's manifest file name for one rank.
func ManifestPath(dir string, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("rank-%03d.manifest.json", rank))
}

// WriteFile commits the manifest to dir crash-atomically: .tmp, fsync,
// rename, directory fsync.
func (m *Manifest) WriteFile(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("blockio: manifest dir: %w", err)
	}
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return fmt.Errorf("blockio: manifest encode: %w", err)
	}
	path := ManifestPath(dir, m.Rank)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("blockio: manifest: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("blockio: manifest write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("blockio: manifest sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("blockio: manifest close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("blockio: manifest publish: %w", err)
	}
	return SyncDir(dir)
}

// LoadManifest reads one rank's manifest from dir. A missing manifest
// returns an error satisfying os.IsNotExist — the "no checkpoint yet"
// case resume treats as a fresh start.
func LoadManifest(dir string, rank int) (*Manifest, error) {
	data, err := os.ReadFile(ManifestPath(dir, rank))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("blockio: manifest %s: %w", ManifestPath(dir, rank), err)
	}
	if m.Rank != rank {
		return nil, fmt.Errorf("blockio: manifest %s names rank %d", ManifestPath(dir, rank), m.Rank)
	}
	return &m, nil
}

// RemoveManifest deletes one rank's manifest (a fresh durable run
// clears stale state so a crash before its first commit restarts from
// scratch instead of adopting a dead incarnation's checkpoint).
func RemoveManifest(dir string, rank int) error {
	err := os.Remove(ManifestPath(dir, rank))
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

// Validate checks a loaded manifest against the resuming job's
// identity and geometry.
func (m *Manifest) Validate(jobID string, rank, p, epoch, elemSize, blockBytes int) error {
	switch {
	case m.JobID != jobID:
		return fmt.Errorf("blockio: manifest is for job %q, resuming job %q", m.JobID, jobID)
	case m.Rank != rank || m.P != p:
		return fmt.Errorf("blockio: manifest is rank %d of %d PEs, resuming rank %d of %d", m.Rank, m.P, rank, p)
	case m.Epoch > epoch:
		return fmt.Errorf("blockio: manifest epoch %d is newer than resume epoch %d", m.Epoch, epoch)
	case m.ElemSize != elemSize || m.BlockBytes != blockBytes:
		return fmt.Errorf("blockio: manifest geometry (elem %d, block %d) differs from job (elem %d, block %d)",
			m.ElemSize, m.BlockBytes, elemSize, blockBytes)
	}
	return nil
}

// SyncDir fsyncs a directory, making a just-renamed file durable — the
// closing step of every .tmp→rename publish (manifests, part files).
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
