package blockio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestDurableFileStoreSurvivesClose: the defining property of durable
// mode — spill contents outlive the store handle (Close fsyncs instead
// of unlinking) and a re-opened store serves the same blocks once the
// block layout is restored.
func TestDurableFileStoreSurvivesClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rank.blocks")
	s, err := NewDurableFileStore(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	a := bytes.Repeat([]byte{0xAA}, 64)
	b := bytes.Repeat([]byte{0xBB}, 17) // partial block
	if err := s.WriteAt(0, a); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(1, b); err != nil {
		t.Fatal(err)
	}
	lens := s.BlockLens()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("durable spill file vanished on Close: %v", err)
	}

	r, err := NewDurableFileStore(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.SetBlockLens(lens)
	got := make([]byte, 64)
	if err := r.ReadAt(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, a) {
		t.Fatal("block 0 changed across close/reopen")
	}
	if err := r.ReadAt(1, got[:17]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:17], b) {
		t.Fatal("partial block 1 changed across close/reopen")
	}
}

// The plain file store must still clean up after itself (the durable
// behaviour is opt-in).
func TestFileStoreStillRemovesOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rank.blocks")
	s, err := NewFileStore(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("non-durable spill file survived Close (err=%v)", err)
	}
}

func testManifest(rank int) *Manifest {
	return &Manifest{
		JobID: "job-a", Rank: rank, P: 4, Epoch: 2,
		ElemSize: 100, BlockBytes: 1024, SampleK: 10,
		Phase:     "run formation",
		NextBlock: 7, FreeList: []int64{3},
		Blocks: []BlockLen{{ID: 0, Bytes: 1000}, {ID: 1, Bytes: 400}},
		Runs: []RunMeta{{
			SegStart: 0, SegLen: 14, RunLen: 56,
			Extents: []ExtentMeta{{ID: 0, Off: 0, Len: 10, Own: true}, {ID: 1, Off: 0, Len: 4, Own: true}},
			Sample:  []byte("0123456789"),
		}},
		SegStarts: [][]int64{{0, 14, 28, 42}},
		SegLens:   [][]int64{{14, 14, 14, 14}},
		TotalN:    56,
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := testManifest(2)
	if err := want.WriteFile(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.JobID != want.JobID || got.Phase != want.Phase || got.TotalN != want.TotalN ||
		len(got.Runs) != 1 || !bytes.Equal(got.Runs[0].Sample, want.Runs[0].Sample) ||
		got.Runs[0].Extents[1] != want.Runs[0].Extents[1] {
		t.Fatalf("manifest did not round-trip: %+v", got)
	}
	if err := got.Validate("job-a", 2, 4, 3, 100, 1024); err != nil {
		t.Fatalf("valid resume rejected: %v", err)
	}
	// A re-commit must atomically replace, not append.
	want.Phase = "multiway selection"
	want.Splitters = [][]int64{{0}, {14}, {28}, {42}, {56}}
	if err := want.WriteFile(dir); err != nil {
		t.Fatal(err)
	}
	got, err = LoadManifest(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Phase != "multiway selection" || len(got.Splitters) != 5 {
		t.Fatalf("re-commit not visible: %+v", got)
	}
	if _, err := os.Stat(ManifestPath(dir, 2) + ".tmp"); err == nil {
		t.Fatal("staging file left behind after publish")
	}
}

func TestManifestValidateRejections(t *testing.T) {
	m := testManifest(2)
	cases := []struct {
		name string
		err  error
	}{
		{"wrong job", m.Validate("job-b", 2, 4, 2, 100, 1024)},
		{"wrong rank", m.Validate("job-a", 1, 4, 2, 100, 1024)},
		{"wrong P", m.Validate("job-a", 2, 8, 2, 100, 1024)},
		{"newer epoch than resume", m.Validate("job-a", 2, 4, 1, 100, 1024)},
		{"elem size", m.Validate("job-a", 2, 4, 2, 16, 1024)},
		{"block size", m.Validate("job-a", 2, 4, 2, 100, 4096)},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: Validate accepted a mismatched manifest", c.name)
		}
	}
	// Same or older epoch is fine (the resume is a newer incarnation).
	if err := m.Validate("job-a", 2, 4, 2, 100, 1024); err != nil {
		t.Errorf("same-epoch resume rejected: %v", err)
	}
}

func TestManifestMissingAndRemove(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadManifest(dir, 0); !os.IsNotExist(err) {
		t.Fatalf("missing manifest: got %v, want os.IsNotExist", err)
	}
	if err := RemoveManifest(dir, 0); err != nil {
		t.Fatalf("removing a missing manifest must be a no-op, got %v", err)
	}
	m := testManifest(0)
	if err := m.WriteFile(dir); err != nil {
		t.Fatal(err)
	}
	if err := RemoveManifest(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(dir, 0); !os.IsNotExist(err) {
		t.Fatal("manifest still present after RemoveManifest")
	}
	// A torn .tmp from a crashed commit must not shadow the live name.
	if err := os.WriteFile(ManifestPath(dir, 0)+".tmp", []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(dir, 0); !os.IsNotExist(err) {
		t.Fatal("a .tmp staging file was read as a committed manifest")
	}
}

// TestVolumeAllocStateRestore: the allocator snapshot in a manifest
// must reproduce the exact alloc/free position, so blocks allocated
// after resume never collide with checkpointed ones.
func TestVolumeAllocStateRestore(t *testing.T) {
	v := NewVolume(NewMemStore(), 64, 0, testModel(), nil)
	a, b, c := v.Alloc(), v.Alloc(), v.Alloc()
	_ = a
	_ = c
	v.Free(b)
	next, free := v.AllocState()

	w := NewVolume(NewMemStore(), 64, 0, testModel(), nil)
	w.RestoreAlloc(next, free)
	if got := w.Alloc(); got != b {
		t.Fatalf("restored volume allocated %d first, want the freed block %d", got, b)
	}
	if got := w.Alloc(); got != 3 {
		t.Fatalf("restored volume continued at %d, want 3", got)
	}
	if w.Used() != 4 {
		t.Fatalf("restored volume reports %d used blocks, want 4", w.Used())
	}
}
