// Package blockio provides the external-memory substrate: fixed-size
// block stores (RAM-backed and file-backed) and per-PE Volumes that
// stripe blocks over a node's disk array, track every byte of traffic,
// support asynchronous reads/writes against the virtual-time model,
// and recycle freed blocks so sorting can run (nearly) in place on
// disk, as in §IV-E of the paper.
package blockio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"demsort/internal/bufpool"
	"demsort/internal/vtime"
)

// BlockID names one block within a Volume.
type BlockID int64

// Store is raw block storage addressed by BlockID. Implementations
// must copy data on write (callers reuse buffers).
type Store interface {
	// ReadAt fills dst with the first len(dst) bytes of block id.
	ReadAt(id BlockID, dst []byte) error
	// WriteAt stores src as the content of block id.
	WriteAt(id BlockID, src []byte) error
	// Close releases resources.
	Close() error
}

// MemStore is a RAM-backed Store used by tests, benchmarks and the
// figure harness (the simulated cluster's "disks").
type MemStore struct {
	mu     sync.RWMutex
	blocks map[BlockID][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{blocks: map[BlockID][]byte{}}
}

// ReadAt implements Store. The copy happens under the lock: WriteAt
// rewrites recycled block buffers in place, so a snapshot taken under
// RLock is not immutable once the lock is released.
func (s *MemStore) ReadAt(id BlockID, dst []byte) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.blocks[id]
	if !ok {
		return fmt.Errorf("blockio: read of unwritten block %d", id)
	}
	if len(dst) > len(b) {
		return fmt.Errorf("blockio: block %d holds %d bytes, want %d", id, len(b), len(dst))
	}
	copy(dst, b)
	return nil
}

// WriteAt implements Store. Rewrites of a recycled block reuse its
// previous buffer when it is large enough; fresh buffers come from the
// shared arena, so steady-state writes allocate nothing.
func (s *MemStore) WriteAt(id BlockID, src []byte) error {
	s.mu.Lock()
	b := s.blocks[id]
	if cap(b) < len(src) {
		if b != nil {
			bufpool.Put(b)
		}
		b = bufpool.Get(len(src))
	}
	b = b[:len(src)]
	copy(b, src)
	s.blocks[id] = b
	s.mu.Unlock()
	return nil
}

// Close implements Store, returning the block buffers to the arena.
func (s *MemStore) Close() error {
	s.mu.Lock()
	for _, b := range s.blocks {
		bufpool.Put(b)
	}
	s.blocks = nil
	s.mu.Unlock()
	return nil
}

// FileStore is a file-backed Store: block id lives at offset
// id·blockBytes of a single file. It exists so integration tests and
// the CLI can sort data that genuinely does not fit in memory.
type FileStore struct {
	f          *os.File
	blockBytes int
	keep       bool            // durable mode: survive Close (checkpoint/restart)
	lens       map[BlockID]int // actual stored length per block
	mu         sync.Mutex
}

// NewFileStore creates (truncating) a file-backed store at path with
// the given block capacity in bytes. The file is removed on Close — a
// transient spill store.
func NewFileStore(path string, blockBytes int) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("blockio: %w", err)
	}
	return &FileStore{f: f, blockBytes: blockBytes, lens: map[BlockID]int{}}, nil
}

// NewDurableFileStore opens (creating if absent, never truncating) a
// file-backed store whose file survives Close — the adopt/keep mode of
// the checkpoint/restart plane. A fresh store starts with no readable
// blocks; a store adopted after a crash recovers its block layout from
// the rank's manifest via SetBlockLens.
func NewDurableFileStore(path string, blockBytes int) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("blockio: %w", err)
	}
	return &FileStore{f: f, blockBytes: blockBytes, keep: true, lens: map[BlockID]int{}}, nil
}

// ReadAt implements Store.
func (s *FileStore) ReadAt(id BlockID, dst []byte) error {
	s.mu.Lock()
	n, ok := s.lens[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("blockio: read of unwritten block %d", id)
	}
	if len(dst) > n {
		return fmt.Errorf("blockio: block %d holds %d bytes, want %d", id, n, len(dst))
	}
	if _, err := s.f.ReadAt(dst, int64(id)*int64(s.blockBytes)); err != nil && err != io.EOF {
		return fmt.Errorf("blockio: %w", err)
	}
	return nil
}

// WriteAt implements Store.
func (s *FileStore) WriteAt(id BlockID, src []byte) error {
	if len(src) > s.blockBytes {
		return fmt.Errorf("blockio: write of %d bytes into %d-byte blocks", len(src), s.blockBytes)
	}
	if _, err := s.f.WriteAt(src, int64(id)*int64(s.blockBytes)); err != nil {
		return fmt.Errorf("blockio: %w", err)
	}
	s.mu.Lock()
	s.lens[id] = len(src)
	s.mu.Unlock()
	return nil
}

// Close implements Store. Transient stores remove their file; durable
// ones (NewDurableFileStore) sync and keep it, so spilled data survives
// a Close-on-abort and a restarted rank can adopt it.
func (s *FileStore) Close() error {
	if s.keep {
		s.f.Sync() // best effort: Close-on-abort must not mask the abort
		return s.f.Close()
	}
	name := s.f.Name()
	if err := s.f.Close(); err != nil {
		return err
	}
	return os.Remove(name)
}

// Sync flushes the backing file to stable storage — called before a
// checkpoint manifest is committed, so the manifest never describes
// blocks that are not durably on disk.
func (s *FileStore) Sync() error { return s.f.Sync() }

// BlockLens snapshots the per-block stored lengths (the block layout a
// checkpoint manifest records), in ascending BlockID order.
func (s *FileStore) BlockLens() []BlockLen {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]BlockLen, 0, len(s.lens))
	for id, n := range s.lens {
		out = append(out, BlockLen{ID: int64(id), Bytes: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SetBlockLens restores the block layout of an adopted store from its
// manifest, replacing whatever the store knew before.
func (s *FileStore) SetBlockLens(lens []BlockLen) {
	m := make(map[BlockID]int, len(lens))
	for _, l := range lens {
		m[BlockID(l.ID)] = l.Bytes
	}
	s.mu.Lock()
	s.lens = m
	s.mu.Unlock()
}

// FileStoreFactory returns a per-rank store constructor that backs
// each PE's volume with a FileStore at dir/rank-%03d.blocks — the
// spill directory of a file-backed worker. The directory is created
// on first use; the block files are removed on Close, so a clean run
// leaves dir empty. This is what demsort's -store=file plugs into
// core.Config.NewStore and tcp.Config.NewStore: sorted data streams
// through disk blocks instead of having to fit in RAM.
func FileStoreFactory(dir string, blockBytes int) func(rank int) (Store, error) {
	return func(rank int) (Store, error) {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("blockio: spill dir: %w", err)
		}
		return NewFileStore(filepath.Join(dir, fmt.Sprintf("rank-%03d.blocks", rank)), blockBytes)
	}
}

// DurableFileStoreFactory is FileStoreFactory's adopt/keep counterpart
// for checkpointed jobs: block files are created if absent, adopted if
// present, and always survive Close. Resumed ranks recover the block
// layout from their manifest (core restores it via SetBlockLens); a
// fresh run simply overwrites from block 0.
func DurableFileStoreFactory(dir string, blockBytes int) func(rank int) (Store, error) {
	return func(rank int) (Store, error) {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("blockio: spill dir: %w", err)
		}
		return NewDurableFileStore(filepath.Join(dir, fmt.Sprintf("rank-%03d.blocks", rank)), blockBytes)
	}
}

// Handle is the virtual completion time of an asynchronous I/O.
type Handle float64

// Volume is one PE's view of its disk array: block allocation with a
// free list (in-place operation), asynchronous reads/writes accounted
// against the PE's clock and disk device, and traffic counters.
//
// A Volume is owned by its PE's goroutine. The one exception is
// ServeRemoteRead, which the owner itself calls while answering probe
// requests during synchronous selection rounds.
type Volume struct {
	store      Store
	blockBytes int
	rank       int
	model      vtime.CostModel
	clock      *vtime.Clock
	disk       *vtime.Device

	next     BlockID
	freeList []BlockID
	used     int64
	peakUsed int64
}

// NewVolume creates a volume of blockBytes-sized blocks on store,
// accounting against clock with the given model and node rank.
func NewVolume(store Store, blockBytes, rank int, model vtime.CostModel, clock *vtime.Clock) *Volume {
	return &Volume{
		store:      store,
		blockBytes: blockBytes,
		rank:       rank,
		model:      model,
		clock:      clock,
		disk:       &vtime.Device{},
	}
}

// BlockBytes returns the block size in bytes.
func (v *Volume) BlockBytes() int { return v.blockBytes }

// Clock returns the owning PE's clock.
func (v *Volume) Clock() *vtime.Clock { return v.clock }

// Alloc reserves a block, reusing freed ones first (this is what makes
// the sort in-place: phase outputs recycle the blocks freed by
// consuming their inputs).
func (v *Volume) Alloc() BlockID {
	v.used++
	if v.used > v.peakUsed {
		v.peakUsed = v.used
	}
	if n := len(v.freeList); n > 0 {
		id := v.freeList[n-1]
		v.freeList = v.freeList[:n-1]
		return id
	}
	id := v.next
	v.next++
	return id
}

// Free returns a block to the free list.
func (v *Volume) Free(id BlockID) {
	v.used--
	v.freeList = append(v.freeList, id)
}

// Used returns the number of live blocks.
func (v *Volume) Used() int64 { return v.used }

// PeakUsed returns the high-water mark of live blocks, used to verify
// the paper's in-place bound (input size + R·P′ + P + 1 blocks).
func (v *Volume) PeakUsed() int64 { return v.peakUsed }

// ResetPeak restarts peak tracking from the current usage.
func (v *Volume) ResetPeak() { v.peakUsed = v.used }

// WriteAsync stores src as block id immediately (real data) and queues
// the virtual transfer on the disk device without blocking the clock;
// Drain (or a later dependent read's Wait) realises the time.
func (v *Volume) WriteAsync(id BlockID, src []byte) Handle {
	if err := v.store.WriteAt(id, src); err != nil {
		panic(err) // simulation substrate failure, not a user error
	}
	dur := v.model.DiskDur(v.rank, len(src))
	done := v.disk.Acquire(v.clock.Now(), dur)
	st := v.clock.Cur()
	st.IOTime += dur
	st.BytesWritten += int64(len(src))
	st.BlocksWritten++
	return Handle(done)
}

// ReadAsync fetches block id into dst immediately (real data) and
// returns the virtual completion time; call Wait before using the data
// so the clock reflects the transfer.
func (v *Volume) ReadAsync(id BlockID, dst []byte) Handle {
	if err := v.store.ReadAt(id, dst); err != nil {
		panic(err)
	}
	dur := v.model.DiskDur(v.rank, len(dst))
	done := v.disk.Acquire(v.clock.Now(), dur)
	st := v.clock.Cur()
	st.IOTime += dur
	st.BytesRead += int64(len(dst))
	st.BlocksRead++
	return Handle(done)
}

// Wait advances the PE's clock to the completion of h; any jump is a
// disk stall and counts against the phase's overlap ratio.
func (v *Volume) Wait(h Handle) { v.stallTo(float64(h)) }

// ReadWait is ReadAsync immediately followed by Wait.
func (v *Volume) ReadWait(id BlockID, dst []byte) {
	v.Wait(v.ReadAsync(id, dst))
}

// Drain blocks (virtually) until all queued I/O has completed; phases
// call it before their closing barrier so written data is on disk.
func (v *Volume) Drain() { v.stallTo(v.disk.BusyUntil()) }

// stallTo advances the clock to t, charging the jump as blocked time:
// a PE waiting on its disk is exactly what the overlapped pipelines
// hide, so the per-phase overlap ratio must see it.
func (v *Volume) stallTo(t float64) {
	entry := v.clock.Now()
	v.clock.AdvanceTo(t)
	if t > entry {
		v.clock.Cur().BlockedTime += t - entry
	}
}

// Store exposes the underlying store (used when relabelling blocks
// between logical files without I/O).
func (v *Volume) Store() Store { return v.store }

// AllocState snapshots the allocator — the next unallocated BlockID
// and the current free list — for a checkpoint manifest.
func (v *Volume) AllocState() (next int64, freeList []int64) {
	free := make([]int64, len(v.freeList))
	for i, id := range v.freeList {
		free[i] = int64(id)
	}
	return int64(v.next), free
}

// RestoreAlloc rewinds the allocator to a checkpointed state: every id
// below next is live unless it is on the free list. Blocks written
// after the checkpoint become unreferenced file garbage, which a
// resumed run simply overwrites.
func (v *Volume) RestoreAlloc(next int64, freeList []int64) {
	v.next = BlockID(next)
	v.freeList = v.freeList[:0]
	for _, id := range freeList {
		v.freeList = append(v.freeList, BlockID(id))
	}
	v.used = next - int64(len(freeList))
	if v.used > v.peakUsed {
		v.peakUsed = v.used
	}
}

// syncer is the optional durability hook of a Store (FileStore's
// fsync); SyncStore is a no-op on stores without one.
type syncer interface{ Sync() error }

// SyncStore flushes the underlying store to stable storage if it
// supports it — the write barrier before a checkpoint commit.
func (v *Volume) SyncStore() error {
	if s, ok := v.store.(syncer); ok {
		return s.Sync()
	}
	return nil
}

// Span is one block filled by FillFrom: block ID holds Bytes bytes.
type Span struct {
	ID    BlockID
	Bytes int
}

// FillFrom streams totalBytes from r onto the volume, chunkBytes at a
// time (the last span may be shorter), through a single pooled staging
// buffer — the O(B)-memory way to load an input that does not fit in
// RAM. chunkBytes is the caller's element-aligned block payload (it
// may be less than BlockBytes when the element size does not divide
// the block size). Spans are returned in stream order; on a short or
// failed read the blocks already written are returned alongside the
// error so the caller can free them.
func (v *Volume) FillFrom(r io.Reader, totalBytes int64, chunkBytes int) ([]Span, error) {
	if chunkBytes <= 0 || chunkBytes > v.blockBytes {
		return nil, fmt.Errorf("blockio: FillFrom chunk %d outside (0, %d]", chunkBytes, v.blockBytes)
	}
	var spans []Span
	if totalBytes <= 0 {
		return spans, nil
	}
	buf := bufpool.Get(chunkBytes)
	defer bufpool.Put(buf)
	for rem := totalBytes; rem > 0; {
		take := chunkBytes
		if int64(take) > rem {
			take = int(rem)
		}
		b := buf[:take]
		if _, err := io.ReadFull(r, b); err != nil {
			return spans, fmt.Errorf("blockio: source read at byte %d of %d: %w", totalBytes-rem, totalBytes, err)
		}
		id := v.Alloc()
		v.WriteAsync(id, b)
		spans = append(spans, Span{ID: id, Bytes: take})
		rem -= int64(take)
	}
	return spans, nil
}

// fillChunk is one staged read of an overlapped fill.
type fillChunk struct {
	buf []byte
	err error
}

// FillFromOverlap is FillFrom with the source reads hidden behind the
// store writes: a reader goroutine stages up to two pooled chunks ahead
// while the calling PE goroutine allocates and writes blocks — the
// double-buffered load pipeline of §IV-E (sort tile t while tile t+1
// streams in rides on this plus run formation's prefetch). Spans,
// errors and the allocation order are identical to FillFrom; the
// memory bound grows from one staging chunk to at most three (the
// bounded stage depth), and the volume itself is only ever touched by
// the calling goroutine.
func (v *Volume) FillFromOverlap(r io.Reader, totalBytes int64, chunkBytes int) ([]Span, error) {
	if chunkBytes <= 0 || chunkBytes > v.blockBytes {
		return nil, fmt.Errorf("blockio: FillFrom chunk %d outside (0, %d]", chunkBytes, v.blockBytes)
	}
	var spans []Span
	if totalBytes <= 0 {
		return spans, nil
	}
	const depth = 2
	ch := make(chan fillChunk, depth)
	stop := make(chan struct{})
	defer close(stop) // a consumer-side panic must not strand the reader
	go func() {
		defer close(ch)
		for rem := totalBytes; rem > 0; {
			take := chunkBytes
			if int64(take) > rem {
				take = int(rem)
			}
			b := bufpool.Get(take)
			if _, err := io.ReadFull(r, b); err != nil {
				bufpool.Put(b)
				select {
				case ch <- fillChunk{err: fmt.Errorf("blockio: source read at byte %d of %d: %w", totalBytes-rem, totalBytes, err)}:
				case <-stop:
				}
				return
			}
			select {
			case ch <- fillChunk{buf: b}:
			case <-stop:
				bufpool.Put(b)
				return
			}
			rem -= int64(take)
		}
	}()
	for c := range ch {
		if c.err != nil {
			return spans, c.err
		}
		id := v.Alloc()
		v.WriteAsync(id, c.buf)
		spans = append(spans, Span{ID: id, Bytes: len(c.buf)})
		bufpool.Put(c.buf)
	}
	return spans, nil
}
