//go:build !race

// The zero-allocation assertion cannot run under the race detector:
// it intentionally randomises sync.Pool reuse, so pooled scratch looks
// like a fresh allocation.

package xmerge

import (
	"math/rand/v2"
	"testing"

	"demsort/internal/elem"
)

// TestAppendMergeNoPerCallAllocations: the merge scratch is pooled, so
// a warmed-up keyed merge of >2 sequences must not allocate beyond the
// output slice.
func TestAppendMergeNoPerCallAllocations(t *testing.T) {
	rng := rand.New(rand.NewPCG(43, 44))
	seqs := sortedKVSeqs(rng, 9, 200, 1<<30)
	total := 0
	for _, s := range seqs {
		total += len(s)
	}
	dst := make([]elem.KV16, 0, total)
	AppendMerge[elem.KV16](kvc, dst, seqs) // warm the pool
	avg := testing.AllocsPerRun(20, func() {
		AppendMerge[elem.KV16](kvc, dst[:0], seqs)
	})
	if avg > 0 {
		t.Fatalf("keyed AppendMerge allocates %.1f objects per call, want 0", avg)
	}
}
