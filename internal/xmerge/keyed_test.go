package xmerge

import (
	"math/rand/v2"
	"slices"
	"testing"

	"demsort/internal/elem"
)

var kvc = elem.KV16Codec{}

// closureKV is KV16's order without the KeyedCodec extension,
// exercising the comparator fallback merge loop.
type closureKV struct{}

func (closureKV) Size() int                    { return 16 }
func (closureKV) Encode(d []byte, v elem.KV16) { elem.KV16Codec{}.Encode(d, v) }
func (closureKV) Decode(s []byte) elem.KV16    { return elem.KV16Codec{}.Decode(s) }
func (closureKV) Less(a, b elem.KV16) bool     { return a.Key < b.Key }

func sortedKVSeqs(rng *rand.Rand, k, maxLen int, keyRange uint64) [][]elem.KV16 {
	seqs := make([][]elem.KV16, k)
	val := uint64(0)
	for i := range seqs {
		n := int(rng.Uint64N(uint64(maxLen + 1)))
		seqs[i] = make([]elem.KV16, n)
		for j := range seqs[i] {
			seqs[i][j] = elem.KV16{Key: rng.Uint64N(keyRange), Val: val}
			val++
		}
		slices.SortStableFunc(seqs[i], func(a, b elem.KV16) int {
			switch {
			case a.Key < b.Key:
				return -1
			case a.Key > b.Key:
				return 1
			default:
				return 0
			}
		})
	}
	return seqs
}

// TestKeyedMergeMatchesFallback: the keyed loop and the comparator
// fallback must produce identical output — values AND payload order
// (both tie-break equal keys by stream index).
func TestKeyedMergeMatchesFallback(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	for _, k := range []int{3, 4, 8, 17} {
		for _, keyRange := range []uint64{4, 1 << 40} { // duplicate-heavy and sparse
			seqs := sortedKVSeqs(rng, k, 120, keyRange)
			keyed := Merge[elem.KV16](kvc, seqs)
			fallback := Merge[elem.KV16](closureKV{}, seqs)
			if !slices.Equal(keyed, fallback) {
				t.Fatalf("k=%d range=%d: keyed and fallback merges disagree", k, keyRange)
			}
		}
	}
}

// TestKeyedMergeHighBitKeys: keys with the top bit set must merge in
// unsigned order through the normalized-key tree.
func TestKeyedMergeHighBitKeys(t *testing.T) {
	seqs := [][]elem.KV16{
		{{Key: 1}, {Key: 1 << 63}},
		{{Key: 42}, {Key: ^uint64(0)}},
	}
	got := Merge[elem.KV16](kvc, seqs)
	want := []uint64{1, 42, 1 << 63, ^uint64(0)}
	for i, v := range got {
		if v.Key != want[i] {
			t.Fatalf("pos %d: key %#x want %#x", i, v.Key, want[i])
		}
	}
}

// TestRec100MergeTailTies: streams whose truncated keys tie must fall
// back to the full 10-byte comparison.
func TestRec100MergeTailTies(t *testing.T) {
	rc := elem.Rec100Codec{}
	mk := func(tail byte) elem.Rec100 {
		var r elem.Rec100
		copy(r[:8], "PREFIX00")
		r[9] = tail
		return r
	}
	seqs := [][]elem.Rec100{
		{mk(3), mk(9)},
		{mk(1), mk(5)},
	}
	got := Merge[elem.Rec100](rc, seqs)
	for i := 1; i < len(got); i++ {
		if rc.Less(got[i], got[i-1]) {
			t.Fatalf("tail ties merged out of order at %d", i)
		}
	}
	if got[0][9] != 1 || got[1][9] != 3 || got[2][9] != 5 || got[3][9] != 9 {
		t.Fatalf("tails %d %d %d %d", got[0][9], got[1][9], got[2][9], got[3][9])
	}
}

func TestMergeBoundedKeyed(t *testing.T) {
	curs := []*Cursor[elem.KV16]{
		{Seq: []elem.KV16{{Key: 1}, {Key: 4}, {Key: 1 << 63}}},
		{Seq: []elem.KV16{{Key: 2}, {Key: 5}, {Key: 20}}},
	}
	out := MergeBounded[elem.KV16](kvc, nil, curs, 1000, elem.KV16{Key: 5}, true)
	want := []uint64{1, 2, 4, 5}
	if len(out) != len(want) {
		t.Fatalf("got %d elements, want %d", len(out), len(want))
	}
	for i, v := range out {
		if v.Key != want[i] {
			t.Fatalf("pos %d: key %d want %d", i, v.Key, want[i])
		}
	}
}

// BenchmarkMergeKeyVsComparator is the merge half of the
// key-vs-comparator microbench: identical KV16 streams through the
// key-inline tree and the comparator fallback.
func BenchmarkMergeKeyVsComparator(b *testing.B) {
	rng := rand.New(rand.NewPCG(45, 46))
	seqs := sortedKVSeqs(rng, 16, 1<<14, 1<<62)
	total := 0
	for _, s := range seqs {
		total += len(s)
	}
	dst := make([]elem.KV16, 0, total)
	b.Run("KV16/key", func(b *testing.B) {
		b.SetBytes(int64(total) * 16)
		for i := 0; i < b.N; i++ {
			AppendMerge[elem.KV16](kvc, dst[:0], seqs)
		}
	})
	b.Run("KV16/comparator", func(b *testing.B) {
		b.SetBytes(int64(total) * 16)
		for i := 0; i < b.N; i++ {
			AppendMerge[elem.KV16](closureKV{}, dst[:0], seqs)
		}
	})
}
