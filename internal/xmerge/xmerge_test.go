package xmerge

import (
	"math/rand/v2"
	"slices"
	"testing"

	"demsort/internal/elem"
)

var u64c = elem.U64Codec{}

func randomSortedSeqs(rng *rand.Rand, k, maxLen, keyRange int) ([][]elem.U64, []elem.U64) {
	seqs := make([][]elem.U64, k)
	var all []elem.U64
	for i := range seqs {
		n := int(rng.Uint64N(uint64(maxLen + 1)))
		seqs[i] = make([]elem.U64, n)
		for j := range seqs[i] {
			seqs[i][j] = elem.U64(rng.Uint64N(uint64(keyRange)))
		}
		slices.Sort(seqs[i])
		all = append(all, seqs[i]...)
	}
	slices.Sort(all)
	return seqs, all
}

func TestMergeEqualsSortedUnion(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, k := range []int{0, 1, 2, 3, 4, 9, 20} {
		seqs, all := randomSortedSeqs(rng, k, 40, 100)
		got := Merge[elem.U64](u64c, seqs)
		if !slices.Equal(got, all) {
			t.Fatalf("k=%d: merged output differs", k)
		}
	}
}

func TestMergeManyDuplicates(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	seqs, all := randomSortedSeqs(rng, 6, 100, 3) // keys only 0..2
	got := Merge[elem.U64](u64c, seqs)
	if !slices.Equal(got, all) {
		t.Fatal("merge with heavy duplicates differs from sorted union")
	}
}

func TestAppendMergePreservesPrefix(t *testing.T) {
	dst := []elem.U64{7}
	got := AppendMerge[elem.U64](u64c, dst, [][]elem.U64{{1, 3}, {2}})
	want := []elem.U64{7, 1, 2, 3}
	if !slices.Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestMergeEmptyInputs(t *testing.T) {
	if got := Merge[elem.U64](u64c, nil); len(got) != 0 {
		t.Fatal("merging nothing should give empty output")
	}
	if got := Merge[elem.U64](u64c, [][]elem.U64{{}, {}, {}}); len(got) != 0 {
		t.Fatal("merging empties should give empty output")
	}
}

func TestMergeBoundedStopsAtBarrier(t *testing.T) {
	curs := []*Cursor[elem.U64]{
		{Seq: []elem.U64{1, 4, 9}},
		{Seq: []elem.U64{2, 5, 20}},
	}
	out := MergeBounded[elem.U64](u64c, nil, curs, 1000, elem.U64(5), true)
	want := []elem.U64{1, 2, 4, 5}
	if !slices.Equal(out, want) {
		t.Fatalf("got %v want %v", out, want)
	}
	// Cursors must reflect consumption.
	if curs[0].Off != 2 || curs[1].Off != 2 {
		t.Fatalf("cursor offsets %d,%d want 2,2", curs[0].Off, curs[1].Off)
	}
	// Continuing without a barrier drains the rest in order.
	rest := MergeBounded[elem.U64](u64c, nil, curs, 1000, 0, false)
	if !slices.Equal(rest, []elem.U64{9, 20}) {
		t.Fatalf("rest %v", rest)
	}
}

func TestMergeBoundedRespectsLimit(t *testing.T) {
	curs := []*Cursor[elem.U64]{{Seq: []elem.U64{1, 2, 3, 4}}}
	out := MergeBounded[elem.U64](u64c, nil, curs, 2, 0, false)
	if !slices.Equal(out, []elem.U64{1, 2}) {
		t.Fatalf("got %v", out)
	}
	if curs[0].Off != 2 {
		t.Fatalf("cursor offset %d", curs[0].Off)
	}
}

func TestMergeBoundedEmitsBarrierDuplicates(t *testing.T) {
	// Elements equal to the bound are emitted (<= bound), ones above stay.
	curs := []*Cursor[elem.U64]{{Seq: []elem.U64{5, 5, 5, 6}}}
	out := MergeBounded[elem.U64](u64c, nil, curs, 1000, elem.U64(5), true)
	if !slices.Equal(out, []elem.U64{5, 5, 5}) {
		t.Fatalf("got %v", out)
	}
}

func BenchmarkMerge8Way(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 5))
	seqs, _ := randomSortedSeqs(rng, 8, 1<<14, 1<<30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Merge[elem.U64](u64c, seqs)
	}
}
