// Package xmerge implements sequential multiway merging of sorted
// sequences, the inner loop of both the run-formation internal sort and
// the final merge phase. It also provides the "batch merge" primitive
// from Section III of the paper: merge as much as is safe given that
// only a prefix of every run has been fetched, carrying the rest over
// to the next batch.
package xmerge

import (
	"demsort/internal/elem"
	"demsort/internal/pq"
)

// Merge merges the sorted sequences seqs into a single sorted slice.
// Ties are broken by sequence index, making the output deterministic.
// The total length of the output equals the sum of input lengths.
func Merge[T any](c elem.Codec[T], seqs [][]T) []T {
	total := 0
	for _, s := range seqs {
		total += len(s)
	}
	out := make([]T, 0, total)
	return AppendMerge(c, out, seqs)
}

// AppendMerge merges seqs, appending to dst.
func AppendMerge[T any](c elem.Codec[T], dst []T, seqs [][]T) []T {
	switch len(seqs) {
	case 0:
		return dst
	case 1:
		return append(dst, seqs[0]...)
	case 2:
		return appendMerge2(c, dst, seqs[0], seqs[1])
	}
	n := len(seqs)
	heads := make([]T, n)
	live := make([]bool, n)
	pos := make([]int, n)
	for i, s := range seqs {
		if len(s) > 0 {
			heads[i] = s[0]
			live[i] = true
			pos[i] = 1
		}
	}
	lt := pq.NewLoserTree(n, heads, live, c.Less)
	for !lt.Empty() {
		v, i := lt.Min()
		dst = append(dst, v)
		if pos[i] < len(seqs[i]) {
			lt.Replace(seqs[i][pos[i]])
			pos[i]++
		} else {
			lt.Retire()
		}
	}
	return dst
}

// appendMerge2 is the two-way special case (common when R is small).
func appendMerge2[T any](c elem.Codec[T], dst []T, a, b []T) []T {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if c.Less(b[j], a[i]) {
			dst = append(dst, b[j])
			j++
		} else {
			dst = append(dst, a[i])
			i++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// Cursor tracks consumption of one sorted sequence during streaming
// merges: the unconsumed suffix is seq[off:].
type Cursor[T any] struct {
	Seq []T
	Off int
}

// MergeBounded merges from the cursors into dst until either limit
// elements have been produced or every cursor element <= bound has been
// consumed. Elements strictly greater than bound are never emitted (nor
// are any elements once limit is reached); cursors advance in place.
//
// This is the "extract the Θ(M) smallest unmerged elements" step of the
// globally striped algorithm: bound is the smallest unfetched element
// ("barrier"), so everything emitted is guaranteed globally next.
// haveBound=false means no barrier (all sequences fully fetched).
func MergeBounded[T any](c elem.Codec[T], dst []T, curs []*Cursor[T], limit int, bound T, haveBound bool) []T {
	n := len(curs)
	heads := make([]T, n)
	live := make([]bool, n)
	for i, cur := range curs {
		if cur.Off < len(cur.Seq) {
			heads[i] = cur.Seq[cur.Off]
			live[i] = true
		}
	}
	lt := pq.NewLoserTree(n, heads, live, c.Less)
	emitted := 0
	for !lt.Empty() && emitted < limit {
		v, i := lt.Min()
		if haveBound && c.Less(bound, v) {
			break
		}
		dst = append(dst, v)
		emitted++
		curs[i].Off++
		if curs[i].Off < len(curs[i].Seq) {
			lt.Replace(curs[i].Seq[curs[i].Off])
		} else {
			lt.Retire()
		}
	}
	return dst
}
