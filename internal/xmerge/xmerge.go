// Package xmerge implements sequential multiway merging of sorted
// sequences, the inner loop of both the run-formation internal sort and
// the final merge phase. It also provides the "batch merge" primitive
// from Section III of the paper (MergeBounded): merge as much as is
// safe given that only a prefix of every run has been fetched, carrying
// the rest over to the next batch.
//
// Merging runs on the flat key-inline tournament tree (pq.KeyTree):
// stream heads are summarised by 64-bit normalized keys
// (elem.KeyedCodec), so the replay after each emitted element is a
// handful of uint64 comparisons instead of indirect comparator calls.
// Codecs without keys — and key ties of codecs whose key is a prefix —
// fall back to Codec.Less transparently. The per-merge scratch (key
// tree, per-stream keys/liveness/positions) is element-type-independent
// and recycled through a pool, so repeated merges allocate nothing.
package xmerge

import (
	"sync"

	"demsort/internal/elem"
	"demsort/internal/pq"
)

// merger is the reusable scratch of one multiway merge. It holds no
// element data, only stream bookkeeping, so a single global pool
// serves merges of every element type.
type merger struct {
	tree pq.KeyTree
	keys []uint64
	live []bool
	pos  []int
}

var mergerPool = sync.Pool{New: func() any { return new(merger) }}

// getMerger returns a merger with zeroed n-sized stream arrays.
func getMerger(n int) *merger {
	m := mergerPool.Get().(*merger)
	if cap(m.keys) < n {
		m.keys = make([]uint64, n)
		m.live = make([]bool, n)
		m.pos = make([]int, n)
	}
	m.keys = m.keys[:n]
	m.live = m.live[:n]
	m.pos = m.pos[:n]
	for i := 0; i < n; i++ {
		m.keys[i] = 0
		m.live[i] = false
		m.pos[i] = 0
	}
	return m
}

// putMerger releases the scratch; the tie closure is dropped first so
// the pooled tree does not keep the caller's sequences reachable.
func putMerger(m *merger) {
	m.tree.DropTie()
	mergerPool.Put(m)
}

// Merge merges the sorted sequences seqs into a single sorted slice.
// Ties are broken by sequence index, making the output deterministic.
// The total length of the output equals the sum of input lengths.
func Merge[T any](c elem.Codec[T], seqs [][]T) []T {
	total := 0
	for _, s := range seqs {
		total += len(s)
	}
	out := make([]T, 0, total)
	return AppendMerge(c, out, seqs)
}

// AppendMerge merges seqs, appending to dst.
func AppendMerge[T any](c elem.Codec[T], dst []T, seqs [][]T) []T {
	switch len(seqs) {
	case 0:
		return dst
	case 1:
		return append(dst, seqs[0]...)
	case 2:
		return appendMerge2(c, dst, seqs[0], seqs[1])
	}
	if kc, ok := c.(elem.KeyedCodec[T]); ok {
		return appendMergeKeyed(kc, dst, seqs)
	}
	return appendMergeFallback(c, dst, seqs)
}

// appendMergeKeyed is the normalized-key merge loop: the tree replays
// on raw uint64 keys, the comparator is consulted only when a prefix
// key ties.
func appendMergeKeyed[T any](kc elem.KeyedCodec[T], dst []T, seqs [][]T) []T {
	n := len(seqs)
	m := getMerger(n)
	defer putMerger(m)
	pos := m.pos
	for i, s := range seqs {
		if len(s) > 0 {
			m.keys[i] = kc.Key(s[0])
			m.live[i] = true
		}
	}
	var tie func(a, b int) bool
	if !kc.KeyExact() {
		tie = func(a, b int) bool { return kc.Less(seqs[a][pos[a]], seqs[b][pos[b]]) }
	}
	t := &m.tree
	t.Reset(n, m.keys, m.live, tie)
	for !t.Empty() {
		i := t.Win()
		s := seqs[i]
		p := pos[i]
		dst = append(dst, s[p])
		p++
		pos[i] = p
		if p < len(s) {
			t.Replace(kc.Key(s[p]))
		} else {
			t.Retire()
		}
	}
	return dst
}

// appendMergeFallback merges closure-only codecs: every head key is
// zero, so the tree degenerates to the comparator order (plus the
// stream-index tie), preserving the exact pre-key behaviour.
func appendMergeFallback[T any](c elem.Codec[T], dst []T, seqs [][]T) []T {
	n := len(seqs)
	m := getMerger(n)
	defer putMerger(m)
	pos := m.pos
	for i, s := range seqs {
		if len(s) > 0 {
			m.live[i] = true
		}
	}
	tie := func(a, b int) bool { return c.Less(seqs[a][pos[a]], seqs[b][pos[b]]) }
	t := &m.tree
	t.Reset(n, m.keys, m.live, tie)
	for !t.Empty() {
		i := t.Win()
		s := seqs[i]
		p := pos[i]
		dst = append(dst, s[p])
		p++
		pos[i] = p
		if p < len(s) {
			t.Replace(0)
		} else {
			t.Retire()
		}
	}
	return dst
}

// appendMerge2 is the two-way special case (common when R is small).
func appendMerge2[T any](c elem.Codec[T], dst []T, a, b []T) []T {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if c.Less(b[j], a[i]) {
			dst = append(dst, b[j])
			j++
		} else {
			dst = append(dst, a[i])
			i++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// Cursor tracks consumption of one sorted sequence during streaming
// merges: the unconsumed suffix is seq[off:].
type Cursor[T any] struct {
	Seq []T
	Off int
}

// MergeBounded merges from the cursors into dst until either limit
// elements have been produced or every cursor element <= bound has been
// consumed. Elements strictly greater than bound are never emitted (nor
// are any elements once limit is reached); cursors advance in place.
//
// This is the "extract the Θ(M) smallest unmerged elements" step of the
// globally striped algorithm: bound is the smallest unfetched element
// ("barrier"), so everything emitted is guaranteed globally next.
// haveBound=false means no barrier (all sequences fully fetched).
func MergeBounded[T any](c elem.Codec[T], dst []T, curs []*Cursor[T], limit int, bound T, haveBound bool) []T {
	key, exact := elem.KeyFn(c)
	n := len(curs)
	m := getMerger(n)
	defer putMerger(m)
	for i, cur := range curs {
		if cur.Off < len(cur.Seq) {
			m.keys[i] = key(cur.Seq[cur.Off])
			m.live[i] = true
		}
	}
	var tie func(a, b int) bool
	if !exact {
		tie = func(a, b int) bool {
			return c.Less(curs[a].Seq[curs[a].Off], curs[b].Seq[curs[b].Off])
		}
	}
	t := &m.tree
	t.Reset(n, m.keys, m.live, tie)
	var boundKey uint64
	if haveBound {
		boundKey = key(bound)
	}
	emitted := 0
	for !t.Empty() && emitted < limit {
		i := t.Win()
		cur := curs[i]
		v := cur.Seq[cur.Off]
		if haveBound && (t.WinKey() > boundKey || c.Less(bound, v)) {
			break
		}
		dst = append(dst, v)
		emitted++
		cur.Off++
		if cur.Off < len(cur.Seq) {
			t.Replace(key(cur.Seq[cur.Off]))
		} else {
			t.Retire()
		}
	}
	return dst
}
