package elem

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

// perElemEncode is the reference per-element encoding path, bypassing
// any BulkCodec fast path.
func perElemEncode[T any](c Codec[T], vs []T) []byte {
	sz := c.Size()
	buf := make([]byte, len(vs)*sz)
	for i, v := range vs {
		c.Encode(buf[i*sz:(i+1)*sz], v)
	}
	return buf
}

// perElemDecode is the reference per-element decoding path.
func perElemDecode[T any](c Codec[T], buf []byte, n int) []T {
	sz := c.Size()
	out := make([]T, n)
	for i := range out {
		out[i] = c.Decode(buf[i*sz : (i+1)*sz])
	}
	return out
}

func checkBulkAgreement[T comparable](t *testing.T, c BulkCodec[T], vs []T) {
	t.Helper()
	ref := perElemEncode[T](c, vs)

	bulk := make([]byte, len(vs)*c.Size())
	c.EncodeSliceInto(bulk, vs)
	if !bytes.Equal(bulk, ref) {
		t.Fatalf("EncodeSliceInto disagrees with per-element encode (%d elements)", len(vs))
	}
	if got := EncodeSlice[T](c, vs); !bytes.Equal(got, ref) {
		t.Fatalf("EncodeSlice (dispatched) disagrees with per-element encode")
	}

	dec := make([]T, len(vs))
	c.DecodeSliceInto(dec, ref)
	refDec := perElemDecode[T](c, ref, len(vs))
	for i := range vs {
		if dec[i] != vs[i] {
			t.Fatalf("DecodeSliceInto round trip mismatch at %d", i)
		}
		if refDec[i] != vs[i] {
			t.Fatalf("per-element decode round trip mismatch at %d", i)
		}
	}
}

func TestBulkCodecAgreesU64(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	for _, n := range []int{0, 1, 2, 7, 64, 1023} {
		vs := make([]U64, n)
		for i := range vs {
			vs[i] = U64(rng.Uint64())
		}
		checkBulkAgreement[U64](t, U64Codec{}, vs)
	}
}

func TestBulkCodecAgreesKV16(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for _, n := range []int{0, 1, 2, 7, 64, 1023} {
		vs := make([]KV16, n)
		for i := range vs {
			vs[i] = KV16{Key: rng.Uint64(), Val: rng.Uint64()}
		}
		checkBulkAgreement[KV16](t, KV16Codec{}, vs)
	}
}

func TestBulkCodecAgreesRec100(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19))
	for _, n := range []int{0, 1, 2, 7, 64, 257} {
		vs := make([]Rec100, n)
		for i := range vs {
			for j := range vs[i] {
				vs[i][j] = byte(rng.UintN(256))
			}
		}
		checkBulkAgreement[Rec100](t, Rec100Codec{}, vs)
	}
}

// Records whose 10-byte keys tie must still round-trip byte-for-byte:
// the payload bytes distinguish them on the wire even though the order
// does not.
func TestBulkCodecRec100KeyTies(t *testing.T) {
	c := Rec100Codec{}
	vs := make([]Rec100, 16)
	for i := range vs {
		// Identical keys, distinct payloads.
		for j := 0; j < 10; j++ {
			vs[i][j] = 0xAB
		}
		for j := 10; j < 100; j++ {
			vs[i][j] = byte(i*7 + j)
		}
	}
	for i := 1; i < len(vs); i++ {
		if c.Less(vs[i-1], vs[i]) || c.Less(vs[i], vs[i-1]) {
			t.Fatal("test premise broken: keys must tie")
		}
	}
	checkBulkAgreement[Rec100](t, c, vs)
}

// nonBulkCodec mirrors U64Codec without the BulkCodec methods, so the
// dispatch helpers must take the per-element fallback — the
// compatibility contract for third-party codecs.
type nonBulkCodec struct{}

func (nonBulkCodec) Size() int              { return 8 }
func (nonBulkCodec) Encode(d []byte, v U64) { U64Codec{}.Encode(d, v) }
func (nonBulkCodec) Decode(s []byte) U64    { return U64Codec{}.Decode(s) }
func (nonBulkCodec) Less(a, b U64) bool     { return a < b }

func TestDispatchFallbackMatchesBulk(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 29))
	vs := make([]U64, 333)
	for i := range vs {
		vs[i] = U64(rng.Uint64())
	}
	var fallback Codec[U64] = nonBulkCodec{}
	if _, ok := fallback.(BulkCodec[U64]); ok {
		t.Fatal("test premise broken: nonBulkCodec must not be a BulkCodec")
	}
	a := EncodeSlice[U64](U64Codec{}, vs)
	b := EncodeSlice[U64](fallback, vs)
	if !bytes.Equal(a, b) {
		t.Fatal("fallback encode disagrees with bulk encode")
	}
	da := DecodeSlice[U64](U64Codec{}, a, len(vs))
	db := DecodeSlice[U64](fallback, b, len(vs))
	for i := range vs {
		if da[i] != vs[i] || db[i] != vs[i] {
			t.Fatalf("decode mismatch at %d", i)
		}
	}
}

// The bulk paths must be allocation-free given preallocated buffers.
func TestBulkPathsAllocFree(t *testing.T) {
	c := KV16Codec{}
	vs := make([]KV16, 4096)
	for i := range vs {
		vs[i] = KV16{Key: uint64(i) * 2654435761, Val: uint64(i)}
	}
	buf := make([]byte, len(vs)*c.Size())
	dst := make([]KV16, len(vs))

	if n := testing.AllocsPerRun(100, func() { EncodeInto[KV16](c, buf, vs) }); n > 0 {
		t.Errorf("EncodeInto allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { DecodeInto[KV16](c, dst, buf) }); n > 0 {
		t.Errorf("DecodeInto allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		dst = AppendDecode[KV16](c, dst[:0], buf, len(vs))
	}); n > 0 {
		t.Errorf("AppendDecode with capacity allocates %.1f/op, want 0", n)
	}
	enc := make([]byte, 0, len(vs)*c.Size())
	if n := testing.AllocsPerRun(100, func() {
		enc = AppendEncode[KV16](c, enc[:0], vs)
	}); n > 0 {
		t.Errorf("AppendEncode with capacity allocates %.1f/op, want 0", n)
	}

	// DecodeSlice/EncodeSlice allocate exactly their result.
	if n := testing.AllocsPerRun(100, func() { _ = EncodeSlice[KV16](c, vs) }); n > 1 {
		t.Errorf("EncodeSlice allocates %.1f/op, want <= 1", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = DecodeSlice[KV16](c, buf, len(vs)) }); n > 1 {
		t.Errorf("DecodeSlice allocates %.1f/op, want <= 1", n)
	}
}
