package elem

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestU64CodecRoundTrip(t *testing.T) {
	c := U64Codec{}
	buf := make([]byte, c.Size())
	for _, v := range []U64{0, 1, 42, 1<<63 - 1, 1 << 63, ^U64(0)} {
		c.Encode(buf, v)
		if got := c.Decode(buf); got != v {
			t.Errorf("roundtrip %d: got %d", v, got)
		}
	}
}

func TestKV16CodecRoundTrip(t *testing.T) {
	c := KV16Codec{}
	buf := make([]byte, c.Size())
	f := func(k, v uint64) bool {
		in := KV16{Key: k, Val: v}
		c.Encode(buf, in)
		return c.Decode(buf) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRec100CodecRoundTrip(t *testing.T) {
	c := Rec100Codec{}
	rng := rand.New(rand.NewPCG(1, 2))
	buf := make([]byte, c.Size())
	for i := 0; i < 100; i++ {
		var r Rec100
		for j := range r {
			r[j] = byte(rng.UintN(256))
		}
		c.Encode(buf, r)
		if got := c.Decode(buf); got != r {
			t.Fatalf("roundtrip mismatch at iteration %d", i)
		}
	}
}

func TestKV16LessIgnoresPayload(t *testing.T) {
	c := KV16Codec{}
	a := KV16{Key: 5, Val: 100}
	b := KV16{Key: 5, Val: 1}
	if c.Less(a, b) || c.Less(b, a) {
		t.Error("elements with equal keys must compare equal")
	}
	if !c.Less(KV16{Key: 4}, KV16{Key: 5}) {
		t.Error("key order not respected")
	}
}

func TestRec100LessUsesOnlyKeyBytes(t *testing.T) {
	c := Rec100Codec{}
	var a, b Rec100
	a[10] = 200 // payload byte, outside the 10-byte key
	if c.Less(a, b) || c.Less(b, a) {
		t.Error("payload bytes must not affect the order")
	}
	b[9] = 1 // last key byte
	if !c.Less(a, b) {
		t.Error("expected a < b when b has larger key byte")
	}
}

func TestEncodeDecodeSlice(t *testing.T) {
	c := KV16Codec{}
	vs := make([]KV16, 37)
	rng := rand.New(rand.NewPCG(7, 9))
	for i := range vs {
		vs[i] = KV16{Key: rng.Uint64(), Val: rng.Uint64()}
	}
	buf := EncodeSlice[KV16](c, vs)
	if len(buf) != len(vs)*c.Size() {
		t.Fatalf("encoded length %d, want %d", len(buf), len(vs)*c.Size())
	}
	got := DecodeSlice[KV16](c, buf, len(vs))
	for i := range vs {
		if got[i] != vs[i] {
			t.Fatalf("slice roundtrip mismatch at %d", i)
		}
	}
}

func TestAppendEncodeDecode(t *testing.T) {
	c := U64Codec{}
	buf := AppendEncode[U64](c, []byte{0xFF}, []U64{1, 2, 3})
	if len(buf) != 1+3*8 {
		t.Fatalf("append length %d", len(buf))
	}
	got := AppendDecode[U64](c, []U64{99}, buf[1:], 3)
	want := []U64{99, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestIsSorted(t *testing.T) {
	c := U64Codec{}
	if !IsSorted[U64](c, nil) || !IsSorted[U64](c, []U64{1}) || !IsSorted[U64](c, []U64{1, 1, 2}) {
		t.Error("sorted slices misreported")
	}
	if IsSorted[U64](c, []U64{2, 1}) {
		t.Error("unsorted slice misreported")
	}
}
