package elem

import "encoding/binary"

// KeyedCodec is an optional extension of Codec: an order-preserving
// 64-bit normalized key. Sorting and merging on integer keys instead of
// comparator closures is the super-scalar trick of key-caching sorters
// (Bingmann's string sorting, MCSTL's multiway merge): the hot loops
// compare raw uint64s and fall back to Less only on equal keys.
//
// The contract is that unsigned key order is a coarsening of the codec
// order:
//
//	Key(a) <  Key(b)  ⇒  Less(a, b)
//	Less(a, b)        ⇒  Key(a) <= Key(b)
//
// KeyExact additionally promises that the key decides everything:
// equal keys mean equivalent elements (neither Less(a,b) nor
// Less(b,a)), so no comparator fallback is ever needed.
type KeyedCodec[T any] interface {
	Codec[T]
	// Key returns the order-preserving 64-bit key of v.
	Key(v T) uint64
	// KeyExact reports whether equal keys imply equivalent elements.
	KeyExact() bool
}

// Key implements KeyedCodec: a U64 is its own key.
func (U64Codec) Key(v U64) uint64 { return uint64(v) }

// KeyExact implements KeyedCodec.
func (U64Codec) KeyExact() bool { return true }

// Key implements KeyedCodec: the 64-bit key orders KV16 completely.
func (KV16Codec) Key(v KV16) uint64 { return v.Key }

// KeyExact implements KeyedCodec.
func (KV16Codec) KeyExact() bool { return true }

// Key implements KeyedCodec: the first 8 of the 10 key bytes,
// big-endian so unsigned integer order equals byte-lexicographic
// order. The 2-byte tail is not covered, so KeyExact is false and
// equal keys tie-break through Less.
func (Rec100Codec) Key(v Rec100) uint64 { return binary.BigEndian.Uint64(v[:8]) }

// KeyExact implements KeyedCodec.
func (Rec100Codec) KeyExact() bool { return false }

// Interface conformance.
var (
	_ KeyedCodec[U64]    = U64Codec{}
	_ KeyedCodec[KV16]   = KV16Codec{}
	_ KeyedCodec[Rec100] = Rec100Codec{}
)

// KeyFn returns c's normalized key function and whether key order is
// exact. Non-keyed codecs get the constant-zero key: every comparison
// then falls through to the Less tie-break, which is exactly the old
// comparator-only behaviour.
func KeyFn[T any](c Codec[T]) (key func(T) uint64, exact bool) {
	if kc, ok := c.(KeyedCodec[T]); ok {
		return kc.Key, kc.KeyExact()
	}
	return func(T) uint64 { return 0 }, false
}
