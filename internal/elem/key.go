package elem

import "encoding/binary"

// KeyedCodec is an optional extension of Codec: an order-preserving
// 64-bit normalized key. Sorting and merging on integer keys instead of
// comparator closures is the super-scalar trick of key-caching sorters
// (Bingmann's string sorting, MCSTL's multiway merge): the hot loops
// compare raw uint64s and fall back to Less only on equal keys.
//
// The contract is that unsigned key order is a coarsening of the codec
// order:
//
//	Key(a) <  Key(b)  ⇒  Less(a, b)
//	Less(a, b)        ⇒  Key(a) <= Key(b)
//
// KeyExact additionally promises that the key decides everything:
// equal keys mean equivalent elements (neither Less(a,b) nor
// Less(b,a)), so no comparator fallback is ever needed.
type KeyedCodec[T any] interface {
	Codec[T]
	// Key returns the order-preserving 64-bit key of v.
	Key(v T) uint64
	// KeyExact reports whether equal keys imply equivalent elements.
	KeyExact() bool
}

// Key implements KeyedCodec: a U64 is its own key.
func (U64Codec) Key(v U64) uint64 { return uint64(v) }

// KeyExact implements KeyedCodec.
func (U64Codec) KeyExact() bool { return true }

// Key implements KeyedCodec: the 64-bit key orders KV16 completely.
func (KV16Codec) Key(v KV16) uint64 { return v.Key }

// KeyExact implements KeyedCodec.
func (KV16Codec) KeyExact() bool { return true }

// Key implements KeyedCodec: the first 8 of the 10 key bytes,
// big-endian so unsigned integer order equals byte-lexicographic
// order. The 2-byte tail is not covered, so KeyExact is false and
// equal keys tie-break through Less.
func (Rec100Codec) Key(v Rec100) uint64 { return binary.BigEndian.Uint64(v[:8]) }

// KeyExact implements KeyedCodec.
func (Rec100Codec) KeyExact() bool { return false }

// Interface conformance.
var (
	_ KeyedCodec[U64]    = U64Codec{}
	_ KeyedCodec[KV16]   = KV16Codec{}
	_ KeyedCodec[Rec100] = Rec100Codec{}
)

// KeyFn returns c's normalized key function and whether key order is
// exact. Non-keyed codecs get the constant-zero key: every comparison
// then falls through to the Less tie-break, which is exactly the old
// comparator-only behaviour.
func KeyFn[T any](c Codec[T]) (key func(T) uint64, exact bool) {
	if kc, ok := c.(KeyedCodec[T]); ok {
		return kc.Key, kc.KeyExact()
	}
	return func(T) uint64 { return 0 }, false
}

// BulkKeyer is an optional extension of KeyedCodec: extract the
// normalized keys of a whole slice in one call. The radix sort's first
// pass is a key-extraction scan over every element; a concrete bulk
// method turns its per-element dynamic dispatch into one static call
// per block, which the compiler can then unroll and vectorize.
// KeysInto must behave exactly like Key applied elementwise.
type BulkKeyer[T any] interface {
	// KeysInto fills dst[i] with the key of vs[i]; len(dst) >= len(vs).
	KeysInto(dst []uint64, vs []T)
}

// KeysInto implements BulkKeyer for U64.
func (U64Codec) KeysInto(dst []uint64, vs []U64) {
	for i, v := range vs {
		dst[i] = uint64(v)
	}
}

// KeysInto implements BulkKeyer for KV16.
func (KV16Codec) KeysInto(dst []uint64, vs []KV16) {
	for i := range vs {
		dst[i] = vs[i].Key
	}
}

// KeysInto implements BulkKeyer for Rec100.
func (Rec100Codec) KeysInto(dst []uint64, vs []Rec100) {
	for i := range vs {
		dst[i] = binary.BigEndian.Uint64(vs[i][:8])
	}
}

// Bulk-keyer conformance.
var (
	_ BulkKeyer[U64]    = U64Codec{}
	_ BulkKeyer[KV16]   = KV16Codec{}
	_ BulkKeyer[Rec100] = Rec100Codec{}
)

// KeysInto extracts the normalized keys of vs into dst, using the
// codec's bulk keyer when it has one and falling back to per-element
// Key calls otherwise. dst must hold at least len(vs) keys.
func KeysInto[T any](c Codec[T], dst []uint64, vs []T) {
	if bk, ok := c.(BulkKeyer[T]); ok {
		bk.KeysInto(dst, vs)
		return
	}
	key, _ := KeyFn(c)
	for i, v := range vs {
		dst[i] = key(v)
	}
}
