package elem

// BulkCodec is an optional extension of Codec: whole-slice encode and
// decode without a per-element virtual call. The package-level helpers
// (EncodeInto, DecodeInto, EncodeSlice, AppendEncode, DecodeSlice,
// AppendDecode) detect it with a type assertion and switch to the bulk
// path automatically, so third-party Codec implementations keep
// working unchanged through the same entry points.
//
// The built-in POD codecs (U64Codec, KV16Codec, Rec100Codec) implement
// BulkCodec by reinterpreting the element slice as raw bytes on
// little-endian hosts, reducing encode/decode to a bounds check plus
// one memmove (see pod.go).
type BulkCodec[T any] interface {
	Codec[T]
	// EncodeSliceInto encodes all of vs into dst, which must hold at
	// least len(vs)*Size() bytes.
	EncodeSliceInto(dst []byte, vs []T)
	// DecodeSliceInto decodes len(dst) elements from src, which must
	// hold at least len(dst)*Size() bytes.
	DecodeSliceInto(dst []T, src []byte)
}

// EncodeInto encodes all of vs into dst, which must hold at least
// len(vs)*Size() bytes, using the codec's bulk path when it has one.
func EncodeInto[T any](c Codec[T], dst []byte, vs []T) {
	if bc, ok := c.(BulkCodec[T]); ok {
		bc.EncodeSliceInto(dst, vs)
		return
	}
	sz := c.Size()
	for i, v := range vs {
		c.Encode(dst[i*sz:(i+1)*sz], v)
	}
}

// DecodeInto decodes len(dst) elements from src, which must hold at
// least len(dst)*Size() bytes, using the codec's bulk path when it has
// one.
func DecodeInto[T any](c Codec[T], dst []T, src []byte) {
	if bc, ok := c.(BulkCodec[T]); ok {
		bc.DecodeSliceInto(dst, src)
		return
	}
	sz := c.Size()
	for i := range dst {
		dst[i] = c.Decode(src[i*sz : (i+1)*sz])
	}
}
