package elem

import (
	"math/rand/v2"
	"testing"
)

const benchN = 8192 // elements per op: a few disk blocks' worth

func benchKVs() []KV16 {
	rng := rand.New(rand.NewPCG(1, 2))
	vs := make([]KV16, benchN)
	for i := range vs {
		vs[i] = KV16{Key: rng.Uint64(), Val: rng.Uint64()}
	}
	return vs
}

func benchU64s() []U64 {
	rng := rand.New(rand.NewPCG(3, 4))
	vs := make([]U64, benchN)
	for i := range vs {
		vs[i] = U64(rng.Uint64())
	}
	return vs
}

func benchRecs() []Rec100 {
	rng := rand.New(rand.NewPCG(5, 6))
	vs := make([]Rec100, benchN)
	for i := range vs {
		for j := range vs[i] {
			vs[i][j] = byte(rng.UintN(256))
		}
	}
	return vs
}

// BenchmarkCodecBulk measures the BulkCodec fast paths (the zero-copy
// data plane); compare against BenchmarkCodecPerElem, the per-element
// Encode/Decode loop the phases used before.
func BenchmarkCodecBulk(b *testing.B) {
	b.Run("EncodeKV16", func(b *testing.B) {
		c := KV16Codec{}
		vs := benchKVs()
		dst := make([]byte, benchN*c.Size())
		b.SetBytes(int64(len(dst)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.EncodeSliceInto(dst, vs)
		}
	})
	b.Run("DecodeKV16", func(b *testing.B) {
		c := KV16Codec{}
		src := EncodeSlice[KV16](c, benchKVs())
		dst := make([]KV16, benchN)
		b.SetBytes(int64(len(src)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.DecodeSliceInto(dst, src)
		}
	})
	b.Run("EncodeU64", func(b *testing.B) {
		c := U64Codec{}
		vs := benchU64s()
		dst := make([]byte, benchN*c.Size())
		b.SetBytes(int64(len(dst)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.EncodeSliceInto(dst, vs)
		}
	})
	b.Run("EncodeRec100", func(b *testing.B) {
		c := Rec100Codec{}
		vs := benchRecs()
		dst := make([]byte, benchN*c.Size())
		b.SetBytes(int64(len(dst)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.EncodeSliceInto(dst, vs)
		}
	})
}

// BenchmarkCodecPerElem is the pre-bulk reference — exactly what the
// phases used to do per block and per message: EncodeSlice/DecodeSlice
// with a fresh result buffer and one virtual Encode/Decode call per
// element (perElemEncode/perElemDecode mirror the old implementations).
func BenchmarkCodecPerElem(b *testing.B) {
	b.Run("EncodeKV16", func(b *testing.B) {
		c := KV16Codec{}
		vs := benchKVs()
		b.SetBytes(int64(benchN * c.Size()))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchBytesSink = perElemEncode[KV16](c, vs)
		}
	})
	b.Run("DecodeKV16", func(b *testing.B) {
		c := KV16Codec{}
		src := EncodeSlice[KV16](c, benchKVs())
		b.SetBytes(int64(len(src)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchKVSink = perElemDecode[KV16](c, src, benchN)
		}
	})
	b.Run("EncodeU64", func(b *testing.B) {
		c := U64Codec{}
		vs := benchU64s()
		b.SetBytes(int64(benchN * c.Size()))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchBytesSink = perElemEncode[U64](c, vs)
		}
	})
	b.Run("EncodeRec100", func(b *testing.B) {
		c := Rec100Codec{}
		vs := benchRecs()
		b.SetBytes(int64(benchN * c.Size()))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchBytesSink = perElemEncode[Rec100](c, vs)
		}
	})
}

var (
	benchBytesSink []byte
	benchKVSink    []KV16
)
