package elem

import (
	"math/rand/v2"
	"testing"
)

// checkKeyOrder asserts the KeyedCodec contract on a pair: key order
// coarsens Less order, and exact keys decide equivalence.
func checkKeyOrder[T any](t *testing.T, kc KeyedCodec[T], a, b T) {
	t.Helper()
	ka, kb := kc.Key(a), kc.Key(b)
	if ka < kb && !kc.Less(a, b) {
		t.Fatalf("Key(a)=%#x < Key(b)=%#x but !Less(a,b) (a=%v b=%v)", ka, kb, a, b)
	}
	if kc.Less(a, b) && ka > kb {
		t.Fatalf("Less(a,b) but Key(a)=%#x > Key(b)=%#x (a=%v b=%v)", ka, kb, a, b)
	}
	if kc.KeyExact() && ka == kb && (kc.Less(a, b) || kc.Less(b, a)) {
		t.Fatalf("KeyExact but equal keys %#x order a=%v b=%v", ka, a, b)
	}
}

// adversarialU64 returns boundary patterns: high bits set (unsigned vs
// signed comparison bugs), all-ones, near-boundary neighbours.
func adversarialU64(rng *rand.Rand) []uint64 {
	vs := []uint64{
		0, 1, ^uint64(0), ^uint64(0) - 1,
		1 << 63, 1<<63 - 1, 1<<63 + 1,
		0x8000000000000000, 0x7FFFFFFFFFFFFFFF,
		0xFF00FF00FF00FF00, 0x00FF00FF00FF00FF,
	}
	for i := 0; i < 64; i++ {
		vs = append(vs, uint64(1)<<i, uint64(1)<<i-1)
	}
	for i := 0; i < 200; i++ {
		vs = append(vs, rng.Uint64())
	}
	return vs
}

func TestU64KeyOrderMatchesLess(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	vs := adversarialU64(rng)
	c := U64Codec{}
	for _, a := range vs {
		for _, b := range vs {
			checkKeyOrder[U64](t, c, U64(a), U64(b))
		}
	}
}

func TestKV16KeyOrderMatchesLess(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	c := KV16Codec{}
	keys := adversarialU64(rng)
	for _, ka := range keys {
		for _, kb := range keys {
			a := KV16{Key: ka, Val: rng.Uint64()}
			b := KV16{Key: kb, Val: rng.Uint64()}
			checkKeyOrder[KV16](t, c, a, b)
		}
	}
}

// rec100With builds a record with the given 10 key bytes.
func rec100With(key [10]byte, fill byte) Rec100 {
	var r Rec100
	copy(r[:10], key[:])
	for i := 10; i < 100; i++ {
		r[i] = fill
	}
	return r
}

func TestRec100KeyOrderMatchesLess(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	c := Rec100Codec{}
	var recs []Rec100
	// Shared 8-byte prefixes differing only in the 2-byte tail — the
	// truncated key cannot distinguish these, forcing the comparator
	// fallback.
	prefixes := [][8]byte{
		{0, 0, 0, 0, 0, 0, 0, 0},
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
		{0x80, 0, 0, 0, 0, 0, 0, 0},
		{'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H'},
	}
	tails := [][2]byte{{0, 0}, {0, 1}, {1, 0}, {0xFF, 0xFE}, {0xFF, 0xFF}, {0x7F, 0x80}}
	for _, p := range prefixes {
		for _, tl := range tails {
			var k [10]byte
			copy(k[:8], p[:])
			k[8], k[9] = tl[0], tl[1]
			recs = append(recs, rec100With(k, byte(rng.Uint64())))
		}
	}
	// High-bit byte patterns and randoms.
	for i := 0; i < 150; i++ {
		var k [10]byte
		for j := range k {
			switch rng.Uint64N(3) {
			case 0:
				k[j] = byte(rng.Uint64())
			case 1:
				k[j] = 0x80 | byte(rng.Uint64N(4))
			default:
				k[j] = byte(rng.Uint64N(4))
			}
		}
		recs = append(recs, rec100With(k, byte(i)))
	}
	for _, a := range recs {
		for _, b := range recs {
			checkKeyOrder[Rec100](t, c, a, b)
		}
	}
}

func TestRec100TailTieBreak(t *testing.T) {
	c := Rec100Codec{}
	a := rec100With([10]byte{1, 2, 3, 4, 5, 6, 7, 8, 0x00, 0x01}, 0)
	b := rec100With([10]byte{1, 2, 3, 4, 5, 6, 7, 8, 0x00, 0x02}, 0)
	if c.Key(a) != c.Key(b) {
		t.Fatal("8-byte prefixes equal but keys differ")
	}
	if !c.Less(a, b) || c.Less(b, a) {
		t.Fatal("tail must decide the order when keys tie")
	}
	if c.KeyExact() {
		t.Fatal("Rec100 keys are truncated and must not claim exactness")
	}
}

func TestKeyFnFallback(t *testing.T) {
	key, exact := KeyFn[U64](U64Codec{})
	if !exact || key(U64(7)) != 7 {
		t.Fatal("U64Codec must expose its exact key")
	}
	key, exact = KeyFn[U64](closureCodec{})
	if exact {
		t.Fatal("closure codec cannot be exact")
	}
	if key(U64(7)) != 0 || key(U64(1<<63)) != 0 {
		t.Fatal("fallback key must be constant zero")
	}
}

// TestKeysIntoMatchesKey pins the bulk-key contract: for every keyed
// codec, KeysInto must produce exactly Key applied elementwise — the
// radix engine's build pass depends on the two never diverging.
func TestKeysIntoMatchesKey(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))

	t.Run("u64", func(t *testing.T) {
		c := U64Codec{}
		vs := make([]U64, 0, 600)
		for _, k := range adversarialU64(rng) {
			vs = append(vs, U64(k))
		}
		dst := make([]uint64, len(vs))
		KeysInto[U64](c, dst, vs)
		for i, v := range vs {
			if dst[i] != c.Key(v) {
				t.Fatalf("pos %d: KeysInto %#x != Key %#x", i, dst[i], c.Key(v))
			}
		}
	})

	t.Run("kv16", func(t *testing.T) {
		c := KV16Codec{}
		vs := make([]KV16, 777) // odd length: exercises any block tail
		for i := range vs {
			vs[i] = KV16{Key: rng.Uint64(), Val: rng.Uint64()}
		}
		dst := make([]uint64, len(vs))
		KeysInto[KV16](c, dst, vs)
		for i, v := range vs {
			if dst[i] != c.Key(v) {
				t.Fatalf("pos %d: KeysInto %#x != Key %#x", i, dst[i], c.Key(v))
			}
		}
	})

	t.Run("rec100", func(t *testing.T) {
		c := Rec100Codec{}
		vs := make([]Rec100, 333)
		for i := range vs {
			var k [10]byte
			for j := range k {
				k[j] = byte(rng.Uint64())
			}
			vs[i] = rec100With(k, byte(i))
		}
		dst := make([]uint64, len(vs))
		KeysInto[Rec100](c, dst, vs)
		for i, v := range vs {
			if dst[i] != c.Key(v) {
				t.Fatalf("pos %d: KeysInto %#x != Key %#x", i, dst[i], c.Key(v))
			}
		}
	})
}

// TestKeysIntoFallback: a closure-only codec takes the KeyFn fallback
// path, which is the constant-zero key.
func TestKeysIntoFallback(t *testing.T) {
	vs := []U64{7, 1 << 63, ^U64(0)}
	dst := []uint64{1, 2, 3}
	KeysInto[U64](closureCodec{}, dst, vs)
	for i, k := range dst {
		if k != 0 {
			t.Fatalf("pos %d: fallback key %#x, want 0", i, k)
		}
	}
}

// closureCodec implements only Codec, never KeyedCodec.
type closureCodec struct{}

func (closureCodec) Size() int                { return 8 }
func (closureCodec) Encode(dst []byte, v U64) { U64Codec{}.Encode(dst, v) }
func (closureCodec) Decode(src []byte) U64    { return U64Codec{}.Decode(src) }
func (closureCodec) Less(a, b U64) bool       { return a < b }
