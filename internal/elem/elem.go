// Package elem defines the fixed-size element types sorted by this
// library and the Codec abstraction that lets every phase of the sorter
// work generically over them.
//
// The paper's experiments use two element shapes, both reproduced here:
//
//   - KV16: 16-byte elements with 64-bit keys (the cluster scaling
//     experiments, Figures 2-6),
//   - Rec100: 100-byte records with 10-byte keys (the SortBenchmark
//     categories: GraySort, MinuteSort).
//
// A Codec provides a fixed on-disk size, encode/decode, and a strict
// weak order on elements. Exact splitting additionally requires a total
// order; phases that need uniqueness break ties by (run, position), not
// by the codec.
package elem

import (
	"bytes"
	"encoding/binary"
	"slices"
)

// Codec describes a fixed-size element type T: how to serialise it into
// disk blocks and network messages, and how to order it.
//
// Implementations must be stateless and safe for concurrent use.
type Codec[T any] interface {
	// Size returns the encoded size of one element in bytes. It is
	// constant for a given codec.
	Size() int
	// Encode writes v into dst, which must be at least Size() bytes.
	Encode(dst []byte, v T)
	// Decode reads one element from src, which must hold at least
	// Size() bytes.
	Decode(src []byte) T
	// Less reports whether a orders strictly before b.
	Less(a, b T) bool
}

// EncodeSlice encodes all of vs into a fresh byte slice. Hot paths
// should prefer EncodeInto with a pooled destination.
func EncodeSlice[T any](c Codec[T], vs []T) []byte {
	buf := make([]byte, len(vs)*c.Size())
	EncodeInto(c, buf, vs)
	return buf
}

// AppendEncode appends the encodings of vs to dst and returns the
// extended slice. It is allocation-free when dst has spare capacity.
func AppendEncode[T any](c Codec[T], dst []byte, vs []T) []byte {
	sz := c.Size()
	off := len(dst)
	dst = slices.Grow(dst, len(vs)*sz)[:off+len(vs)*sz]
	EncodeInto(c, dst[off:], vs)
	return dst
}

// DecodeSlice decodes n elements from buf. It panics if buf is shorter
// than n*Size() bytes. Hot paths should prefer DecodeInto with a
// reused destination.
func DecodeSlice[T any](c Codec[T], buf []byte, n int) []T {
	out := make([]T, n)
	DecodeInto(c, out, buf)
	return out
}

// AppendDecode decodes n elements from buf into the spare capacity of
// dst (growing it only when needed) and returns the extended slice —
// the append-style bulk decode path, allocation-free once dst has
// capacity.
func AppendDecode[T any](c Codec[T], dst []T, buf []byte, n int) []T {
	off := len(dst)
	dst = slices.Grow(dst, n)[:off+n]
	DecodeInto(c, dst[off:], buf)
	return dst
}

// U64 is an 8-byte element that is its own key. It is the smallest
// element type and is convenient in unit tests.
type U64 uint64

// U64Codec implements Codec[U64].
type U64Codec struct{}

// Size implements Codec.
func (U64Codec) Size() int { return 8 }

// Encode implements Codec.
func (U64Codec) Encode(dst []byte, v U64) { binary.LittleEndian.PutUint64(dst, uint64(v)) }

// Decode implements Codec.
func (U64Codec) Decode(src []byte) U64 { return U64(binary.LittleEndian.Uint64(src)) }

// Less implements Codec.
func (U64Codec) Less(a, b U64) bool { return a < b }

// KV16 is the paper's 16-byte element: a 64-bit key and a 64-bit
// payload ("The element size is (only) 16 bytes with 64-bit keys").
type KV16 struct {
	Key uint64
	Val uint64
}

// KV16Codec implements Codec[KV16].
type KV16Codec struct{}

// Size implements Codec.
func (KV16Codec) Size() int { return 16 }

// Encode implements Codec.
func (KV16Codec) Encode(dst []byte, v KV16) {
	binary.LittleEndian.PutUint64(dst, v.Key)
	binary.LittleEndian.PutUint64(dst[8:], v.Val)
}

// Decode implements Codec.
func (KV16Codec) Decode(src []byte) KV16 {
	return KV16{
		Key: binary.LittleEndian.Uint64(src),
		Val: binary.LittleEndian.Uint64(src[8:]),
	}
}

// Less implements Codec. Only the key participates in the order, as in
// the paper's benchmark elements; payloads travel with their keys.
func (KV16Codec) Less(a, b KV16) bool { return a.Key < b.Key }

// Rec100 is a SortBenchmark record: 100 bytes, of which the first 10
// are the key ("This setting considers 100-byte elements with a 10-byte
// key").
type Rec100 [100]byte

// Key returns the 10-byte key of the record.
func (r *Rec100) Key() []byte { return r[:10] }

// Rec100Codec implements Codec[Rec100].
type Rec100Codec struct{}

// Size implements Codec.
func (Rec100Codec) Size() int { return 100 }

// Encode implements Codec.
func (Rec100Codec) Encode(dst []byte, v Rec100) { copy(dst, v[:]) }

// Decode implements Codec.
func (Rec100Codec) Decode(src []byte) Rec100 {
	var r Rec100
	copy(r[:], src)
	return r
}

// Less implements Codec: lexicographic order on the 10-byte key.
func (Rec100Codec) Less(a, b Rec100) bool { return bytes.Compare(a[:10], b[:10]) < 0 }

// IsSorted reports whether vs is non-decreasing under the codec order.
func IsSorted[T any](c Codec[T], vs []T) bool {
	for i := 1; i < len(vs); i++ {
		if c.Less(vs[i], vs[i-1]) {
			return false
		}
	}
	return true
}
