package elem

import (
	"encoding/binary"
	"unsafe"
)

// The built-in element types are POD: their in-memory layout on a
// little-endian host is byte-identical to the little-endian wire
// format, so bulk encode/decode reduces to one memmove. The fast paths
// below reinterpret the element slice as raw bytes; on a big-endian
// host (or if a layout assumption ever broke) they fall back to the
// per-element loop, so the wire format stays little-endian everywhere.

// hostLE reports whether this host stores integers little-endian.
var hostLE = binary.NativeEndian.Uint16([]byte{0x34, 0x12}) == 0x1234

// Compile-time layout guarantees for the reinterpretation casts: a
// negative array length fails the build if a size drifts from the wire
// format.
var (
	_ [unsafe.Sizeof(U64(0)) - 8]byte
	_ [8 - unsafe.Sizeof(U64(0))]byte
	_ [unsafe.Sizeof(KV16{}) - 16]byte
	_ [16 - unsafe.Sizeof(KV16{})]byte
	_ [unsafe.Sizeof(Rec100{}) - 100]byte
	_ [100 - unsafe.Sizeof(Rec100{})]byte
)

// podBytes reinterprets vs as its backing bytes (size = Sizeof(T)).
func podBytes[T any](vs []T, size int) []byte {
	if len(vs) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&vs[0])), len(vs)*size)
}

// EncodeSliceInto implements BulkCodec.
func (U64Codec) EncodeSliceInto(dst []byte, vs []U64) {
	if hostLE {
		copy(dst[:len(vs)*8], podBytes(vs, 8))
		return
	}
	for i, v := range vs {
		binary.LittleEndian.PutUint64(dst[i*8:], uint64(v))
	}
}

// DecodeSliceInto implements BulkCodec.
func (U64Codec) DecodeSliceInto(dst []U64, src []byte) {
	if hostLE {
		copy(podBytes(dst, 8), src[:len(dst)*8])
		return
	}
	for i := range dst {
		dst[i] = U64(binary.LittleEndian.Uint64(src[i*8:]))
	}
}

// EncodeSliceInto implements BulkCodec.
func (KV16Codec) EncodeSliceInto(dst []byte, vs []KV16) {
	if hostLE {
		copy(dst[:len(vs)*16], podBytes(vs, 16))
		return
	}
	for i, v := range vs {
		binary.LittleEndian.PutUint64(dst[i*16:], v.Key)
		binary.LittleEndian.PutUint64(dst[i*16+8:], v.Val)
	}
}

// DecodeSliceInto implements BulkCodec.
func (KV16Codec) DecodeSliceInto(dst []KV16, src []byte) {
	if hostLE {
		copy(podBytes(dst, 16), src[:len(dst)*16])
		return
	}
	for i := range dst {
		dst[i].Key = binary.LittleEndian.Uint64(src[i*16:])
		dst[i].Val = binary.LittleEndian.Uint64(src[i*16+8:])
	}
}

// EncodeSliceInto implements BulkCodec. Rec100 is raw bytes, so the
// reinterpretation is valid regardless of host endianness.
func (Rec100Codec) EncodeSliceInto(dst []byte, vs []Rec100) {
	copy(dst[:len(vs)*100], podBytes(vs, 100))
}

// DecodeSliceInto implements BulkCodec.
func (Rec100Codec) DecodeSliceInto(dst []Rec100, src []byte) {
	copy(podBytes(dst, 100), src[:len(dst)*100])
}

// Interface conformance.
var (
	_ BulkCodec[U64]    = U64Codec{}
	_ BulkCodec[KV16]   = KV16Codec{}
	_ BulkCodec[Rec100] = Rec100Codec{}
)
