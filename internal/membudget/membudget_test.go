package membudget

import "testing"

func TestAcquireRelease(t *testing.T) {
	tr := New(100)
	if err := tr.Acquire(60); err != nil {
		t.Fatal(err)
	}
	if err := tr.Acquire(40); err != nil {
		t.Fatal(err)
	}
	if err := tr.Acquire(1); err == nil {
		t.Fatal("expected overflow")
	}
	tr.Release(1) // undo the failed acquire's accounting
	tr.Release(50)
	if tr.Used() != 50 {
		t.Fatalf("used %d", tr.Used())
	}
	if tr.Peak() != 101 {
		t.Fatalf("peak %d", tr.Peak())
	}
}

func TestUnlimitedStillTracks(t *testing.T) {
	tr := New(0)
	if err := tr.Acquire(1 << 40); err != nil {
		t.Fatal("unlimited tracker must not error")
	}
	if tr.Peak() != 1<<40 {
		t.Fatalf("peak %d", tr.Peak())
	}
}

func TestOverRelease(t *testing.T) {
	tr := New(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on over-release")
		}
	}()
	tr.Release(1)
}
