// Package membudget enforces the per-PE internal memory limit m that
// makes this an *external* sorting implementation: every phase acquires
// its element buffers from the node's tracker, and tests assert the
// peak never exceeds the configured budget. The budget also drives the
// derived parameters of the algorithm (run size, number k of all-to-all
// sub-operations, merge fan-in limits).
package membudget

import "fmt"

// Tracker counts live in-memory elements against a limit.
type Tracker struct {
	limit int64
	used  int64
	peak  int64
}

// New returns a tracker with the given element budget; limit <= 0
// means unlimited (still tracked).
func New(limit int64) *Tracker { return &Tracker{limit: limit} }

// Acquire reserves n elements of budget. It returns an error naming
// the overflow if the budget would be exceeded — callers treat that as
// a configuration bug, because phase parameters are derived to fit.
func (t *Tracker) Acquire(n int64) error {
	t.used += n
	if t.used > t.peak {
		t.peak = t.used
	}
	if t.limit > 0 && t.used > t.limit {
		return fmt.Errorf("membudget: %d elements in use, budget %d", t.used, t.limit)
	}
	return nil
}

// MustAcquire is Acquire that panics on overflow; used by internal
// phases whose sizing is derived from the budget itself.
func (t *Tracker) MustAcquire(n int64) {
	if err := t.Acquire(n); err != nil {
		panic(err)
	}
}

// Release returns n elements to the budget.
func (t *Tracker) Release(n int64) {
	t.used -= n
	if t.used < 0 {
		panic("membudget: released more than acquired")
	}
}

// Used returns the live reservation.
func (t *Tracker) Used() int64 { return t.used }

// Peak returns the high-water mark.
func (t *Tracker) Peak() int64 { return t.peak }

// Limit returns the configured budget (0 = unlimited).
func (t *Tracker) Limit() int64 { return t.limit }
