package pq

// Heap is a small generic binary min-heap. It is used where the set of
// competitors changes dynamically (e.g. choosing the sequence whose
// splitter to move during multiway selection, or picking the next block
// in a prediction sequence).
type Heap[T any] struct {
	less func(a, b T) bool
	a    []T
}

// NewHeap returns an empty heap ordered by less.
func NewHeap[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Len returns the number of elements held.
func (h *Heap[T]) Len() int { return len(h.a) }

// Push inserts v.
func (h *Heap[T]) Push(v T) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.a[i], h.a[p]) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

// Min returns the smallest element without removing it. It must not be
// called on an empty heap.
func (h *Heap[T]) Min() T { return h.a[0] }

// Pop removes and returns the smallest element. It must not be called
// on an empty heap.
func (h *Heap[T]) Pop() T {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	h.siftDown(0)
	return top
}

// ReplaceMin replaces the minimum with v and restores heap order; this
// is cheaper than Pop+Push.
func (h *Heap[T]) ReplaceMin(v T) {
	h.a[0] = v
	h.siftDown(0)
}

func (h *Heap[T]) siftDown(i int) {
	n := len(h.a)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.less(h.a[l], h.a[m]) {
			m = l
		}
		if r < n && h.less(h.a[r], h.a[m]) {
			m = r
		}
		if m == i {
			return
		}
		h.a[i], h.a[m] = h.a[m], h.a[i]
		i = m
	}
}
