package pq

import (
	"math/rand/v2"
	"slices"
	"sort"
	"testing"
)

func lessInt(a, b int) bool { return a < b }

func TestLoserTreeMergesSorted(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for _, k := range []int{1, 2, 3, 5, 8, 17, 33} {
		seqs := make([][]int, k)
		var all []int
		for i := range seqs {
			n := int(rng.UintN(50))
			seqs[i] = make([]int, n)
			for j := range seqs[i] {
				seqs[i][j] = int(rng.UintN(1000))
			}
			sort.Ints(seqs[i])
			all = append(all, seqs[i]...)
		}
		sort.Ints(all)

		heads := make([]int, k)
		live := make([]bool, k)
		pos := make([]int, k)
		for i, s := range seqs {
			if len(s) > 0 {
				heads[i], live[i], pos[i] = s[0], true, 1
			}
		}
		lt := NewLoserTree(k, heads, live, lessInt)
		var got []int
		for !lt.Empty() {
			v, i := lt.Min()
			got = append(got, v)
			if pos[i] < len(seqs[i]) {
				lt.Replace(seqs[i][pos[i]])
				pos[i]++
			} else {
				lt.Retire()
			}
		}
		if !slices.Equal(got, all) {
			t.Fatalf("k=%d: merge output differs from sorted union", k)
		}
	}
}

func TestLoserTreeTieBreakByStream(t *testing.T) {
	// All heads equal: winner must be the lowest stream index each time.
	heads := []int{7, 7, 7}
	live := []bool{true, true, true}
	lt := NewLoserTree(3, heads, live, lessInt)
	for want := 0; want < 3; want++ {
		_, i := lt.Min()
		if i != want {
			t.Fatalf("tie break: got stream %d, want %d", i, want)
		}
		lt.Retire()
	}
	if !lt.Empty() {
		t.Error("tree should be empty")
	}
}

func TestLoserTreeRevive(t *testing.T) {
	heads := []int{5, 10}
	live := []bool{true, true}
	lt := NewLoserTree(2, heads, live, lessInt)
	v, i := lt.Min()
	if v != 5 || i != 0 {
		t.Fatalf("got (%d,%d)", v, i)
	}
	lt.Retire() // stream 0 pauses
	v, i = lt.Min()
	if v != 10 || i != 1 {
		t.Fatalf("got (%d,%d)", v, i)
	}
	lt.Revive(0, 6) // stream 0 resumes with 6 < 10
	v, i = lt.Min()
	if v != 6 || i != 0 {
		t.Fatalf("after revive got (%d,%d)", v, i)
	}
}

func TestLoserTreeSingleStream(t *testing.T) {
	lt := NewLoserTree(1, []int{3}, []bool{true}, lessInt)
	if v, i := lt.Min(); v != 3 || i != 0 {
		t.Fatalf("got (%d,%d)", v, i)
	}
	lt.Retire()
	if !lt.Empty() {
		t.Error("expected empty")
	}
}

func TestLoserTreeAllEmpty(t *testing.T) {
	lt := NewLoserTree(4, make([]int, 4), make([]bool, 4), lessInt)
	if !lt.Empty() {
		t.Error("expected empty tree when no stream is live")
	}
}

func TestHeapOrdering(t *testing.T) {
	h := NewHeap(lessInt)
	rng := rand.New(rand.NewPCG(3, 4))
	var ref []int
	for i := 0; i < 500; i++ {
		v := int(rng.UintN(100))
		h.Push(v)
		ref = append(ref, v)
	}
	sort.Ints(ref)
	for i, want := range ref {
		if h.Len() != len(ref)-i {
			t.Fatalf("len %d, want %d", h.Len(), len(ref)-i)
		}
		if got := h.Pop(); got != want {
			t.Fatalf("pop %d: got %d want %d", i, got, want)
		}
	}
}

func TestHeapReplaceMin(t *testing.T) {
	h := NewHeap(lessInt)
	for _, v := range []int{5, 3, 8} {
		h.Push(v)
	}
	if h.Min() != 3 {
		t.Fatalf("min %d", h.Min())
	}
	h.ReplaceMin(10)
	want := []int{5, 8, 10}
	for _, w := range want {
		if got := h.Pop(); got != w {
			t.Fatalf("got %d want %d", got, w)
		}
	}
}
