package pq

import (
	"math/rand/v2"
	"slices"
	"testing"
)

// mergeWithKeyTree drains k sorted uint64 streams through a KeyTree,
// returning (value, stream) pairs in emission order.
func mergeWithKeyTree(seqs [][]uint64, tie func(a, b int) bool) (vals []uint64, srcs []int) {
	k := len(seqs)
	keys := make([]uint64, k)
	live := make([]bool, k)
	pos := make([]int, k)
	for i, s := range seqs {
		if len(s) > 0 {
			keys[i] = s[0]
			live[i] = true
		}
	}
	t := NewKeyTree(k, keys, live, tie)
	for !t.Empty() {
		i := t.Win()
		vals = append(vals, seqs[i][pos[i]])
		srcs = append(srcs, i)
		pos[i]++
		if pos[i] < len(seqs[i]) {
			t.Replace(seqs[i][pos[i]])
		} else {
			t.Retire()
		}
	}
	return vals, srcs
}

// TestKeyTreeVsHeapDuplicateHeavy cross-checks the key tree against
// the binary heap on duplicate-heavy streams: same multiset out, same
// (value, stream-index) emission order — the heap is ordered by
// (value, stream) exactly like the tree's tie rule.
func TestKeyTreeVsHeapDuplicateHeavy(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	for _, k := range []int{1, 2, 3, 4, 7, 16, 33} {
		seqs := make([][]uint64, k)
		for i := range seqs {
			n := int(rng.Uint64N(200))
			seqs[i] = make([]uint64, n)
			for j := range seqs[i] {
				seqs[i][j] = rng.Uint64N(5) // ~n/5 copies of each value
			}
			slices.Sort(seqs[i])
		}
		gotV, gotS := mergeWithKeyTree(seqs, nil)

		type hent struct {
			v   uint64
			src int
			pos int
		}
		h := NewHeap(func(a, b hent) bool {
			if a.v != b.v {
				return a.v < b.v
			}
			return a.src < b.src
		})
		for i, s := range seqs {
			if len(s) > 0 {
				h.Push(hent{v: s[0], src: i})
			}
		}
		var wantV []uint64
		var wantS []int
		for h.Len() > 0 {
			e := h.Pop()
			wantV = append(wantV, e.v)
			wantS = append(wantS, e.src)
			if e.pos+1 < len(seqs[e.src]) {
				h.Push(hent{v: seqs[e.src][e.pos+1], src: e.src, pos: e.pos + 1})
			}
		}
		if !slices.Equal(gotV, wantV) || !slices.Equal(gotS, wantS) {
			t.Fatalf("k=%d: key tree and heap disagree", k)
		}
	}
}

// TestKeyTreeMatchesLoserTree cross-checks against the generic
// comparator tree on random streams including the dead-key sentinel
// value ^0 as a live key.
func TestKeyTreeMatchesLoserTree(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 5))
	for _, k := range []int{2, 5, 9, 17} {
		seqs := make([][]uint64, k)
		for i := range seqs {
			n := int(rng.Uint64N(60))
			seqs[i] = make([]uint64, n)
			for j := range seqs[i] {
				switch rng.Uint64N(8) {
				case 0:
					seqs[i][j] = ^uint64(0) // collides with the sentinel
				case 1:
					seqs[i][j] = 0
				default:
					seqs[i][j] = rng.Uint64()
				}
			}
			slices.Sort(seqs[i])
		}
		gotV, gotS := mergeWithKeyTree(seqs, nil)

		heads := make([]uint64, k)
		live := make([]bool, k)
		pos := make([]int, k)
		for i, s := range seqs {
			if len(s) > 0 {
				heads[i] = s[0]
				live[i] = true
				pos[i] = 1
			}
		}
		lt := NewLoserTree(k, heads, live, func(a, b uint64) bool { return a < b })
		var wantV []uint64
		var wantS []int
		for !lt.Empty() {
			v, i := lt.Min()
			wantV = append(wantV, v)
			wantS = append(wantS, i)
			if pos[i] < len(seqs[i]) {
				lt.Replace(seqs[i][pos[i]])
				pos[i]++
			} else {
				lt.Retire()
			}
		}
		if !slices.Equal(gotV, wantV) || !slices.Equal(gotS, wantS) {
			t.Fatalf("k=%d: key tree and loser tree disagree", k)
		}
	}
}

// TestKeyTreeTieCallback drives the comparator fallback: all keys
// equal, a tie callback that inverts the index order.
func TestKeyTreeTieCallback(t *testing.T) {
	rank := []int{2, 0, 1} // stream 1 first, then 2, then 0
	tie := func(a, b int) bool { return rank[a] < rank[b] }
	tr := NewKeyTree(3, []uint64{5, 5, 5}, []bool{true, true, true}, tie)
	var order []int
	for !tr.Empty() {
		order = append(order, tr.Win())
		tr.Retire()
	}
	if !slices.Equal(order, []int{1, 2, 0}) {
		t.Fatalf("tie callback ignored: emission order %v", order)
	}
}

func TestKeyTreeRevive(t *testing.T) {
	tr := NewKeyTree(2, []uint64{5, 10}, []bool{true, true}, nil)
	if tr.Win() != 0 || tr.WinKey() != 5 {
		t.Fatalf("got (%d,%d)", tr.Win(), tr.WinKey())
	}
	tr.Retire() // stream 0 pauses at a batch boundary
	if tr.Win() != 1 || tr.WinKey() != 10 {
		t.Fatalf("got (%d,%d)", tr.Win(), tr.WinKey())
	}
	tr.Revive(0, 6)
	if tr.Win() != 0 || tr.WinKey() != 6 {
		t.Fatalf("after revive got (%d,%d)", tr.Win(), tr.WinKey())
	}
}

func TestKeyTreeResetReuses(t *testing.T) {
	tr := NewKeyTree(8, make([]uint64, 8), []bool{true, true, true, true, true, true, true, true}, nil)
	for !tr.Empty() {
		tr.Retire()
	}
	// Reset to a smaller live configuration; state must not leak.
	tr.Reset(3, []uint64{3, 1, 2}, []bool{true, true, true}, nil)
	var got []uint64
	for !tr.Empty() {
		got = append(got, tr.WinKey())
		tr.Retire()
	}
	if !slices.Equal(got, []uint64{1, 2, 3}) {
		t.Fatalf("after reset: %v", got)
	}
}

func TestKeyTreeAllEmpty(t *testing.T) {
	tr := NewKeyTree(4, make([]uint64, 4), make([]bool, 4), nil)
	if !tr.Empty() {
		t.Error("expected empty tree when no stream is live")
	}
}
