package pq

// KeyTree is a flat, cache-resident tournament tree over k sorted
// streams whose heads are summarised by 64-bit normalized keys
// (elem.KeyedCodec). Unlike LoserTree it stores no elements at all:
// internal nodes hold (loser stream, loser key) pairs in two flat
// arrays, so a replay is ceil(log2 k) uint64 comparisons with no
// indirect less call and no element copies. The caller keeps the
// actual stream cursors and feeds the tree the key of each new head.
//
// Equal truncated keys are broken by the optional tie callback (the
// comparator fallback for codecs whose key is a prefix, or for
// non-keyed codecs where every key is zero) and finally by stream
// index, which keeps merging deterministic and stable by stream.
type KeyTree struct {
	k      int      // number of leaves (power of two >= streams)
	loser  []int32  // per internal node: losing stream index
	lkey   []uint64 // per internal node: the loser's key
	win    int32    // overall winner stream
	winKey uint64
	key    []uint64 // current head key per stream (^0 when exhausted)
	alive  []bool
	wtmp   []int32 // rebuild scratch (winner per node)
	// tie reports whether stream a's head orders strictly before
	// stream b's head; consulted only on equal keys between two live
	// streams. nil means equal keys are equivalent (exact keys).
	tie func(a, b int) bool
}

// deadKey is the sentinel key of an exhausted stream. Live streams may
// carry the same key value; aliveness is always checked on equal keys.
const deadKey = ^uint64(0)

// NewKeyTree builds a key tree for n streams. keys[i] is the head key
// of stream i; live[i] reports whether stream i is non-empty. n must
// be >= 1. tie may be nil (see KeyTree).
func NewKeyTree(n int, keys []uint64, live []bool, tie func(a, b int) bool) *KeyTree {
	t := &KeyTree{}
	t.Reset(n, keys, live, tie)
	return t
}

// Reset re-initialises the tree in place for n streams, reusing its
// arrays — the pooling hook that keeps repeated merges allocation-free.
func (t *KeyTree) Reset(n int, keys []uint64, live []bool, tie func(a, b int) bool) {
	if n < 1 {
		panic("pq: key tree needs at least one stream")
	}
	k := 1
	for k < n {
		k *= 2
	}
	if cap(t.key) < k {
		t.loser = make([]int32, k)
		t.lkey = make([]uint64, k)
		t.key = make([]uint64, k)
		t.alive = make([]bool, k)
	}
	t.k = k
	t.loser = t.loser[:k]
	t.lkey = t.lkey[:k]
	t.key = t.key[:k]
	t.alive = t.alive[:k]
	for i := 0; i < k; i++ {
		if i < n && live[i] {
			t.key[i] = keys[i]
			t.alive[i] = true
		} else {
			t.key[i] = deadKey
			t.alive[i] = false
		}
	}
	t.tie = tie
	t.rebuild()
}

// beatsEq breaks an equal-key comparison between streams a and b:
// exhausted streams lose to live ones, then the comparator fallback,
// then stream index.
func (t *KeyTree) beatsEq(a, b int32) bool {
	switch {
	case !t.alive[a]:
		return false
	case !t.alive[b]:
		return true
	}
	if t.tie != nil {
		if t.tie(int(a), int(b)) {
			return true
		}
		if t.tie(int(b), int(a)) {
			return false
		}
	}
	return a < b
}

// beats reports whether stream a's head orders strictly before stream
// b's head. Exhausted streams carry deadKey, so they lose the key
// comparison against any live smaller key and fall to beatsEq on ties.
func (t *KeyTree) beats(a, b int32) bool {
	ka, kb := t.key[a], t.key[b]
	if ka != kb {
		return ka < kb
	}
	return t.beatsEq(a, b)
}

// rebuild recomputes the whole tree in O(k): winners bottom-up, the
// loser of each comparison stored in the node.
func (t *KeyTree) rebuild() {
	if cap(t.wtmp) < 2*t.k {
		t.wtmp = make([]int32, 2*t.k)
	}
	w := t.wtmp[:2*t.k]
	for i := 0; i < t.k; i++ {
		w[t.k+i] = int32(i)
	}
	for i := t.k - 1; i >= 1; i-- {
		a, b := w[2*i], w[2*i+1]
		if t.beats(a, b) {
			w[i], t.loser[i] = a, b
		} else {
			w[i], t.loser[i] = b, a
		}
		t.lkey[i] = t.key[t.loser[i]]
	}
	t.win = w[1]
	t.winKey = t.key[t.win]
}

// DropTie releases the tie callback (and whatever stream data it
// captures) so a pooled tree does not pin the last merge's inputs.
func (t *KeyTree) DropTie() { t.tie = nil }

// Empty reports whether every stream is exhausted.
func (t *KeyTree) Empty() bool { return !t.alive[t.win] }

// Win returns the stream whose head is the overall minimum. It must
// not be consulted when Empty.
func (t *KeyTree) Win() int { return int(t.win) }

// WinKey returns the winner's normalized key.
func (t *KeyTree) WinKey() uint64 { return t.winKey }

// Replace substitutes the winner stream's head key with key (the
// caller advanced that stream's cursor) and replays to the root.
func (t *KeyTree) Replace(key uint64) {
	t.key[t.win] = key
	t.replay(t.win)
}

// Retire marks the winner stream exhausted and replays.
func (t *KeyTree) Retire() {
	t.alive[t.win] = false
	t.key[t.win] = deadKey
	t.replay(t.win)
}

// Revive re-activates stream i with head key (batch merging resumes a
// stream at a batch boundary) and replays from its leaf.
func (t *KeyTree) Revive(i int, key uint64) {
	t.key[i] = key
	t.alive[i] = true
	t.replay(int32(i))
}

// replay pushes stream s's new head up the tree. The common case is a
// strict uint64 comparison per level; only equal keys leave the fast
// path.
func (t *KeyTree) replay(s int32) {
	w, wk := s, t.key[s]
	for i := (t.k + int(s)) >> 1; i >= 1; i >>= 1 {
		lk := t.lkey[i]
		if lk < wk || (lk == wk && t.beatsEq(t.loser[i], w)) {
			t.loser[i], w = w, t.loser[i]
			t.lkey[i], wk = wk, lk
		}
	}
	t.win, t.winKey = w, wk
}
