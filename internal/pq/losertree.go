// Package pq provides priority structures used by multiway merging:
// a tournament (loser) tree — the classic engine of k-way external
// merging (Knuth vol. 3) — and a simple binary heap used where the
// input set changes dynamically.
package pq

// LoserTree is a tournament tree over k sorted input streams. The tree
// stores, at each internal node, the loser of the comparison between
// the two subtree winners; the overall winner is kept at the root.
// Replacing the winner and replaying costs exactly ceil(log2 k)
// comparisons, independent of input order — the property that makes
// multiway merging cheap.
//
// Streams are identified by their index 0..k-1. An exhausted stream is
// represented by a sentinel that orders after every live element.
type LoserTree[T any] struct {
	less  func(a, b T) bool
	k     int   // number of leaves (power of two >= streams)
	tree  []int // loser indices per internal node; tree[0] = winner
	item  []T   // current head element per stream
	alive []bool
}

// NewLoserTree builds a loser tree for n streams using less as the
// order. heads[i] is the first element of stream i; live[i] reports
// whether stream i is non-empty. n must be >= 1.
func NewLoserTree[T any](n int, heads []T, live []bool, less func(a, b T) bool) *LoserTree[T] {
	if n < 1 {
		panic("pq: loser tree needs at least one stream")
	}
	k := 1
	for k < n {
		k *= 2
	}
	lt := &LoserTree[T]{
		less:  less,
		k:     k,
		tree:  make([]int, k),
		item:  make([]T, k),
		alive: make([]bool, k),
	}
	for i := 0; i < n; i++ {
		lt.item[i] = heads[i]
		lt.alive[i] = live[i]
	}
	lt.rebuild()
	return lt
}

// beats reports whether stream a's head orders strictly before stream
// b's head, with exhausted streams losing to live ones and index as the
// final tiebreak (which makes merging of equal keys deterministic and
// stable by stream index).
func (lt *LoserTree[T]) beats(a, b int) bool {
	switch {
	case !lt.alive[a]:
		return false
	case !lt.alive[b]:
		return true
	case lt.less(lt.item[a], lt.item[b]):
		return true
	case lt.less(lt.item[b], lt.item[a]):
		return false
	default:
		return a < b
	}
}

// rebuild recomputes the whole tree in O(k).
func (lt *LoserTree[T]) rebuild() {
	// winner[i] for internal node i computed bottom-up.
	winner := make([]int, 2*lt.k)
	for i := 0; i < lt.k; i++ {
		winner[lt.k+i] = i
	}
	for i := lt.k - 1; i >= 1; i-- {
		a, b := winner[2*i], winner[2*i+1]
		if lt.beats(a, b) {
			winner[i] = a
			lt.tree[i] = b
		} else {
			winner[i] = b
			lt.tree[i] = a
		}
	}
	lt.tree[0] = winner[1]
}

// Empty reports whether every stream is exhausted.
func (lt *LoserTree[T]) Empty() bool { return !lt.alive[lt.tree[0]] }

// Min returns the overall smallest head element and the stream it
// belongs to. It must not be called when Empty.
func (lt *LoserTree[T]) Min() (T, int) {
	w := lt.tree[0]
	return lt.item[w], w
}

// Replace substitutes the head of the current winner stream with v and
// replays the path to the root. Used after consuming the winner when
// its stream has a next element.
func (lt *LoserTree[T]) Replace(v T) {
	w := lt.tree[0]
	lt.item[w] = v
	lt.replay(w)
}

// Retire marks the current winner stream as exhausted and replays.
func (lt *LoserTree[T]) Retire() {
	w := lt.tree[0]
	lt.alive[w] = false
	lt.replay(w)
}

// Revive re-activates stream i with head v (used by batch merging where
// streams pause at batch boundaries) and replays from its leaf.
func (lt *LoserTree[T]) Revive(i int, v T) {
	lt.item[i] = v
	lt.alive[i] = true
	lt.replay(i)
}

// replay pushes stream s's new head up the tree, swapping with stored
// losers where they win.
func (lt *LoserTree[T]) replay(s int) {
	w := s
	for i := (lt.k + s) / 2; i >= 1; i /= 2 {
		if lt.beats(lt.tree[i], w) {
			lt.tree[i], w = w, lt.tree[i]
		}
	}
	lt.tree[0] = w
}
