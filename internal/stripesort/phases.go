package stripesort

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand/v2"
	"sort"

	"demsort/internal/blockio"
	"demsort/internal/bufpool"
	"demsort/internal/cluster"
	"demsort/internal/dselect"
	"demsort/internal/elem"
	"demsort/internal/psort"
	"demsort/internal/xmerge"
)

// sortChunkBudgeted mirrors core's run-formation sort: the radix
// scratch (pair buffers, histograms, LSD gather buffer) is charged
// against the memory budget, and a PathAuto config resolves per chunk
// against the live headroom — LSD scatter while its scratch fits, the
// in-place MSD when memory is tight. Closure-only codecs bypass the
// radix engines and charge nothing.
func sortChunkBudgeted[T any](c elem.Codec[T], n *cluster.Node, cfg *Config, chunk []T) {
	if _, keyed := elem.Codec[T](c).(elem.KeyedCodec[T]); !keyed {
		psort.Sort(c, chunk, cfg.RealWorkers)
		return
	}
	scratchElems := func(path psort.Path) int64 {
		b := psort.ScratchBytes(path, c.Size(), len(chunk), cfg.RealWorkers)
		return (b + int64(c.Size()) - 1) / int64(c.Size())
	}
	path := cfg.RadixPath
	if path == psort.PathAuto {
		path = psort.PathLSD
		if lim := n.Mem.Limit(); lim > 0 && n.Mem.Used()+scratchElems(psort.PathLSD) > lim {
			path = psort.PathMSD
		}
	}
	scratch := scratchElems(path)
	n.Mem.MustAcquire(scratch)
	psort.SortPath(c, chunk, cfg.RealWorkers, path)
	n.Mem.Release(scratch)
}

// runPE executes the whole striped sort on one PE. Input arrives
// either as src (a stream of srcN encoded elements, loaded through one
// staging block) or as the myInput slice; sink receives the rank's
// contiguous share of the sorted output (nil = leave the striped
// blocks on the volumes).
func runPE[T any](c elem.Codec[T], n *cluster.Node, cfg *Config, bElem, bpr int, src io.Reader, srcN int64, myInput []T, sink func(rank int, b []byte) error) (*peState[T], error) {
	sz := c.Size()
	key, exact := elem.KeyFn(c)

	// ----- Load input onto local disks (unmeasured) -----
	n.SetPhase("load")
	type inBlock struct {
		id  blockio.BlockID
		len int
	}
	var inBlocks []inBlock
	if src != nil {
		// Staging blocks charged to the budget: one synchronous, three
		// when the reader goroutine stages ahead of the store writes.
		stage := int64(bElem)
		fill := n.Vol.FillFrom
		if cfg.Overlap {
			stage = 3 * int64(bElem)
			fill = n.Vol.FillFromOverlap
		}
		n.Mem.MustAcquire(stage)
		spans, err := fill(src, srcN*int64(sz), bElem*sz)
		n.Mem.Release(stage)
		if err != nil {
			for _, sp := range spans {
				n.Vol.Free(sp.ID)
			}
			return nil, fmt.Errorf("stripesort: input source, rank %d: %w", n.Rank, err)
		}
		for _, sp := range spans {
			inBlocks = append(inBlocks, inBlock{sp.ID, sp.Bytes / sz})
		}
	} else {
		loadEnc := bufpool.Get(bElem * sz)
		for off := 0; off < len(myInput); off += bElem {
			hi := off + bElem
			if hi > len(myInput) {
				hi = len(myInput)
			}
			id := n.Vol.Alloc()
			eb := loadEnc[:(hi-off)*sz]
			elem.EncodeInto(c, eb, myInput[off:hi])
			n.Vol.WriteAsync(id, eb)
			inBlocks = append(inBlocks, inBlock{id, hi - off})
		}
		bufpool.Put(loadEnc)
	}
	n.Vol.Drain()
	n.Barrier()

	// ----- Phase 1: run formation with global striping -----
	n.SetPhase(PhaseRunForm)
	if cfg.Randomize {
		rng := rand.New(rand.NewPCG(cfg.Seed, uint64(n.Rank)+0x57121))
		rng.Shuffle(len(inBlocks), func(i, j int) { inBlocks[i], inBlocks[j] = inBlocks[j], inBlocks[i] })
	}
	myRuns := (len(inBlocks) + bpr - 1) / bpr
	runs := int(n.AllReduceInt64(int64(myRuns), "max"))
	if runs == 0 {
		runs = 1
	}

	// Per run, the striped blocks this PE stores and their first keys.
	type runBlock struct {
		blk   int64
		id    blockio.BlockID
		len   int
		first T
	}
	stored := make([][]runBlock, runs)
	runLens := make([]int64, runs)

	raw := bufpool.Get(cfg.BlockBytes)
	for r := 0; r < runs; r++ {
		lo := r * bpr
		var chunk []T
		if lo < len(inBlocks) {
			hi := lo + bpr
			if hi > len(inBlocks) {
				hi = len(inBlocks)
			}
			for _, b := range inBlocks[lo:hi] {
				n.Vol.ReadWait(b.id, raw[:b.len*sz])
				chunk = elem.AppendDecode(c, chunk, raw, b.len)
				n.Vol.Free(b.id)
			}
		}
		n.Mem.MustAcquire(int64(len(chunk)))
		sortChunkBudgeted(c, n, cfg, chunk)
		n.AddCPU(cfg.Model.SortCPU(int64(len(chunk))) + cfg.Model.ScanCPU(int64(len(chunk))))

		runLen := n.AllReduceInt64(int64(len(chunk)), "sum")
		runLens[r] = runLen
		bounds := make([]int64, n.P+1)
		for i := 0; i <= n.P; i++ {
			bounds[i] = runLen * int64(i) / int64(n.P)
		}
		cuts := dselect.Cuts(c, n, chunk, bounds[1:n.P])
		send := make([][]byte, n.P)
		for q := 0; q < n.P; q++ {
			qlo := int64(0)
			if q > 0 {
				qlo = cuts[q-1]
			}
			qhi := int64(len(chunk))
			if q < n.P-1 {
				qhi = cuts[q]
			}
			sb := bufpool.Get(int(qhi-qlo) * sz)
			elem.EncodeInto(c, sb, chunk[qlo:qhi])
			send[q] = sb
		}
		n.AddCPU(cfg.Model.ScanCPU(int64(len(chunk))))
		chunkLen := int64(len(chunk))
		chunk = nil
		n.Mem.Release(chunkLen) // decoded chunk dropped (send buffers encoded)
		recv := n.AllToAllv(send)
		segLen := bounds[n.Rank+1] - bounds[n.Rank]
		// Decoded pieces + merged segment + striping assembly buffers.
		n.Mem.MustAcquire(3 * segLen)
		pieces := make([][]T, n.P)
		for q := 0; q < n.P; q++ {
			pieces[q] = elem.DecodeSlice(c, recv[q], len(recv[q])/sz)
		}
		cluster.RecycleRecv(recv)
		merged := xmerge.Merge(c, pieces)
		n.AddCPU(cfg.Model.MergeCPU(segLen, n.P) + cfg.Model.ScanCPU(segLen))
		if int64(len(merged)) != segLen {
			return nil, fmt.Errorf("stripesort: run %d: segment %d != %d", r, len(merged), segLen)
		}

		// Stripe the sorted run globally: block g of the run goes to
		// PE g mod P — the extra communication of Section III.
		segStart := bounds[n.Rank]
		stripeSend := make([][]byte, n.P)
		for pos := int64(0); pos < segLen; {
			g := (segStart + pos) / int64(bElem)
			bLo := g * int64(bElem)
			bHi := bLo + int64(bElem)
			if bHi > runLen {
				bHi = runLen
			}
			take := min64(bHi-segStart-pos, segLen-pos)
			home := int(g % int64(n.P))
			var hdr [16]byte
			binary.LittleEndian.PutUint64(hdr[:8], uint64(g))
			binary.LittleEndian.PutUint32(hdr[8:12], uint32(segStart+pos-bLo))
			binary.LittleEndian.PutUint32(hdr[12:16], uint32(take))
			stripeSend[home] = append(stripeSend[home], hdr[:]...)
			stripeSend[home] = elem.AppendEncode(c, stripeSend[home], merged[pos:pos+take])
			pos += take
		}
		n.AddCPU(cfg.Model.ScanCPU(segLen))
		stripeRecv := n.AllToAllv(stripeSend)

		// Assemble and write the striped blocks this PE homes.
		type asm struct {
			data   []T
			filled int
			total  int
		}
		blocks := map[int64]*asm{}
		for p := 0; p < n.P; p++ {
			buf := stripeRecv[p]
			for len(buf) > 0 {
				g := int64(binary.LittleEndian.Uint64(buf[:8]))
				off := int(binary.LittleEndian.Uint32(buf[8:12]))
				cnt := int(binary.LittleEndian.Uint32(buf[12:16]))
				a := blocks[g]
				if a == nil {
					bLo := g * int64(bElem)
					bHi := bLo + int64(bElem)
					if bHi > runLen {
						bHi = runLen
					}
					a = &asm{data: make([]T, bHi-bLo), total: int(bHi - bLo)}
					blocks[g] = a
				}
				// Decode straight into the assembly slot — no staging copy.
				elem.DecodeInto(c, a.data[off:off+cnt], buf[16:16+cnt*sz])
				buf = buf[16+cnt*sz:]
				a.filled += cnt
			}
		}
		cluster.RecycleRecv(stripeRecv)
		var myBlocks []int64
		for g := range blocks {
			myBlocks = append(myBlocks, g)
		}
		sort.Slice(myBlocks, func(i, j int) bool { return myBlocks[i] < myBlocks[j] })
		for _, g := range myBlocks {
			a := blocks[g]
			if a.filled != a.total {
				return nil, fmt.Errorf("stripesort: run %d block %d assembled %d/%d", r, g, a.filled, a.total)
			}
			id := n.Vol.Alloc()
			eb := raw[:len(a.data)*sz]
			elem.EncodeInto(c, eb, a.data)
			n.Vol.WriteAsync(id, eb)
			stored[r] = append(stored[r], runBlock{blk: g, id: id, len: a.total, first: a.data[0]})
		}
		n.AddCPU(cfg.Model.ScanCPU(segLen))
		n.Mem.Release(3 * segLen)
		if !cfg.Overlap {
			n.Vol.Drain()
		}
	}
	bufpool.Put(raw)
	n.Vol.Drain()

	// Build the global prediction sequence: the first key of every
	// block of every run, allgathered so each PE can compute the fetch
	// order deterministically.
	var predBuf []byte
	for r := 0; r < runs; r++ {
		for _, rb := range stored[r] {
			var hdr [12]byte
			binary.LittleEndian.PutUint32(hdr[:4], uint32(r))
			binary.LittleEndian.PutUint64(hdr[4:], uint64(rb.blk))
			predBuf = append(predBuf, hdr[:]...)
			predBuf = elem.AppendEncode(c, predBuf, []T{rb.first})
		}
	}
	predAll := n.AllGather(predBuf)
	var pred []predEntry[T]
	for _, pb := range predAll {
		for len(pb) > 0 {
			r := int(binary.LittleEndian.Uint32(pb[:4]))
			blk := int64(binary.LittleEndian.Uint64(pb[4:12]))
			v := c.Decode(pb[12 : 12+sz])
			pb = pb[12+sz:]
			pred = append(pred, predEntry[T]{first: v, firstKey: key(v), run: r, blk: blk})
		}
	}
	sort.Slice(pred, func(i, j int) bool {
		a, b := pred[i], pred[j]
		if a.firstKey != b.firstKey {
			return a.firstKey < b.firstKey
		}
		if !exact {
			if c.Less(a.first, b.first) {
				return true
			}
			if c.Less(b.first, a.first) {
				return false
			}
		}
		if a.run != b.run {
			return a.run < b.run
		}
		return a.blk < b.blk
	})
	n.Mem.MustAcquire(int64(len(pred)))
	n.Barrier()

	// ----- Phase 2: prediction-driven batch merging -----
	n.SetPhase(PhaseMerge)
	st := &peState[T]{runs: runs}
	// Index of my stored blocks for O(1) lookup.
	myIdx := map[[2]int64]runBlock{}
	for r := 0; r < runs; r++ {
		for _, rb := range stored[r] {
			myIdx[[2]int64{int64(r), rb.blk}] = rb
		}
	}

	quota := 4
	if cfg.MemElems > 0 {
		// The prediction table is a first-class memory consumer (the
		// paper's footnote 12 notes the same pressure); size the batch
		// fetch quota from what remains.
		avail := cfg.MemElems - int64(len(pred))
		if avail < cfg.MemElems/8 {
			avail = cfg.MemElems / 8
		}
		if q := int(avail / (16 * int64(bElem))); q < quota {
			quota = q
		} else {
			quota = q
		}
		if quota < 1 {
			quota = 1
		}
	}
	// lessTot orders (element, run, pos) totally — the barrier rule —
	// probing normalized uint64 keys first; the comparator runs only
	// on equal inexact keys (never for U64/KV16, and only on shared
	// 8-byte prefixes for Rec100).
	lessTot := func(ak uint64, a T, ar int, ap int64, bk uint64, b T, br int, bp int64) bool {
		if ak != bk {
			return ak < bk
		}
		if !exact {
			if c.Less(a, b) {
				return true
			}
			if c.Less(b, a) {
				return false
			}
		}
		if ar != br {
			return ar < br
		}
		return ap < bp
	}

	type piece struct {
		pos   int64
		elems []T
	}
	pending := make([][]piece, runs)
	outAsm := map[int64]*outAsm[T]{}
	var outCur int64
	cursor := 0

	for cursor < len(pred) {
		// Deterministic batch boundary: stop when any PE's fetch
		// count reaches its quota.
		perPE := make([]int, n.P)
		end := cursor
		for end < len(pred) {
			home := int(pred[end].blk % int64(n.P))
			if perPE[home] == quota {
				break
			}
			perPE[home]++
			end++
		}

		// Fetch my resident blocks of this batch (asynchronously).
		type fetched struct {
			e      predEntry[T]
			raw    []byte
			rb     runBlock
			handle blockio.Handle
		}
		var fs []fetched
		for i := cursor; i < end; i++ {
			e := pred[i]
			if int(e.blk%int64(n.P)) != n.Rank {
				continue
			}
			rb := myIdx[[2]int64{int64(e.run), e.blk}]
			f := fetched{e: e, rb: rb, raw: bufpool.Get(rb.len * sz)}
			f.handle = n.Vol.ReadAsync(rb.id, f.raw)
			if !cfg.Overlap {
				n.Vol.Wait(f.handle)
			}
			fs = append(fs, f)
		}
		for _, f := range fs {
			n.Vol.Wait(f.handle)
			vals := elem.DecodeSlice(c, f.raw, f.rb.len)
			bufpool.Put(f.raw)
			n.Mem.MustAcquire(int64(len(vals)))
			pending[f.e.run] = append(pending[f.e.run], piece{pos: f.e.blk * int64(bElem), elems: vals})
			n.Vol.Free(f.rb.id)
		}
		n.AddCPU(cfg.Model.ScanCPU(int64(len(fs) * bElem)))

		// Barrier: the smallest unfetched element (value and cached
		// normalized key, from the prediction sequence).
		haveBarrier := end < len(pred)
		var bVal T
		var bKey uint64
		var bRun int
		var bPos int64
		if haveBarrier {
			bVal, bKey = pred[end].first, pred[end].firstKey
			bRun, bPos = pred[end].run, pred[end].blk*int64(bElem)
		}

		// Extract everything strictly before the barrier: per run the
		// pending pieces form an ascending chain, so the emittable part
		// is a prefix of their concatenation.
		emitSeqs := make([][]T, 0, runs)
		var emitMine int64
		for r := 0; r < runs; r++ {
			var seq []T
			rest := pending[r][:0]
			for _, pc := range pending[r] {
				cnt := len(pc.elems)
				if haveBarrier {
					cnt = sort.Search(len(pc.elems), func(j int) bool {
						return !lessTot(key(pc.elems[j]), pc.elems[j], r, pc.pos+int64(j), bKey, bVal, bRun, bPos)
					})
				}
				seq = append(seq, pc.elems[:cnt]...)
				if cnt < len(pc.elems) {
					rest = append(rest, piece{pos: pc.pos + int64(cnt), elems: pc.elems[cnt:]})
				}
			}
			pending[r] = rest
			if len(seq) > 0 {
				emitSeqs = append(emitSeqs, seq)
				emitMine += int64(len(seq))
			}
		}
		chunk := xmerge.Merge(c, emitSeqs)
		n.AddCPU(cfg.Model.MergeCPU(emitMine, len(emitSeqs)+1))
		n.Mem.MustAcquire(2 * emitMine) // emit copies + merged chunk; released below

		emitTotal := n.AllReduceInt64(emitMine, "sum")
		if emitTotal > 0 {
			// Distributed merge of the emitted chunks, then stripe the
			// result to the output — the two communications per element
			// of the merging pass. Unlike phase 2's splitters, the
			// batch cuts only need to be order-consistent (the striped
			// layout fixes positions later), so cheap sample-based
			// splitters suffice — exactness here would cost more
			// metadata than the batch carries data.
			cuts := sampleCuts(c, n, chunk)
			send := make([][]byte, n.P)
			for q := 0; q < n.P; q++ {
				qlo := int64(0)
				if q > 0 {
					qlo = cuts[q-1]
				}
				qhi := int64(len(chunk))
				if q < n.P-1 {
					qhi = cuts[q]
				}
				sb := bufpool.Get(int(qhi-qlo) * sz)
				elem.EncodeInto(c, sb, chunk[qlo:qhi])
				send[q] = sb
			}
			recv := n.AllToAllv(send)
			var pieceLen int64
			for q := 0; q < n.P; q++ {
				pieceLen += int64(len(recv[q]) / sz)
			}
			n.Mem.MustAcquire(2 * pieceLen) // decoded pieces + merged result
			ps := make([][]T, n.P)
			for q := 0; q < n.P; q++ {
				ps[q] = elem.DecodeSlice(c, recv[q], len(recv[q])/sz)
			}
			cluster.RecycleRecv(recv)
			merged := xmerge.Merge(c, ps)
			n.AddCPU(cfg.Model.MergeCPU(pieceLen, n.P) + 2*cfg.Model.ScanCPU(pieceLen))

			// The batch's output positions follow from the actual piece
			// sizes (approximate splits make them uneven).
			lens := allGatherInt64(n, pieceLen)
			var before int64
			for q := 0; q < n.Rank; q++ {
				before += lens[q]
			}
			myLo := outCur + before
			outSend := make([][]byte, n.P)
			for pos := int64(0); pos < pieceLen; {
				o := (myLo + pos) / int64(bElem)
				bLo := o * int64(bElem)
				take := min64(bLo+int64(bElem)-(myLo+pos), pieceLen-pos)
				home := int(o % int64(n.P))
				var hdr [16]byte
				binary.LittleEndian.PutUint64(hdr[:8], uint64(o))
				binary.LittleEndian.PutUint32(hdr[8:12], uint32(myLo+pos-bLo))
				binary.LittleEndian.PutUint32(hdr[12:16], uint32(take))
				outSend[home] = append(outSend[home], hdr[:]...)
				outSend[home] = elem.AppendEncode(c, outSend[home], merged[pos:pos+take])
				pos += take
			}
			outRecv := n.AllToAllv(outSend)
			for p := 0; p < n.P; p++ {
				buf := outRecv[p]
				for len(buf) > 0 {
					o := int64(binary.LittleEndian.Uint64(buf[:8]))
					off := int(binary.LittleEndian.Uint32(buf[8:12]))
					cnt := int(binary.LittleEndian.Uint32(buf[12:16]))
					a := outAsm[o]
					if a == nil {
						a = newOutAsm[T](bElem)
						n.Mem.MustAcquire(int64(bElem))
						outAsm[o] = a
					}
					elem.DecodeInto(c, a.data[off:off+cnt], buf[16:16+cnt*sz])
					buf = buf[16+cnt*sz:]
					a.filled += cnt
					if a.filled == bElem {
						writeOut(c, n, st, o, a.data)
						delete(outAsm, o)
						n.Mem.Release(int64(bElem))
					}
				}
			}
			cluster.RecycleRecv(outRecv)
			outCur += emitTotal
			n.Mem.Release(2 * pieceLen)
		}
		n.Mem.Release(3 * emitMine) // pending prefixes emitted + emit copies + merged chunk
		cursor = end
		st.batches++
	}
	// Flush the final partial output block (at most one, on its home).
	for o, a := range outAsm {
		writeOut(c, n, st, o, a.data[:a.filled])
		n.Mem.Release(int64(bElem))
	}
	n.Mem.Release(int64(len(pred))) // prediction table dead after the merge
	n.Vol.Drain()
	n.Barrier()

	// ----- Collect: stream the output to the per-rank sinks -----
	// (outside the measured phases, like core.Sort's collect step).
	n.SetPhase("collect")
	var myN int64
	for _, b := range st.outBlocks {
		myN += int64(b.len)
	}
	st.totalN = n.AllReduceInt64(myN, "sum")
	outN, err := collectOutput(c, n, cfg, bElem, st.outBlocks, sink)
	if err != nil {
		return nil, err
	}
	st.outN = outN
	return st, nil
}

// collectOutput re-routes the globally striped output blocks to their
// canonical owners and feeds them to the sink in output order: rank i
// receives blocks [G·i/P, G·(i+1)/P), so the per-rank sink streams
// concatenate — in rank order — to the sorted sequence, exactly like
// core.Sort's canonical partition. The transfer runs in windows of W
// consecutive blocks per AllToAllv round, bounding both the sender's
// staging and the receiver's reorder buffer to O(W·B) — the streamed
// replacement for the old in-process [][]outBlock reassembly. Homes
// free their blocks as they are shipped, so the striped copy is
// consumed in place.
func collectOutput[T any](c elem.Codec[T], n *cluster.Node, cfg *Config, bElem int, blocks []stripedBlock, sink func(rank int, b []byte) error) (int64, error) {
	if sink == nil {
		return 0, nil
	}
	sz := c.Size()
	maxIdx := int64(-1)
	for _, b := range blocks {
		if b.idx > maxIdx {
			maxIdx = b.idx
		}
	}
	total := n.AllReduceInt64(maxIdx+1, "max") // G: global output blocks
	if total == 0 {
		return 0, nil
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].idx < blocks[j].idx })
	bounds := make([]int64, n.P+1)
	for i := 0; i <= n.P; i++ {
		bounds[i] = total * int64(i) / int64(n.P)
	}
	owner := func(g int64) int {
		return sort.Search(n.P, func(i int) bool { return bounds[i+1] > g })
	}
	// Window size: every round ships the blocks of W consecutive output
	// indices, so a receiving owner reorders at most W blocks (≤ m/4
	// elements) and a home stages ≈ W/P.
	w := int64(4 * n.P)
	if cfg.MemElems > 0 {
		if lim := cfg.MemElems / (4 * int64(bElem)); lim < w {
			w = lim
		}
	}
	if w < 1 {
		w = 1
	}
	raw := bufpool.Get(cfg.BlockBytes)
	defer bufpool.Put(raw)
	type entry struct {
		idx  int64
		data []byte
	}
	ptr := 0
	var sunk int64
	// buildSend stages the blocks of output indices [w0, w1) and charges
	// their elements to the budget (released once the exchange that
	// carries them completes); drain sinks one window's receives. The
	// overlapped and synchronous paths below issue the same calls in the
	// same per-PE order, so the sink streams are byte-identical.
	buildSend := func(w1 int64) ([][]byte, int64) {
		send := make([][]byte, n.P)
		var sendElems int64
		for ptr < len(blocks) && blocks[ptr].idx < w1 {
			b := blocks[ptr]
			ptr++
			n.Vol.ReadWait(b.id, raw[:b.len*sz])
			dst := owner(b.idx)
			var hdr [12]byte
			binary.LittleEndian.PutUint64(hdr[:8], uint64(b.idx))
			binary.LittleEndian.PutUint32(hdr[8:12], uint32(b.len))
			send[dst] = append(send[dst], hdr[:]...)
			send[dst] = append(send[dst], raw[:b.len*sz]...)
			sendElems += int64(b.len)
			n.Vol.Free(b.id)
		}
		n.Mem.MustAcquire(sendElems)
		return send, sendElems
	}
	drain := func(recv [][]byte) error {
		var entries []entry
		var recvElems int64
		for p := 0; p < n.P; p++ {
			buf := recv[p]
			for len(buf) > 0 {
				idx := int64(binary.LittleEndian.Uint64(buf[:8]))
				cnt := int(binary.LittleEndian.Uint32(buf[8:12]))
				entries = append(entries, entry{idx: idx, data: buf[12 : 12+cnt*sz]})
				recvElems += int64(cnt)
				buf = buf[12+cnt*sz:]
			}
		}
		n.Mem.MustAcquire(recvElems)
		sort.Slice(entries, func(i, j int) bool { return entries[i].idx < entries[j].idx })
		for _, e := range entries {
			if err := sink(n.Rank, e.data); err != nil {
				return fmt.Errorf("stripesort: output sink, rank %d: %w", n.Rank, err)
			}
			sunk += int64(len(e.data)) / int64(sz)
		}
		cluster.RecycleRecv(recv)
		n.Mem.Release(recvElems)
		return nil
	}
	nWin := (total + w - 1) / w
	if cfg.Overlap && n.P > 1 && nWin > 1 {
		// Pipelined collect (§IV-E): window wi+1's blocks are read off
		// the store and staged while window wi is still on the wire, so
		// the part-file sink writes overlap the next exchange. At most
		// two windows' send staging plus one window's receives are live,
		// each bounded by w blocks.
		st := n.OpenA2AStream(2)
		defer st.Close() // idempotent; releases the sender on error unwinds
		inFlight := make([]int64, 0, 2)
		post := func(wi int64) {
			send, elems := buildSend(min64((wi+1)*w, total))
			st.Post(send)
			inFlight = append(inFlight, elems)
		}
		post(0)
		for wi := int64(0); wi < nWin; wi++ {
			if wi+1 < nWin {
				post(wi + 1)
			}
			recv := st.Collect()
			n.Mem.Release(inFlight[0]) // send copies delivered
			inFlight = inFlight[1:]
			if err := drain(recv); err != nil {
				return sunk, err
			}
		}
		st.Close()
	} else {
		for w0 := int64(0); w0 < total; w0 += w {
			send, sendElems := buildSend(min64(w0+w, total))
			recv := n.AllToAllv(send)
			n.Mem.Release(sendElems) // send copies handed off to receivers
			if err := drain(recv); err != nil {
				return sunk, err
			}
		}
	}
	return sunk, nil
}

type outAsm[T any] struct {
	data   []T
	filled int
}

func newOutAsm[T any](bElem int) *outAsm[T] {
	return &outAsm[T]{data: make([]T, bElem)}
}

// writeOut persists one striped output block and records its global
// index (the collect step routes on it).
func writeOut[T any](c elem.Codec[T], n *cluster.Node, st *peState[T], o int64, data []T) {
	id := n.Vol.Alloc()
	enc := bufpool.Get(len(data) * c.Size())
	elem.EncodeInto(c, enc, data)
	n.Vol.WriteAsync(id, enc)
	bufpool.Put(enc)
	st.outBlocks = append(st.outBlocks, stripedBlock{idx: o, id: id, len: len(data)})
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// sampleCuts computes order-consistent (but only approximately
// balanced) cut positions of this PE's sorted chunk for a P-way
// distribution: every PE contributes a handful of weighted sample
// elements, all PEs derive the same P-1 splitters from the pooled
// sample, and each cuts its chunk at those splitters under the
// (value, PE, position) total order — so the distributed pieces are
// globally ordered even with duplicate keys.
func sampleCuts[T any](c elem.Codec[T], n *cluster.Node, chunk []T) []int64 {
	sz := c.Size()
	const sPerPE = 8
	// Contribute up to sPerPE evenly spaced elements, each weighted by
	// the share of the chunk it represents.
	var buf []byte
	ln := int64(len(chunk))
	for i := 0; i < sPerPE && ln > 0; i++ {
		idx := ln * int64(i) / sPerPE
		var rec [16]byte
		binary.LittleEndian.PutUint64(rec[:8], uint64(idx))
		binary.LittleEndian.PutUint64(rec[8:], uint64(ln/sPerPE+1))
		buf = append(buf, rec[:]...)
		buf = elem.AppendEncode(c, buf, []T{chunk[idx]})
	}
	all := n.AllGather(buf)
	type cand struct {
		v      T
		pe     int
		idx    int64
		weight int64
	}
	var pool []cand
	var wTotal int64
	for pe := 0; pe < n.P; pe++ {
		b := all[pe]
		for len(b) > 0 {
			cd := cand{
				pe:     pe,
				idx:    int64(binary.LittleEndian.Uint64(b[:8])),
				weight: int64(binary.LittleEndian.Uint64(b[8:16])),
				v:      c.Decode(b[16 : 16+sz]),
			}
			b = b[16+sz:]
			pool = append(pool, cd)
			wTotal += cd.weight
		}
	}
	sort.Slice(pool, func(a, b int) bool {
		pa, pb := pool[a], pool[b]
		if c.Less(pa.v, pb.v) {
			return true
		}
		if c.Less(pb.v, pa.v) {
			return false
		}
		if pa.pe != pb.pe {
			return pa.pe < pb.pe
		}
		return pa.idx < pb.idx
	})
	cuts := make([]int64, n.P-1)
	for i := 1; i < n.P; i++ {
		target := wTotal * int64(i) / int64(n.P)
		var acc int64
		sp := pool[len(pool)-1]
		for _, cd := range pool {
			acc += cd.weight
			if acc >= target {
				sp = cd
				break
			}
		}
		// Count my chunk elements ordered before the splitter
		// (value, PE, position) — identical tie handling on every PE
		// keeps the distributed pieces disjoint and ordered.
		cuts[i-1] = int64(sort.Search(len(chunk), func(j int) bool {
			v := chunk[j]
			if c.Less(v, sp.v) {
				return false
			}
			if c.Less(sp.v, v) {
				return true
			}
			if n.Rank != sp.pe {
				return n.Rank > sp.pe
			}
			return int64(j) >= sp.idx
		}))
	}
	// Cuts must be monotone (identical splitters in sorted order are).
	for i := 1; i < len(cuts); i++ {
		if cuts[i] < cuts[i-1] {
			cuts[i] = cuts[i-1]
		}
	}
	return cuts
}

// allGatherInt64 shares one int64 per PE.
func allGatherInt64(n *cluster.Node, v int64) []int64 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	all := n.AllGather(b[:])
	out := make([]int64, len(all))
	for q := range all {
		out[q] = int64(binary.LittleEndian.Uint64(all[q]))
	}
	return out
}
