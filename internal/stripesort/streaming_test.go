package stripesort

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"slices"
	"testing"

	"demsort/internal/blockio"
	"demsort/internal/elem"
	"demsort/internal/workload"
)

// TestStripedSinkStreamsCanonicalRanges pins the Sink contract: rank
// i's stream is a contiguous, in-order share of the sorted output, and
// the streams concatenate in rank order to exactly Result.Output.
func TestStripedSinkStreamsCanonicalRanges(t *testing.T) {
	for _, store := range []string{"ram", "file"} {
		t.Run(store, func(t *testing.T) {
			cfg := testConfig(4)
			if store == "file" {
				cfg.NewStore = blockio.FileStoreFactory(t.TempDir(), cfg.BlockBytes)
			}
			streamed := make([][]byte, cfg.P)
			cfg.Sink = func(rank int, b []byte) error {
				streamed[rank] = append(streamed[rank], b...)
				return nil
			}
			input := workload.Generate(workload.Uniform, cfg.P, 5200, 77)
			res, err := Sort[elem.KV16](kvc, cfg, input)
			if err != nil {
				t.Fatal(err)
			}
			checkSorted(t, res, input)
			var all []byte
			for rank := 0; rank < cfg.P; rank++ {
				if len(streamed[rank]) == 0 {
					t.Fatalf("rank %d received no output stream", rank)
				}
				part := elem.DecodeSlice(kvc, streamed[rank], len(streamed[rank])/16)
				if !elem.IsSorted[elem.KV16](kvc, part) {
					t.Fatalf("rank %d: sink stream not sorted", rank)
				}
				all = append(all, streamed[rank]...)
			}
			want := elem.EncodeSlice(kvc, res.Output)
			if !bytes.Equal(all, want) {
				t.Fatalf("concatenated sink streams (%d bytes) differ from Output (%d bytes)", len(all), len(want))
			}
		})
	}
}

// TestStripedSourceMatchesSliceInput: the streaming input path must be
// byte-equivalent to the slice path for the striped algorithm too.
func TestStripedSourceMatchesSliceInput(t *testing.T) {
	for _, p := range []int{1, 4} {
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			input := workload.Generate(workload.Uniform, p, 5100, 13)
			ref, err := Sort[elem.KV16](kvc, testConfig(p), input)
			if err != nil {
				t.Fatal(err)
			}
			cfg := testConfig(p)
			cfg.Source = func(rank int) (io.Reader, int64, error) {
				return bytes.NewReader(elem.EncodeSlice(kvc, input[rank])), int64(len(input[rank])), nil
			}
			res, err := Sort[elem.KV16](kvc, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(res.Output, ref.Output) {
				t.Fatal("source-loaded striped output differs from slice-loaded")
			}
		})
	}
}

// A Sink error during striped collection must abort the sort.
func TestStripedSinkErrorAborts(t *testing.T) {
	cfg := testConfig(2)
	cfg.KeepOutput = false
	sinkErr := errors.New("part file write failed")
	cfg.Sink = func(rank int, b []byte) error { return sinkErr }
	input := workload.Generate(workload.Uniform, 2, 5000, 3)
	_, err := Sort[elem.KV16](kvc, cfg, input)
	if err == nil || !errors.Is(err, sinkErr) {
		t.Fatalf("sink error must abort the striped sort, got %v", err)
	}
}
