// Package stripesort implements the paper's Section III algorithm:
// multiway mergesort with *global striping*. Runs and the final output
// are striped over all disks of the machine (block g of a sequence
// lives on PE g mod P), merging is driven by a prediction sequence
// (the smallest key of every data block) so that blocks are fetched in
// exactly the order merging needs them, and batches of Θ(M/B) blocks
// are merged with the distributed internal merge.
//
// Contrast with CANONICALMERGESORT (internal/core): this algorithm's
// I/O volume is exactly 4N — two passes even for inputs near the
// theoretical M²/B limit, a factor P beyond canonical's capacity — but
// every pass communicates the data up to twice (internal sorting or
// merging, then striping), i.e. ~4 communications versus ~1, and the
// output layout is globally striped rather than canonical. This is the
// trade-off the paper's Sections III/IV discuss and the ablation
// benchmarks measure.
package stripesort

import (
	"fmt"
	"io"

	"demsort/internal/blockio"
	"demsort/internal/cluster"
	"demsort/internal/cluster/sim"
	"demsort/internal/core"
	"demsort/internal/elem"
	"demsort/internal/psort"
	"demsort/internal/vtime"
)

// Phase names for the two accounted phases.
const (
	PhaseRunForm = "run formation"
	PhaseMerge   = "merge"
)

// Config parameterises the striped sort.
type Config struct {
	// P is the number of PEs.
	P int
	// BlockBytes is the block size B in bytes.
	BlockBytes int
	// MemElems is the per-PE memory budget m in elements.
	MemElems int64
	// RunFraction sizes the per-PE share of a run (default 0.25).
	RunFraction float64
	// Randomize shuffles local input blocks before run formation (it
	// helps the merge phase's disk balance, not data placement —
	// striping already balances placement).
	Randomize bool
	// Seed drives randomization.
	Seed uint64
	// Overlap enables asynchronous I/O.
	Overlap bool
	// RealWorkers is the genuine sorting parallelism inside a PE.
	RealWorkers int
	// RadixPath selects the keyed-codec radix engine of the run
	// formation sorts, mirroring core.Config.RadixPath: PathAuto (zero
	// value) picks the LSD scatter while its scratch fits the live
	// budget headroom and the in-place MSD otherwise.
	RadixPath psort.Path
	// KeepOutput retains the sorted output for validation. It is
	// implemented on top of the Sink path (the output blocks are
	// re-routed from their striped homes to canonical owners and
	// decoded), so it requires every PE to be hosted in-process.
	KeepOutput bool
	// Source, when non-nil, streams each locally hosted rank's input
	// as encoded element bytes (see core.Config.Source): the load
	// phase reads it block-at-a-time onto the rank's volume, holding
	// only one staging block in RAM. With Source set the input
	// argument of Sort must be nil.
	Source func(rank int) (io.Reader, int64, error)
	// Sink, when non-nil, streams the sorted output: after the merge,
	// the striped blocks are re-routed over the transport so that rank
	// i receives the contiguous output block range [G·i/P, G·(i+1)/P)
	// in ascending order — concatenating the per-rank sink streams in
	// rank order yields the globally sorted sequence (demsort's
	// -striped part files). Calls for one rank are sequential and in
	// output order; on the sim backend distinct ranks stream
	// concurrently. Sink must be set (or unset) uniformly across the
	// processes of one machine; an error aborts the sort.
	Sink func(rank int, encoded []byte) error
	// Model is the virtual-time cost model.
	Model vtime.CostModel
	// NewStore optionally overrides the block store factory.
	NewStore func(rank int) (blockio.Store, error)
	// Machine optionally supplies a pre-built transport backend; nil
	// builds a cluster/sim machine from the fields above (see
	// core.Config.Machine for the contract).
	Machine cluster.Machine
}

// DefaultConfig mirrors core.DefaultConfig for the striped algorithm.
func DefaultConfig(p int, memElems int64, blockBytes int) Config {
	return Config{
		P:           p,
		BlockBytes:  blockBytes,
		MemElems:    memElems,
		RunFraction: 0.2,
		Randomize:   true,
		Seed:        1,
		Overlap:     true,
		RealWorkers: psort.DefaultWorkers(),
		Model:       vtime.Default(),
	}
}

// Result mirrors core.Result for the striped algorithm.
type Result[T any] struct {
	P          int
	N          int64
	ElemSize   int
	BlockElems int
	Runs       int
	Batches    int
	PhaseNames []string
	PerPE      []map[string]*vtime.PhaseStats
	// Output is the globally sorted data reassembled from the stripes
	// (only with KeepOutput).
	Output []T
	// StripedBlocks[rank] is the number of output blocks PE rank
	// stores — the striped layout itself.
	StripedBlocks []int64
	// OutputLens[rank] is the element count delivered to rank's Sink
	// (its canonical block-range share of the output); zero when no
	// sink ran.
	OutputLens   []int64
	PeakMemElems []int64
}

// MaxWall and PhaseBytes mirror core.Result.
func (r *Result[T]) MaxWall(phase string) float64 {
	var w float64
	for _, st := range r.PerPE {
		if s, ok := st[phase]; ok && s.Wall > w {
			w = s.Wall
		}
	}
	return w
}

// TotalWall returns the modelled total running time.
func (r *Result[T]) TotalWall() float64 {
	var t float64
	for _, ph := range r.PhaseNames {
		t += r.MaxWall(ph)
	}
	return t
}

// PhaseBytes returns machine-wide (read, written) bytes in a phase.
func (r *Result[T]) PhaseBytes(phase string) (read, written int64) {
	for _, st := range r.PerPE {
		if s, ok := st[phase]; ok {
			read += s.BytesRead
			written += s.BytesWritten
		}
	}
	return read, written
}

// OverlapRatio mirrors core.Result: 1 − blocked/wall for one phase,
// summed across the PEs and clamped to [0, 1].
func (r *Result[T]) OverlapRatio(phase string) float64 {
	var wall, blocked float64
	for _, st := range r.PerPE {
		if s, ok := st[phase]; ok {
			wall += s.Wall
			blocked += s.BlockedTime
		}
	}
	if wall <= 0 {
		return 0
	}
	ratio := 1 - blocked/wall
	if ratio < 0 {
		return 0
	}
	return ratio
}

// NetBytes returns machine-wide network bytes sent in a phase.
func (r *Result[T]) NetBytes(phase string) int64 {
	var b int64
	for _, st := range r.PerPE {
		if s, ok := st[phase]; ok {
			b += s.BytesSent
		}
	}
	return b
}

// stripedBlock is one globally striped output block this PE homes:
// global output block index idx, stored as block id with len elements.
type stripedBlock struct {
	idx int64
	id  blockio.BlockID
	len int
}

// predEntry is one prediction-sequence entry: block blk of run run
// starts with key first (its globally smallest unread element).
// firstKey caches first's normalized uint64 key (elem.KeyFn) so the
// prediction sort and the batch-boundary probes run on integers, with
// the comparator only breaking equal inexact keys.
type predEntry[T any] struct {
	first    T
	firstKey uint64
	run      int
	blk      int64
}

// Sort runs the globally striped mergesort. input[i] starts on PE i's
// disks; afterwards the sorted sequence is striped across all PEs
// (output block g on PE g mod P).
func Sort[T any](c elem.Codec[T], cfg Config, input [][]T) (*Result[T], error) {
	if cfg.P < 1 {
		return nil, fmt.Errorf("stripesort: P must be >= 1")
	}
	if cfg.Source == nil && len(input) != cfg.P {
		return nil, fmt.Errorf("stripesort: input has %d slices for %d PEs", len(input), cfg.P)
	}
	if cfg.Source != nil && input != nil {
		return nil, fmt.Errorf("stripesort: Source and input slices are mutually exclusive")
	}
	if cfg.Model == (vtime.CostModel{}) {
		cfg.Model = vtime.Default()
	}
	if cfg.RealWorkers <= 0 {
		cfg.RealWorkers = 1
	}
	sz := c.Size()
	if cfg.BlockBytes < sz {
		return nil, fmt.Errorf("stripesort: block smaller than one element")
	}
	bElem := cfg.BlockBytes / sz
	rf := cfg.RunFraction
	if rf <= 0 || rf > 0.5 {
		rf = 0.25
	}
	runLocal := int64(float64(cfg.MemElems) * rf)
	if cfg.MemElems <= 0 {
		runLocal = int64(bElem) * 64
	}
	bpr := int(runLocal / int64(bElem))
	if bpr < 1 {
		bpr = 1
	}
	runLocal = int64(bpr) * int64(bElem)

	// Open the streaming sources of the locally hosted ranks up front:
	// their element counts drive the capacity check exactly like the
	// slice lengths do, while the streams are consumed in the load
	// phase (core.OpenSources is the shared contract enforcement).
	sources, sourceN, err := core.OpenSources(cfg.Source, cfg.Machine, cfg.P)
	if err != nil {
		return nil, fmt.Errorf("stripesort: %w", err)
	}

	// Capacity: the merge keeps at most one leftover block per run in
	// memory machine-wide, and each PE buffers its fetch quota, so R
	// may grow to Θ(M/B) — the global constraint of Section III.
	var nPerPE int64
	for _, part := range input {
		if int64(len(part)) > nPerPE {
			nPerPE = int64(len(part))
		}
	}
	for _, cnt := range sourceN {
		if cnt > nPerPE {
			nPerPE = cnt
		}
	}
	runs := int((nPerPE + runLocal - 1) / runLocal)
	if runs < 1 {
		runs = 1
	}
	if cfg.MemElems > 0 {
		if globalLeftover := int64(runs) * int64(bElem); globalLeftover > int64(cfg.P)*cfg.MemElems/4 {
			return nil, fmt.Errorf("stripesort: %d runs exceed the machine capacity M/(4B) = %d",
				runs, int64(cfg.P)*cfg.MemElems/(4*int64(bElem)))
		}
	}

	m := cfg.Machine
	if m == nil {
		sm, err := sim.New(sim.Config{
			P:          cfg.P,
			BlockBytes: cfg.BlockBytes,
			MemElems:   cfg.MemElems,
			Model:      cfg.Model,
			NewStore:   cfg.NewStore,
		})
		if err != nil {
			return nil, err
		}
		defer sm.Close()
		m = sm
	} else if m.P() != cfg.P {
		return nil, fmt.Errorf("stripesort: machine has %d PEs, config says %d", m.P(), cfg.P)
	}

	// KeepOutput rides on the Sink path: an internal sink decodes each
	// rank's contiguous output range, and the ranges concatenate in
	// rank order to the globally sorted sequence. Distinct ranks write
	// distinct slots, so the sim backend's concurrent PEs need no lock.
	sink := cfg.Sink
	var keep [][]T
	if cfg.KeepOutput {
		if len(m.Nodes()) != cfg.P {
			return nil, fmt.Errorf("stripesort: KeepOutput needs all %d PEs hosted in-process (machine hosts %d); stream a distributed run through Sink instead", cfg.P, len(m.Nodes()))
		}
		keep = make([][]T, cfg.P)
		user := sink
		sink = func(rank int, b []byte) error {
			keep[rank] = elem.AppendDecode(c, keep[rank], b, len(b)/sz)
			if user != nil {
				return user(rank, b)
			}
			return nil
		}
	}

	res := &Result[T]{
		P:             cfg.P,
		ElemSize:      sz,
		BlockElems:    bElem,
		PhaseNames:    []string{PhaseRunForm, PhaseMerge},
		PerPE:         make([]map[string]*vtime.PhaseStats, cfg.P),
		StripedBlocks: make([]int64, cfg.P),
		OutputLens:    make([]int64, cfg.P),
		PeakMemElems:  make([]int64, cfg.P),
	}
	batches := make([]int, cfg.P)
	runsSeen := make([]int, cfg.P)
	totalN := make([]int64, cfg.P)

	err = m.Run(func(n *cluster.Node) error {
		var myInput []T
		if cfg.Source == nil {
			myInput = input[n.Rank]
		}
		st, err := runPE(c, n, &cfg, bElem, bpr, sources[n.Rank], sourceN[n.Rank], myInput, sink)
		if err != nil {
			return err
		}
		res.StripedBlocks[n.Rank] = int64(len(st.outBlocks))
		res.PeakMemElems[n.Rank] = n.Mem.Peak()
		batches[n.Rank] = st.batches
		runsSeen[n.Rank] = st.runs
		totalN[n.Rank] = st.totalN
		res.OutputLens[n.Rank] = st.outN
		return nil
	})
	if err != nil {
		return nil, err
	}

	for _, node := range m.Nodes() {
		_, stats := node.PhaseStats()
		res.PerPE[node.Rank] = stats
	}
	local0 := m.Nodes()[0].Rank
	res.Runs = runsSeen[local0]
	res.Batches = batches[local0]
	res.N = totalN[local0]
	if cfg.KeepOutput {
		for _, part := range keep {
			res.Output = append(res.Output, part...)
		}
	}
	return res, nil
}

// peState is what one PE reports back.
type peState[T any] struct {
	outBlocks []stripedBlock
	batches   int
	runs      int
	totalN    int64
	outN      int64 // elements delivered to this rank's sink
}
