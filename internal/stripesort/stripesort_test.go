package stripesort

import (
	"bytes"
	"slices"
	"testing"

	"demsort/internal/elem"
	"demsort/internal/sortbench"
	"demsort/internal/vtime"
	"demsort/internal/workload"
)

var kvc = elem.KV16Codec{}

func testConfig(p int) Config {
	cfg := DefaultConfig(p, 1<<13, 64*16)
	cfg.Model = vtime.Default()
	cfg.KeepOutput = true
	return cfg
}

func checkSorted(t *testing.T, res *Result[elem.KV16], input [][]elem.KV16) {
	t.Helper()
	var all []elem.KV16
	for _, part := range input {
		all = append(all, part...)
	}
	if int64(len(all)) != res.N {
		t.Fatalf("output N=%d, input %d", res.N, len(all))
	}
	if !elem.IsSorted[elem.KV16](kvc, res.Output) {
		t.Fatal("striped output not globally sorted")
	}
	// Permutation check via order-independent checksum.
	if workload.Checksum(all) != workload.Checksum(res.Output) {
		t.Fatal("output is not a permutation of the input")
	}
}

func TestStripedSortEndToEnd(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		for _, kind := range []workload.Kind{workload.Uniform, workload.WorstCaseLocal, workload.AllEqual} {
			cfg := testConfig(p)
			input := workload.Generate(kind, p, 5200, 77)
			res, err := Sort[elem.KV16](kvc, cfg, input)
			if err != nil {
				t.Fatalf("p=%d %s: %v", p, kind, err)
			}
			checkSorted(t, res, input)
			if res.Runs < 2 {
				t.Fatalf("p=%d %s: expected external regime, R=%d", p, kind, res.Runs)
			}
			if res.Batches < 2 {
				t.Fatalf("p=%d %s: expected several merge batches, got %d", p, kind, res.Batches)
			}
		}
	}
}

func TestStripedOutputIsStriped(t *testing.T) {
	// Block homes must alternate across PEs: with striping, per-PE
	// block counts differ by at most one.
	cfg := testConfig(4)
	input := workload.Generate(workload.Uniform, 4, 5000, 3)
	res, err := Sort[elem.KV16](kvc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := res.StripedBlocks[0], res.StripedBlocks[0]
	for _, c := range res.StripedBlocks {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if hi-lo > 1 {
		t.Fatalf("striped block counts unbalanced: %v", res.StripedBlocks)
	}
}

func TestStripedIOIsExactlyTwoPasses(t *testing.T) {
	// Section III's defining property: I/O volume exactly 4N (read and
	// write each element once per pass), even for the worst-case input
	// that costs CANONICALMERGESORT extra all-to-all I/O.
	cfg := testConfig(4)
	cfg.Randomize = false
	input := workload.Generate(workload.WorstCaseLocal, 4, 6000, 5)
	res, err := Sort[elem.KV16](kvc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	nBytes := res.N * int64(res.ElemSize)
	var read, written int64
	for _, ph := range res.PhaseNames {
		r, w := res.PhaseBytes(ph)
		read += r
		written += w
	}
	if read != 2*nBytes || written != 2*nBytes {
		t.Fatalf("I/O read %d written %d, want exactly %d each (4N total)", read, written, 2*nBytes)
	}
}

func TestStripedCommunicatesMoreThanCanonical(t *testing.T) {
	// The price of striping: ~4 communications of the data versus ~1.
	cfg := testConfig(4)
	input := workload.Generate(workload.Uniform, 4, 6000, 9)
	res, err := Sort[elem.KV16](kvc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	nBytes := res.N * int64(res.ElemSize)
	var net int64
	for _, ph := range res.PhaseNames {
		net += res.NetBytes(ph)
	}
	ratio := float64(net) / float64(nBytes)
	if ratio < 2.0 {
		t.Fatalf("striped sort communicated only %.2fx N — expected the multi-communication overhead", ratio)
	}
}

func TestStripedSingleRun(t *testing.T) {
	cfg := testConfig(3)
	input := workload.Generate(workload.Uniform, 3, 800, 11)
	res, err := Sort[elem.KV16](kvc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, res, input)
}

func TestStripedEmptyAndTiny(t *testing.T) {
	cfg := testConfig(2)
	res, err := Sort[elem.KV16](kvc, cfg, [][]elem.KV16{{}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 0 {
		t.Fatalf("N=%d", res.N)
	}
	input := [][]elem.KV16{{{Key: 3, Val: 0}}, {{Key: 1, Val: 1}}}
	res, err = Sort[elem.KV16](kvc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, res, input)
}

func TestStripedDeterministic(t *testing.T) {
	cfg := testConfig(4)
	cfg.RealWorkers = 1 // pin: byte-reproducibility must not depend on the host
	input := workload.Generate(workload.Uniform, 4, 5000, 13)
	a, err := Sort[elem.KV16](kvc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sort[elem.KV16](kvc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(a.Output, b.Output) {
		t.Fatal("nondeterministic output")
	}
	for _, ph := range a.PhaseNames {
		if a.MaxWall(ph) != b.MaxWall(ph) {
			t.Fatal("nondeterministic virtual time")
		}
	}
}

func TestStripedCapacityBeyondCanonical(t *testing.T) {
	// Section IV-D: canonical sorts O(P·m²/B), striped sorts O(M²/B) —
	// a factor P more. Check the code agrees qualitatively: a run
	// count acceptable to stripesort at P=8 can exceed canonical's
	// per-PE merge limit.
	memElems := int64(1 << 10)
	blockBytes := 64 * 16
	bElem := int64(blockBytes / 16)
	p := int64(8)
	stripedMaxRuns := p * memElems / (4 * bElem)
	canonicalMaxRuns := (memElems/2 - bElem) / (2 * bElem)
	if stripedMaxRuns <= canonicalMaxRuns {
		t.Fatalf("striped capacity %d runs should exceed canonical %d", stripedMaxRuns, canonicalMaxRuns)
	}
	if stripedMaxRuns < p*canonicalMaxRuns/2 {
		t.Fatalf("striped capacity should scale ~P times canonical")
	}
}

func TestStripedRejectsTooManyRuns(t *testing.T) {
	cfg := testConfig(1)
	cfg.MemElems = 512
	cfg.RunFraction = 0.25
	// runLocal = 128 elements = 2 blocks; capacity M/(4B) = 2 runs.
	input := workload.Generate(workload.Uniform, 1, 5000, 1)
	if _, err := Sort[elem.KV16](kvc, cfg, input); err == nil {
		t.Fatal("expected capacity rejection")
	}
}

// TestStripedRec100SharedPrefixes drives the key-cached barrier probes
// through the inexact-key path: Rec100's normalized key covers only 8
// of the 10 key bytes, and skewed records share a 9-byte hot prefix,
// so the prediction sort and the batch-boundary sort.Search must fall
// back to the comparator on equal uint64 keys to stay correct.
func TestStripedRec100SharedPrefixes(t *testing.T) {
	rc := elem.Rec100Codec{}
	const p, nPer = 4, 4000
	cfg := DefaultConfig(p, 1<<13, 10*100)
	cfg.Model = vtime.Default()
	cfg.KeepOutput = true
	input := make([][]elem.Rec100, p)
	var all []elem.Rec100
	for rank := 0; rank < p; rank++ {
		input[rank] = sortbench.Skewed(3, int64(rank)*nPer, nPer, 7)
		all = append(all, input[rank]...)
	}
	res, err := Sort[elem.Rec100](rc, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	if !elem.IsSorted[elem.Rec100](rc, res.Output) {
		t.Fatal("striped Rec100 output not globally sorted")
	}
	want := sortbench.Validate(func() []elem.Rec100 {
		s := slices.Clone(all)
		slices.SortFunc(s, func(a, b elem.Rec100) int { return bytes.Compare(a[:10], b[:10]) })
		return s
	}())
	got := sortbench.Validate(res.Output)
	if got.Records != want.Records || got.Checksum != want.Checksum || got.Unsorted != 0 {
		t.Fatalf("valsort mismatch: got %+v want %+v", got, want)
	}
	if res.Runs < 2 || res.Batches < 2 {
		t.Fatalf("expected external regime with several batches, got R=%d batches=%d", res.Runs, res.Batches)
	}
}
