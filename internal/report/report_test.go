package report

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFigureAddAndTSV(t *testing.T) {
	var f Figure
	f.Title = "test"
	f.XLabel = "P"
	f.Series = nil
	f.Add("a", 1, 10)
	f.Add("a", 2, 20)
	f.Add("b", 1, 5)
	var buf bytes.Buffer
	if err := f.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "P\ta\tb") {
		t.Fatalf("header missing: %q", out)
	}
	if !strings.Contains(out, "1\t10\t5") || !strings.Contains(out, "2\t20\t") {
		t.Fatalf("rows wrong: %q", out)
	}
}

func TestFigureSaveTSV(t *testing.T) {
	var f Figure
	f.Title = "saved"
	f.XLabel = "x"
	f.Add("s", 1, 2)
	dir := t.TempDir()
	path, err := f.SaveTSV(dir, "fig1")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "fig1.tsv" {
		t.Fatalf("path %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "# saved") {
		t.Fatal("title comment missing")
	}
}

func TestASCIIRendersBars(t *testing.T) {
	var f Figure
	f.Title = "bars"
	f.XLabel = "P"
	f.YLabel = "time"
	f.Add("alg", 1, 1)
	f.Add("alg", 2, 100)
	var buf bytes.Buffer
	f.ASCII(&buf, 40)
	out := buf.String()
	if !strings.Contains(out, "== bars ==") || !strings.Contains(out, "#") {
		t.Fatalf("ascii chart malformed: %q", out)
	}
}

func TestASCIILogScale(t *testing.T) {
	var f Figure
	f.LogY = true
	f.Title = "log"
	f.Add("s", 1, 0.001)
	f.Add("s", 2, 10)
	var buf bytes.Buffer
	f.ASCII(&buf, 40)
	if !strings.Contains(buf.String(), "log scale") {
		t.Fatal("log scale not indicated")
	}
}

func TestASCIIEmpty(t *testing.T) {
	var f Figure
	f.Title = "empty"
	var buf bytes.Buffer
	f.ASCII(&buf, 40)
	if !strings.Contains(buf.String(), "no data") {
		t.Fatal("empty figure should say so")
	}
}

func TestTable(t *testing.T) {
	tab := Table{Title: "sortbench", Headers: []string{"system", "GB/min"}}
	tab.AddRow("canonical", "564")
	tab.AddRow("baseline", "157")
	var buf bytes.Buffer
	tab.Write(&buf)
	out := buf.String()
	if !strings.Contains(out, "system") || !strings.Contains(out, "564") {
		t.Fatalf("table malformed: %q", out)
	}
	dir := t.TempDir()
	if _, err := tab.SaveText(dir, "tbl"); err != nil {
		t.Fatal(err)
	}
}
