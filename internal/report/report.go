// Package report renders experiment data as TSV files and quick ASCII
// charts, used by the benchmark harness (cmd/benchfig and the root
// benchmarks) to regenerate every figure of the paper in a form that
// can be eyeballed in a terminal and post-processed by plotting tools.
package report

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Series is one named curve: X positions with Y values.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a set of series with axis labels.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	LogY   bool
	Series []Series
}

// Add appends a point to the named series, creating it if necessary.
func (f *Figure) Add(series string, x, y float64) {
	for i := range f.Series {
		if f.Series[i].Name == series {
			f.Series[i].X = append(f.Series[i].X, x)
			f.Series[i].Y = append(f.Series[i].Y, y)
			return
		}
	}
	f.Series = append(f.Series, Series{Name: series, X: []float64{x}, Y: []float64{y}})
}

// WriteTSV emits the figure as a tab-separated table: one row per X,
// one column per series (the format plotting scripts consume).
func (f *Figure) WriteTSV(w io.Writer) error {
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	var xList []float64
	for x := range xs {
		xList = append(xList, x)
	}
	sort.Float64s(xList)
	fmt.Fprintf(w, "# %s\n", f.Title)
	fmt.Fprintf(w, "%s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, "\t%s", s.Name)
	}
	fmt.Fprintln(w)
	for _, x := range xList {
		fmt.Fprintf(w, "%g", x)
		for _, s := range f.Series {
			v, ok := lookup(s, x)
			if ok {
				fmt.Fprintf(w, "\t%g", v)
			} else {
				fmt.Fprintf(w, "\t")
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// SaveTSV writes the figure under dir as <name>.tsv.
func (f *Figure) SaveTSV(dir, name string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name+".tsv")
	file, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer file.Close()
	if err := f.WriteTSV(file); err != nil {
		return "", err
	}
	return path, nil
}

func lookup(s Series, x float64) (float64, bool) {
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// ASCII renders the figure as a crude terminal chart: one row per
// (x, series) with a proportional bar — enough to see the shape that
// the paper's plots show.
func (f *Figure) ASCII(w io.Writer, width int) {
	if width <= 0 {
		width = 50
	}
	maxY := math.Inf(-1)
	minY := math.Inf(1)
	for _, s := range f.Series {
		for _, y := range s.Y {
			maxY = math.Max(maxY, y)
			if y > 0 {
				minY = math.Min(minY, y)
			}
		}
	}
	if math.IsInf(maxY, -1) {
		fmt.Fprintf(w, "%s: (no data)\n", f.Title)
		return
	}
	fmt.Fprintf(w, "== %s ==\n", f.Title)
	fmt.Fprintf(w, "   y: %s%s\n", f.YLabel, map[bool]string{true: " (log scale)", false: ""}[f.LogY])
	nameW := 0
	for _, s := range f.Series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	for _, s := range f.Series {
		for i := range s.X {
			y := s.Y[i]
			var frac float64
			if f.LogY && y > 0 && maxY > minY {
				frac = (math.Log(y) - math.Log(minY)) / (math.Log(maxY) - math.Log(minY))
			} else if maxY > 0 {
				frac = y / maxY
			}
			if frac < 0 {
				frac = 0
			}
			bar := strings.Repeat("#", int(frac*float64(width)))
			fmt.Fprintf(w, "%*s %s=%-8g |%s %.4g\n", nameW, s.Name, f.XLabel, s.X[i], bar, y)
		}
	}
}

// Table is a simple aligned text table for the SortBenchmark-style
// comparisons.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			fmt.Fprintf(w, "%-*s  ", widths[i], cell)
		}
		fmt.Fprintln(w)
	}
	line(t.Headers)
	for i, wd := range widths {
		fmt.Fprintf(w, "%s  ", strings.Repeat("-", wd))
		_ = i
	}
	fmt.Fprintln(w)
	for _, row := range t.Rows {
		line(row)
	}
}

// SaveText writes the table under dir as <name>.txt.
func (t *Table) SaveText(dir, name string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name+".txt")
	file, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer file.Close()
	t.Write(file)
	return path, nil
}
