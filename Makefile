# Local entry points mirroring the CI gates. `make lint` is the same
# static-analysis sweep the blocking CI lint job runs (staticcheck is
# skipped with a note when the binary isn't installed — CI always runs
# it).

GO ?= go
BIN := bin

.PHONY: all build lint vet demsortvet staticcheck test race runform-bench clean

all: build lint test

build:
	$(GO) build ./...

lint: vet demsortvet staticcheck

vet:
	$(GO) vet ./...

demsortvet:
	@mkdir -p $(BIN)
	$(GO) build -o $(BIN)/demsortvet ./cmd/demsortvet
	$(GO) vet -vettool=$(CURDIR)/$(BIN)/demsortvet ./...
	$(GO) test -timeout 120s ./internal/analysis/...

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

test:
	$(GO) test -timeout 900s ./...

race:
	$(GO) test -race -timeout 900s ./...

# One-iteration smoke of the run-formation parallel radix benchmark —
# the same gate CI runs; use -benchtime=10x locally for real numbers.
runform-bench:
	$(GO) test -bench=RunFormationScaling -benchtime=1x -run='^$$' .

clean:
	rm -rf $(BIN)
